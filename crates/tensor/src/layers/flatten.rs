//! Flatten `[N, C, H, W]` → `[N, C·H·W]` (classifier heads of AlexNet/VGG,
//! which use full spatial feature maps instead of global average pooling).

use super::{Module, Param};
use crate::tensor::Tensor;

/// Reshape to 2-D, remembering the input shape for the backward pass.
#[derive(Debug, Default)]
pub struct Flatten {
    saved_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// A fresh flatten layer.
    pub fn new() -> Self {
        Flatten { saved_shape: None }
    }
}

impl Module for Flatten {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let s = x.shape();
        assert!(s.len() >= 2, "flatten needs a batch dimension");
        let n = s[0];
        let rest: usize = s[1..].iter().product();
        if train {
            self.saved_shape = Some(s.to_vec());
        }
        x.clone().reshape(&[n, rest])
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let shape = self.saved_shape.take().expect("forward(train=true) before backward");
        grad.clone().reshape(&shape)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattens_and_restores() {
        let mut f = Flatten::new();
        let x = Tensor::randn(&[2, 3, 4, 5], 1.0, 1);
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 60]);
        assert_eq!(y.data(), x.data());
        let dx = f.backward(&y);
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn already_flat_is_identity() {
        let mut f = Flatten::new();
        let x = Tensor::randn(&[4, 7], 1.0, 2);
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[4, 7]);
    }
}
