//! Neural-network layers with forward and backward passes.
//!
//! Each layer is a [`Module`]: `forward` caches whatever the gradient needs,
//! `backward` consumes the cache and returns the input gradient, and
//! `visit_params` exposes trainable parameters to the optimizer and to the
//! distributed gradient exchange (the flattened gradient vector is what the
//! paper's `MPI_Allreduce` moves).

mod bn;
mod conv;
mod dropout;
mod flatten;
mod linear;
mod pool;
mod relu;

pub use bn::BatchNorm2d;
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use linear::Linear;
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
pub use relu::ReLU;

use crate::tensor::Tensor;

/// A trainable parameter: value, gradient and momentum buffer.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the last backward pass.
    pub grad: Tensor,
    /// SGD momentum state.
    pub momentum: Tensor,
    /// Whether weight decay applies (true for all params, following the
    /// fb.resnet.torch recipe the paper builds on).
    pub weight_decay: bool,
}

impl Param {
    /// Wrap an initialized value with zeroed gradient/momentum.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        let momentum = Tensor::zeros(value.shape());
        Param { value, grad, momentum, weight_decay: true }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A differentiable module.
pub trait Module: Send {
    /// Compute the output; cache intermediates when `train` is true.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Propagate `grad` (w.r.t. the forward output) back to the input,
    /// accumulating parameter gradients along the way.
    fn backward(&mut self, grad: &Tensor) -> Tensor;

    /// [`Module::backward`] with a per-layer completion hook: as soon as a
    /// parameter range of the flattened gradient vector
    /// ([`collect_grads`] layout) is final — no later backward step will
    /// touch it again — `hook(offset, grads)` fires with the range's start
    /// offset (relative to the whole model; `base` is this module's start)
    /// and its gradient values in [`Module::visit_params`] order. The
    /// overlap engine launches gradient buckets from these hooks *during*
    /// backprop instead of after it.
    ///
    /// The default covers any module: run the plain backward, then report
    /// all of the module's own parameters as one range. Composite modules
    /// (`Sequential`, `Residual`, `Concat`) override this to recurse with
    /// per-child offsets, so leaves report the moment their own backward
    /// finishes. Hooks fire in backward traversal order, which is
    /// deterministic for a fixed module tree — every data-parallel rank
    /// sees the same sequence.
    fn backward_hooked(
        &mut self,
        grad: &Tensor,
        base: usize,
        hook: &mut dyn FnMut(usize, &[f32]),
    ) -> Tensor {
        let dx = self.backward(grad);
        let mut own: Vec<f32> = Vec::new();
        self.visit_params(&mut |p| own.extend_from_slice(p.grad.data()));
        if !own.is_empty() {
            hook(base, &own);
        }
        dx
    }

    /// Visit every trainable parameter (deterministic order).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        let _ = f;
    }

    /// Visit every trainable parameter with a hierarchical name, in exactly
    /// the order of [`Module::visit_params`] (the flattened-gradient layout
    /// depends on that). Composite modules extend `prefix` per child; leaf
    /// layers name their parameters (`weight`, `bias`, `gamma`, `beta`).
    /// The default numbers the unnamed parameters `p0`, `p1`, ….
    fn visit_params_named(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        let mut i = 0usize;
        self.visit_params(&mut |p| {
            f(&format!("{prefix}p{i}"), p);
            i += 1;
        });
    }
}

/// One named span of the flattened parameter/gradient vector: the slice
/// `flat[offset .. offset + len]` belongs to the parameter `name`. Segments
/// come out in [`Module::visit_params`] order — forward layer order — so the
/// overlap engine walks them in reverse to reduce early layers first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSegment {
    /// Hierarchical parameter name, e.g. `blocks.3.main.0.weight`.
    pub name: String,
    /// Start index within the flattened vector.
    pub offset: usize,
    /// Number of scalars.
    pub len: usize,
}

impl ParamSegment {
    /// The segment's span as a range over the flattened vector.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.offset..self.offset + self.len
    }
}

/// The module's parameter segment map: one entry per parameter, in
/// [`Module::visit_params`] order, with offsets into the flattened
/// gradient/parameter vector ([`collect_grads`] / [`set_grads`] layout).
pub fn param_segments(m: &mut dyn Module) -> Vec<ParamSegment> {
    let mut out = Vec::new();
    let mut offset = 0usize;
    m.visit_params_named("", &mut |name, p| {
        let len = p.len();
        out.push(ParamSegment { name: name.to_string(), offset, len });
        offset += len;
    });
    out
}

/// Total trainable parameter count of a module.
pub fn param_count(m: &mut dyn Module) -> usize {
    let mut n = 0;
    m.visit_params(&mut |p| n += p.len());
    n
}

/// Zero all parameter gradients.
pub fn zero_grads(m: &mut dyn Module) {
    m.visit_params(&mut |p| p.grad.zero_());
}

/// Flatten all parameter gradients into one contiguous buffer — the payload
/// the distributed allreduce operates on (93 MB for GoogLeNet-BN, §5.1).
pub fn collect_grads(m: &mut dyn Module) -> Vec<f32> {
    let mut out = Vec::new();
    m.visit_params(&mut |p| out.extend_from_slice(p.grad.data()));
    out
}

/// Write a flattened gradient buffer back into the parameters.
///
/// # Panics
/// Panics if `flat` has the wrong total length.
pub fn set_grads(m: &mut dyn Module, flat: &[f32]) {
    let mut off = 0;
    m.visit_params(&mut |p| {
        let n = p.len();
        p.grad.data_mut().copy_from_slice(&flat[off..off + n]);
        off += n;
    });
    assert_eq!(off, flat.len(), "flattened gradient length mismatch");
}

/// Flatten all parameter values (for weight-synchronization checks).
pub fn collect_params(m: &mut dyn Module) -> Vec<f32> {
    let mut out = Vec::new();
    m.visit_params(&mut |p| out.extend_from_slice(p.value.data()));
    out
}

/// Flatten the optimizer momentum state (for exact checkpoint/resume).
pub fn collect_momentum(m: &mut dyn Module) -> Vec<f32> {
    let mut out = Vec::new();
    m.visit_params(&mut |p| out.extend_from_slice(p.momentum.data()));
    out
}

/// Restore flattened momentum state.
pub fn set_momentum(m: &mut dyn Module, flat: &[f32]) {
    let mut off = 0;
    m.visit_params(&mut |p| {
        let n = p.len();
        p.momentum.data_mut().copy_from_slice(&flat[off..off + n]);
        off += n;
    });
    assert_eq!(off, flat.len(), "flattened momentum length mismatch");
}

/// Free every per-parameter momentum buffer (shrink to zero elements). The
/// sharded optimizer keeps its momentum in one shard-sized velocity buffer
/// ([`crate::optim::Sgd::step_range`]), so the full-size tensors here are
/// dead weight — releasing them is where the ~`1/world` optimizer-state
/// memory saving comes from. Returns the number of bytes freed.
pub fn release_momentum(m: &mut dyn Module) -> usize {
    let mut freed = 0usize;
    m.visit_params(&mut |p| {
        freed += p.momentum.len() * std::mem::size_of::<f32>();
        p.momentum = Tensor::zeros(&[0]);
    });
    freed
}

/// Reallocate zeroed momentum buffers for any parameter whose buffer was
/// [`release_momentum`]-ed, so [`set_momentum`] can restore a replicated
/// checkpoint into a model that previously ran sharded.
pub fn ensure_momentum(m: &mut dyn Module) {
    m.visit_params(&mut |p| {
        if p.momentum.len() != p.value.len() {
            p.momentum = Tensor::zeros(p.value.shape());
        }
    });
}

/// Actually resident bytes of this module's parameter state, measured from
/// live buffer lengths: `(param_bytes, opt_bytes)` where `param_bytes`
/// covers values + gradients and `opt_bytes` the momentum tensors (zero
/// after [`release_momentum`]). The sharded-vs-replicated memory win is
/// reported from these numbers, not computed from a formula.
pub fn resident_bytes(m: &mut dyn Module) -> (usize, usize) {
    let (mut param, mut opt) = (0usize, 0usize);
    m.visit_params(&mut |p| {
        param += (p.value.len() + p.grad.len()) * std::mem::size_of::<f32>();
        opt += p.momentum.len() * std::mem::size_of::<f32>();
    });
    (param, opt)
}

/// Overwrite parameter values from a flattened buffer.
pub fn set_params(m: &mut dyn Module, flat: &[f32]) {
    let mut off = 0;
    m.visit_params(&mut |p| {
        let n = p.len();
        p.value.data_mut().copy_from_slice(&flat[off..off + n]);
        off += n;
    });
    assert_eq!(off, flat.len(), "flattened parameter length mismatch");
}

/// Central-difference numeric gradient checker used by layer tests: compares
/// the analytic input gradient of `m` against finite differences of `lossf`.
#[cfg(test)]
pub(crate) fn check_input_gradient(
    m: &mut dyn Module,
    x: &Tensor,
    lossf: impl Fn(&Tensor) -> f64,
    forward_loss_grad: impl Fn(&Tensor) -> Tensor,
    tol: f32,
) {
    let y = m.forward(x, true);
    let gy = forward_loss_grad(&y);
    let gx = m.backward(&gy);
    let eps = 1e-2f32;
    for i in (0..x.len()).step_by((x.len() / 24).max(1)) {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let lp = lossf(&m.forward(&xp, true));
        let lm = lossf(&m.forward(&xm, true));
        let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
        let ana = gx.data()[i];
        assert!(
            (num - ana).abs() <= tol * (num.abs().max(ana.abs()).max(1.0)),
            "input grad mismatch at {i}: numeric {num} vs analytic {ana}"
        );
    }
}
