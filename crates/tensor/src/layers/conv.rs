//! 2-D convolution, lowered to GEMM via im2col (the same strategy as
//! cuDNN's implicit-GEMM kernels the paper's Torch stack uses).

use std::cell::RefCell;

use rayon::prelude::*;

use super::{Module, Param};
use crate::gemm::{gemm, gemm_nt_acc, gemm_tn_acc};
use crate::im2col::{col2im, im2col, out_dim};
use crate::init::he_conv;
use crate::tensor::Tensor;

thread_local! {
    /// Reusable im2col scratch per rayon worker — conv layers are called
    /// every iteration, and the unrolled column matrix is the single largest
    /// transient allocation in training.
    static COL_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Scratch for the backward pass's gradient columns.
    static GCOL_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

fn with_scratch<R>(
    slot: &'static std::thread::LocalKey<RefCell<Vec<f32>>>,
    len: usize,
    f: impl FnOnce(&mut [f32]) -> R,
) -> R {
    slot.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        f(&mut buf[..len])
    })
}

/// 2-D convolution with square-independent kernel, stride and padding.
pub struct Conv2d {
    /// Filter bank `[out_c, in_c, kh, kw]`.
    pub weight: Param,
    /// Optional bias `[out_c]` (omitted when a BatchNorm follows, as in
    /// ResNet and GoogLeNet-BN).
    pub bias: Option<Param>,
    in_c: usize,
    out_c: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    saved_x: Option<Tensor>,
}

impl Conv2d {
    /// He-initialized convolution.
    pub fn new(
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        seed: u64,
    ) -> Self {
        let weight = Param::new(he_conv(out_c, in_c, kernel, kernel, seed));
        let bias = bias.then(|| Param::new(Tensor::zeros(&[out_c])));
        Conv2d { weight, bias, in_c, out_c, kh: kernel, kw: kernel, stride, pad, saved_x: None }
    }

    /// Output shape for an input `[n, in_c, h, w]`.
    pub fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        assert_eq!(in_shape.len(), 4);
        assert_eq!(in_shape[1], self.in_c, "channel mismatch");
        vec![
            in_shape[0],
            self.out_c,
            out_dim(in_shape[2], self.kh, self.stride, self.pad),
            out_dim(in_shape[3], self.kw, self.stride, self.pad),
        ]
    }

    fn dims(&self, x: &Tensor) -> (usize, usize, usize, usize, usize) {
        let s = x.shape();
        let (n, h, w) = (s[0], s[2], s[3]);
        let oh = out_dim(h, self.kh, self.stride, self.pad);
        let ow = out_dim(w, self.kw, self.stride, self.pad);
        (n, h, w, oh, ow)
    }

    /// 1×1/stride-1/pad-0 convolutions are plain channel-mixing GEMMs over
    /// `[C, H·W]` — no im2col buffer needed. ResNet-50's bottlenecks and the
    /// inception reduce layers make this the most common conv shape.
    fn is_pointwise(&self) -> bool {
        self.kh == 1 && self.kw == 1 && self.stride == 1 && self.pad == 0
    }
}

impl Module for Conv2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (n, h, w, oh, ow) = self.dims(x);
        let k2 = self.in_c * self.kh * self.kw;
        let mut out = Tensor::zeros(&[n, self.out_c, oh, ow]);
        let img = self.in_c * h * w;
        let oimg = self.out_c * oh * ow;
        let wdata = self.weight.value.data();
        let bias = self.bias.as_ref().map(|b| b.value.data().to_vec());
        let pointwise = self.is_pointwise();
        out.data_mut()
            .par_chunks_mut(oimg)
            .zip(x.data().par_chunks(img))
            .for_each(|(yo, xo)| {
                if pointwise {
                    // y[oc, hw] = W[oc, ic] · x[ic, hw] — the image already
                    // *is* the im2col matrix.
                    gemm(yo, wdata, xo, self.out_c, self.in_c, oh * ow);
                } else {
                    with_scratch(&COL_SCRATCH, k2 * oh * ow, |col| {
                        im2col(xo, col, self.in_c, h, w, self.kh, self.kw, self.stride, self.pad);
                        gemm(yo, wdata, col, self.out_c, k2, oh * ow);
                    });
                }
                if let Some(b) = &bias {
                    for (c, yc) in yo.chunks_mut(oh * ow).enumerate() {
                        let bv = b[c];
                        yc.iter_mut().for_each(|v| *v += bv);
                    }
                }
            });
        if train {
            self.saved_x = Some(x.clone());
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.saved_x.take().expect("forward(train=true) before backward");
        let (n, h, w, oh, ow) = self.dims(&x);
        assert_eq!(grad.shape(), &[n, self.out_c, oh, ow], "grad shape");
        let k2 = self.in_c * self.kh * self.kw;
        let img = self.in_c * h * w;
        let oimg = self.out_c * oh * ow;
        let mut dx = Tensor::zeros(x.shape());
        let wdata = self.weight.value.data();

        // Per-image work, folding the weight/bias gradients thread-locally
        // and reducing at the end (grad buffers are shared across the batch).
        let (gw, gb) = dx
            .data_mut()
            .par_chunks_mut(img)
            .zip(x.data().par_chunks(img))
            .zip(grad.data().par_chunks(oimg))
            .fold(
                || (vec![0.0f32; self.out_c * k2], vec![0.0f32; self.out_c]),
                |(mut gw, mut gb), ((dxo, xo), go)| {
                    if self.is_pointwise() {
                        // gW[oc, ic] += g[oc, hw] · xᵀ; dx[ic, hw] = Wᵀ · g.
                        gemm_nt_acc(&mut gw, go, xo, self.out_c, oh * ow, k2);
                        gemm_tn_acc(dxo, wdata, go, k2, self.out_c, oh * ow);
                    } else {
                        with_scratch(&COL_SCRATCH, k2 * oh * ow, |col| {
                            im2col(xo, col, self.in_c, h, w, self.kh, self.kw, self.stride, self.pad);
                            // gW[oc, k2] += g[oc, ohow] · colᵀ
                            gemm_nt_acc(&mut gw, go, col, self.out_c, oh * ow, k2);
                        });
                        with_scratch(&GCOL_SCRATCH, k2 * oh * ow, |gcol| {
                            // grad_col[k2, ohow] = Wᵀ · g
                            gcol.iter_mut().for_each(|v| *v = 0.0);
                            gemm_tn_acc(gcol, wdata, go, k2, self.out_c, oh * ow);
                            col2im(gcol, dxo, self.in_c, h, w, self.kh, self.kw, self.stride, self.pad);
                        });
                    }
                    for (c, gc) in go.chunks(oh * ow).enumerate() {
                        gb[c] += gc.iter().sum::<f32>();
                    }
                    (gw, gb)
                },
            )
            .reduce(
                || (vec![0.0f32; self.out_c * k2], vec![0.0f32; self.out_c]),
                |(mut aw, mut ab), (bw, bb)| {
                    for (a, b) in aw.iter_mut().zip(&bw) {
                        *a += b;
                    }
                    for (a, b) in ab.iter_mut().zip(&bb) {
                        *a += b;
                    }
                    (aw, ab)
                },
            );

        for (g, v) in self.weight.grad.data_mut().iter_mut().zip(&gw) {
            *g += v;
        }
        if let Some(b) = &mut self.bias {
            for (g, v) in b.grad.data_mut().iter_mut().zip(&gb) {
                *g += v;
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }

    fn visit_params_named(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        f(&format!("{prefix}weight"), &mut self.weight);
        if let Some(b) = &mut self.bias {
            f(&format!("{prefix}bias"), b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::check_input_gradient;

    /// Direct (definition-level) convolution for cross-checking.
    fn conv_naive(x: &Tensor, w: &Tensor, b: Option<&[f32]>, stride: usize, pad: usize) -> Tensor {
        let (n, ic, h, wd) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oc, kh, kw) = (w.shape()[0], w.shape()[2], w.shape()[3]);
        let oh = out_dim(h, kh, stride, pad);
        let ow = out_dim(wd, kw, stride, pad);
        let mut y = Tensor::zeros(&[n, oc, oh, ow]);
        for ni in 0..n {
            for co in 0..oc {
                for oi in 0..oh {
                    for oj in 0..ow {
                        let mut acc = b.map(|b| b[co]).unwrap_or(0.0);
                        for ci in 0..ic {
                            for ki in 0..kh {
                                for kj in 0..kw {
                                    let ii = (oi * stride + ki) as isize - pad as isize;
                                    let jj = (oj * stride + kj) as isize - pad as isize;
                                    if ii >= 0 && jj >= 0 && (ii as usize) < h && (jj as usize) < wd
                                    {
                                        acc += x.at4(ni, ci, ii as usize, jj as usize)
                                            * w.at4(co, ci, ki, kj);
                                    }
                                }
                            }
                        }
                        y.set4(ni, co, oi, oj, acc);
                    }
                }
            }
        }
        y
    }

    #[test]
    fn forward_matches_naive() {
        for (stride, pad, bias) in [(1, 0, false), (1, 1, true), (2, 1, false), (2, 3, true)] {
            let mut conv = Conv2d::new(3, 5, 3, stride, pad, bias, 7);
            let x = Tensor::randn(&[2, 3, 8, 9], 1.0, 21);
            let y = conv.forward(&x, false);
            let b = conv.bias.as_ref().map(|b| b.value.data().to_vec());
            let want = conv_naive(&x, &conv.weight.value, b.as_deref(), stride, pad);
            assert!(y.allclose(&want, 1e-4, 1e-5), "stride={stride} pad={pad} bias={bias}");
        }
    }

    #[test]
    fn out_shape_resnet_stem() {
        let conv = Conv2d::new(3, 64, 7, 2, 3, false, 0);
        assert_eq!(conv.out_shape(&[32, 3, 224, 224]), vec![32, 64, 112, 112]);
    }

    #[test]
    fn one_by_one_conv_is_channel_mix() {
        let mut conv = Conv2d::new(2, 2, 1, 1, 0, false, 1);
        conv.weight.value = Tensor::from_vec(vec![1.0, 0.0, 1.0, 1.0], &[2, 2, 1, 1]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 10.0, 20.0], &[1, 2, 1, 2]);
        let y = conv.forward(&x, false);
        assert_eq!(y.data(), &[1.0, 2.0, 11.0, 22.0]);
    }

    #[test]
    fn input_gradient_checks() {
        let mut conv = Conv2d::new(2, 3, 3, 2, 1, true, 5);
        let x = Tensor::randn(&[2, 2, 6, 5], 1.0, 9);
        // Loss = 0.5 Σ y², so dL/dy = y.
        check_input_gradient(
            &mut conv,
            &x,
            |y| 0.5 * y.data().iter().map(|&v| (v as f64).powi(2)).sum::<f64>(),
            |y| y.clone(),
            2e-2,
        );
    }

    #[test]
    fn weight_gradient_numeric() {
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, false, 3);
        let x = Tensor::randn(&[1, 1, 5, 5], 1.0, 4);
        let y = conv.forward(&x, true);
        let _ = conv.backward(&y.clone());
        let analytic = conv.weight.grad.clone();
        let eps = 1e-2f32;
        for i in [0usize, 5, 11, 17] {
            let orig = conv.weight.value.data()[i];
            conv.weight.value.data_mut()[i] = orig + eps;
            let lp: f64 =
                conv.forward(&x, false).data().iter().map(|&v| 0.5 * (v as f64).powi(2)).sum();
            conv.weight.value.data_mut()[i] = orig - eps;
            let lm: f64 =
                conv.forward(&x, false).data().iter().map(|&v| 0.5 * (v as f64).powi(2)).sum();
            conv.weight.value.data_mut()[i] = orig;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let ana = analytic.data()[i];
            assert!(
                (num - ana).abs() < 2e-2 * num.abs().max(1.0),
                "w[{i}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn pointwise_fast_path_matches_general_path() {
        // Same weights through a 1×1 conv (fast path) vs the identical
        // mathematical op expressed as a padded 3×3 with zero borders (slow
        // path): forward outputs and all gradients must agree.
        let (ic, oc) = (3, 5);
        let x = Tensor::randn(&[2, ic, 6, 7], 1.0, 11);
        let w1 = crate::init::he_conv(oc, ic, 1, 1, 42);
        let mut fast = Conv2d::new(ic, oc, 1, 1, 0, false, 0);
        fast.weight.value = w1.clone();
        // Embed the 1×1 kernel at the center of a 3×3 kernel of zeros.
        let mut w3 = Tensor::zeros(&[oc, ic, 3, 3]);
        for o in 0..oc {
            for i in 0..ic {
                w3.set4(o, i, 1, 1, w1.at4(o, i, 0, 0));
            }
        }
        let mut slow = Conv2d::new(ic, oc, 3, 1, 1, false, 0);
        slow.weight.value = w3;
        let yf = fast.forward(&x, true);
        let ys = slow.forward(&x, true);
        assert!(yf.allclose(&ys, 1e-4, 1e-5));
        let g = Tensor::randn(yf.shape(), 1.0, 9);
        let dxf = fast.backward(&g);
        let dxs = slow.backward(&g);
        assert!(dxf.allclose(&dxs, 1e-4, 1e-4));
        // The fast path's weight grad equals the center taps of the slow's.
        for o in 0..oc {
            for i in 0..ic {
                let a = fast.weight.grad.at4(o, i, 0, 0);
                let b = slow.weight.grad.at4(o, i, 1, 1);
                assert!((a - b).abs() < 1e-3 * b.abs().max(1.0), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn grads_accumulate_until_zeroed() {
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, false, 2);
        let x = Tensor::full(&[1, 1, 2, 2], 1.0);
        let g = Tensor::full(&[1, 1, 2, 2], 1.0);
        conv.forward(&x, true);
        conv.backward(&g);
        let g1 = conv.weight.grad.data()[0];
        conv.forward(&x, true);
        conv.backward(&g);
        assert_eq!(conv.weight.grad.data()[0], 2.0 * g1);
    }

    #[test]
    fn visit_params_order() {
        let mut conv = Conv2d::new(2, 4, 3, 1, 1, true, 0);
        let mut sizes = Vec::new();
        conv.visit_params(&mut |p| sizes.push(p.len()));
        assert_eq!(sizes, vec![4 * 2 * 3 * 3, 4]);
    }
}
