//! Batch normalization over `[N, C, H, W]` (per-channel statistics), as in
//! Ioffe & Szegedy — the "BN" of the paper's GoogLeNet-BN workload.

use super::{Module, Param};
use crate::tensor::Tensor;

/// 2-D batch normalization with affine transform and running statistics.
pub struct BatchNorm2d {
    /// Scale γ `[C]`.
    pub gamma: Param,
    /// Shift β `[C]`.
    pub beta: Param,
    /// Running mean (eval mode).
    pub running_mean: Tensor,
    /// Running variance (eval mode).
    pub running_var: Tensor,
    channels: usize,
    eps: f32,
    momentum: f32,
    // Training cache.
    saved: Option<Cache>,
}

struct Cache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    shape: Vec<usize>,
}

impl BatchNorm2d {
    /// γ=1, β=0, running stats at (0, 1); ε=1e-5, momentum 0.1 (Torch
    /// defaults the paper's models use).
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::full(&[channels], 1.0)),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::full(&[channels], 1.0),
            channels,
            eps: 1e-5,
            momentum: 0.1,
            saved: None,
        }
    }

    fn stats(&self, x: &Tensor) -> (Vec<f32>, Vec<f32>) {
        let s = x.shape();
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let plane = h * w;
        let count = (n * plane) as f64;
        let mut mean = vec![0.0f64; c];
        let mut var = vec![0.0f64; c];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                for &v in &x.data()[base..base + plane] {
                    mean[ci] += v as f64;
                }
            }
        }
        for m in mean.iter_mut() {
            *m /= count;
        }
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                for &v in &x.data()[base..base + plane] {
                    let d = v as f64 - mean[ci];
                    var[ci] += d * d;
                }
            }
        }
        for v in var.iter_mut() {
            *v /= count;
        }
        (mean.into_iter().map(|v| v as f32).collect(), var.into_iter().map(|v| v as f32).collect())
    }
}

impl Module for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let s = x.shape().to_vec();
        assert_eq!(s.len(), 4);
        assert_eq!(s[1], self.channels, "BN channel mismatch");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let plane = h * w;

        let (mean, var) = if train {
            let (m, v) = self.stats(x);
            // Update running statistics.
            for ci in 0..c {
                let rm = &mut self.running_mean.data_mut()[ci];
                *rm = (1.0 - self.momentum) * *rm + self.momentum * m[ci];
            }
            for ci in 0..c {
                let rv = &mut self.running_var.data_mut()[ci];
                *rv = (1.0 - self.momentum) * *rv + self.momentum * v[ci];
            }
            (m, v)
        } else {
            (self.running_mean.data().to_vec(), self.running_var.data().to_vec())
        };

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut x_hat = Tensor::zeros(&s);
        let mut y = Tensor::zeros(&s);
        let g = self.gamma.value.data();
        let b = self.beta.value.data();
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                let (m, is) = (mean[ci], inv_std[ci]);
                let (gc, bc) = (g[ci], b[ci]);
                for i in base..base + plane {
                    let xh = (x.data()[i] - m) * is;
                    x_hat.data_mut()[i] = xh;
                    y.data_mut()[i] = gc * xh + bc;
                }
            }
        }
        if train {
            self.saved = Some(Cache { x_hat, inv_std, shape: s });
        }
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let cache = self.saved.take().expect("forward(train=true) before backward");
        let s = &cache.shape;
        assert_eq!(grad.shape(), s.as_slice());
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let plane = h * w;
        let count = (n * plane) as f32;

        // Per-channel sums: Σg and Σ(g·x̂).
        let mut sum_g = vec![0.0f64; c];
        let mut sum_gx = vec![0.0f64; c];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                for i in base..base + plane {
                    sum_g[ci] += grad.data()[i] as f64;
                    sum_gx[ci] += (grad.data()[i] * cache.x_hat.data()[i]) as f64;
                }
            }
        }

        for ci in 0..c {
            self.gamma.grad.data_mut()[ci] += sum_gx[ci] as f32;
            self.beta.grad.data_mut()[ci] += sum_g[ci] as f32;
        }

        let g = self.gamma.value.data();
        let mut dx = Tensor::zeros(s);
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                let k = g[ci] * cache.inv_std[ci];
                let mg = sum_g[ci] as f32 / count;
                let mgx = sum_gx[ci] as f32 / count;
                for i in base..base + plane {
                    dx.data_mut()[i] =
                        k * (grad.data()[i] - mg - cache.x_hat.data()[i] * mgx);
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn visit_params_named(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        f(&format!("{prefix}gamma"), &mut self.gamma);
        f(&format!("{prefix}beta"), &mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::check_input_gradient;

    #[test]
    fn normalizes_in_train_mode() {
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(&[4, 2, 3, 3], 3.0, 17).map(|v| v + 5.0);
        let y = bn.forward(&x, true);
        // Per-channel mean ≈ 0, var ≈ 1 (γ=1, β=0).
        for ci in 0..2 {
            let mut vals = Vec::new();
            for ni in 0..4 {
                for hi in 0..3 {
                    for wi in 0..3 {
                        vals.push(y.at4(ni, ci, hi, wi) as f64);
                    }
                }
            }
            let m = vals.iter().sum::<f64>() / vals.len() as f64;
            let v = vals.iter().map(|x| (x - m).powi(2)).sum::<f64>() / vals.len() as f64;
            assert!(m.abs() < 1e-4, "mean {m}");
            assert!((v - 1.0).abs() < 1e-2, "var {v}");
        }
    }

    #[test]
    fn affine_applies() {
        let mut bn = BatchNorm2d::new(1);
        bn.gamma.value = Tensor::from_vec(vec![2.0], &[1]);
        bn.beta.value = Tensor::from_vec(vec![10.0], &[1]);
        let x = Tensor::randn(&[8, 1, 2, 2], 1.0, 3);
        let y = bn.forward(&x, true);
        let m = y.mean();
        assert!((m - 10.0).abs() < 1e-3, "mean {m}");
    }

    #[test]
    fn running_stats_converge() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::randn(&[16, 1, 4, 4], 2.0, 5).map(|v| v + 3.0);
        for _ in 0..60 {
            let _ = bn.forward(&x, true);
        }
        assert!((bn.running_mean.data()[0] - 3.0).abs() < 0.2);
        assert!((bn.running_var.data()[0] - 4.0).abs() < 0.8);
        // Eval mode now roughly normalizes the same distribution.
        let y = bn.forward(&x, false);
        assert!(y.mean().abs() < 0.2, "eval mean {}", y.mean());
    }

    #[test]
    fn eval_mode_uses_running_not_batch() {
        let mut bn = BatchNorm2d::new(1);
        // Fresh stats: mean 0, var 1 → eval is identity (γ=1, β=0).
        let x = Tensor::from_vec(vec![100.0, 200.0, 300.0, 400.0], &[4, 1, 1, 1]);
        let y = bn.forward(&x, false);
        assert!(y.allclose(&x, 1e-4, 1e-2), "{:?}", y.data());
    }

    #[test]
    fn input_gradient_checks() {
        let mut bn = BatchNorm2d::new(3);
        bn.gamma.value = Tensor::from_vec(vec![1.5, 0.5, 2.0], &[3]);
        let x = Tensor::randn(&[3, 3, 2, 2], 1.0, 11);
        check_input_gradient(
            &mut bn,
            &x,
            |y| y.data().iter().map(|&v| (v as f64).powi(3) / 3.0).sum::<f64>(),
            |y| y.map(|v| v * v),
            3e-2,
        );
    }

    #[test]
    fn gamma_beta_gradients_numeric() {
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(&[2, 2, 3, 3], 1.0, 13);
        let y = bn.forward(&x, true);
        let _ = bn.backward(&y.map(|_| 1.0));
        // dL/dβ with L = Σy is simply the element count per channel.
        let count = (2 * 3 * 3) as f32;
        for ci in 0..2 {
            assert!((bn.beta.grad.data()[ci] - count).abs() < 1e-3);
        }
        // dL/dγ = Σ x̂ ≈ 0 under batch normalization.
        for ci in 0..2 {
            assert!(bn.gamma.grad.data()[ci].abs() < 1e-2);
        }
    }

    #[test]
    #[should_panic]
    fn channel_mismatch_panics() {
        let mut bn = BatchNorm2d::new(4);
        let _ = bn.forward(&Tensor::zeros(&[1, 3, 2, 2]), true);
    }
}
