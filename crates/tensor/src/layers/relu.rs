//! Rectified linear activation.

use super::{Module, Param};
use crate::tensor::Tensor;

/// Elementwise `max(0, x)`.
#[derive(Debug, Default)]
pub struct ReLU {
    mask: Option<Vec<bool>>,
}

impl ReLU {
    /// A fresh ReLU.
    pub fn new() -> Self {
        ReLU { mask: None }
    }
}

impl Module for ReLU {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.mask = Some(x.data().iter().map(|&v| v > 0.0).collect());
        }
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mask = self.mask.take().expect("forward(train=true) before backward");
        assert_eq!(mask.len(), grad.len());
        let data = grad
            .data()
            .iter()
            .zip(&mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad.shape())
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut r = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        assert_eq!(r.forward(&x, false).data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_masks() {
        let mut r = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 0.5, 2.0, 0.0], &[4]);
        let _ = r.forward(&x, true);
        let g = Tensor::from_vec(vec![10.0, 10.0, 10.0, 10.0], &[4]);
        assert_eq!(r.backward(&g).data(), &[0.0, 10.0, 10.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn backward_without_forward_panics() {
        let mut r = ReLU::new();
        let _ = r.backward(&Tensor::zeros(&[1]));
    }
}
