//! Fully connected layer (the classifier head of both paper models).

use super::{Module, Param};
use crate::gemm::{gemm, gemm_nt_acc, gemm_tn_acc};
use crate::init::xavier_linear;
use crate::tensor::Tensor;

/// `y = x·Wᵀ + b` with `x: [N, in]`, `W: [out, in]`, `b: [out]`.
pub struct Linear {
    /// Weight `[out, in]`.
    pub weight: Param,
    /// Bias `[out]`.
    pub bias: Param,
    in_f: usize,
    out_f: usize,
    saved_x: Option<Tensor>,
}

impl Linear {
    /// Xavier-initialized linear layer.
    pub fn new(in_f: usize, out_f: usize, seed: u64) -> Self {
        Linear {
            weight: Param::new(xavier_linear(out_f, in_f, seed)),
            bias: Param::new(Tensor::zeros(&[out_f])),
            in_f,
            out_f,
            saved_x: None,
        }
    }
}

impl Module for Linear {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let n = x.shape()[0];
        assert_eq!(x.len(), n * self.in_f, "linear input shape");
        let mut y = Tensor::zeros(&[n, self.out_f]);
        // y[N,out] = x[N,in] · Wᵀ (W stored out×in).
        {
            let yd = y.data_mut();
            yd.iter_mut().for_each(|v| *v = 0.0);
            gemm_nt_acc(yd, x.data(), self.weight.value.data(), n, self.in_f, self.out_f);
        }
        let b = self.bias.value.data();
        for row in y.data_mut().chunks_mut(self.out_f) {
            for (v, &bv) in row.iter_mut().zip(b) {
                *v += bv;
            }
        }
        if train {
            self.saved_x = Some(x.clone());
        }
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.saved_x.take().expect("forward(train=true) before backward");
        let n = x.shape()[0];
        assert_eq!(grad.shape(), &[n, self.out_f]);
        // gW[out,in] += gᵀ[out,N] · x[N,in]  (g stored N×out).
        gemm_tn_acc(self.weight.grad.data_mut(), grad.data(), x.data(), self.out_f, n, self.in_f);
        // gb += column sums of g.
        for row in grad.data().chunks(self.out_f) {
            for (g, &v) in self.bias.grad.data_mut().iter_mut().zip(row) {
                *g += v;
            }
        }
        // dx[N,in] = g[N,out] · W[out,in].
        let mut dx = Tensor::zeros(x.shape());
        gemm(dx.data_mut(), grad.data(), self.weight.value.data(), n, self.out_f, self.in_f);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn visit_params_named(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        f(&format!("{prefix}weight"), &mut self.weight);
        f(&format!("{prefix}bias"), &mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::check_input_gradient;

    #[test]
    fn forward_known_values() {
        let mut l = Linear::new(2, 3, 0);
        l.weight.value = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]);
        l.bias.value = Tensor::from_vec(vec![0.0, 10.0, 100.0], &[3]);
        let x = Tensor::from_vec(vec![2.0, 3.0], &[1, 2]);
        let y = l.forward(&x, false);
        assert_eq!(y.data(), &[2.0, 13.0, 105.0]);
    }

    #[test]
    fn input_gradient_checks() {
        let mut l = Linear::new(5, 4, 1);
        let x = Tensor::randn(&[3, 5], 1.0, 2);
        check_input_gradient(
            &mut l,
            &x,
            |y| 0.5 * y.data().iter().map(|&v| (v as f64).powi(2)).sum::<f64>(),
            |y| y.clone(),
            1e-2,
        );
    }

    #[test]
    fn weight_bias_gradients_known() {
        let mut l = Linear::new(2, 1, 0);
        l.weight.value = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let x = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]);
        let _ = l.forward(&x, true);
        let _ = l.backward(&Tensor::from_vec(vec![1.0, 2.0], &[2, 1]));
        // gW = Σ_n g_n · x_n = 1·(3,4) + 2·(5,6) = (13, 16)
        assert_eq!(l.weight.grad.data(), &[13.0, 16.0]);
        assert_eq!(l.bias.grad.data(), &[3.0]);
    }

    #[test]
    fn dx_is_g_times_w() {
        let mut l = Linear::new(2, 2, 0);
        l.weight.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let _ = l.forward(&x, true);
        let dx = l.backward(&Tensor::from_vec(vec![1.0, 1.0], &[1, 2]));
        assert_eq!(dx.data(), &[4.0, 6.0]);
    }

    #[test]
    fn param_visit_sizes() {
        let mut l = Linear::new(2048, 1000, 0);
        let mut total = 0;
        l.visit_params(&mut |p| total += p.len());
        assert_eq!(total, 2048 * 1000 + 1000);
    }
}
