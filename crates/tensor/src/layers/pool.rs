//! Spatial pooling: max pooling (ResNet/GoogLeNet stems) and global average
//! pooling (their heads).

use super::{Module, Param};
use crate::im2col::out_dim;
use crate::tensor::Tensor;

/// Max pooling with square kernel.
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    pad: usize,
    saved: Option<(Vec<usize>, Vec<usize>)>, // (argmax flat indices, input shape)
}

impl MaxPool2d {
    /// kernel/stride/pad pooling (e.g. 3/2/1 in the ResNet stem).
    pub fn new(kernel: usize, stride: usize, pad: usize) -> Self {
        assert!(kernel > 0 && stride > 0);
        MaxPool2d { kernel, stride, pad, saved: None }
    }
}

impl Module for MaxPool2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 4);
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let oh = out_dim(h, self.kernel, self.stride, self.pad);
        let ow = out_dim(w, self.kernel, self.stride, self.pad);
        let mut y = Tensor::zeros(&[n, c, oh, ow]);
        let mut arg = vec![0usize; n * c * oh * ow];
        let xd = x.data();
        let yd = y.data_mut();
        let mut oidx = 0usize;
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for oi in 0..oh {
                    for oj in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = base;
                        for ki in 0..self.kernel {
                            let ii = (oi * self.stride + ki) as isize - self.pad as isize;
                            if ii < 0 || ii >= h as isize {
                                continue;
                            }
                            for kj in 0..self.kernel {
                                let jj = (oj * self.stride + kj) as isize - self.pad as isize;
                                if jj < 0 || jj >= w as isize {
                                    continue;
                                }
                                let idx = base + ii as usize * w + jj as usize;
                                if xd[idx] > best {
                                    best = xd[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        yd[oidx] = best;
                        arg[oidx] = best_idx;
                        oidx += 1;
                    }
                }
            }
        }
        if train {
            self.saved = Some((arg, s.to_vec()));
        }
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let (arg, shape) = self.saved.take().expect("forward(train=true) before backward");
        assert_eq!(arg.len(), grad.len());
        let mut dx = Tensor::zeros(&shape);
        for (&idx, &g) in arg.iter().zip(grad.data()) {
            dx.data_mut()[idx] += g;
        }
        dx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// Local average pooling with square kernel (inception pooling branches;
/// padded positions count toward the divisor, matching Torch's
/// `SpatialAveragePooling` default of `count_include_pad`).
pub struct AvgPool2d {
    kernel: usize,
    stride: usize,
    pad: usize,
    saved_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// kernel/stride/pad average pooling.
    pub fn new(kernel: usize, stride: usize, pad: usize) -> Self {
        assert!(kernel > 0 && stride > 0);
        AvgPool2d { kernel, stride, pad, saved_shape: None }
    }
}

impl Module for AvgPool2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 4);
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let oh = out_dim(h, self.kernel, self.stride, self.pad);
        let ow = out_dim(w, self.kernel, self.stride, self.pad);
        let div = (self.kernel * self.kernel) as f32;
        let mut y = Tensor::zeros(&[n, c, oh, ow]);
        let xd = x.data();
        let yd = y.data_mut();
        let mut oidx = 0usize;
        for nc in 0..n * c {
            let base = nc * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc = 0.0f32;
                    for ki in 0..self.kernel {
                        let ii = (oi * self.stride + ki) as isize - self.pad as isize;
                        if ii < 0 || ii >= h as isize {
                            continue;
                        }
                        for kj in 0..self.kernel {
                            let jj = (oj * self.stride + kj) as isize - self.pad as isize;
                            if jj >= 0 && jj < w as isize {
                                acc += xd[base + ii as usize * w + jj as usize];
                            }
                        }
                    }
                    yd[oidx] = acc / div;
                    oidx += 1;
                }
            }
        }
        if train {
            self.saved_shape = Some(s.to_vec());
        }
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let shape = self.saved_shape.take().expect("forward(train=true) before backward");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let oh = out_dim(h, self.kernel, self.stride, self.pad);
        let ow = out_dim(w, self.kernel, self.stride, self.pad);
        assert_eq!(grad.shape(), &[n, c, oh, ow]);
        let div = (self.kernel * self.kernel) as f32;
        let mut dx = Tensor::zeros(&shape);
        let gd = grad.data();
        let dd = dx.data_mut();
        let mut oidx = 0usize;
        for nc in 0..n * c {
            let base = nc * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let g = gd[oidx] / div;
                    oidx += 1;
                    for ki in 0..self.kernel {
                        let ii = (oi * self.stride + ki) as isize - self.pad as isize;
                        if ii < 0 || ii >= h as isize {
                            continue;
                        }
                        for kj in 0..self.kernel {
                            let jj = (oj * self.stride + kj) as isize - self.pad as isize;
                            if jj >= 0 && jj < w as isize {
                                dd[base + ii as usize * w + jj as usize] += g;
                            }
                        }
                    }
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// Global average pooling: `[N, C, H, W] → [N, C]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    saved_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// A fresh pool.
    pub fn new() -> Self {
        GlobalAvgPool { saved_shape: None }
    }
}

impl Module for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 4);
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let plane = h * w;
        let mut y = Tensor::zeros(&[n, c]);
        for nc in 0..n * c {
            let sum: f32 = x.data()[nc * plane..(nc + 1) * plane].iter().sum();
            y.data_mut()[nc] = sum / plane as f32;
        }
        if train {
            self.saved_shape = Some(s.to_vec());
        }
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let shape = self.saved_shape.take().expect("forward(train=true) before backward");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(grad.shape(), &[n, c]);
        let plane = h * w;
        let mut dx = Tensor::zeros(&shape);
        for nc in 0..n * c {
            let g = grad.data()[nc] / plane as f32;
            dx.data_mut()[nc * plane..(nc + 1) * plane].iter_mut().for_each(|v| *v = g);
        }
        dx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_2x2() {
        let mut p = MaxPool2d::new(2, 2, 0);
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0],
            &[1, 1, 4, 4],
        );
        let y = p.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut p = MaxPool2d::new(2, 2, 0);
        let x = Tensor::from_vec(vec![1.0, 9.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let _ = p.forward(&x, true);
        let dx = p.backward(&Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]));
        assert_eq!(dx.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_with_padding_ignores_border() {
        // Padded positions must never win the max (negative inputs).
        let mut p = MaxPool2d::new(3, 2, 1);
        let x = Tensor::from_vec(vec![-1.0, -2.0, -3.0, -4.0], &[1, 1, 2, 2]);
        let y = p.forward(&x, false);
        assert!(y.data().iter().all(|&v| v < 0.0), "{:?}", y.data());
    }

    #[test]
    fn maxpool_resnet_stem_shape() {
        let mut p = MaxPool2d::new(3, 2, 1);
        let y = p.forward(&Tensor::zeros(&[2, 64, 112, 112]), false);
        assert_eq!(y.shape(), &[2, 64, 56, 56]);
    }

    #[test]
    fn maxpool_overlapping_backward_accumulates() {
        let mut p = MaxPool2d::new(2, 1, 0);
        // Center 4.0 is the max of all four windows... construct 3x3 with peak center.
        let x = Tensor::from_vec(vec![0.0, 1.0, 0.0, 1.0, 9.0, 1.0, 0.0, 1.0, 0.0], &[1, 1, 3, 3]);
        let _ = p.forward(&x, true);
        let dx = p.backward(&Tensor::full(&[1, 1, 2, 2], 1.0));
        assert_eq!(dx.data()[4], 4.0);
    }

    #[test]
    fn avgpool_basic() {
        let mut p = AvgPool2d::new(2, 2, 0);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let y = p.forward(&x, true);
        assert_eq!(y.data(), &[2.5]);
        let dx = p.backward(&Tensor::from_vec(vec![4.0], &[1, 1, 1, 1]));
        assert_eq!(dx.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn avgpool_stride1_pad1_keeps_shape() {
        let mut p = AvgPool2d::new(3, 1, 1);
        let x = Tensor::full(&[1, 2, 4, 4], 9.0);
        let y = p.forward(&x, false);
        assert_eq!(y.shape(), &[1, 2, 4, 4]);
        // Interior positions average 9 over 9 cells; corners see only 4.
        assert_eq!(y.at4(0, 0, 1, 1), 9.0);
        assert_eq!(y.at4(0, 0, 0, 0), 4.0);
    }

    #[test]
    fn avgpool_adjoint_property() {
        let mut p = AvgPool2d::new(3, 2, 1);
        let x = Tensor::randn(&[2, 3, 5, 5], 1.0, 8);
        let y = p.forward(&x, true);
        let g = Tensor::randn(y.shape(), 1.0, 9);
        let dx = p.backward(&g);
        let lhs: f64 = y.data().iter().zip(g.data()).map(|(&a, &b)| (a * b) as f64).sum();
        let rhs: f64 = x.data().iter().zip(dx.data()).map(|(&a, &b)| (a * b) as f64).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn gap_average_and_backward() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[1, 2, 2, 2]);
        let y = p.forward(&x, true);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[2.5, 25.0]);
        let dx = p.backward(&Tensor::from_vec(vec![4.0, 8.0], &[1, 2]));
        assert_eq!(dx.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }
}
