//! Inverted dropout (AlexNet/VGG classifier heads).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use super::{Module, Param};
use crate::tensor::Tensor;

/// Inverted dropout: in training, zero each activation with probability `p`
/// and scale survivors by `1/(1-p)` so evaluation is a plain identity.
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Option<Vec<bool>>,
}

impl Dropout {
    /// Drop probability `p` in `[0, 1)`; `seed` makes runs reproducible.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0, 1)");
        Dropout { p, rng: StdRng::seed_from_u64(seed), mask: None }
    }
}

impl Module for Dropout {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            if train {
                self.mask = Some(vec![true; x.len()]);
            }
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask: Vec<bool> = (0..x.len()).map(|_| self.rng.random::<f32>() < keep).collect();
        let data = x
            .data()
            .iter()
            .zip(&mask)
            .map(|(&v, &m)| if m { v * scale } else { 0.0 })
            .collect();
        self.mask = Some(mask);
        Tensor::from_vec(data, x.shape())
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mask = self.mask.take().expect("forward(train=true) before backward");
        assert_eq!(mask.len(), grad.len());
        let scale = if self.p == 0.0 { 1.0 } else { 1.0 / (1.0 - self.p) };
        let data = grad
            .data()
            .iter()
            .zip(&mask)
            .map(|(&g, &m)| if m { g * scale } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad.shape())
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::randn(&[3, 7], 1.0, 2);
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn training_zeroes_about_p_and_preserves_expectation() {
        let mut d = Dropout::new(0.3, 5);
        let x = Tensor::full(&[10_000], 1.0);
        let y = d.forward(&x, true);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "dropped {frac}");
        // Inverted scaling keeps E[y] ≈ E[x].
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 9);
        let x = Tensor::full(&[100], 2.0);
        let y = d.forward(&x, true);
        let g = Tensor::full(&[100], 1.0);
        let dx = d.backward(&g);
        for (yo, gi) in y.data().iter().zip(dx.data()) {
            // Gradient flows exactly where the activation survived.
            assert_eq!(*yo == 0.0, *gi == 0.0);
        }
    }

    #[test]
    fn zero_probability_passes_through() {
        let mut d = Dropout::new(0.0, 3);
        let x = Tensor::randn(&[8], 1.0, 4);
        let y = d.forward(&x, true);
        assert_eq!(y, x);
        let dx = d.backward(&x);
        assert_eq!(dx, x);
    }

    #[test]
    #[should_panic]
    fn p_of_one_rejected() {
        let _ = Dropout::new(1.0, 0);
    }
}
