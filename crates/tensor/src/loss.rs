//! Softmax cross-entropy, the criterion of both paper workloads.
//!
//! In the paper's optimized data-parallel table the criterion is evaluated on
//! *every* GPU over its own batch shard (§4.3), so the loss returns both the
//! shard loss and the gradient w.r.t. the logits, plus the top-1 hit count
//! used by the accuracy figures.

use crate::tensor::Tensor;

/// Result of a criterion evaluation.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean cross-entropy over the batch.
    pub loss: f64,
    /// Gradient w.r.t. the logits, already divided by the batch size.
    pub grad: Tensor,
    /// Number of samples whose arg-max logit equals the label.
    pub correct: usize,
}

/// Numerically stable softmax + cross-entropy.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Evaluate logits `[N, K]` against `labels` (`len == N`, values `< K`).
    pub fn forward(&self, logits: &Tensor, labels: &[usize]) -> LossOutput {
        let n = logits.shape()[0];
        let k = logits.shape()[1];
        assert_eq!(labels.len(), n, "one label per sample");
        let mut grad = Tensor::zeros(&[n, k]);
        let mut loss = 0.0f64;
        let mut correct = 0usize;
        for i in 0..n {
            let row = &logits.data()[i * k..(i + 1) * k];
            let label = labels[i];
            assert!(label < k, "label {label} out of range {k}");
            let maxv = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .map(|(j, _)| j)
                .expect("non-empty row");
            if argmax == label {
                correct += 1;
            }
            let exps: Vec<f64> = row.iter().map(|&v| ((v - maxv) as f64).exp()).collect();
            let denom: f64 = exps.iter().sum();
            loss -= (exps[label] / denom).ln();
            let grow = &mut grad.data_mut()[i * k..(i + 1) * k];
            for (j, g) in grow.iter_mut().enumerate() {
                let p = (exps[j] / denom) as f32;
                *g = (p - if j == label { 1.0 } else { 0.0 }) / n as f32;
            }
        }
        LossOutput { loss: loss / n as f64, grad, correct }
    }
}

/// Count samples whose label is among the `k` highest logits (top-k
/// accuracy; ImageNet evaluations conventionally also report top-5).
pub fn topk_correct(logits: &Tensor, labels: &[usize], k: usize) -> usize {
    let n = logits.shape()[0];
    let classes = logits.shape()[1];
    assert_eq!(labels.len(), n);
    assert!(k >= 1 && k <= classes, "k must be in 1..=classes");
    let mut correct = 0;
    for i in 0..n {
        let row = &logits.data()[i * classes..(i + 1) * classes];
        let label_score = row[labels[i]];
        // Rank = number of strictly larger scores (ties resolved in the
        // label's favour, matching the usual evaluation convention).
        let rank = row.iter().filter(|&&v| v > label_score).count();
        if rank < k {
            correct += 1;
        }
    }
    correct
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Tensor::zeros(&[4, 10]);
        let out = SoftmaxCrossEntropy.forward(&logits, &[0, 1, 2, 3]);
        assert!((out.loss - (10.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn confident_correct_prediction_low_loss() {
        let mut logits = Tensor::zeros(&[1, 3]);
        logits.data_mut()[1] = 20.0;
        let out = SoftmaxCrossEntropy.forward(&logits, &[1]);
        assert!(out.loss < 1e-6);
        assert_eq!(out.correct, 1);
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        let logits = Tensor::randn(&[5, 7], 2.0, 3);
        let out = SoftmaxCrossEntropy.forward(&logits, &[0, 1, 2, 3, 4]);
        for i in 0..5 {
            let s: f32 = out.grad.data()[i * 7..(i + 1) * 7].iter().sum();
            assert!(s.abs() < 1e-6, "row {i} sums to {s}");
        }
    }

    #[test]
    fn gradient_matches_numeric() {
        let logits = Tensor::randn(&[3, 4], 1.0, 5);
        let labels = [2usize, 0, 3];
        let out = SoftmaxCrossEntropy.forward(&logits, &labels);
        let eps = 1e-3f32;
        for idx in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let fp = SoftmaxCrossEntropy.forward(&lp, &labels).loss;
            let fm = SoftmaxCrossEntropy.forward(&lm, &labels).loss;
            let num = ((fp - fm) / (2.0 * eps as f64)) as f32;
            let ana = out.grad.data()[idx];
            assert!((num - ana).abs() < 1e-3, "idx {idx}: {num} vs {ana}");
        }
    }

    #[test]
    fn top1_counting() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.5, 0.6], &[3, 2]);
        let out = SoftmaxCrossEntropy.forward(&logits, &[0, 1, 0]);
        assert_eq!(out.correct, 2);
    }

    #[test]
    fn numerically_stable_with_huge_logits() {
        let logits = Tensor::from_vec(vec![1e4, -1e4], &[1, 2]);
        let out = SoftmaxCrossEntropy.forward(&logits, &[0]);
        assert!(out.loss.is_finite());
        assert!(out.grad.data().iter().all(|g| g.is_finite()));
    }

    #[test]
    #[should_panic]
    fn label_out_of_range_panics() {
        let _ = SoftmaxCrossEntropy.forward(&Tensor::zeros(&[1, 2]), &[2]);
    }

    #[test]
    fn topk_ranks_correctly() {
        let logits = Tensor::from_vec(
            vec![
                0.9, 0.5, 0.1, 0.0, // label 1 is 2nd
                0.1, 0.2, 0.3, 0.4, // label 0 is 4th
            ],
            &[2, 4],
        );
        assert_eq!(topk_correct(&logits, &[1, 0], 1), 0);
        assert_eq!(topk_correct(&logits, &[1, 0], 2), 1);
        assert_eq!(topk_correct(&logits, &[1, 0], 4), 2);
        // Top-1 agrees with the criterion's own counting.
        let out = SoftmaxCrossEntropy.forward(&logits, &[0, 3]);
        assert_eq!(out.correct, topk_correct(&logits, &[0, 3], 1));
    }

    #[test]
    fn topk_ties_favour_label() {
        let logits = Tensor::from_vec(vec![1.0, 1.0, 0.0], &[1, 3]);
        assert_eq!(topk_correct(&logits, &[1], 1), 1);
    }

    #[test]
    #[should_panic]
    fn topk_zero_panics() {
        let _ = topk_correct(&Tensor::zeros(&[1, 3]), &[0], 0);
    }
}
