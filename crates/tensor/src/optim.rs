//! SGD with momentum and the paper's learning-rate schedule.
//!
//! §5 of the paper: "We followed the warm start learning-rate schedule in
//! [Goyal et al.]. The starting learning rate was fixed at 0.1. This is
//! linearly ramped to `0.1·kn/256`, where k is the batch size per GPU and n
//! is the total number of workers. We use a 90 epoch training regime with
//! the learning rate dropped by a factor of 10 after every 30 epochs."

use crate::layers::Module;

/// Hyper-parameters for SGD (fb.resnet.torch defaults, which the paper uses).
#[derive(Debug, Clone)]
pub struct SgdConfig {
    /// Momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig { momentum: 0.9, weight_decay: 1e-4 }
    }
}

/// Stochastic gradient descent with classical momentum:
/// `v ← μ·v + g + λ·w`, `w ← w − lr·v`.
#[derive(Debug, Clone, Default)]
pub struct Sgd {
    /// Hyper-parameters.
    pub cfg: SgdConfig,
}

impl Sgd {
    /// Optimizer with the given config.
    pub fn new(cfg: SgdConfig) -> Self {
        Sgd { cfg }
    }

    /// Apply one update at learning rate `lr` to every parameter of `m`,
    /// using the gradients currently stored in the parameters.
    pub fn step(&self, m: &mut dyn Module, lr: f32) {
        let mu = self.cfg.momentum;
        let wd = self.cfg.weight_decay;
        m.visit_params(&mut |p| {
            let decay = if p.weight_decay { wd } else { 0.0 };
            let w = p.value.data_mut();
            let g = p.grad.data();
            let v = p.momentum.data_mut();
            for i in 0..w.len() {
                v[i] = mu * v[i] + g[i] + decay * w[i];
                w[i] -= lr * v[i];
            }
        });
    }

    /// Range-restricted step for the sharded optimizer: update only the
    /// elements of the flattened parameter vector ([`crate::layers::collect_grads`]
    /// layout) inside `owned`, reading/writing momentum from the shard-sized
    /// `velocity` buffer (`velocity[k]` is element `owned.start + k`) instead
    /// of the per-parameter momentum tensors — those stay untouched and may
    /// be released entirely. The per-element arithmetic is identical to
    /// [`Sgd::step`], so the owned elements move bit-for-bit the same way.
    pub fn step_range(
        &self,
        m: &mut dyn Module,
        lr: f32,
        owned: std::ops::Range<usize>,
        velocity: &mut [f32],
    ) {
        assert_eq!(velocity.len(), owned.len(), "velocity buffer must be shard-sized");
        let mu = self.cfg.momentum;
        let wd = self.cfg.weight_decay;
        let mut off = 0usize;
        m.visit_params(&mut |p| {
            let n = p.len();
            let lo = owned.start.max(off).min(off + n);
            let hi = owned.end.max(off).min(off + n);
            if lo < hi {
                let decay = if p.weight_decay { wd } else { 0.0 };
                let w = p.value.data_mut();
                let g = p.grad.data();
                let v = &mut velocity[lo - owned.start..hi - owned.start];
                for (k, i) in (lo - off..hi - off).enumerate() {
                    v[k] = mu * v[k] + g[i] + decay * w[i];
                    w[i] -= lr * v[k];
                }
            }
            off += n;
        });
        assert!(
            owned.end <= off,
            "owned range {owned:?} exceeds the {off}-element parameter vector"
        );
    }
}

/// LARS — layer-wise adaptive rate scaling (You et al., whose 512-KNL
/// ResNet-50 run is the paper's Table 2 comparator; LARS is what made their
/// 32k global batch trainable). Each parameter tensor gets a local rate
/// `trust · ‖w‖ / (‖∇‖ + λ‖w‖ + ε)` multiplying the global LR, so layers
/// with small weights aren't blown away by large-batch gradients.
#[derive(Debug, Clone)]
pub struct Lars {
    /// Momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay λ.
    pub weight_decay: f32,
    /// Trust coefficient (You et al. use 0.001–0.01).
    pub trust: f32,
    /// Numerical floor.
    pub eps: f32,
}

impl Default for Lars {
    fn default() -> Self {
        Lars { momentum: 0.9, weight_decay: 1e-4, trust: 0.01, eps: 1e-9 }
    }
}

impl Lars {
    /// Apply one LARS update at global learning rate `lr`.
    pub fn step(&self, m: &mut dyn Module, lr: f32) {
        let (mu, wd, trust, eps) = (self.momentum, self.weight_decay, self.trust, self.eps);
        m.visit_params(&mut |p| {
            let wn = norm(p.value.data());
            let gn = norm(p.grad.data());
            let decay = if p.weight_decay { wd } else { 0.0 };
            let local = if wn > 0.0 && gn > 0.0 {
                trust * wn / (gn + decay * wn + eps)
            } else {
                1.0
            };
            let w = p.value.data_mut();
            let g = p.grad.data();
            let v = p.momentum.data_mut();
            for i in 0..w.len() {
                v[i] = mu * v[i] + local * lr * (g[i] + decay * w[i]);
                w[i] -= v[i];
            }
        });
    }

    /// Range-restricted LARS step, the analog of [`Sgd::step_range`].
    ///
    /// The trust ratio is a *whole-tensor* statistic, so every parameter
    /// tensor overlapping `owned` must carry its full, fully reduced
    /// gradient — under a shard map that cuts through tensors the caller
    /// must align shards to parameter boundaries (or allreduce instead of
    /// reduce-scatter) for the norms to be right. Updates are applied only
    /// to the owned elements, with momentum in the shard-sized `velocity`
    /// buffer.
    pub fn step_range(
        &self,
        m: &mut dyn Module,
        lr: f32,
        owned: std::ops::Range<usize>,
        velocity: &mut [f32],
    ) {
        assert_eq!(velocity.len(), owned.len(), "velocity buffer must be shard-sized");
        let (mu, wd, trust, eps) = (self.momentum, self.weight_decay, self.trust, self.eps);
        let mut off = 0usize;
        m.visit_params(&mut |p| {
            let n = p.len();
            let lo = owned.start.max(off).min(off + n);
            let hi = owned.end.max(off).min(off + n);
            if lo < hi {
                let wn = norm(p.value.data());
                let gn = norm(p.grad.data());
                let decay = if p.weight_decay { wd } else { 0.0 };
                let local = if wn > 0.0 && gn > 0.0 {
                    trust * wn / (gn + decay * wn + eps)
                } else {
                    1.0
                };
                let w = p.value.data_mut();
                let g = p.grad.data();
                let v = &mut velocity[lo - owned.start..hi - owned.start];
                for (k, i) in (lo - off..hi - off).enumerate() {
                    v[k] = mu * v[k] + local * lr * (g[i] + decay * w[i]);
                    w[i] -= v[k];
                }
            }
            off += n;
        });
        assert!(
            owned.end <= off,
            "owned range {owned:?} exceeds the {off}-element parameter vector"
        );
    }
}

fn norm(v: &[f32]) -> f32 {
    v.iter().map(|&x| (x as f64).powi(2)).sum::<f64>().sqrt() as f32
}

/// The paper's learning-rate schedule: linear warmup from `init_lr` to
/// `base_lr` over the first `warmup_epochs`, then a step decay by 10× every
/// `step_epochs`.
#[derive(Debug, Clone)]
pub struct LrSchedule {
    /// LR at epoch 0 (the paper fixes 0.1).
    pub init_lr: f32,
    /// Target LR after warmup: `0.1 · k·n / 256`.
    pub base_lr: f32,
    /// Warmup duration in epochs (5 in Goyal et al.).
    pub warmup_epochs: f32,
    /// Decay period (30 in the paper's 90-epoch regime).
    pub step_epochs: f32,
    /// Decay factor per period (0.1).
    pub decay: f32,
}

impl LrSchedule {
    /// The paper's schedule for `batch_per_gpu` (k) and `workers` (n = nodes
    /// × GPUs/node).
    pub fn paper(batch_per_gpu: usize, workers: usize) -> Self {
        LrSchedule {
            init_lr: 0.1,
            base_lr: 0.1 * (batch_per_gpu * workers) as f32 / 256.0,
            warmup_epochs: 5.0,
            step_epochs: 30.0,
            decay: 0.1,
        }
    }

    /// Learning rate at a (fractional) epoch.
    pub fn lr_at(&self, epoch: f32) -> f32 {
        assert!(epoch >= 0.0);
        if epoch < self.warmup_epochs && self.base_lr != self.init_lr {
            let t = epoch / self.warmup_epochs;
            return self.init_lr + (self.base_lr - self.init_lr) * t;
        }
        let drops = (epoch / self.step_epochs).floor() as i32;
        self.base_lr * self.decay.powi(drops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Module};
    use crate::loss::SoftmaxCrossEntropy;
    use crate::tensor::Tensor;

    #[test]
    fn momentum_accumulates() {
        let mut l = Linear::new(1, 1, 0);
        l.weight.value = Tensor::from_vec(vec![0.0], &[1, 1]);
        l.bias.value = Tensor::from_vec(vec![0.0], &[1]);
        let sgd = Sgd::new(SgdConfig { momentum: 0.9, weight_decay: 0.0 });
        // Constant gradient 1.0 on the weight.
        l.weight.grad = Tensor::from_vec(vec![1.0], &[1, 1]);
        sgd.step(&mut l, 0.1);
        let w1 = l.weight.value.data()[0];
        assert!((w1 + 0.1).abs() < 1e-6); // v=1, w=-0.1
        l.weight.grad = Tensor::from_vec(vec![1.0], &[1, 1]);
        sgd.step(&mut l, 0.1);
        let w2 = l.weight.value.data()[0];
        // v = 0.9·1 + 1 = 1.9, w = -0.1 - 0.19 = -0.29
        assert!((w2 + 0.29).abs() < 1e-6, "w2 {w2}");
    }

    #[test]
    fn weight_decay_pulls_to_zero() {
        let mut l = Linear::new(1, 1, 0);
        l.weight.value = Tensor::from_vec(vec![10.0], &[1, 1]);
        l.bias.value = Tensor::from_vec(vec![0.0], &[1]);
        let sgd = Sgd::new(SgdConfig { momentum: 0.0, weight_decay: 0.1 });
        // zero gradient: only decay acts.
        sgd.step(&mut l, 1.0);
        assert!((l.weight.value.data()[0] - 9.0).abs() < 1e-6);
    }

    #[test]
    fn sgd_reduces_loss_on_toy_problem() {
        let mut l = Linear::new(2, 2, 42);
        let sgd = Sgd::new(SgdConfig::default());
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, -1.0, 0.5], &[4, 2]);
        let labels = [0usize, 1, 1, 0];
        let crit = SoftmaxCrossEntropy;
        let first = crit.forward(&l.forward(&x, true), &labels).loss;
        for _ in 0..200 {
            crate::layers::zero_grads(&mut l);
            let y = l.forward(&x, true);
            let out = crit.forward(&y, &labels);
            let _ = l.backward(&out.grad);
            sgd.step(&mut l, 0.5);
        }
        let last = crit.forward(&l.forward(&x, false), &labels).loss;
        assert!(last < first * 0.2, "loss {first} → {last}");
    }

    #[test]
    fn lars_update_scale_tracks_weight_norm() {
        // With fixed gradients, a layer whose weights are 10× larger gets a
        // ~10× larger update (the defining LARS property); plain SGD gives
        // both the same update.
        let mk = |scale: f32| {
            let mut l = Linear::new(4, 4, 0);
            l.weight.value.scale_(scale / l.weight.value.max_abs().max(1e-9));
            l.weight.grad = Tensor::full(&[4, 4], 0.01);
            l.bias.grad = Tensor::zeros(&[4]);
            let before = l.weight.value.clone();
            Lars { momentum: 0.0, weight_decay: 0.0, ..Lars::default() }.step(&mut l, 1.0);
            let mut delta = before;
            delta.sub_(&l.weight.value);
            delta.max_abs()
        };
        let small = mk(0.1);
        let large = mk(1.0);
        let ratio = large / small;
        assert!((8.0..12.0).contains(&ratio), "update ratio {ratio}");
    }

    #[test]
    fn lars_trains_toy_problem() {
        let mut l = Linear::new(2, 2, 42);
        let lars = Lars::default();
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, -1.0, 0.5], &[4, 2]);
        let labels = [0usize, 1, 1, 0];
        let crit = SoftmaxCrossEntropy;
        let first = crit.forward(&l.forward(&x, true), &labels).loss;
        for _ in 0..300 {
            crate::layers::zero_grads(&mut l);
            let y = l.forward(&x, true);
            let out = crit.forward(&y, &labels);
            let _ = l.backward(&out.grad);
            lars.step(&mut l, 2.0);
        }
        let last = crit.forward(&l.forward(&x, false), &labels).loss;
        assert!(last < first * 0.5, "LARS loss {first} → {last}");
    }

    #[test]
    fn lars_zero_gradient_is_noop_modulo_momentum() {
        let mut l = Linear::new(3, 3, 1);
        l.weight.grad.zero_();
        l.bias.grad.zero_();
        let before = l.weight.value.clone();
        Lars { momentum: 0.0, weight_decay: 0.0, ..Lars::default() }.step(&mut l, 1.0);
        // local rate falls back to 1.0 but gradient is zero → no movement.
        assert_eq!(l.weight.value, before);
    }

    #[test]
    fn step_range_bitwise_matches_full_step() {
        // Two disjoint shard-local steps with external velocity buffers must
        // move the parameters bit-for-bit like one full step with the
        // per-parameter momentum tensors — including across several steps,
        // with a shard boundary cutting through the weight tensor.
        let mut full = Linear::new(3, 4, 7);
        let mut sharded = Linear::new(3, 4, 7); // same seed → identical init
        let total = crate::layers::param_count(&mut full); // 12 + 4
        let cut = 7usize;
        let mut v_lo = vec![0.0f32; cut];
        let mut v_hi = vec![0.0f32; total - cut];
        let sgd = Sgd::new(SgdConfig { momentum: 0.9, weight_decay: 1e-2 });
        for step in 0..4 {
            let grads: Vec<f32> =
                (0..total).map(|i| ((i * 31 + step * 17) as f32).sin()).collect();
            crate::layers::set_grads(&mut full, &grads);
            crate::layers::set_grads(&mut sharded, &grads);
            sgd.step(&mut full, 0.05);
            sgd.step_range(&mut sharded, 0.05, 0..cut, &mut v_lo);
            sgd.step_range(&mut sharded, 0.05, cut..total, &mut v_hi);
        }
        let a = crate::layers::collect_params(&mut full);
        let b = crate::layers::collect_params(&mut sharded);
        for i in 0..total {
            assert_eq!(a[i].to_bits(), b[i].to_bits(), "param {i}");
        }
        // The concatenated shard velocities are the full momentum state.
        let mom = crate::layers::collect_momentum(&mut full);
        let v: Vec<f32> = v_lo.iter().chain(&v_hi).copied().collect();
        for i in 0..total {
            assert_eq!(mom[i].to_bits(), v[i].to_bits(), "velocity {i}");
        }
    }

    #[test]
    fn step_range_touches_only_owned_elements() {
        let mut l = Linear::new(2, 2, 1);
        let total = crate::layers::param_count(&mut l);
        let grads: Vec<f32> = (0..total).map(|i| i as f32 + 1.0).collect();
        crate::layers::set_grads(&mut l, &grads);
        let before = crate::layers::collect_params(&mut l);
        let mut v = vec![0.0f32; 2];
        Sgd::default().step_range(&mut l, 0.1, 2..4, &mut v);
        let after = crate::layers::collect_params(&mut l);
        for i in 0..total {
            if (2..4).contains(&i) {
                assert_ne!(before[i].to_bits(), after[i].to_bits(), "owned {i} must move");
            } else {
                assert_eq!(before[i].to_bits(), after[i].to_bits(), "unowned {i} must not");
            }
        }
    }

    #[test]
    fn lars_step_range_matches_full_step_on_aligned_shards() {
        // Shards aligned to parameter boundaries (weight | bias): whole-
        // tensor trust ratios are computable on both sides, so the sharded
        // LARS walk is bitwise the full one.
        let mut full = Linear::new(3, 4, 11);
        let mut sharded = Linear::new(3, 4, 11); // same seed → identical init
        let total = crate::layers::param_count(&mut full);
        let weight_len = 12usize;
        let mut v_w = vec![0.0f32; weight_len];
        let mut v_b = vec![0.0f32; total - weight_len];
        let lars = Lars::default();
        for step in 0..3 {
            let grads: Vec<f32> =
                (0..total).map(|i| ((i * 13 + step * 5) as f32).cos() * 0.01).collect();
            crate::layers::set_grads(&mut full, &grads);
            crate::layers::set_grads(&mut sharded, &grads);
            lars.step(&mut full, 0.5);
            lars.step_range(&mut sharded, 0.5, 0..weight_len, &mut v_w);
            lars.step_range(&mut sharded, 0.5, weight_len..total, &mut v_b);
        }
        let a = crate::layers::collect_params(&mut full);
        let b = crate::layers::collect_params(&mut sharded);
        for i in 0..total {
            assert_eq!(a[i].to_bits(), b[i].to_bits(), "param {i}");
        }
    }

    #[test]
    fn released_momentum_frees_and_ensure_restores() {
        let mut l = Linear::new(4, 4, 3);
        let total = crate::layers::param_count(&mut l);
        let (p0, o0) = crate::layers::resident_bytes(&mut l);
        assert_eq!(p0, total * 8); // value + grad
        assert_eq!(o0, total * 4); // momentum
        let freed = crate::layers::release_momentum(&mut l);
        assert_eq!(freed, total * 4);
        let (_, o1) = crate::layers::resident_bytes(&mut l);
        assert_eq!(o1, 0);
        crate::layers::ensure_momentum(&mut l);
        let (_, o2) = crate::layers::resident_bytes(&mut l);
        assert_eq!(o2, total * 4);
        crate::layers::set_momentum(&mut l, &vec![1.0f32; total]);
        assert_eq!(crate::layers::collect_momentum(&mut l), vec![1.0f32; total]);
    }

    #[test]
    fn paper_schedule_values() {
        // 256 GPUs × 32 batch/GPU = 8k batch: base LR = 0.1·8192/256 = 3.2.
        let s = LrSchedule::paper(32, 256);
        assert!((s.base_lr - 3.2).abs() < 1e-6);
        assert!((s.lr_at(0.0) - 0.1).abs() < 1e-6);
        // Midway through warmup.
        assert!((s.lr_at(2.5) - (0.1 + (3.2 - 0.1) * 0.5)).abs() < 1e-5);
        // After warmup, before first drop.
        assert!((s.lr_at(10.0) - 3.2).abs() < 1e-6);
        // After each 30-epoch drop.
        assert!((s.lr_at(35.0) - 0.32).abs() < 1e-6);
        assert!((s.lr_at(65.0) - 0.032).abs() < 1e-6);
    }

    #[test]
    fn single_worker_schedule_has_no_warmup_bump() {
        // k·n = 256 → base == init; warmup is flat.
        let s = LrSchedule::paper(64, 4);
        assert!((s.lr_at(0.0) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(3.0) - 0.1).abs() < 1e-7);
    }
}
