//! Dense row-major `f32` tensors.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A dense, row-major, heap-allocated `f32` tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        Tensor { data: vec![0.0; n], shape: shape.to_vec() }
    }

    /// A tensor filled with `v`.
    pub fn full(shape: &[usize], v: f32) -> Self {
        let n: usize = shape.iter().product();
        Tensor { data: vec![v; n], shape: shape.to_vec() }
    }

    /// Wrap existing data.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the shape's element count.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(data.len(), n, "data length {} != shape product {}", data.len(), n);
        Tensor { data, shape: shape.to_vec() }
    }

    /// Standard-normal values scaled by `std`, from a seeded RNG
    /// (Box–Muller; deterministic given the seed).
    pub fn randn(shape: &[usize], std: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.random::<f32>().max(1e-12);
            let u2: f32 = rng.random();
            let r = (-2.0 * u1.ln()).sqrt();
            let t = 2.0 * std::f32::consts::PI * u2;
            data.push(r * t.cos() * std);
            if data.len() < n {
                data.push(r * t.sin() * std);
            }
        }
        Tensor { data, shape: shape.to_vec() }
    }

    /// Uniform values in `[lo, hi)`, from a seeded RNG.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.random_range(lo..hi)).collect();
        Tensor { data, shape: shape.to_vec() }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the underlying vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterpret with a new shape of the same element count.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(self.data.len(), n, "reshape to incompatible size");
        self.shape = shape.to_vec();
        self
    }

    /// Element at a 2-D index (row-major).
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Element at a 4-D index `[n, c, h, w]`.
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 4);
        let (_, cs, hs, ws) = (self.shape[0], self.shape[1], self.shape[2], self.shape[3]);
        self.data[((n * cs + c) * hs + h) * ws + w]
    }

    /// Set element at a 4-D index.
    pub fn set4(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        debug_assert_eq!(self.shape.len(), 4);
        let (_, cs, hs, ws) = (self.shape[0], self.shape[1], self.shape[2], self.shape[3]);
        self.data[((n * cs + c) * hs + h) * ws + w] = v;
    }

    /// Fill with zeros in place.
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// `self += other`, elementwise.
    pub fn add_(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_ shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self -= other`, elementwise.
    pub fn sub_(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "sub_ shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// `self *= k`.
    pub fn scale_(&mut self, k: f32) {
        self.data.iter_mut().for_each(|x| *x *= k);
    }

    /// `self + other` into a new tensor.
    pub fn add(&self, other: &Tensor) -> Tensor {
        let mut out = self.clone();
        out.add_(other);
        out
    }

    /// Apply `f` elementwise into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Maximum absolute element (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// True when every element differs from `other`'s by at most
    /// `atol + rtol·|other|`.
    pub fn allclose(&self, other: &Tensor, rtol: f32, atol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= atol + rtol * b.abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_and_index() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        assert_eq!(t.at2(0, 0), 0.0);
        assert_eq!(t.at2(1, 2), 5.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_wrong_len_panics() {
        let _ = Tensor::from_vec(vec![1.0], &[2, 2]);
    }

    #[test]
    fn four_d_indexing_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3, 4, 5]);
        t.set4(1, 2, 3, 4, 7.5);
        assert_eq!(t.at4(1, 2, 3, 4), 7.5);
        assert_eq!(t.at4(0, 0, 0, 0), 0.0);
        // Row-major: last index is contiguous.
        let idx = ((3 + 2) * 4 + 3) * 5 + 4;
        assert_eq!(t.data()[idx], 7.5);
    }

    #[test]
    fn randn_is_deterministic_and_roughly_normal() {
        let a = Tensor::randn(&[10_000], 1.0, 7);
        let b = Tensor::randn(&[10_000], 1.0, 7);
        assert_eq!(a, b);
        let mean = a.mean();
        let var = a.data().iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
        let c = Tensor::randn(&[16], 1.0, 8);
        assert_ne!(a.data()[..16], *c.data());
    }

    #[test]
    fn randn_std_scales() {
        let a = Tensor::randn(&[1000], 0.1, 3);
        assert!(a.max_abs() < 1.0);
    }

    #[test]
    fn rand_uniform_in_range() {
        let a = Tensor::rand_uniform(&[1000], -2.0, 3.0, 11);
        assert!(a.data().iter().all(|&x| (-2.0..3.0).contains(&x)));
    }

    #[test]
    fn arithmetic_ops() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        a.add_(&b);
        assert_eq!(a.data(), &[4.0, 6.0]);
        a.sub_(&b);
        assert_eq!(a.data(), &[1.0, 2.0]);
        a.scale_(3.0);
        assert_eq!(a.data(), &[3.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[6.0, 10.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -5.0, 2.0], &[3]);
        assert_eq!(t.sum(), -2.0);
        assert!((t.mean() + 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(t.max_abs(), 5.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let r = t.clone().reshape(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn allclose_tolerances() {
        let a = Tensor::from_vec(vec![1.0, 100.0], &[2]);
        let b = Tensor::from_vec(vec![1.0005, 100.04], &[2]);
        assert!(a.allclose(&b, 1e-3, 1e-3));
        assert!(!a.allclose(&b, 1e-6, 1e-6));
        let c = Tensor::zeros(&[3]);
        assert!(!a.allclose(&c, 1.0, 1.0)); // shape mismatch
    }

    #[test]
    fn map_applies() {
        let t = Tensor::from_vec(vec![-1.0, 2.0], &[2]);
        assert_eq!(t.map(|x| x.max(0.0)).data(), &[0.0, 2.0]);
    }
}
