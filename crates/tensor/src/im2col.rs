//! Lowering convolutions to GEMM.
//!
//! `im2col` unrolls every receptive field of one image into a column of a
//! `[C·kh·kw, Hout·Wout]` matrix so convolution becomes `W · col`. `col2im`
//! scatters gradients back, accumulating where receptive fields overlap.

/// Output spatial size of a convolution/pooling dimension.
pub fn out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0);
    assert!(
        input + 2 * pad >= kernel,
        "kernel {kernel} larger than padded input {}",
        input + 2 * pad
    );
    (input + 2 * pad - kernel) / stride + 1
}

/// Unroll one image `x` of shape `[c, h, w]` into `col` of shape
/// `[c·kh·kw, oh·ow]` (row-major, preallocated).
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    x: &[f32],
    col: &mut [f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) {
    let oh = out_dim(h, kh, stride, pad);
    let ow = out_dim(w, kw, stride, pad);
    assert_eq!(x.len(), c * h * w);
    assert_eq!(col.len(), c * kh * kw * oh * ow);
    let mut row = 0usize;
    for ci in 0..c {
        let xc = &x[ci * h * w..(ci + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let dst = &mut col[row * oh * ow..(row + 1) * oh * ow];
                row += 1;
                for oi in 0..oh {
                    let ii = (oi * stride + ki) as isize - pad as isize;
                    let dst_row = &mut dst[oi * ow..(oi + 1) * ow];
                    if ii < 0 || ii >= h as isize {
                        dst_row.iter_mut().for_each(|v| *v = 0.0);
                        continue;
                    }
                    let ii = ii as usize;
                    for (oj, d) in dst_row.iter_mut().enumerate() {
                        let jj = (oj * stride + kj) as isize - pad as isize;
                        *d = if jj < 0 || jj >= w as isize {
                            0.0
                        } else {
                            xc[ii * w + jj as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Scatter-add `col` (shape `[c·kh·kw, oh·ow]`) back into image gradient
/// `dx` of shape `[c, h, w]` (accumulating; caller zeroes `dx` first).
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    col: &[f32],
    dx: &mut [f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) {
    let oh = out_dim(h, kh, stride, pad);
    let ow = out_dim(w, kw, stride, pad);
    assert_eq!(dx.len(), c * h * w);
    assert_eq!(col.len(), c * kh * kw * oh * ow);
    let mut row = 0usize;
    for ci in 0..c {
        let xc = &mut dx[ci * h * w..(ci + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let src = &col[row * oh * ow..(row + 1) * oh * ow];
                row += 1;
                for oi in 0..oh {
                    let ii = (oi * stride + ki) as isize - pad as isize;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    let ii = ii as usize;
                    for oj in 0..ow {
                        let jj = (oj * stride + kj) as isize - pad as isize;
                        if jj >= 0 && jj < w as isize {
                            xc[ii * w + jj as usize] += src[oi * ow + oj];
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_dim_formula() {
        assert_eq!(out_dim(224, 7, 2, 3), 112);
        assert_eq!(out_dim(56, 3, 1, 1), 56);
        assert_eq!(out_dim(56, 1, 1, 0), 56);
        assert_eq!(out_dim(56, 3, 2, 1), 28);
        assert_eq!(out_dim(4, 2, 2, 0), 2);
    }

    #[test]
    #[should_panic]
    fn kernel_too_large_panics() {
        let _ = out_dim(2, 5, 1, 0);
    }

    #[test]
    fn identity_kernel_1x1() {
        // 1×1 / stride 1 / pad 0: col equals the image, row per channel.
        let x: Vec<f32> = (0..2 * 3 * 3).map(|i| i as f32).collect();
        let mut col = vec![0.0; 2 * 9];
        im2col(&x, &mut col, 2, 3, 3, 1, 1, 1, 0);
        assert_eq!(col, x);
    }

    #[test]
    fn known_3x3_patch() {
        // 1 channel, 3×3 image, 3×3 kernel, no pad: one output position; the
        // column is the image itself (in kernel order).
        let x: Vec<f32> = (1..=9).map(|i| i as f32).collect();
        let mut col = vec![0.0; 9];
        im2col(&x, &mut col, 1, 3, 3, 3, 3, 1, 0);
        assert_eq!(col, x);
    }

    #[test]
    fn padding_zeroes_border() {
        let x = vec![1.0; 4]; // 1×2×2
        let oh = out_dim(2, 3, 1, 1); // = 2
        let mut col = vec![f32::NAN; 9 * oh * oh];
        im2col(&x, &mut col, 1, 2, 2, 3, 3, 1, 1);
        assert!(col.iter().all(|v| !v.is_nan()));
        // Row 0 = kernel offset (0,0): output (0,0) reads x[-1,-1] = 0.
        assert_eq!(col[0], 0.0);
        // Row 4 = kernel center: output (0,0) reads x[0,0] = 1.
        assert_eq!(col[4 * 4], 1.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property,
        // which is exactly what the conv backward pass relies on.
        let (c, h, w, kh, kw, stride, pad) = (2, 5, 4, 3, 3, 2, 1);
        let oh = out_dim(h, kh, stride, pad);
        let ow = out_dim(w, kw, stride, pad);
        let x: Vec<f32> = (0..c * h * w).map(|i| (i as f32 * 0.37).sin()).collect();
        let y: Vec<f32> =
            (0..c * kh * kw * oh * ow).map(|i| (i as f32 * 0.11).cos()).collect();
        let mut col = vec![0.0; y.len()];
        im2col(&x, &mut col, c, h, w, kh, kw, stride, pad);
        let lhs: f64 = col.iter().zip(&y).map(|(&a, &b)| (a * b) as f64).sum();
        let mut dx = vec![0.0; x.len()];
        col2im(&y, &mut dx, c, h, w, kh, kw, stride, pad);
        let rhs: f64 = x.iter().zip(&dx).map(|(&a, &b)| (a * b) as f64).sum();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn col2im_accumulates_overlaps() {
        // stride 1, 2×2 kernel on 3×3: center pixel belongs to 4 patches.
        let (c, h, w) = (1, 3, 3);
        let oh = out_dim(h, 2, 1, 0);
        let col = vec![1.0; 4 * oh * oh];
        let mut dx = vec![0.0; 9];
        col2im(&col, &mut dx, c, h, w, 2, 2, 1, 0);
        assert_eq!(dx[4], 4.0); // center
        assert_eq!(dx[0], 1.0); // corner
        assert_eq!(dx[1], 2.0); // edge
    }
}
