//! Blocked, parallel matrix multiplication.
//!
//! Convolutions lower to GEMM (see [`crate::im2col`]); the linear layer and
//! every backward pass do too, so this kernel carries nearly all of the
//! training FLOPs — the CPU analogue of the cuDNN kernels the paper drives.
//! The inner loop is the classic `ikj` ordering (the `j` loop is a unit-
//! stride AXPY, which LLVM vectorizes); rows of `C` are distributed over the
//! rayon pool.

use rayon::prelude::*;

/// Row count below which parallelism costs more than it saves.
const PAR_THRESHOLD: usize = 8;

/// Rows of `C` processed per parallel task (a block of `A` rows stays in L1
/// while a `K_PANEL × n` slice of `B` streams through L2).
const M_BLOCK: usize = 32;

/// Depth of the `k` panel kept hot in cache per pass.
const K_PANEL: usize = 256;

/// `C[m×n] += A[m×k] · B[k×n]` (all row-major), cache-tiled over `(m, k)`
/// and parallel over row blocks.
///
/// # Panics
/// Panics if the slice lengths don't match the dimensions.
pub fn gemm_acc(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // One row block: for each k panel, every row's AXPYs reuse the same
    // panel of B before it is evicted.
    let block = |cb: &mut [f32], ab: &[f32]| {
        let rows = cb.len() / n;
        let mut l0 = 0;
        while l0 < k {
            let l1 = (l0 + K_PANEL).min(k);
            for r in 0..rows {
                let ci = &mut cb[r * n..(r + 1) * n];
                for l in l0..l1 {
                    let av = ab[r * k + l];
                    if av != 0.0 {
                        let brow = &b[l * n..(l + 1) * n];
                        for (cv, &bv) in ci.iter_mut().zip(brow) {
                            *cv += av * bv;
                        }
                    }
                }
            }
            l0 = l1;
        }
    };
    if m >= PAR_THRESHOLD {
        c.par_chunks_mut(M_BLOCK * n)
            .zip(a.par_chunks(M_BLOCK * k))
            .for_each(|(cb, ab)| block(cb, ab));
    } else {
        block(c, a);
    }
}

/// `C[m×n] = A[m×k] · B[k×n]` (overwrites C).
pub fn gemm(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    c.iter_mut().for_each(|x| *x = 0.0);
    gemm_acc(c, a, b, m, k, n);
}

/// `C[m×n] += Aᵀ · B` where `A` is `k×m` row-major (i.e. multiply by the
/// transpose of a stored matrix without materializing it).
pub fn gemm_tn_acc(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "A size (stored k×m)");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // cᵢ += Σ_l A[l,i] · B[l,·]; parallel over output rows.
    let row = |i: usize, ci: &mut [f32]| {
        for l in 0..k {
            let av = a[l * m + i];
            if av != 0.0 {
                let brow = &b[l * n..(l + 1) * n];
                for (cv, &bv) in ci.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
    };
    if m >= PAR_THRESHOLD {
        c.par_chunks_mut(n).enumerate().for_each(|(i, ci)| row(i, ci));
    } else {
        for (i, ci) in c.chunks_mut(n).enumerate() {
            row(i, ci);
        }
    }
}

/// `C[m×n] += A[m×k] · Bᵀ` where `B` is `n×k` row-major.
pub fn gemm_nt_acc(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), n * k, "B size (stored n×k)");
    assert_eq!(c.len(), m * n, "C size");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // c[i,j] += dot(A[i,·], B[j,·]) — both unit stride.
    let row = |ci: &mut [f32], ai: &[f32]| {
        for (j, cv) in ci.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in ai.iter().zip(brow) {
                acc += av * bv;
            }
            *cv += acc;
        }
    };
    if m >= PAR_THRESHOLD {
        c.par_chunks_mut(n)
            .zip(a.par_chunks(k))
            .for_each(|(ci, ai)| row(ci, ai));
    } else {
        for (ci, ai) in c.chunks_mut(n).zip(a.chunks(k)) {
            row(ci, ai);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for l in 0..k {
                    c[i * n + j] += a[i * k + l] * b[l * n + j];
                }
            }
        }
        c
    }

    fn seq(n: usize, scale: f32) -> Vec<f32> {
        (0..n).map(|i| ((i * 7919 % 23) as f32 - 11.0) * scale).collect()
    }

    #[test]
    fn gemm_matches_naive() {
        for (m, k, n) in [(1, 1, 1), (2, 3, 4), (5, 7, 3), (16, 16, 16), (33, 17, 9)] {
            let a = seq(m * k, 0.1);
            let b = seq(k * n, 0.05);
            let want = naive(&a, &b, m, k, n);
            let mut c = vec![0.0; m * n];
            gemm(&mut c, &a, &b, m, k, n);
            for (x, y) in c.iter().zip(&want) {
                assert!((x - y).abs() < 1e-4, "({m},{k},{n})");
            }
        }
    }

    #[test]
    fn gemm_acc_accumulates() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![1.0; 4];
        gemm_acc(&mut c, &a, &b, 2, 2, 2);
        assert_eq!(c, vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn gemm_tn_matches_explicit_transpose() {
        let (m, k, n) = (6, 11, 4);
        let a_t = seq(k * m, 0.1); // stored k×m
        let b = seq(k * n, 0.2);
        // Build the explicit m×k transpose and compare.
        let mut a = vec![0.0; m * k];
        for l in 0..k {
            for i in 0..m {
                a[i * k + l] = a_t[l * m + i];
            }
        }
        let want = naive(&a, &b, m, k, n);
        let mut c = vec![0.0; m * n];
        gemm_tn_acc(&mut c, &a_t, &b, m, k, n);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn gemm_nt_matches_explicit_transpose() {
        let (m, k, n) = (9, 5, 12);
        let a = seq(m * k, 0.1);
        let b_t = seq(n * k, 0.2); // stored n×k
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for l in 0..k {
                b[l * n + j] = b_t[j * k + l];
            }
        }
        let want = naive(&a, &b, m, k, n);
        let mut c = vec![0.0; m * n];
        gemm_nt_acc(&mut c, &a, &b_t, m, k, n);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn degenerate_dims_are_noops() {
        let mut c: Vec<f32> = vec![];
        gemm(&mut c, &[], &[], 0, 5, 0);
        let mut c2 = vec![3.0; 4];
        gemm_acc(&mut c2, &[], &[], 2, 0, 2);
        assert_eq!(c2, vec![3.0; 4]);
    }

    #[test]
    #[should_panic]
    fn size_mismatch_panics() {
        let mut c = vec![0.0; 4];
        gemm(&mut c, &[1.0; 3], &[1.0; 4], 2, 2, 2);
    }

    #[test]
    fn large_parallel_path() {
        let (m, k, n) = (64, 32, 48);
        let a = seq(m * k, 0.01);
        let b = seq(k * n, 0.02);
        let want = naive(&a, &b, m, k, n);
        let mut c = vec![0.0; m * n];
        gemm(&mut c, &a, &b, m, k, n);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn tiling_boundaries_are_exact() {
        // Dimensions straddling M_BLOCK and K_PANEL boundaries.
        for (m, k, n) in [(31, 255, 7), (32, 256, 8), (33, 257, 9), (97, 300, 11)] {
            let a = seq(m * k, 0.01);
            let b = seq(k * n, 0.02);
            let want = naive(&a, &b, m, k, n);
            let mut c = vec![0.0; m * n];
            gemm(&mut c, &a, &b, m, k, n);
            for (i, (x, y)) in c.iter().zip(&want).enumerate() {
                assert!((x - y).abs() < 2e-2 * y.abs().max(1.0), "({m},{k},{n}) at {i}: {x} vs {y}");
            }
        }
    }
}
