#![warn(missing_docs)]
// Index loops over parallel arrays (ranks, channels, coefficient tables) are
// clearer than zipped iterators in this domain.
#![allow(clippy::needless_range_loop)]

//! # dcnn-tensor — CPU tensor and neural-network layers
//!
//! The compute substrate for reproducing *Kumar et al. (CLUSTER 2018)*. The
//! paper trains ResNet-50 and GoogLeNet-BN with cuDNN kernels on P100 GPUs;
//! we do not have those, so this crate implements the same mathematics on
//! the CPU, exactly (forward *and* backward for every layer), with rayon
//! parallelism playing the role of the intra-node accelerator:
//!
//! * [`Tensor`] — dense row-major `f32` tensors with shape tracking.
//! * [`gemm`] — blocked, parallel matrix multiplication (the workhorse:
//!   convolutions lower to GEMM via [`im2col`], as cuDNN's implicit-GEMM
//!   kernels do).
//! * [`layers`] — `Conv2d`, `BatchNorm2d`, `ReLU`, `MaxPool2d`,
//!   `GlobalAvgPool`, `Linear`, each a [`Module`] with a verified backward
//!   pass (numeric gradient checks in the test suite).
//! * [`nn`] — composition: [`nn::Sequential`], [`nn::Residual`] (ResNet skip
//!   connections) and [`nn::Concat`] (GoogLeNet inception branches).
//! * [`loss`] — softmax cross-entropy with gradient.
//! * [`optim`] — SGD with momentum, weight decay and pluggable LR schedules
//!   (including the paper's warm-start linear ramp, §5).
//!
//! Timing of these layers on the paper's hardware is the job of
//! `dcnn-gpusim`; this crate is about the *math* being real so that the
//! accuracy experiments (Figures 13–16) train and converge for real.

pub mod gemm;
pub mod im2col;
pub mod init;
pub mod layers;
pub mod loss;
pub mod nn;
pub mod optim;
pub mod tensor;

pub use layers::{
    AvgPool2d, BatchNorm2d, Conv2d, Dropout, Flatten, GlobalAvgPool, Linear, MaxPool2d, Module,
    Param, ReLU,
};
pub use loss::SoftmaxCrossEntropy;
pub use nn::{Concat, Residual, Sequential};
pub use optim::{Lars, LrSchedule, Sgd, SgdConfig};
pub use tensor::Tensor;
