//! Weight initialization (He/Kaiming and Xavier), seeded for determinism.
//!
//! Algorithm 1 of the paper requires the model weights to be "initialized
//! with identical random values on all GPUs" — every worker seeds the same
//! generator, so determinism here is load-bearing for the distributed
//! trainer, not just for tests.

use crate::tensor::Tensor;

/// He (Kaiming) normal initialization for a conv weight
/// `[out_c, in_c, kh, kw]`: std = sqrt(2 / fan_in).
pub fn he_conv(out_c: usize, in_c: usize, kh: usize, kw: usize, seed: u64) -> Tensor {
    let fan_in = (in_c * kh * kw) as f32;
    let std = (2.0 / fan_in).sqrt();
    Tensor::randn(&[out_c, in_c, kh, kw], std, seed)
}

/// Xavier (Glorot) normal initialization for a linear weight `[out, in]`.
pub fn xavier_linear(out_f: usize, in_f: usize, seed: u64) -> Tensor {
    let std = (2.0 / (out_f + in_f) as f32).sqrt();
    Tensor::randn(&[out_f, in_f], std, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_scale_tracks_fan_in() {
        let w_small = he_conv(8, 4, 3, 3, 1);
        let w_big = he_conv(8, 256, 3, 3, 1);
        let rms = |t: &Tensor| {
            (t.data().iter().map(|&x| (x as f64).powi(2)).sum::<f64>() / t.len() as f64).sqrt()
        };
        let expect_small = (2.0f64 / (4.0 * 9.0)).sqrt();
        let expect_big = (2.0f64 / (256.0 * 9.0)).sqrt();
        assert!((rms(&w_small) / expect_small - 1.0).abs() < 0.1);
        assert!((rms(&w_big) / expect_big - 1.0).abs() < 0.1);
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(he_conv(4, 4, 3, 3, 99), he_conv(4, 4, 3, 3, 99));
        assert_ne!(he_conv(4, 4, 3, 3, 99), he_conv(4, 4, 3, 3, 100));
        assert_eq!(xavier_linear(10, 20, 5), xavier_linear(10, 20, 5));
    }

    #[test]
    fn shapes() {
        assert_eq!(he_conv(64, 3, 7, 7, 0).shape(), &[64, 3, 7, 7]);
        assert_eq!(xavier_linear(1000, 2048, 0).shape(), &[1000, 2048]);
    }
}
