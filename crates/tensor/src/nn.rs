//! Module composition: sequential chains, residual blocks (ResNet) and
//! channel-concatenated parallel branches (GoogLeNet inception modules).

use crate::layers::{param_count, Module, Param};
use crate::tensor::Tensor;

/// A chain of modules applied in order.
#[derive(Default)]
pub struct Sequential {
    mods: Vec<Box<dyn Module>>,
}

impl Sequential {
    /// Empty chain.
    pub fn new() -> Self {
        Sequential { mods: Vec::new() }
    }

    /// Append a module (builder style).
    pub fn push(mut self, m: impl Module + 'static) -> Self {
        self.mods.push(Box::new(m));
        self
    }

    /// Append a boxed module.
    pub fn push_boxed(mut self, m: Box<dyn Module>) -> Self {
        self.mods.push(m);
        self
    }

    /// Number of modules in the chain.
    pub fn len(&self) -> usize {
        self.mods.len()
    }

    /// Whether the chain is empty (acts as identity).
    pub fn is_empty(&self) -> bool {
        self.mods.is_empty()
    }
}

impl Module for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        for m in &mut self.mods {
            cur = m.forward(&cur, train);
        }
        cur
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        self.backward_hooked(grad, 0, &mut |_, _| {})
    }

    fn backward_hooked(
        &mut self,
        grad: &Tensor,
        base: usize,
        hook: &mut dyn FnMut(usize, &[f32]),
    ) -> Tensor {
        // Child base offsets follow visit_params order (forward order);
        // backward then walks the chain in reverse, so the last child's
        // parameters are reported first.
        let mut bases = Vec::with_capacity(self.mods.len());
        let mut off = base;
        for m in &mut self.mods {
            bases.push(off);
            off += param_count(m.as_mut());
        }
        let mut cur = grad.clone();
        for (m, b) in self.mods.iter_mut().zip(bases).rev() {
            cur = m.backward_hooked(&cur, b, hook);
        }
        cur
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for m in &mut self.mods {
            m.visit_params(f);
        }
    }

    fn visit_params_named(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        for (i, m) in self.mods.iter_mut().enumerate() {
            m.visit_params_named(&format!("{prefix}{i}."), f);
        }
    }
}

/// A ResNet-style residual block: `y = ReLU(main(x) + shortcut(x))`, where an
/// empty shortcut is the identity.
pub struct Residual {
    main: Sequential,
    shortcut: Sequential,
    relu_mask: Option<Vec<bool>>,
}

impl Residual {
    /// Identity-shortcut residual block.
    pub fn new(main: Sequential) -> Self {
        Residual { main, shortcut: Sequential::new(), relu_mask: None }
    }

    /// Residual block with a projection shortcut (used when the main path
    /// changes shape, e.g. the strided 1×1 downsample convs of ResNet-50).
    pub fn with_shortcut(main: Sequential, shortcut: Sequential) -> Self {
        Residual { main, shortcut, relu_mask: None }
    }
}

impl Module for Residual {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let main_out = self.main.forward(x, train);
        let short_out = if self.shortcut.is_empty() {
            x.clone()
        } else {
            self.shortcut.forward(x, train)
        };
        assert_eq!(
            main_out.shape(),
            short_out.shape(),
            "residual branch shapes must match"
        );
        let mut y = main_out;
        y.add_(&short_out);
        if train {
            self.relu_mask = Some(y.data().iter().map(|&v| v > 0.0).collect());
        }
        y.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        self.backward_hooked(grad, 0, &mut |_, _| {})
    }

    fn backward_hooked(
        &mut self,
        grad: &Tensor,
        base: usize,
        hook: &mut dyn FnMut(usize, &[f32]),
    ) -> Tensor {
        let mask = self.relu_mask.take().expect("forward(train=true) before backward");
        let gated = Tensor::from_vec(
            grad.data()
                .iter()
                .zip(&mask)
                .map(|(&g, &m)| if m { g } else { 0.0 })
                .collect(),
            grad.shape(),
        );
        // visit_params order is main then shortcut, so the shortcut's
        // parameters live after the main path's in the flat layout.
        let main_len = param_count(&mut self.main);
        let mut dx = self.main.backward_hooked(&gated, base, hook);
        if self.shortcut.is_empty() {
            dx.add_(&gated);
        } else {
            dx.add_(&self.shortcut.backward_hooked(&gated, base + main_len, hook));
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.main.visit_params(f);
        self.shortcut.visit_params(f);
    }

    fn visit_params_named(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        self.main.visit_params_named(&format!("{prefix}main."), f);
        self.shortcut.visit_params_named(&format!("{prefix}shortcut."), f);
    }
}

/// Parallel branches whose `[N, C_b, H, W]` outputs are concatenated along
/// the channel axis — the inception module topology of GoogLeNet.
pub struct Concat {
    branches: Vec<Sequential>,
    saved_channels: Option<Vec<usize>>,
}

impl Concat {
    /// Concatenate the outputs of `branches` (all fed the same input).
    pub fn new(branches: Vec<Sequential>) -> Self {
        assert!(!branches.is_empty(), "Concat needs at least one branch");
        Concat { branches, saved_channels: None }
    }
}

impl Module for Concat {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let outs: Vec<Tensor> =
            self.branches.iter_mut().map(|b| b.forward(x, train)).collect();
        let (n, h, w) = (outs[0].shape()[0], outs[0].shape()[2], outs[0].shape()[3]);
        for o in &outs {
            assert_eq!(o.shape()[0], n);
            assert_eq!(o.shape()[2], h, "branch spatial sizes must match");
            assert_eq!(o.shape()[3], w, "branch spatial sizes must match");
        }
        let channels: Vec<usize> = outs.iter().map(|o| o.shape()[1]).collect();
        let c_total: usize = channels.iter().sum();
        let mut y = Tensor::zeros(&[n, c_total, h, w]);
        let plane = h * w;
        for ni in 0..n {
            let mut c_off = 0;
            for (o, &cb) in outs.iter().zip(&channels) {
                let src = &o.data()[ni * cb * plane..(ni + 1) * cb * plane];
                let dst_start = (ni * c_total + c_off) * plane;
                y.data_mut()[dst_start..dst_start + cb * plane].copy_from_slice(src);
                c_off += cb;
            }
        }
        if train {
            self.saved_channels = Some(channels);
        }
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        self.backward_hooked(grad, 0, &mut |_, _| {})
    }

    fn backward_hooked(
        &mut self,
        grad: &Tensor,
        base: usize,
        hook: &mut dyn FnMut(usize, &[f32]),
    ) -> Tensor {
        let channels = self.saved_channels.take().expect("forward(train=true) before backward");
        let (n, c_total, h, w) =
            (grad.shape()[0], grad.shape()[1], grad.shape()[2], grad.shape()[3]);
        assert_eq!(c_total, channels.iter().sum::<usize>());
        // Branch base offsets in visit_params order (branch order).
        let mut bases = Vec::with_capacity(self.branches.len());
        let mut off = base;
        for b in &mut self.branches {
            bases.push(off);
            off += param_count(b);
        }
        let plane = h * w;
        let mut dx: Option<Tensor> = None;
        let mut c_off = 0;
        for ((b, &cb), bb) in self.branches.iter_mut().zip(&channels).zip(bases) {
            let mut gb = Tensor::zeros(&[n, cb, h, w]);
            for ni in 0..n {
                let src_start = (ni * c_total + c_off) * plane;
                let dst = &mut gb.data_mut()[ni * cb * plane..(ni + 1) * cb * plane];
                dst.copy_from_slice(&grad.data()[src_start..src_start + cb * plane]);
            }
            let gi = b.backward_hooked(&gb, bb, hook);
            match &mut dx {
                None => dx = Some(gi),
                Some(acc) => acc.add_(&gi),
            }
            c_off += cb;
        }
        dx.expect("at least one branch")
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for b in &mut self.branches {
            b.visit_params(f);
        }
    }

    fn visit_params_named(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
        for (i, b) in self.branches.iter_mut().enumerate() {
            b.visit_params_named(&format!("{prefix}b{i}."), f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{param_count, param_segments, Conv2d, Linear, ReLU};

    #[test]
    fn sequential_chains_and_backprops() {
        let mut s = Sequential::new().push(Linear::new(4, 8, 1)).push(ReLU::new()).push(Linear::new(8, 2, 2));
        let x = Tensor::randn(&[3, 4], 1.0, 3);
        let y = s.forward(&x, true);
        assert_eq!(y.shape(), &[3, 2]);
        let dx = s.backward(&Tensor::full(&[3, 2], 1.0));
        assert_eq!(dx.shape(), &[3, 4]);
        let mut count = 0;
        s.visit_params(&mut |p| count += p.len());
        assert_eq!(count, 4 * 8 + 8 + 8 * 2 + 2);
    }

    #[test]
    fn empty_sequential_is_identity() {
        let mut s = Sequential::new();
        let x = Tensor::randn(&[2, 3], 1.0, 0);
        assert_eq!(s.forward(&x, true), x);
        assert_eq!(s.backward(&x), x);
    }

    #[test]
    fn identity_residual_doubles_signal() {
        // main path = empty too: y = relu(x + x) = relu(2x).
        let mut r = Residual::new(Sequential::new());
        let x = Tensor::from_vec(vec![1.0, -1.0], &[1, 1, 1, 2]);
        let y = r.forward(&x, true);
        assert_eq!(y.data(), &[2.0, 0.0]);
        let dx = r.backward(&Tensor::full(&[1, 1, 1, 2], 1.0));
        // Both paths pass the gradient where relu was active.
        assert_eq!(dx.data(), &[2.0, 0.0]);
    }

    #[test]
    fn residual_with_projection_shortcut() {
        let main = Sequential::new().push(Conv2d::new(2, 4, 3, 2, 1, false, 1));
        let shortcut = Sequential::new().push(Conv2d::new(2, 4, 1, 2, 0, false, 2));
        let mut r = Residual::with_shortcut(main, shortcut);
        let x = Tensor::randn(&[2, 2, 8, 8], 1.0, 5);
        let y = r.forward(&x, true);
        assert_eq!(y.shape(), &[2, 4, 4, 4]);
        let dx = r.backward(&Tensor::full(&[2, 4, 4, 4], 0.1));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    #[should_panic]
    fn residual_shape_mismatch_panics() {
        let main = Sequential::new().push(Conv2d::new(2, 4, 3, 2, 1, false, 1));
        let mut r = Residual::new(main); // identity shortcut has wrong shape
        let x = Tensor::randn(&[1, 2, 8, 8], 1.0, 5);
        let _ = r.forward(&x, true);
    }

    #[test]
    fn concat_stacks_channels() {
        let b1 = Sequential::new().push(Conv2d::new(1, 2, 1, 1, 0, false, 1));
        let b2 = Sequential::new().push(Conv2d::new(1, 3, 1, 1, 0, false, 2));
        let mut c = Concat::new(vec![b1, b2]);
        let x = Tensor::randn(&[2, 1, 4, 4], 1.0, 3);
        let y = c.forward(&x, true);
        assert_eq!(y.shape(), &[2, 5, 4, 4]);
        let dx = c.backward(&Tensor::full(&[2, 5, 4, 4], 1.0));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn concat_forward_layout() {
        // Identity-ish branches: check channel placement by value.
        let mut w1 = Conv2d::new(1, 1, 1, 1, 0, false, 0);
        w1.weight.value = Tensor::from_vec(vec![2.0], &[1, 1, 1, 1]);
        let mut w2 = Conv2d::new(1, 1, 1, 1, 0, false, 0);
        w2.weight.value = Tensor::from_vec(vec![3.0], &[1, 1, 1, 1]);
        let mut c = Concat::new(vec![
            Sequential::new().push(w1),
            Sequential::new().push(w2),
        ]);
        let x = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[2, 1, 1, 2]);
        let y = c.forward(&x, false);
        assert_eq!(y.shape(), &[2, 2, 1, 2]);
        assert_eq!(y.data(), &[2.0, 2.0, 3.0, 3.0, 2.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn segments_tile_flat_layout_with_unique_names() {
        use crate::layers::BatchNorm2d;
        let main = Sequential::new()
            .push(Conv2d::new(2, 2, 3, 1, 1, false, 1))
            .push(BatchNorm2d::new(2))
            .push(ReLU::new());
        let mut m = Sequential::new()
            .push(Conv2d::new(2, 2, 1, 1, 0, true, 0))
            .push(Residual::new(main))
            .push(Concat::new(vec![
                Sequential::new().push(Conv2d::new(2, 1, 1, 1, 0, false, 2)),
                Sequential::new().push(Conv2d::new(2, 3, 1, 1, 0, false, 3)),
            ]));
        let segs = param_segments(&mut m);
        // Contiguous tiling of [0, param_count): each segment starts where
        // the previous ended, in visit_params order.
        let total = param_count(&mut m);
        let mut off = 0;
        for s in &segs {
            assert_eq!(s.offset, off, "segment {} not contiguous", s.name);
            assert!(s.len > 0);
            assert_eq!(s.range(), s.offset..s.offset + s.len);
            off += s.len;
        }
        assert_eq!(off, total);
        let names: std::collections::HashSet<&str> =
            segs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), segs.len(), "duplicate segment names");
        // Structural prefixes: chain index, residual main path, concat branch.
        assert!(names.contains("0.weight"), "{names:?}");
        assert!(names.contains("0.bias"), "{names:?}");
        assert!(names.contains("1.main.0.weight"), "{names:?}");
        assert!(names.contains("1.main.1.gamma"), "{names:?}");
        assert!(names.contains("1.main.1.beta"), "{names:?}");
        assert!(names.contains("2.b0.0.weight"), "{names:?}");
        assert!(names.contains("2.b1.0.weight"), "{names:?}");
    }

    #[test]
    fn segment_order_matches_visit_params() {
        let mut m = Sequential::new()
            .push(Linear::new(4, 8, 1))
            .push(ReLU::new())
            .push(Linear::new(8, 2, 2));
        let segs = param_segments(&mut m);
        let mut lens = Vec::new();
        m.visit_params(&mut |p| lens.push(p.len()));
        assert_eq!(segs.len(), lens.len());
        for (s, l) in segs.iter().zip(&lens) {
            assert_eq!(s.len, *l);
        }
        assert_eq!(
            segs.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            ["0.weight", "0.bias", "2.weight", "2.bias"]
        );
    }

    #[test]
    fn backward_hooked_tiles_params_and_matches_collect_grads() {
        use crate::layers::{collect_grads, BatchNorm2d};
        let build = || {
            let main = Sequential::new()
                .push(Conv2d::new(2, 2, 3, 1, 1, false, 1))
                .push(BatchNorm2d::new(2))
                .push(ReLU::new());
            Sequential::new()
                .push(Conv2d::new(2, 2, 1, 1, 0, true, 0))
                .push(Residual::new(main))
                .push(Concat::new(vec![
                    Sequential::new().push(Conv2d::new(2, 1, 1, 1, 0, false, 2)),
                    Sequential::new().push(Conv2d::new(2, 3, 1, 1, 0, false, 3)),
                ]))
        };
        let x = Tensor::randn(&[2, 2, 4, 4], 1.0, 7);
        let g = Tensor::full(&[2, 4, 4, 4], 0.5);

        let mut plain = build();
        let _ = plain.forward(&x, true);
        let dx_plain = plain.backward(&g);
        let flat_plain = collect_grads(&mut plain);

        let mut hooked = build();
        let _ = hooked.forward(&x, true);
        let mut fired: Vec<(usize, Vec<f32>)> = Vec::new();
        let dx_hooked =
            hooked.backward_hooked(&g, 0, &mut |off, data| fired.push((off, data.to_vec())));
        assert_eq!(dx_plain.data(), dx_hooked.data(), "hooked backward changed dx");

        // The fired ranges tile [0, param_count) exactly once.
        let total = param_count(&mut hooked);
        let mut ranges: Vec<(usize, usize)> =
            fired.iter().map(|(off, d)| (*off, d.len())).collect();
        ranges.sort_unstable();
        let mut off = 0;
        for &(start, len) in &ranges {
            assert_eq!(start, off, "hook ranges must tile the flat layout");
            assert!(len > 0);
            off += len;
        }
        assert_eq!(off, total);

        // Every range's values equal the final flattened gradient bitwise:
        // a fired range is complete, no later backward step touches it.
        for (start, data) in &fired {
            for (i, (a, b)) in data.iter().zip(&flat_plain[*start..]).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "grad mismatch at flat[{}]",
                    start + i
                );
            }
        }

        // The chain's last child reports before its first (reverse order).
        assert!(fired[0].0 > fired[fired.len() - 1].0, "backward reports tail layers first");
    }

    #[test]
    fn default_backward_hooked_reports_leaf_once() {
        let mut lin = Linear::new(4, 2, 9);
        let x = Tensor::randn(&[3, 4], 1.0, 1);
        let _ = lin.forward(&x, true);
        let mut fired = Vec::new();
        let _ = lin.backward_hooked(
            &Tensor::full(&[3, 2], 1.0),
            100,
            &mut |off, data| fired.push((off, data.len())),
        );
        assert_eq!(fired.len(), 1, "a leaf reports all its params as one range");
        assert_eq!(fired[0], (100, param_count(&mut lin)));
    }

    #[test]
    fn concat_backward_sums_branch_input_grads() {
        // Both branches identity convs with weight 1: dx = g1 + g2.
        let mk = || {
            let mut w = Conv2d::new(1, 1, 1, 1, 0, false, 0);
            w.weight.value = Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]);
            Sequential::new().push(w)
        };
        let mut c = Concat::new(vec![mk(), mk()]);
        let x = Tensor::full(&[1, 1, 2, 2], 1.0);
        let _ = c.forward(&x, true);
        let g = Tensor::full(&[1, 2, 2, 2], 1.0);
        let dx = c.backward(&g);
        assert_eq!(dx.data(), &[2.0, 2.0, 2.0, 2.0]);
    }
}
