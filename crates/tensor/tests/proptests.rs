//! Property-based tests for the tensor/NN substrate.

use dcnn_tensor::gemm::{gemm, gemm_acc, gemm_nt_acc, gemm_tn_acc};
use dcnn_tensor::im2col::{col2im, im2col, out_dim};
use dcnn_tensor::layers::{Conv2d, GlobalAvgPool, Linear, MaxPool2d, Module, ReLU};
use dcnn_tensor::loss::SoftmaxCrossEntropy;
use dcnn_tensor::Tensor;
use proptest::prelude::*;

fn vecf(n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 2000) as f32 - 1000.0) / 500.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// GEMM distributes over addition: (A+A')B == AB + A'B.
    #[test]
    fn gemm_linear_in_a(m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..1000) {
        let a1 = vecf(m * k, seed);
        let a2 = vecf(m * k, seed + 1);
        let b = vecf(k * n, seed + 2);
        let sum_a: Vec<f32> = a1.iter().zip(&a2).map(|(x, y)| x + y).collect();
        let mut c_sum = vec![0.0; m * n];
        gemm(&mut c_sum, &sum_a, &b, m, k, n);
        let mut c_sep = vec![0.0; m * n];
        gemm_acc(&mut c_sep, &a1, &b, m, k, n);
        gemm_acc(&mut c_sep, &a2, &b, m, k, n);
        for (x, y) in c_sum.iter().zip(&c_sep) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// (Aᵀ)ᵀ = A: gemm_tn on a transposed layout equals plain gemm.
    #[test]
    fn gemm_tn_consistent(m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in 0u64..1000) {
        let a = vecf(m * k, seed); // m×k
        let b = vecf(k * n, seed + 7);
        // Store explicit transpose (k×m) and multiply back.
        let mut a_t = vec![0.0; k * m];
        for i in 0..m {
            for l in 0..k {
                a_t[l * m + i] = a[i * k + l];
            }
        }
        let mut c1 = vec![0.0; m * n];
        gemm(&mut c1, &a, &b, m, k, n);
        let mut c2 = vec![0.0; m * n];
        gemm_tn_acc(&mut c2, &a_t, &b, m, k, n);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// gemm_nt against explicit transpose.
    #[test]
    fn gemm_nt_consistent(m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in 0u64..1000) {
        let a = vecf(m * k, seed);
        let b_t = vecf(n * k, seed + 3); // n×k
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for l in 0..k {
                b[l * n + j] = b_t[j * k + l];
            }
        }
        let mut c1 = vec![0.0; m * n];
        gemm(&mut c1, &a, &b, m, k, n);
        let mut c2 = vec![0.0; m * n];
        gemm_nt_acc(&mut c2, &a, &b_t, m, k, n);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// im2col/col2im adjointness for arbitrary geometry.
    #[test]
    fn im2col_adjoint(c in 1usize..3, h in 3usize..10, w in 3usize..10,
                      k in 1usize..4, stride in 1usize..3, pad in 0usize..2, seed in 0u64..500) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let oh = out_dim(h, k, stride, pad);
        let ow = out_dim(w, k, stride, pad);
        let x = vecf(c * h * w, seed);
        let y = vecf(c * k * k * oh * ow, seed + 1);
        let mut col = vec![0.0; y.len()];
        im2col(&x, &mut col, c, h, w, k, k, stride, pad);
        let lhs: f64 = col.iter().zip(&y).map(|(&a, &b)| (a * b) as f64).sum();
        let mut dx = vec![0.0; x.len()];
        col2im(&y, &mut dx, c, h, w, k, k, stride, pad);
        let rhs: f64 = x.iter().zip(&dx).map(|(&a, &b)| (a * b) as f64).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    /// Conv2d backward is the adjoint of forward in its input
    /// (⟨conv(x), g⟩ = ⟨x, convᵀ(g)⟩ when weight grads are ignored).
    #[test]
    fn conv_input_adjoint(seed in 0u64..200, stride in 1usize..3, pad in 0usize..2) {
        let mut conv = Conv2d::new(2, 3, 3, stride, pad, false, seed);
        let x = Tensor::from_vec(vecf(2 * 2 * 7 * 6, seed + 1), &[2, 2, 7, 6]);
        let y = conv.forward(&x, true);
        let g = Tensor::from_vec(vecf(y.len(), seed + 2), y.shape());
        let dx = conv.backward(&g);
        let lhs: f64 = y.data().iter().zip(g.data()).map(|(&a, &b)| (a * b) as f64).sum();
        let rhs: f64 = x.data().iter().zip(dx.data()).map(|(&a, &b)| (a * b) as f64).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    /// ReLU backward never increases gradient magnitude.
    #[test]
    fn relu_gradient_contraction(n in 1usize..100, seed in 0u64..1000) {
        let mut r = ReLU::new();
        let x = Tensor::from_vec(vecf(n, seed), &[n]);
        let _ = r.forward(&x, true);
        let g = Tensor::from_vec(vecf(n, seed + 1), &[n]);
        let dx = r.backward(&g);
        for (a, b) in dx.data().iter().zip(g.data()) {
            prop_assert!(a.abs() <= b.abs() + 1e-9);
        }
    }

    /// MaxPool forward outputs are always one of the window inputs, and the
    /// backward routes every gradient unit somewhere (sum preserved).
    #[test]
    fn maxpool_sum_preserved(h in 2usize..9, w in 2usize..9, seed in 0u64..500) {
        let mut p = MaxPool2d::new(2, 2, 0);
        let x = Tensor::from_vec(vecf(h * w, seed), &[1, 1, h, w]);
        let y = p.forward(&x, true);
        let g = Tensor::full(y.shape(), 1.0);
        let dx = p.backward(&g);
        let total: f32 = dx.data().iter().sum();
        prop_assert!((total - y.len() as f32).abs() < 1e-4);
    }

    /// GlobalAvgPool preserves the mean through the backward pass.
    #[test]
    fn gap_backward_spreads_evenly(c in 1usize..4, hw in 1usize..6, seed in 0u64..500) {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::from_vec(vecf(c * hw * hw, seed), &[1, c, hw, hw]);
        let _ = p.forward(&x, true);
        let g = Tensor::from_vec(vecf(c, seed + 1), &[1, c]);
        let dx = p.backward(&g);
        let gsum: f32 = g.data().iter().sum();
        let dsum: f32 = dx.data().iter().sum();
        prop_assert!((gsum - dsum).abs() < 1e-4 * gsum.abs().max(1.0));
    }

    /// Softmax-XE loss is non-negative, and ≤ ln K + margin for bounded logits.
    #[test]
    fn softmax_loss_bounds(n in 1usize..8, k in 2usize..10, seed in 0u64..1000) {
        let logits = Tensor::from_vec(vecf(n * k, seed), &[n, k]);
        let labels: Vec<usize> = (0..n).map(|i| i % k).collect();
        let out = SoftmaxCrossEntropy.forward(&logits, &labels);
        prop_assert!(out.loss >= 0.0);
        // logits bounded in [-2, 2] → loss ≤ ln K + 4.
        prop_assert!(out.loss <= (k as f64).ln() + 4.0);
        prop_assert!(out.correct <= n);
    }

    /// Linear layer: forward of a sum equals sum of forwards (linearity,
    /// bias cancels in the difference).
    #[test]
    fn linear_is_linear(inf in 1usize..10, outf in 1usize..10, seed in 0u64..500) {
        let mut l = Linear::new(inf, outf, seed);
        let x1 = Tensor::from_vec(vecf(inf, seed + 1), &[1, inf]);
        let x2 = Tensor::from_vec(vecf(inf, seed + 2), &[1, inf]);
        let y1 = l.forward(&x1, false);
        let y2 = l.forward(&x2, false);
        let xs = x1.add(&x2);
        let ys = l.forward(&xs, false);
        // y(x1+x2) + b == y(x1) + y(x2)  →  ys - y1 - y2 + b == 0; check
        // via the identity ys + y(0) == y1 + y2.
        let y0 = l.forward(&Tensor::zeros(&[1, inf]), false);
        for i in 0..outf {
            let lhs = ys.data()[i] + y0.data()[i];
            let rhs = y1.data()[i] + y2.data()[i];
            prop_assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
        }
    }
}
