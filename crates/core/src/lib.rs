#![warn(missing_docs)]

//! # dcnn-core — facade and experiment runners
//!
//! Re-exports the whole `dist-cnn` stack and provides one runner per table
//! and figure of *Kumar et al., CLUSTER 2018*. Each runner returns typed,
//! serializable rows; the `repro` binary (in `dcnn-bench`) prints them next
//! to the paper's reported values.
//!
//! | Experiment | Runner | Paper content |
//! |---|---|---|
//! | Figure 5 | [`experiments::fig5`] | Allreduce throughput vs message size |
//! | Figure 6 | [`experiments::fig6`] | Epoch time per allreduce algorithm |
//! | Figure 7 | [`experiments::fig7`] | ImageNet-22k shuffle time & memory |
//! | Figure 8 | [`experiments::fig8`] | ImageNet-1k shuffle time & memory |
//! | Figure 9 | [`experiments::fig9`] | Group-based shuffle |
//! | Figure 10 | [`experiments::fig10`] | Epoch time ± DIMD (ImageNet-1k) |
//! | Figure 11 | [`experiments::fig11`] | Epoch time ± DIMD (ImageNet-22k) |
//! | Figure 12 | [`experiments::fig12`] | Epoch time ± DPT optimizations |
//! | Figures 13/15 | [`experiments::fig13_15`] | ResNet-50 accuracy & error vs time |
//! | Figures 14/16 | [`experiments::fig14_16`] | GoogLeNet-BN accuracy & error vs time |
//! | Table 1 | [`experiments::table1`] | Total improvement summary |
//! | Table 2 | [`experiments::table2`] | State-of-the-art comparison |

pub mod constants;
pub mod experiments;
pub mod report;

pub use constants::PaperConstants;

pub use dcnn_collectives as collectives;
pub use dcnn_dimd as dimd;
pub use dcnn_dpt as dpt;
pub use dcnn_gpusim as gpusim;
pub use dcnn_models as models;
pub use dcnn_simnet as simnet;
pub use dcnn_tensor as tensor;
pub use dcnn_trainer as trainer;
