//! Constants quoted by the paper, used to anchor the experiments.

/// Values stated in the paper's text, kept in one place so every experiment
/// and report cites the same numbers.
#[derive(Debug, Clone)]
pub struct PaperConstants;

impl PaperConstants {
    /// GoogLeNet-BN gradient payload (§5.1: "a reduction payload of 93MB").
    pub const GOOGLENET_PAYLOAD_BYTES: f64 = 93e6;
    /// ResNet-50 gradient payload (25.56 M params × 4 B).
    pub const RESNET50_PAYLOAD_BYTES: f64 = 102e6;
    /// Batch per GPU for most experiments (§5).
    pub const BATCH_PER_GPU: usize = 64;
    /// Batch per GPU for the 256-GPU record run (§5.5).
    pub const BATCH_PER_GPU_RECORD: usize = 32;
    /// Node counts evaluated throughout §5.
    pub const NODE_COUNTS: [usize; 3] = [8, 16, 32];
    /// GPUs per Minsky node.
    pub const GPUS_PER_NODE: usize = 4;
    /// Epochs of the training regime.
    pub const EPOCHS: usize = 90;

    /// Table 1 reference rows: (model, nodes, open-source s/epoch,
    /// optimized s/epoch, accuracy %).
    pub const TABLE1: [(&'static str, usize, f64, f64, f64); 6] = [
        ("googlenet-bn", 8, 249.0, 155.0, 74.86),
        ("googlenet-bn", 16, 131.0, 76.0, 74.36),
        ("googlenet-bn", 32, 65.0, 41.0, 74.19),
        ("resnet50", 8, 498.0, 224.0, 75.99),
        ("resnet50", 16, 251.0, 109.0, 75.78),
        ("resnet50", 32, 128.0, 58.0, 75.56),
    ];

    /// Table 2 reference rows: (description, hardware, epochs, global batch,
    /// accuracy %, minutes).
    pub const TABLE2: [(&'static str, &'static str, usize, usize, f64, f64); 3] = [
        ("Priya et al [27]", "256 P100", 90, 8192, 76.2, 65.0),
        ("You et al [35]", "512 KNL", 90, 32768, 74.7, 60.0),
        ("Our work", "256 P100", 90, 8192, 75.4, 48.0),
    ];

    /// §5.2: ImageNet-22k full shuffle among 32 learners: "just 4.2 seconds".
    pub const SHUFFLE_22K_32NODES_SECS: f64 = 4.2;

    /// §5.2 text: DIMD per-epoch improvement (GoogLeNet-BN, ResNet-50).
    pub const DIMD_GAINS: (f64, f64) = (0.33, 0.25);
    /// §5.3 text: DPT per-epoch improvement (GoogLeNet-BN, ResNet-50).
    pub const DPT_GAINS: (f64, f64) = (0.15, 0.18);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_speedups_match_paper_claims() {
        // The paper claims 58–72% (GoogLeNet-BN) and 110–130% (ResNet-50);
        // the raw rows should agree with those derived claims.
        for (model, _, base, opt, _) in PaperConstants::TABLE1 {
            let speedup = base / opt - 1.0;
            if model == "googlenet-bn" {
                assert!((0.55..=0.75).contains(&speedup), "{model}: {speedup}");
            } else {
                assert!((1.05..=1.35).contains(&speedup), "{model}: {speedup}");
            }
        }
    }

    #[test]
    fn record_run_global_batch() {
        // 256 GPUs × 32/GPU = the 8k batch of Table 2.
        assert_eq!(64 * PaperConstants::GPUS_PER_NODE * PaperConstants::BATCH_PER_GPU_RECORD, 8192);
    }
}
