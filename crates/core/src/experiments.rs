//! One runner per table and figure of the paper's evaluation (§5).
//!
//! Performance experiments run on the simulated cluster (fat-tree fluid
//! model + P100 roofline + DPT/DIMD cost models); accuracy experiments run
//! *real* distributed training of scaled-down models on SynthImageNet over
//! the threaded MPI runtime, with the wall-clock axis mapped through the
//! epoch-time model at the paper's scale.

use serde::Serialize;

use dcnn_collectives::{Allreduce, AllreduceAlgo, MultiColor, Pipeline};
use dcnn_dimd::{SynthConfig, SynthImageNet};
use dcnn_dpt::DptStrategy;
use dcnn_gpusim::NodeModel;
use dcnn_models::{googlenet_bn, resnet50, ModelCensus};
use dcnn_simnet::{throughput_gbps, FatTree, SimOptions};
use dcnn_tensor::layers::Module;
use dcnn_trainer::{
    train_distributed, EpochTimeModel, OptimizationFlags, TrainConfig, Workload,
};

use crate::constants::PaperConstants as P;

fn census_for(model: &str) -> (ModelCensus, f64) {
    match model {
        "googlenet-bn" => (googlenet_bn(), P::GOOGLENET_PAYLOAD_BYTES),
        "resnet50" => (resnet50(), P::RESNET50_PAYLOAD_BYTES),
        other => panic!("unknown model {other}"),
    }
}

// ---------------------------------------------------------------- Figure 5

/// One point of Figure 5.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Row {
    /// Allreduce algorithm.
    pub algo: String,
    /// Message size in MB.
    pub mb: f64,
    /// Simulated completion time, seconds.
    pub secs: f64,
    /// Achieved algorithm-bandwidth, Gbit/s (payload × 8 / time).
    pub gbps: f64,
}

/// Figure 5: Allreduce throughput of the algorithms on 16 nodes, swept over
/// message size. `extended` adds the two ablation algorithms that are not in
/// the paper.
pub fn fig5(nodes: usize, extended: bool) -> Vec<Fig5Row> {
    let topo = FatTree::minsky(nodes);
    let cost = dcnn_collectives::CostModel::default();
    let opts = SimOptions::default();
    let algos = if extended { AllreduceAlgo::all() } else { AllreduceAlgo::paper_trio() };
    let mut rows = Vec::new();
    for algo in algos {
        for mb in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 93.0, 128.0, 256.0] {
            let bytes = mb * 1e6;
            let secs =
                algo.build().schedule(nodes, bytes, &cost).simulate(&topo, &opts).makespan;
            rows.push(Fig5Row {
                algo: algo.name().to_string(),
                mb,
                secs,
                gbps: throughput_gbps(bytes, secs),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------- Figure 6

/// One bar of Figure 6.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Row {
    /// Learner count.
    pub nodes: usize,
    /// Allreduce algorithm.
    pub algo: String,
    /// Modelled epoch time, seconds.
    pub epoch_secs: f64,
}

/// Figure 6: GoogLeNet-BN epoch time (93 MB payload) at 8/16/32 learners
/// under the three allreduce algorithms.
pub fn fig6() -> Vec<Fig6Row> {
    let (census, payload) = census_for("googlenet-bn");
    let wl = Workload::imagenet_1k();
    let mut rows = Vec::new();
    for nodes in P::NODE_COUNTS {
        let m = EpochTimeModel::minsky(nodes);
        for algo in AllreduceAlgo::paper_trio() {
            let mut flags = OptimizationFlags::fully_optimized();
            flags.allreduce = algo;
            let t = m.epoch(&census, &wl, P::BATCH_PER_GPU, &flags, Some(payload)).total();
            rows.push(Fig6Row { nodes, algo: algo.name().to_string(), epoch_secs: t });
        }
    }
    rows
}

// ------------------------------------------------------- Figures 7, 8 and 9

/// One bar of Figures 7–9.
#[derive(Debug, Clone, Serialize)]
pub struct ShuffleRow {
    /// Learner count.
    pub nodes: usize,
    /// Group count (1 = whole-cluster shuffle).
    pub groups: usize,
    /// Modelled shuffle time, seconds.
    pub shuffle_secs: f64,
    /// Memory per node, GB.
    pub memory_gb: f64,
}

fn shuffle_rows(wl: &Workload, node_counts: &[usize], groups: usize) -> Vec<ShuffleRow> {
    node_counts
        .iter()
        .map(|&nodes| {
            let m = EpochTimeModel::minsky(nodes);
            ShuffleRow {
                nodes,
                groups,
                shuffle_secs: m.shuffle_secs(wl.blob_bytes, groups),
                memory_gb: m.shuffle_memory_per_node(wl.blob_bytes) / 1e9,
            }
        })
        .collect()
}

/// Figure 7: ImageNet-22k shuffle time and memory/node at 8/16/32 learners.
pub fn fig7() -> Vec<ShuffleRow> {
    shuffle_rows(&Workload::imagenet_22k(), &P::NODE_COUNTS, 1)
}

/// Figure 8: ImageNet-1k shuffle time and memory/node at 8/16/32 learners.
pub fn fig8() -> Vec<ShuffleRow> {
    shuffle_rows(&Workload::imagenet_1k(), &P::NODE_COUNTS, 1)
}

/// Figure 9: group-based ImageNet-22k shuffle on 32 nodes with 1/4/8/16
/// groups.
pub fn fig9() -> Vec<ShuffleRow> {
    let wl = Workload::imagenet_22k();
    let m = EpochTimeModel::minsky(32);
    [1usize, 4, 8, 16]
        .iter()
        .map(|&groups| ShuffleRow {
            nodes: 32,
            groups,
            shuffle_secs: m.shuffle_secs(wl.blob_bytes, groups),
            memory_gb: m.shuffle_memory_per_node(wl.blob_bytes) / 1e9,
        })
        .collect()
}

// ------------------------------------------------------ Figures 10, 11, 12

/// One paired bar of Figures 10–12.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Model name.
    pub model: String,
    /// Learner count.
    pub nodes: usize,
    /// Epoch seconds with the optimization off.
    pub without_secs: f64,
    /// Epoch seconds with the optimization on.
    pub with_secs: f64,
    /// Relative gain (`without/with − 1`).
    pub gain: f64,
}

fn ablation(wl: &Workload, toggle: impl Fn(&mut OptimizationFlags, bool)) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for model in ["googlenet-bn", "resnet50"] {
        let (census, payload) = census_for(model);
        for nodes in P::NODE_COUNTS {
            let m = EpochTimeModel::minsky(nodes);
            let run = |on: bool| {
                let mut flags = OptimizationFlags::fully_optimized();
                toggle(&mut flags, on);
                m.epoch(&census, wl, P::BATCH_PER_GPU, &flags, Some(payload)).total()
            };
            let with_secs = run(true);
            let without_secs = run(false);
            rows.push(AblationRow {
                model: model.to_string(),
                nodes,
                without_secs,
                with_secs,
                gain: without_secs / with_secs - 1.0,
            });
        }
    }
    rows
}

/// Figure 10: epoch time with and without DIMD, ImageNet-1k.
pub fn fig10() -> Vec<AblationRow> {
    ablation(&Workload::imagenet_1k(), |f, on| f.dimd = on)
}

/// Figure 11: epoch time with and without DIMD, ImageNet-22k.
pub fn fig11() -> Vec<AblationRow> {
    ablation(&Workload::imagenet_22k(), |f, on| f.dimd = on)
}

/// Figure 12: epoch time with and without the DPT optimizations.
pub fn fig12() -> Vec<AblationRow> {
    ablation(&Workload::imagenet_1k(), |f, on| f.dpt_optimized = on)
}

// ------------------------------------------------------- Figures 13–16

/// Scale of the real accuracy runs (Figures 13–16). The paper trains
/// full-size models on ImageNet; we train width/depth-scaled models on
/// SynthImageNet across real ranks, mapping each configuration's time axis
/// through the epoch-time model at the paper's node counts.
#[derive(Debug, Clone)]
pub struct AccuracyScale {
    /// Synthetic classes.
    pub classes: usize,
    /// Training images per class.
    pub train_per_class: usize,
    /// Validation images per class.
    pub val_per_class: usize,
    /// Epochs to run.
    pub epochs: usize,
    /// (real ranks, simulated GPUs per rank) per series, paired with the
    /// paper node count the series is labelled as.
    pub series: Vec<(usize, usize, usize)>,
    /// Batch per GPU.
    pub batch_per_gpu: usize,
}

impl AccuracyScale {
    /// Fast scale for CI/tests.
    pub fn quick() -> Self {
        AccuracyScale {
            classes: 4,
            train_per_class: 32,
            val_per_class: 8,
            epochs: 4,
            series: vec![(2, 2, 8), (4, 2, 16)],
            batch_per_gpu: 4,
        }
    }

    /// The scale used for the committed figures.
    pub fn full() -> Self {
        AccuracyScale {
            classes: 8,
            train_per_class: 64,
            val_per_class: 16,
            epochs: 10,
            series: vec![(2, 2, 8), (4, 2, 16), (8, 2, 32)],
            batch_per_gpu: 4,
        }
    }
}

/// One point of an accuracy/error-vs-time curve.
#[derive(Debug, Clone, Serialize)]
pub struct AccuracyPoint {
    /// Paper node count this series is labelled as.
    pub paper_nodes: usize,
    /// Epoch index.
    pub epoch: usize,
    /// Wall-clock hours at the paper's scale (epoch-time model).
    pub hours: f64,
    /// Top-1 validation accuracy of the real run.
    pub val_acc: f64,
    /// Training loss (the "error" of Figures 15–16).
    pub train_error: f64,
}

fn accuracy_curves(model: &str, scale: &AccuracyScale) -> Vec<AccuracyPoint> {
    let (census, payload) = census_for(model);
    let wl = Workload::imagenet_1k();
    let ds = SynthImageNet::new(SynthConfig {
        classes: scale.classes,
        train_per_class: scale.train_per_class,
        val_per_class: scale.val_per_class,
        base_hw: 32,
        hw_jitter: 0,
        noise: 14.0,
        seed: 0xACC,
    });
    let classes = scale.classes;
    let factory: Box<dyn Fn() -> Box<dyn Module> + Sync> = match model {
        "resnet50" => Box::new(move || dcnn_models::resnet::ResNetConfig::tiny(classes).build(7)),
        _ => Box::new(move || dcnn_models::googlenet::GoogLeNetConfig::tiny(classes).build(7)),
    };

    let mut points = Vec::new();
    for &(ranks, gpus, paper_nodes) in &scale.series {
        let mut cfg = TrainConfig::paper(ranks, gpus, scale.batch_per_gpu, scale.epochs);
        cfg.crop = 32;
        cfg.strategy = DptStrategy::Optimized;
        // Keep the optimization problem identical across series: same global
        // batch via the LR schedule's (k, n) and proportional batch sizes is
        // what the paper does; at tiny scale we instead fix a modest LR.
        cfg.lr = dcnn_tensor::optim::LrSchedule {
            init_lr: 0.05,
            base_lr: 0.05,
            warmup_epochs: 1.0,
            step_epochs: (scale.epochs as f32 * 0.7).max(1.0),
            decay: 0.1,
        };
        let stats = train_distributed(&cfg, &ds, &factory);
        // Paper-scale seconds per epoch for the configuration this series
        // is labelled as.
        let m = EpochTimeModel::minsky(paper_nodes);
        let epoch_secs = m
            .epoch(
                &census,
                &wl,
                P::BATCH_PER_GPU,
                &OptimizationFlags::fully_optimized(),
                Some(payload),
            )
            .total();
        for s in stats {
            points.push(AccuracyPoint {
                paper_nodes,
                epoch: s.epoch,
                hours: (s.epoch + 1) as f64 * epoch_secs / 3600.0,
                val_acc: s.val_acc,
                train_error: s.train_loss,
            });
        }
    }
    points
}

/// Figures 13 and 15: ResNet-50 validation accuracy and training error vs
/// time at several node counts.
pub fn fig13_15(scale: &AccuracyScale) -> Vec<AccuracyPoint> {
    accuracy_curves("resnet50", scale)
}

/// Figures 14 and 16: GoogLeNet-BN validation accuracy and training error vs
/// time at several node counts.
pub fn fig14_16(scale: &AccuracyScale) -> Vec<AccuracyPoint> {
    accuracy_curves("googlenet-bn", scale)
}

// -------------------------------------------------- Extensions / ablations

/// One row of the node-mapping ablation.
#[derive(Debug, Clone, Serialize)]
pub struct MappingRow {
    /// Mapping label (`consecutive` or `random-N`).
    pub mapping: String,
    /// Simulated allreduce time, seconds.
    pub secs: f64,
}

/// §4.2 claim check: the multi-color allreduce is designed for consecutive
/// placement on the fat-tree but the paper "also observed good link
/// utilization with nodes arbitrarily mapped". Compares consecutive against
/// random rank→node permutations.
pub fn mapping_ablation(nodes: usize, payload: f64, random_trials: usize) -> Vec<MappingRow> {
    use rand::seq::SliceRandom;
    use rand::{rngs::StdRng, SeedableRng};
    let topo = FatTree::minsky(nodes);
    let cost = dcnn_collectives::CostModel::default();
    let opts = SimOptions::default();
    let sched = MultiColor::new(4).schedule(nodes, payload, &cost);
    let mut rows = vec![MappingRow {
        mapping: "consecutive".into(),
        secs: sched.simulate(&topo, &opts).makespan,
    }];
    let mut rng = StdRng::seed_from_u64(0xA1B2);
    for t in 0..random_trials {
        let mut perm: Vec<usize> = (0..nodes).collect();
        perm.shuffle(&mut rng);
        rows.push(MappingRow {
            mapping: format!("random-{t}"),
            secs: sched.remap(&perm).simulate(&topo, &opts).makespan,
        });
    }
    rows
}

/// One row of the color-count ablation.
#[derive(Debug, Clone, Serialize)]
pub struct ColorRow {
    /// Number of colors (spanning trees).
    pub colors: usize,
    /// Simulated allreduce time, seconds.
    pub secs: f64,
    /// Algorithm bandwidth, Gbit/s.
    pub gbps: f64,
}

/// Design-choice ablation: how many colors should the multi-color allreduce
/// use? (The paper fixes 4; DESIGN.md calls this out for ablation.)
pub fn color_ablation(nodes: usize, payload: f64) -> Vec<ColorRow> {
    let topo = FatTree::minsky(nodes);
    let cost = dcnn_collectives::CostModel::default();
    let opts = SimOptions::default();
    [1usize, 2, 4, 8, 16]
        .iter()
        .filter(|&&k| k <= nodes)
        .map(|&k| {
            let secs = MultiColor::new(k)
                .schedule(nodes, payload, &cost)
                .simulate(&topo, &opts)
                .makespan;
            ColorRow { colors: k, secs, gbps: throughput_gbps(payload, secs) }
        })
        .collect()
}

// ------------------------------------------------------------------ Tables

/// One row of Table 1.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Model name.
    pub model: String,
    /// Learner count.
    pub nodes: usize,
    /// Modelled open-source epoch seconds.
    pub open_source_secs: f64,
    /// Modelled fully-optimized epoch seconds.
    pub optimized_secs: f64,
    /// Speedup (`open/opt − 1`), as the paper reports it.
    pub speedup: f64,
    /// Paper's open-source epoch seconds.
    pub paper_open_secs: f64,
    /// Paper's optimized epoch seconds.
    pub paper_opt_secs: f64,
}

/// Table 1: total improvement, open-source baseline vs fully optimized.
pub fn table1() -> Vec<Table1Row> {
    let wl = Workload::imagenet_1k();
    P::TABLE1
        .iter()
        .map(|&(model, nodes, paper_open, paper_opt, _acc)| {
            let (census, payload) = census_for(model);
            let m = EpochTimeModel::minsky(nodes);
            let open = m
                .epoch(&census, &wl, P::BATCH_PER_GPU, &OptimizationFlags::baseline(), Some(payload))
                .total();
            let opt = m
                .epoch(
                    &census,
                    &wl,
                    P::BATCH_PER_GPU,
                    &OptimizationFlags::fully_optimized(),
                    Some(payload),
                )
                .total();
            Table1Row {
                model: model.to_string(),
                nodes,
                open_source_secs: open,
                optimized_secs: opt,
                speedup: open / opt - 1.0,
                paper_open_secs: paper_open,
                paper_opt_secs: paper_opt,
            }
        })
        .collect()
}

/// One row of Table 2.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// System description.
    pub description: String,
    /// Hardware.
    pub hardware: String,
    /// Global batch size.
    pub batch: usize,
    /// Paper-reported minutes for 90 epochs.
    pub reported_minutes: f64,
    /// Our model's minutes for 90 epochs (None for rows we only cite).
    pub modeled_minutes: Option<f64>,
}

/// 90-epoch ResNet-50 wall time for `nodes` Minsky nodes at `batch_per_gpu`,
/// using a shallow-pipelined multicolor allreduce (kept coarse so the
/// 64-node simulation stays cheap).
fn record_run_minutes(nodes: usize, batch_per_gpu: usize, node: &NodeModel) -> f64 {
    let census = resnet50();
    let wl = Workload::imagenet_1k();
    let mut m = EpochTimeModel::minsky(nodes);
    m.cluster.node = node.clone();
    // Custom multicolor with a coarse pipeline for simulation tractability.
    let algo = MultiColor::with_pipeline(4, Pipeline { target_bytes: 8 << 20, max_chunks: 8 });
    let topo = FatTree::minsky(nodes);
    let allreduce = algo
        .schedule(nodes, P::RESNET50_PAYLOAD_BYTES, &m.cost)
        .simulate(&topo, &SimOptions::default())
        .makespan;
    let mut flags = OptimizationFlags::fully_optimized();
    // Price everything except the allreduce through the standard model, then
    // substitute the custom allreduce.
    flags.allreduce = AllreduceAlgo::MultiColor(4);
    let b = {
        // Cheap trick: compute breakdown with a 1-node model (no allreduce),
        // then add our allreduce per iteration.
        let mut m1 = EpochTimeModel::minsky(nodes);
        m1.cluster.node = node.clone();
        let mut f = flags.clone();
        f.allreduce = AllreduceAlgo::MultiColor(4);
        let mut bd =
            m1.epoch(&census, &wl, batch_per_gpu, &f, Some(P::RESNET50_PAYLOAD_BYTES));
        // Replace the default allreduce estimate with the coarse one.
        bd.allreduce = allreduce * bd.iterations as f64;
        bd
    };
    b.total() * P::EPOCHS as f64 / 60.0
}

/// Table 2: comparison with the state of the art. Goyal et al.'s row is
/// modelled on the same 64-node Minsky cluster without the paper's
/// optimizations beyond batching; You et al.'s on 512 self-hosted KNL nodes.
pub fn table2() -> Vec<Table2Row> {
    let minsky = NodeModel::minsky();
    let knl = NodeModel::knl_node();
    let ours = record_run_minutes(64, P::BATCH_PER_GPU_RECORD, &minsky);
    // You et al.: 512 KNL, global batch 32k → 64 per node.
    let you = {
        let census = resnet50();
        let iterations = Workload::imagenet_1k().images.div_ceil(512 * 64);
        let step = knl.device.train_step_secs(&census, 64);
        // Comm estimate: bandwidth-optimal allreduce at 100 Gbps Omni-Path.
        let comm = 2.0 * P::RESNET50_PAYLOAD_BYTES / dcnn_simnet::gbps_to_bytes_per_sec(100.0);
        (iterations as f64 * (step + comm)) * P::EPOCHS as f64 / 60.0
    };
    vec![
        Table2Row {
            description: "Priya et al [27]".into(),
            hardware: "256 P100".into(),
            batch: 8192,
            reported_minutes: 65.0,
            modeled_minutes: None,
        },
        Table2Row {
            description: "You et al [35]".into(),
            hardware: "512 KNL".into(),
            batch: 32768,
            reported_minutes: 60.0,
            modeled_minutes: Some(you),
        },
        Table2Row {
            description: "Our work".into(),
            hardware: "256 P100 (64 Minsky nodes)".into(),
            batch: 8192,
            reported_minutes: 48.0,
            modeled_minutes: Some(ours),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_rows_ordering_at_large_sizes() {
        let rows = fig5(8, false);
        let get = |algo: &str, mb: f64| {
            rows.iter()
                .find(|r| r.algo == algo && r.mb == mb)
                .map(|r| r.gbps)
                .expect("row present")
        };
        assert!(get("multicolor", 93.0) > get("ring", 93.0));
        assert!(get("ring", 93.0) > get("openmpi-default", 93.0));
        assert_eq!(rows.len(), 3 * 10);
    }

    #[test]
    fn fig9_groups_roughly_flat() {
        let rows = fig9();
        assert_eq!(rows.len(), 4);
        let t1 = rows[0].shuffle_secs;
        for r in &rows {
            assert!((r.shuffle_secs / t1 - 1.0).abs() < 0.5, "groups {}: {}", r.groups, r.shuffle_secs);
        }
    }

    #[test]
    fn fig10_gains_positive_everywhere() {
        for r in fig10() {
            assert!(r.gain > 0.1, "{} at {}: {}", r.model, r.nodes, r.gain);
        }
    }

    #[test]
    fn table1_speedups_positive_and_ranked() {
        let rows = table1();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.speedup > 0.2, "{} at {}: {}", r.model, r.nodes, r.speedup);
            // Magnitudes within ~2× of the paper's epoch seconds.
            assert!(
                r.optimized_secs / r.paper_opt_secs < 2.0
                    && r.optimized_secs / r.paper_opt_secs > 0.5,
                "{} at {}: opt {} vs paper {}",
                r.model,
                r.nodes,
                r.optimized_secs,
                r.paper_opt_secs
            );
        }
    }

    #[test]
    fn mapping_ablation_matches_paper_claim() {
        // Consecutive mapping should be competitive, and random mappings
        // should still achieve "good link utilization" (within ~2× of it).
        let rows = mapping_ablation(32, 93e6, 3);
        let consecutive = rows[0].secs;
        for r in &rows[1..] {
            assert!(
                r.secs < consecutive * 2.0 && r.secs > consecutive * 0.5,
                "{}: {} vs consecutive {}",
                r.mapping,
                r.secs,
                consecutive
            );
        }
    }

    #[test]
    fn color_ablation_multicolor_beats_one_color() {
        let rows = color_ablation(16, 93e6);
        let one = rows.iter().find(|r| r.colors == 1).expect("k=1").secs;
        let four = rows.iter().find(|r| r.colors == 4).expect("k=4").secs;
        assert!(four < one, "4 colors {four} should beat 1 color {one}");
    }

    #[test]
    fn accuracy_quick_scale_learns() {
        let pts = fig13_15(&AccuracyScale::quick());
        assert!(!pts.is_empty());
        let best = pts.iter().map(|p| p.val_acc).fold(0.0, f64::max);
        assert!(best > 0.3, "best accuracy {best}");
        // Hours grow with epochs within a series.
        let series0: Vec<&AccuracyPoint> =
            pts.iter().filter(|p| p.paper_nodes == 8).collect();
        for w in series0.windows(2) {
            assert!(w[1].hours > w[0].hours);
        }
    }
}
