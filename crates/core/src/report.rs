//! Small report-formatting helpers shared by the `repro` harness.

/// Render a GitHub-flavoured markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut s = String::new();
    s.push('|');
    for h in headers {
        s.push_str(&format!(" {h} |"));
    }
    s.push('\n');
    s.push('|');
    for _ in headers {
        s.push_str("---|");
    }
    s.push('\n');
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width mismatch");
        s.push('|');
        for cell in row {
            s.push_str(&format!(" {cell} |"));
        }
        s.push('\n');
    }
    s
}

/// Format seconds compactly (`s` or `min`).
pub fn fmt_secs(secs: f64) -> String {
    if secs >= 120.0 {
        format!("{:.1} min", secs / 60.0)
    } else if secs >= 1.0 {
        format!("{secs:.1} s")
    } else {
        format!("{:.1} ms", secs * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_table() {
        let t = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 3 | 4 |"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    #[should_panic]
    fn bad_row_width_panics() {
        let _ = markdown_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn formats_times() {
        assert_eq!(fmt_secs(0.0123), "12.3 ms");
        assert_eq!(fmt_secs(5.0), "5.0 s");
        assert_eq!(fmt_secs(300.0), "5.0 min");
    }
}
