//! Real executors for both data-parallel-table designs.
//!
//! One [`DptExecutor`] owns `m` model replicas ("GPUs") initialized
//! identically. `step` runs one training iteration on a node batch under
//! either scheduling strategy and returns the **average gradient over the
//! node batch**, which is what Algorithm 1's inter-node allreduce consumes.
//! A test proves both strategies produce the same gradients — the paper's
//! "none of the optimizations … have any impact on the final accuracy"
//! claim (§5.4), made checkable.

use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;

use dcnn_tensor::layers::{
    collect_grads, param_segments, set_params, zero_grads, Module, ParamSegment,
};
use dcnn_tensor::loss::SoftmaxCrossEntropy;
use dcnn_tensor::Tensor;
use rayon::prelude::*;

/// Scheduling strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DptStrategy {
    /// Stock Torch: stage on GPU1, criterion on GPU1, serialized callbacks.
    Baseline,
    /// Paper redesign: direct shards, per-GPU criterion, parallel.
    Optimized,
}

/// Result of one node-local training iteration.
#[derive(Debug, Clone)]
pub struct IterOutput {
    /// Mean loss over the node batch.
    pub loss: f64,
    /// Average gradient over the node batch, flattened in
    /// [`Module::visit_params`] (forward layer) order.
    pub grad: Vec<f32>,
    /// Top-1 hits in the node batch.
    pub correct: usize,
    /// Segment map over `grad`: one named span per parameter, in forward
    /// layer order (shared with the executor that produced this output).
    pub segments: Arc<Vec<ParamSegment>>,
}

impl IterOutput {
    /// The gradient's segments in **reverse layer order** — the order
    /// backprop finishes them, and the order an overlap-aware exchange
    /// should bucket them (last layer's gradient is ready first).
    pub fn rev_segments(&self) -> impl Iterator<Item = &ParamSegment> {
        self.segments.iter().rev()
    }

    /// The gradient slice belonging to `seg`.
    pub fn grad_segment(&self, seg: &ParamSegment) -> &[f32] {
        &self.grad[seg.range()]
    }
}

/// `m` model replicas driven by one of the two strategies.
pub struct DptExecutor {
    replicas: Vec<Box<dyn Module>>,
    segments: Arc<Vec<ParamSegment>>,
}

impl DptExecutor {
    /// Create `m` replicas via `factory` (which must be deterministic so
    /// replicas start identical, as Algorithm 1 requires).
    pub fn new(m: usize, factory: impl Fn() -> Box<dyn Module>) -> Self {
        assert!(m >= 1);
        let mut replicas: Vec<Box<dyn Module>> = (0..m).map(|_| factory()).collect();
        let segments = Arc::new(param_segments(replicas[0].as_mut()));
        DptExecutor { replicas, segments }
    }

    /// Number of replicas (simulated GPUs).
    pub fn gpus(&self) -> usize {
        self.replicas.len()
    }

    /// The model's parameter segment map (forward layer order; offsets index
    /// the flattened gradient emitted by [`DptExecutor::step`]).
    pub fn segments(&self) -> &Arc<Vec<ParamSegment>> {
        &self.segments
    }

    /// Overwrite every replica's parameters (weight broadcast).
    pub fn set_params_all(&mut self, flat: &[f32]) {
        for r in &mut self.replicas {
            set_params(r.as_mut(), flat);
        }
    }

    /// Apply `f` to every replica (e.g. optimizer steps — replicas receive
    /// identical gradients, so identical updates keep them in sync).
    pub fn visit_replicas(&mut self, mut f: impl FnMut(&mut dyn Module)) {
        for r in &mut self.replicas {
            f(r.as_mut());
        }
    }

    /// Direct access to one replica. The sharded optimizer steps only
    /// replica 0's owned parameter range, then rebroadcasts via
    /// [`DptExecutor::set_params_all`].
    ///
    /// # Panics
    /// Panics if `i >= self.gpus()`.
    pub fn replica(&mut self, i: usize) -> &mut dyn Module {
        self.replicas[i].as_mut()
    }

    /// Inference on replica 0 (eval mode; used for validation).
    pub fn eval_logits(&mut self, x: &Tensor) -> Tensor {
        self.replicas[0].forward(x, false)
    }

    /// Run one iteration like [`DptExecutor::step`] under
    /// [`DptStrategy::Optimized`], but report the node-averaged gradient
    /// incrementally *during* backprop: `on_segment(offset, grads)` fires
    /// the moment every replica has finished the backward step for one
    /// parameter range of the flattened gradient ([`collect_grads`] layout),
    /// in backward-traversal order — tail-layer ranges first. The overlap
    /// engine seals and launches gradient buckets from this callback while
    /// earlier layers are still backpropagating.
    ///
    /// The ranges tile `[0, param_count)` exactly, and both the reported
    /// values and the returned `(mean loss, correct)` pair are
    /// **bitwise identical** to what `step` produces: replicas are averaged
    /// in replica index order with the same per-element operation sequence.
    ///
    /// # Panics
    /// Panics unless the batch divides evenly across replicas.
    pub fn step_streamed(
        &mut self,
        x: &Tensor,
        labels: &[usize],
        mut on_segment: impl FnMut(usize, &[f32]),
    ) -> (f64, usize) {
        let b = x.shape()[0];
        let m = self.replicas.len();
        assert_eq!(b % m, 0, "batch {b} must divide across {m} GPUs");
        assert_eq!(labels.len(), b);
        let shard = b / m;
        let sample = x.len() / b;

        let shards: Vec<Tensor> = (0..m)
            .map(|g| {
                Tensor::from_vec(
                    x.data()[g * shard * sample..(g + 1) * shard * sample].to_vec(),
                    &{
                        let mut s = x.shape().to_vec();
                        s[0] = shard;
                        s
                    },
                )
            })
            .collect();

        // One thread per replica, like the Optimized rayon path, but with a
        // channel back to this thread so ranges stream out as they finish.
        let (tx, rx) = mpsc::channel::<(usize, usize, Vec<f32>)>();
        let mut loss = 0.0f64;
        let mut correct = 0usize;
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .replicas
                .iter_mut()
                .zip(&shards)
                .enumerate()
                .map(|(g, (model, xs))| {
                    let tx = tx.clone();
                    let shard_labels = &labels[g * shard..(g + 1) * shard];
                    s.spawn(move || {
                        zero_grads(model.as_mut());
                        let logits = model.forward(xs, true);
                        let out = SoftmaxCrossEntropy.forward(&logits, shard_labels);
                        let _ = model.backward_hooked(&out.grad, 0, &mut |off, vals| {
                            let _ = tx.send((g, off, vals.to_vec()));
                        });
                        (out.loss, out.correct)
                    })
                })
                .collect();
            // Drop the original sender so the collector loop ends once every
            // replica thread has finished its backward pass.
            drop(tx);

            // Fire `on_segment` the moment the last replica reports a range.
            // Every replica walks the same module tree, so ranges complete in
            // backward order; averaging runs in replica *index* order from
            // zeros — the exact per-element sequence of `step`'s merge.
            let mut slots: HashMap<usize, Vec<Option<Vec<f32>>>> = HashMap::new();
            while let Ok((g, off, vals)) = rx.recv() {
                let entry = slots.entry(off).or_insert_with(|| vec![None; m]);
                entry[g] = Some(vals);
                if entry.iter().all(Option::is_some) {
                    let parts = slots.remove(&off).expect("slot just filled");
                    let n = parts[0].as_ref().expect("all parts present").len();
                    let mut avg = vec![0.0f32; n];
                    for p in &parts {
                        for (a, b) in avg.iter_mut().zip(p.as_ref().expect("all parts present")) {
                            *a += b / m as f32;
                        }
                    }
                    on_segment(off, &avg);
                }
            }
            assert!(slots.is_empty(), "every replica must report every range");

            for h in handles {
                let (l, c) = h.join().expect("replica thread");
                loss += l / m as f64;
                correct += c;
            }
        });
        (loss, correct)
    }

    /// Run one iteration on a node batch `x: [B, C, H, W]` under `strategy`.
    ///
    /// # Panics
    /// Panics unless the batch divides evenly across replicas.
    pub fn step(&mut self, x: &Tensor, labels: &[usize], strategy: DptStrategy) -> IterOutput {
        let b = x.shape()[0];
        let m = self.replicas.len();
        assert_eq!(b % m, 0, "batch {b} must divide across {m} GPUs");
        assert_eq!(labels.len(), b);
        let shard = b / m;
        let sample = x.len() / b;
        let crit = SoftmaxCrossEntropy;

        // Partition inputs. In the baseline this data movement passes
        // through GPU1 (priced by the timeline model); mathematically the
        // shards are identical, which is the point.
        let shards: Vec<Tensor> = (0..m)
            .map(|g| {
                Tensor::from_vec(
                    x.data()[g * shard * sample..(g + 1) * shard * sample].to_vec(),
                    &{
                        let mut s = x.shape().to_vec();
                        s[0] = shard;
                        s
                    },
                )
            })
            .collect();

        match strategy {
            DptStrategy::Optimized => {
                // Fully parallel: forward + criterion + backward per GPU.
                let results: Vec<(f64, Vec<f32>, usize)> = self
                    .replicas
                    .par_iter_mut()
                    .zip(shards.par_iter())
                    .enumerate()
                    .map(|(g, (model, xs))| {
                        zero_grads(model.as_mut());
                        let logits = model.forward(xs, true);
                        let out = crit.forward(&logits, &labels[g * shard..(g + 1) * shard]);
                        let _ = model.backward(&out.grad);
                        (out.loss, collect_grads(model.as_mut()), out.correct)
                    })
                    .collect();
                let mut grad = vec![0.0f32; results[0].1.len()];
                let mut loss = 0.0;
                let mut correct = 0;
                for (l, g, c) in &results {
                    loss += l / m as f64;
                    correct += c;
                    for (a, b) in grad.iter_mut().zip(g) {
                        *a += b / m as f32;
                    }
                }
                IterOutput { loss, grad, correct, segments: Arc::clone(&self.segments) }
            }
            DptStrategy::Baseline => {
                // Forwards run per GPU, but logits are gathered and the
                // criterion is evaluated once over the full batch ("GPU1"),
                // then gradients are scattered back — all serialized.
                let mut logits_all: Option<Tensor> = None;
                for (g, (model, xs)) in self.replicas.iter_mut().zip(&shards).enumerate() {
                    zero_grads(model.as_mut());
                    let logits = model.forward(xs, true);
                    let k = logits.shape()[1];
                    match &mut logits_all {
                        None => {
                            let mut t = Tensor::zeros(&[b, k]);
                            t.data_mut()[..shard * k].copy_from_slice(logits.data());
                            logits_all = Some(t);
                        }
                        Some(t) => t.data_mut()[g * shard * k..(g + 1) * shard * k]
                            .copy_from_slice(logits.data()),
                    }
                }
                let logits_all = logits_all.expect("at least one replica");
                let out = crit.forward(&logits_all, labels);
                let k = logits_all.shape()[1];
                // Scatter loss gradient shards and run backwards serially
                // (the stock design's callback serialization).
                let mut grad: Option<Vec<f32>> = None;
                for (g, model) in self.replicas.iter_mut().enumerate() {
                    // Full-batch criterion already divides by B; per-shard
                    // backward therefore yields the batch-average directly
                    // when summed.
                    let gshard = Tensor::from_vec(
                        out.grad.data()[g * shard * k..(g + 1) * shard * k].to_vec(),
                        &[shard, k],
                    );
                    let _ = model.backward(&gshard);
                    let local = collect_grads(model.as_mut());
                    match &mut grad {
                        None => grad = Some(local),
                        Some(acc) => {
                            for (a, b) in acc.iter_mut().zip(&local) {
                                *a += b;
                            }
                        }
                    }
                }
                IterOutput {
                    loss: out.loss,
                    grad: grad.expect("replicas"),
                    correct: out.correct,
                    segments: Arc::clone(&self.segments),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcnn_models::resnet::ResNetConfig;

    fn tiny_factory() -> Box<dyn Module> {
        ResNetConfig {
            blocks: vec![1],
            base_width: 4,
            bottleneck: false,
            classes: 5,
            input: [3, 16, 16],
            imagenet_stem: false,
        }
        .build(11)
    }

    fn batch(b: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let x = Tensor::randn(&[b, 3, 16, 16], 1.0, seed);
        let labels = (0..b).map(|i| i % 5).collect();
        (x, labels)
    }

    #[test]
    fn strategies_produce_identical_gradients() {
        // The heart of §4.3/§5.4: the redesign changes scheduling, not math.
        let (x, labels) = batch(8, 3);
        let mut base = DptExecutor::new(4, tiny_factory);
        let mut opt = DptExecutor::new(4, tiny_factory);
        let ob = base.step(&x, &labels, DptStrategy::Baseline);
        let oo = opt.step(&x, &labels, DptStrategy::Optimized);
        assert!((ob.loss - oo.loss).abs() < 1e-9, "{} vs {}", ob.loss, oo.loss);
        assert_eq!(ob.correct, oo.correct);
        for (i, (a, b)) in ob.grad.iter().zip(&oo.grad).enumerate() {
            assert!((a - b).abs() <= 1e-6 * a.abs().max(1e-3), "grad[{i}]: {a} vs {b}");
        }
    }

    #[test]
    fn single_gpu_equals_monolithic() {
        let (x, labels) = batch(4, 7);
        let mut one = DptExecutor::new(1, tiny_factory);
        let o1 = one.step(&x, &labels, DptStrategy::Optimized);
        // Monolithic reference.
        let mut model = tiny_factory();
        zero_grads(model.as_mut());
        let logits = model.forward(&x, true);
        let out = SoftmaxCrossEntropy.forward(&logits, &labels);
        let _ = model.backward(&out.grad);
        let gref = collect_grads(model.as_mut());
        assert!((o1.loss - out.loss).abs() < 1e-12);
        for (a, b) in o1.grad.iter().zip(&gref) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    /// BN-free model: batch statistics would legitimately differ per shard
    /// count (true on real DataParallelTable too), so shard-count invariance
    /// only holds without BN.
    fn bn_free_factory() -> Box<dyn Module> {
        use dcnn_tensor::layers::{Conv2d, GlobalAvgPool, Linear, ReLU};
        use dcnn_tensor::nn::Sequential;
        Box::new(
            Sequential::new()
                .push(Conv2d::new(3, 6, 3, 2, 1, true, 21))
                .push(ReLU::new())
                .push(GlobalAvgPool::new())
                .push(Linear::new(6, 5, 22)),
        )
    }

    #[test]
    fn gpu_count_does_not_change_gradient_without_bn() {
        let (x, labels) = batch(8, 5);
        let g1 = DptExecutor::new(1, bn_free_factory).step(&x, &labels, DptStrategy::Optimized);
        let g2 = DptExecutor::new(2, bn_free_factory).step(&x, &labels, DptStrategy::Optimized);
        let g4 = DptExecutor::new(4, bn_free_factory).step(&x, &labels, DptStrategy::Optimized);
        for (a, b) in g1.grad.iter().zip(&g2.grad) {
            assert!((a - b).abs() <= 2e-5 * a.abs().max(1e-3));
        }
        for (a, b) in g2.grad.iter().zip(&g4.grad) {
            assert!((a - b).abs() <= 2e-5 * a.abs().max(1e-3));
        }
    }

    #[test]
    #[should_panic]
    fn indivisible_batch_panics() {
        let (x, labels) = batch(6, 1);
        let mut e = DptExecutor::new(4, tiny_factory);
        let _ = e.step(&x, &labels, DptStrategy::Optimized);
    }

    #[test]
    fn iter_output_segments_tile_the_gradient() {
        let (x, labels) = batch(4, 13);
        let mut e = DptExecutor::new(2, tiny_factory);
        let out = e.step(&x, &labels, DptStrategy::Optimized);
        let mut off = 0;
        for s in out.segments.iter() {
            assert_eq!(s.offset, off);
            assert_eq!(out.grad_segment(s).len(), s.len);
            off += s.len;
        }
        assert_eq!(off, out.grad.len(), "segments must cover the whole gradient");
        // The executor hands out the same shared map every step.
        assert!(Arc::ptr_eq(&out.segments, e.segments()));
    }

    #[test]
    fn rev_segments_walk_backprop_completion_order() {
        let mut e = DptExecutor::new(1, tiny_factory);
        let segs = Arc::clone(e.segments());
        let (x, labels) = batch(2, 17);
        let out = e.step(&x, &labels, DptStrategy::Optimized);
        let rev: Vec<&ParamSegment> = out.rev_segments().collect();
        assert_eq!(rev.len(), segs.len());
        // First emitted segment is the network's last parameter (the
        // classifier), whose gradient backprop produces first.
        assert_eq!(rev[0].name, segs.last().unwrap().name);
        assert_eq!(rev.last().unwrap().name, segs[0].name);
        // Offsets strictly decrease walking in reverse.
        for w in rev.windows(2) {
            assert!(w[0].offset > w[1].offset);
        }
    }

    #[test]
    fn step_streamed_matches_step_bitwise() {
        let (x, labels) = batch(8, 19);
        let mut plain = DptExecutor::new(2, tiny_factory);
        let mut streamed = DptExecutor::new(2, tiny_factory);
        let reference = plain.step(&x, &labels, DptStrategy::Optimized);

        let mut grad = vec![f32::NAN; reference.grad.len()];
        let mut fired: Vec<(usize, usize)> = Vec::new();
        let (loss, correct) = streamed.step_streamed(&x, &labels, |off, vals| {
            grad[off..off + vals.len()].copy_from_slice(vals);
            fired.push((off, vals.len()));
        });

        assert_eq!(loss.to_bits(), reference.loss.to_bits());
        assert_eq!(correct, reference.correct);
        for (i, (a, b)) in grad.iter().zip(&reference.grad).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "grad[{i}]: {a} vs {b}");
        }
        // Ranges tile the gradient exactly and stream tail-first.
        assert!(fired[0].0 > fired[fired.len() - 1].0, "backward reports tail layers first");
        fired.sort_unstable();
        let mut off = 0;
        for (o, n) in fired {
            assert_eq!(o, off, "ranges must tile without gaps or overlap");
            off += n;
        }
        assert_eq!(off, reference.grad.len());
    }

    #[test]
    fn set_params_all_synchronizes() {
        let mut e = DptExecutor::new(2, tiny_factory);
        let n = {
            let mut probe = tiny_factory();
            dcnn_tensor::layers::param_count(probe.as_mut())
        };
        e.set_params_all(&vec![0.5; n]);
        let (x, labels) = batch(2, 9);
        let out = e.step(&x, &labels, DptStrategy::Optimized);
        assert!(out.loss.is_finite());
    }
}
