#![warn(missing_docs)]

//! # dcnn-dpt — the Data-Parallel Table (paper §4.3)
//!
//! Torch's `DataParallelTable` schedules one training iteration across the
//! GPUs of a node. The paper identifies three defects in the stock design
//! (Figure 3) and fixes them (Figure 4):
//!
//! 1. the whole input batch is staged on GPU1 and then scattered (extra data
//!    movement and memory on GPU1) → *optimized*: the host partitions the
//!    batch and copies each shard directly to its GPU;
//! 2. the criterion (loss) is evaluated only on GPU1 → *optimized*: every
//!    GPU evaluates the criterion on its own shard;
//! 3. Torch's thread "ending callbacks" serialize on the main Lua thread →
//!    *optimized*: fewer serialization points.
//!
//! This crate provides both designs twice over:
//!
//! * [`exec`] — **real executors** over `dcnn-tensor` model replicas. Both
//!   designs compute bit-comparable average gradients (verified by test),
//!   demonstrating that the optimization is pure scheduling — exactly the
//!   paper's claim that none of the optimizations affect accuracy (§5.4).
//! * [`model`] — an **overhead timeline model** that prices each design's
//!   data movement and serialization on the Minsky node model, feeding the
//!   Figure 12 and Table 1 reproductions.

pub mod exec;
pub mod model;

pub use exec::{DptExecutor, DptStrategy, IterOutput};
pub use model::{iter_overhead_secs, DptOverheads, DptParams, DptVariant};
