//! Overhead timeline model of the two data-parallel-table designs.
//!
//! The per-iteration *compute* (forward+backward on a shard) is identical in
//! both designs; what differs is everything around it. This module prices
//! those differences on a [`dcnn_gpusim::NodeModel`].

use dcnn_gpusim::NodeModel;
use dcnn_models::ModelCensus;

/// Which data-parallel-table design to price.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DptVariant {
    /// Stock Torch design (paper Figure 3).
    Baseline,
    /// The paper's redesign (Figure 4).
    Optimized,
}

/// Scheduling cost constants.
#[derive(Debug, Clone)]
pub struct DptParams {
    /// Cost of one serialized "ending callback" on the main thread, seconds.
    /// Torch runs these fully serialized; the paper counts reducing them as
    /// one of its three fixes.
    pub callback_secs: f64,
    /// Serialization points per GPU per iteration in the baseline design
    /// (scatter, forward, output-gather, criterion, backward, reduce).
    pub baseline_sync_points: usize,
    /// Serialization points per GPU per iteration after the redesign.
    pub optimized_sync_points: usize,
    /// Effective copy bandwidth of the stock design's gradient staging,
    /// bytes/s. Stock Torch moved gradients through *pageable* Lua tensor
    /// memory on the default stream (~PCIe-class 5.5 GB/s); the redesign
    /// pins buffers and rides NVLink.
    pub pageable_copy_bw: f64,
}

impl Default for DptParams {
    fn default() -> Self {
        DptParams {
            callback_secs: 0.5e-3,
            baseline_sync_points: 6,
            optimized_sync_points: 2,
            pageable_copy_bw: 5.5e9,
        }
    }
}

/// Per-iteration overhead breakdown, seconds.
#[derive(Debug, Clone)]
pub struct DptOverheads {
    /// Host→device input movement (staged through GPU1 in the baseline).
    pub input_movement: f64,
    /// Criterion evaluation beyond the parallel case.
    pub criterion: f64,
    /// Intra-node gradient reduction.
    pub gradient_reduce: f64,
    /// Serialized ending callbacks.
    pub callbacks: f64,
}

impl DptOverheads {
    /// Sum of all components.
    pub fn total(&self) -> f64 {
        self.input_movement + self.criterion + self.gradient_reduce + self.callbacks
    }
}

/// Bytes of one input sample for the census' input shape.
fn sample_bytes(census: &ModelCensus) -> f64 {
    (census.input[0] * census.input[1] * census.input[2]) as f64 * 4.0
}

/// Criterion cost for `n` samples: softmax + NLL over `classes`, a
/// memory-bound pointwise pass.
fn criterion_secs(census: &ModelCensus, n: usize, node: &NodeModel) -> f64 {
    let bytes = n as f64 * census.classes as f64 * 4.0 * 3.0;
    bytes / node.device.mem_bw + node.device.launch_overhead
}

/// Price one iteration's scheduling overhead for a node batch of
/// `batch_node` samples spread over the node's GPUs.
pub fn iter_overhead_secs(
    census: &ModelCensus,
    batch_node: usize,
    node: &NodeModel,
    params: &DptParams,
    variant: DptVariant,
) -> DptOverheads {
    let m = node.gpus;
    let link = node.device.host_link_bw;
    let batch_bytes = batch_node as f64 * sample_bytes(census);
    let shard_bytes = batch_bytes / m as f64;
    let payload = census.payload_bytes();
    match variant {
        DptVariant::Baseline => DptOverheads {
            // Whole batch to GPU1, then (m−1) shard copies serialized
            // through GPU1's link.
            input_movement: batch_bytes / link + (m as f64 - 1.0) * shard_bytes / link,
            // Outputs gathered to GPU1, criterion on the full batch there,
            // gradient scattered back. Output tensors are small; the
            // criterion itself runs on one GPU over the whole batch.
            criterion: criterion_secs(census, batch_node, node)
                + 2.0 * (batch_node * census.classes) as f64 * 4.0 / link,
            // (m−1) full payloads serialized into GPU1 through pageable host
            // memory, plus the summation there.
            gradient_reduce: (m as f64 - 1.0)
                * (payload / params.pageable_copy_bw + payload / node.device.mem_bw),
            callbacks: params.callback_secs * (params.baseline_sync_points * m) as f64,
        },
        DptVariant::Optimized => DptOverheads {
            // Direct shard copies proceed in parallel over per-GPU links.
            input_movement: shard_bytes / link,
            // Criterion on every GPU over its own shard, in parallel.
            criterion: criterion_secs(census, batch_node / m, node),
            // Tree reduction across the node.
            gradient_reduce: node.intra_node_reduce_secs(payload),
            callbacks: params.callback_secs * (params.optimized_sync_points * m) as f64,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcnn_gpusim::NodeModel;
    use dcnn_models::{googlenet_bn, resnet50};

    #[test]
    fn optimized_is_cheaper() {
        let node = NodeModel::minsky();
        let p = DptParams::default();
        for census in [googlenet_bn(), resnet50()] {
            let base = iter_overhead_secs(&census, 256, &node, &p, DptVariant::Baseline);
            let opt = iter_overhead_secs(&census, 256, &node, &p, DptVariant::Optimized);
            assert!(
                opt.total() < base.total(),
                "{}: opt {} vs base {}",
                census.name,
                opt.total(),
                base.total()
            );
            assert!(opt.input_movement < base.input_movement);
            assert!(opt.callbacks < base.callbacks);
        }
    }

    #[test]
    fn figure12_magnitude_band() {
        // §5.3: the DPT optimizations improve per-epoch time by 15%
        // (GoogLeNet-BN) and 18% (ResNet-50). The per-iteration saving over
        // compute should land in that neighbourhood.
        let node = NodeModel::minsky();
        let p = DptParams::default();
        for (census, lo, hi) in [(googlenet_bn(), 0.10, 0.30), (resnet50(), 0.12, 0.26)] {
            let batch = 64 * node.gpus;
            let base = iter_overhead_secs(&census, batch, &node, &p, DptVariant::Baseline);
            let opt = iter_overhead_secs(&census, batch, &node, &p, DptVariant::Optimized);
            let compute = node.device.train_step_secs(&census, 64);
            let saving = (base.total() - opt.total()) / (compute + opt.total());
            assert!(
                (lo..hi).contains(&saving),
                "{}: saving fraction {saving:.3}",
                census.name
            );
        }
    }

    #[test]
    fn single_gpu_node_has_minimal_overhead_difference() {
        let mut node = NodeModel::minsky();
        node.gpus = 1;
        let p = DptParams::default();
        let census = resnet50();
        let base = iter_overhead_secs(&census, 64, &node, &p, DptVariant::Baseline);
        let opt = iter_overhead_secs(&census, 64, &node, &p, DptVariant::Optimized);
        // With one GPU there is no scatter/reduce; only callback counts differ.
        assert_eq!(base.gradient_reduce, 0.0);
        assert_eq!(opt.gradient_reduce, 0.0);
        assert!(base.total() > opt.total());
        assert!(base.total() - opt.total() <= p.callback_secs * 6.0 + 1e-2);
    }

    #[test]
    fn overheads_scale_with_batch() {
        let node = NodeModel::minsky();
        let p = DptParams::default();
        let census = googlenet_bn();
        let small = iter_overhead_secs(&census, 64, &node, &p, DptVariant::Baseline);
        let large = iter_overhead_secs(&census, 512, &node, &p, DptVariant::Baseline);
        assert!(large.input_movement > 7.0 * small.input_movement);
        // Gradient reduce is batch-independent.
        assert!((large.gradient_reduce - small.gradient_reduce).abs() < 1e-12);
    }
}
