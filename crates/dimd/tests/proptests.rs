//! Property-based tests for the DIMD substrate.

use dcnn_dimd::blob::BlobStore;
use dcnn_dimd::codec::{decode_image, encode_image, psnr};
use dcnn_dimd::image::RawImage;
use proptest::prelude::*;

fn arb_image() -> impl Strategy<Value = RawImage> {
    (1usize..=3, 1usize..=40, 1usize..=40, 0u64..1_000_000).prop_map(|(c, h, w, seed)| {
        let mut s = seed | 1;
        let data = (0..c * h * w)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 256) as u8
            })
            .collect();
        RawImage { c, h, w, data }
    })
}

fn smooth_image() -> impl Strategy<Value = RawImage> {
    (1usize..=3, 8usize..=48, 8usize..=48, 0u32..1000).prop_map(|(c, h, w, phase)| {
        let mut img = RawImage::new(c, h, w);
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    let v = 128.0
                        + 55.0 * ((x as f32) * 0.11 + phase as f32 * 0.01).sin()
                        + 45.0 * ((y as f32) * 0.09 + ci as f32).cos();
                    img.set(ci, y, x, v.clamp(0.0, 255.0) as u8);
                }
            }
        }
        img
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The codec round-trips any dimensions without panicking or changing
    /// the shape, even on pure noise (worst case for a DCT codec).
    #[test]
    fn codec_roundtrip_shape(img in arb_image(), q in 1u8..=100) {
        let enc = encode_image(&img, q);
        let dec = decode_image(&enc);
        prop_assert_eq!((dec.c, dec.h, dec.w), (img.c, img.h, img.w));
        prop_assert_eq!(dec.data.len(), img.data.len());
    }

    /// On smooth content the codec is both faithful (PSNR) and compressive.
    #[test]
    fn codec_quality_on_smooth_content(img in smooth_image()) {
        let enc = encode_image(&img, 70);
        let dec = decode_image(&enc);
        prop_assert!(psnr(&img, &dec) > 28.0);
        prop_assert!(enc.len() < img.data.len(), "no compression: {} vs {}", enc.len(), img.data.len());
    }

    /// Higher quality never reduces PSNR by a meaningful margin.
    #[test]
    fn quality_monotone_fidelity(img in smooth_image()) {
        let lo = decode_image(&encode_image(&img, 25));
        let hi = decode_image(&encode_image(&img, 90));
        prop_assert!(psnr(&img, &hi) >= psnr(&img, &lo) - 0.5);
    }

    /// Resize preserves value bounds and hits requested dimensions.
    #[test]
    fn resize_bounds(img in arb_image(), nh in 1usize..50, nw in 1usize..50) {
        let r = img.resize(nh, nw);
        prop_assert_eq!((r.h, r.w), (nh, nw));
        let (mn, mx) = img.data.iter().fold((255u8, 0u8), |(a, b), &v| (a.min(v), b.max(v)));
        prop_assert!(r.data.iter().all(|&v| v >= mn && v <= mx));
    }

    /// Blob file format round-trips arbitrary record sets.
    #[test]
    fn blob_file_roundtrip(records in prop::collection::vec((prop::collection::vec(any::<u8>(), 0..200), any::<u32>()), 0..20)) {
        let mut store = BlobStore::default();
        for (bytes, label) in &records {
            store.push_record(bytes, *label);
        }
        let back = BlobStore::from_file_bytes(&store.to_file_bytes());
        prop_assert_eq!(back.len(), records.len());
        for (i, (bytes, label)) in records.iter().enumerate() {
            prop_assert_eq!(back.record(i), bytes.as_slice());
            prop_assert_eq!(back.label(i), *label);
        }
    }

    /// Shorter-side resize always makes the shorter side the target.
    #[test]
    fn resize_shorter_invariant(img in arb_image(), short in 4usize..64) {
        let r = img.resize_shorter_to(short);
        prop_assert_eq!(r.h.min(r.w), short);
        // Aspect ratio approximately preserved.
        let orig = img.h as f64 / img.w as f64;
        let new = r.h as f64 / r.w as f64;
        prop_assert!((orig.ln() - new.ln()).abs() < 0.35, "{orig} vs {new}");
    }
}

mod shuffle_props {
    use dcnn_collectives::run_cluster;
    use dcnn_dimd::shuffle::shuffle_records;
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Conservation: the global record multiset survives any shuffle,
        /// for any rank count, record distribution and segment cap.
        #[test]
        fn shuffle_conserves(n in 2usize..5, counts in prop::collection::vec(0usize..15, 2..5),
                             cap in 32usize..100_000, seed in 0u64..1000) {
            let n = n.min(counts.len());
            let make = |rank: usize| -> Vec<(Vec<u8>, u32)> {
                (0..counts[rank])
                    .map(|i| (vec![(rank * 17 + i) as u8; 3 + (i % 9)], (rank * 100 + i) as u32))
                    .collect()
            };
            let mut expect: HashMap<(Vec<u8>, u32), usize> = HashMap::new();
            for r in 0..n {
                for rec in make(r) {
                    *expect.entry(rec).or_insert(0) += 1;
                }
            }
            let after = run_cluster(n, |c| shuffle_records(c, make(c.rank()), seed, cap));
            let mut got: HashMap<(Vec<u8>, u32), usize> = HashMap::new();
            for recs in after {
                for rec in recs {
                    *got.entry(rec).or_insert(0) += 1;
                }
            }
            prop_assert_eq!(got, expect);
        }
    }
}
