//! Raw images and the preprocessing the paper applies before storage and
//! training: shorter-side resize (to 256, aspect preserved), random crop to
//! the network input size, horizontal flip, and per-channel normalization.

use dcnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::RngExt;

/// An 8-bit interleaved-by-channel image: `data[c][h][w]`, row-major per
/// channel plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawImage {
    /// Channel count (3 for RGB).
    pub c: usize,
    /// Height in pixels.
    pub h: usize,
    /// Width in pixels.
    pub w: usize,
    /// Planar pixel data, `c · h · w` bytes.
    pub data: Vec<u8>,
}

impl RawImage {
    /// Allocate a zeroed image.
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        RawImage { c, h, w, data: vec![0; c * h * w] }
    }

    /// Pixel accessor.
    pub fn at(&self, c: usize, y: usize, x: usize) -> u8 {
        self.data[(c * self.h + y) * self.w + x]
    }

    /// Pixel setter.
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: u8) {
        self.data[(c * self.h + y) * self.w + x] = v;
    }

    /// Bilinear resize to exactly `nh × nw`.
    pub fn resize(&self, nh: usize, nw: usize) -> RawImage {
        assert!(nh > 0 && nw > 0);
        let mut out = RawImage::new(self.c, nh, nw);
        let sy = self.h as f32 / nh as f32;
        let sx = self.w as f32 / nw as f32;
        for c in 0..self.c {
            for y in 0..nh {
                let fy = ((y as f32 + 0.5) * sy - 0.5).clamp(0.0, (self.h - 1) as f32);
                let y0 = fy.floor() as usize;
                let y1 = (y0 + 1).min(self.h - 1);
                let wy = fy - y0 as f32;
                for x in 0..nw {
                    let fx = ((x as f32 + 0.5) * sx - 0.5).clamp(0.0, (self.w - 1) as f32);
                    let x0 = fx.floor() as usize;
                    let x1 = (x0 + 1).min(self.w - 1);
                    let wx = fx - x0 as f32;
                    let p = self.at(c, y0, x0) as f32 * (1.0 - wy) * (1.0 - wx)
                        + self.at(c, y0, x1) as f32 * (1.0 - wy) * wx
                        + self.at(c, y1, x0) as f32 * wy * (1.0 - wx)
                        + self.at(c, y1, x1) as f32 * wy * wx;
                    out.set(c, y, x, p.round().clamp(0.0, 255.0) as u8);
                }
            }
        }
        out
    }

    /// The paper's storage preprocessing: resize so the *shorter* side is
    /// `short` pixels, preserving aspect ratio (§4.1).
    pub fn resize_shorter_to(&self, short: usize) -> RawImage {
        if self.h <= self.w {
            let nw = (self.w as f64 * short as f64 / self.h as f64).round().max(1.0) as usize;
            self.resize(short, nw)
        } else {
            let nh = (self.h as f64 * short as f64 / self.w as f64).round().max(1.0) as usize;
            self.resize(nh, short)
        }
    }

    /// Crop a `size × size` window at `(top, left)`.
    pub fn crop(&self, top: usize, left: usize, size: usize) -> RawImage {
        assert!(top + size <= self.h && left + size <= self.w, "crop out of bounds");
        let mut out = RawImage::new(self.c, size, size);
        for c in 0..self.c {
            for y in 0..size {
                for x in 0..size {
                    out.set(c, y, x, self.at(c, top + y, left + x));
                }
            }
        }
        out
    }

    /// Horizontal flip.
    pub fn hflip(&self) -> RawImage {
        let mut out = RawImage::new(self.c, self.h, self.w);
        for c in 0..self.c {
            for y in 0..self.h {
                for x in 0..self.w {
                    out.set(c, y, x, self.at(c, y, self.w - 1 - x));
                }
            }
        }
        out
    }

    /// Training augmentation as in §5: random `size²` crop + random flip.
    pub fn random_crop_flip(&self, size: usize, rng: &mut StdRng) -> RawImage {
        let base = if self.h < size || self.w < size {
            self.resize(size.max(self.h), size.max(self.w))
        } else {
            self.clone()
        };
        let top = if base.h > size { rng.random_range(0..=base.h - size) } else { 0 };
        let left = if base.w > size { rng.random_range(0..=base.w - size) } else { 0 };
        let cropped = base.crop(top, left, size);
        if rng.random::<bool>() {
            cropped.hflip()
        } else {
            cropped
        }
    }

    /// Center crop (validation path).
    pub fn center_crop(&self, size: usize) -> RawImage {
        let base = if self.h < size || self.w < size {
            self.resize(size.max(self.h), size.max(self.w))
        } else {
            self.clone()
        };
        base.crop((base.h - size) / 2, (base.w - size) / 2, size)
    }

    /// Convert to a normalized `[C, H, W]` tensor: `(px/255 − mean) / std`
    /// per channel.
    pub fn to_tensor(&self, mean: &[f32], std: &[f32]) -> Tensor {
        assert_eq!(mean.len(), self.c);
        assert_eq!(std.len(), self.c);
        let plane = self.h * self.w;
        let mut data = Vec::with_capacity(self.c * plane);
        for c in 0..self.c {
            let (m, s) = (mean[c], std[c]);
            for &px in &self.data[c * plane..(c + 1) * plane] {
                data.push((px as f32 / 255.0 - m) / s);
            }
        }
        Tensor::from_vec(data, &[self.c, self.h, self.w])
    }
}

/// ImageNet channel means (the standard constants the paper's packages use).
pub const IMAGENET_MEAN: [f32; 3] = [0.485, 0.456, 0.406];
/// ImageNet channel standard deviations.
pub const IMAGENET_STD: [f32; 3] = [0.229, 0.224, 0.225];

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn gradient_image(c: usize, h: usize, w: usize) -> RawImage {
        let mut img = RawImage::new(c, h, w);
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    img.set(ci, y, x, ((x * 255) / w.max(1)) as u8);
                }
            }
        }
        img
    }

    #[test]
    fn resize_identity() {
        let img = gradient_image(3, 10, 12);
        let r = img.resize(10, 12);
        assert_eq!(r, img);
    }

    #[test]
    fn resize_shorter_side_preserves_aspect() {
        let img = gradient_image(3, 100, 200);
        let r = img.resize_shorter_to(256);
        assert_eq!(r.h, 256);
        assert_eq!(r.w, 512);
        let img2 = gradient_image(3, 300, 150);
        let r2 = img2.resize_shorter_to(256);
        assert_eq!(r2.w, 256);
        assert_eq!(r2.h, 512);
    }

    #[test]
    fn resize_preserves_constant_images() {
        let img = RawImage { c: 1, h: 7, w: 9, data: vec![123; 63] };
        let r = img.resize(13, 4);
        assert!(r.data.iter().all(|&v| v == 123));
    }

    #[test]
    fn crop_extracts_window() {
        let img = gradient_image(1, 8, 8);
        let c = img.crop(2, 3, 4);
        assert_eq!(c.h, 4);
        assert_eq!(c.at(0, 0, 0), img.at(0, 2, 3));
        assert_eq!(c.at(0, 3, 3), img.at(0, 5, 6));
    }

    #[test]
    #[should_panic]
    fn crop_out_of_bounds_panics() {
        let img = gradient_image(1, 8, 8);
        let _ = img.crop(6, 6, 4);
    }

    #[test]
    fn hflip_mirrors() {
        let img = gradient_image(1, 2, 4);
        let f = img.hflip();
        assert_eq!(f.at(0, 0, 0), img.at(0, 0, 3));
        assert_eq!(f.hflip(), img);
    }

    #[test]
    fn random_crop_flip_is_deterministic_per_seed() {
        let img = gradient_image(3, 40, 60);
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        assert_eq!(img.random_crop_flip(32, &mut r1), img.random_crop_flip(32, &mut r2));
    }

    #[test]
    fn center_crop_upscales_small_inputs() {
        let img = gradient_image(3, 16, 16);
        let c = img.center_crop(24);
        assert_eq!((c.h, c.w), (24, 24));
    }

    #[test]
    fn to_tensor_normalizes() {
        let mut img = RawImage::new(3, 1, 1);
        img.set(0, 0, 0, 255);
        let t = img.to_tensor(&IMAGENET_MEAN, &IMAGENET_STD);
        assert_eq!(t.shape(), &[3, 1, 1]);
        let expect = (1.0 - IMAGENET_MEAN[0]) / IMAGENET_STD[0];
        assert!((t.data()[0] - expect).abs() < 1e-6);
        let expect_zero = (0.0 - IMAGENET_MEAN[1]) / IMAGENET_STD[1];
        assert!((t.data()[1] - expect_zero).abs() < 1e-6);
    }
}
