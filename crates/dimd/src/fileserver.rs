//! Analytic model of the network file server — the bottleneck DIMD removes.
//!
//! §4.1: "a critical scaling bottleneck was insufficient I/O throughput from
//! the file system. The Torch donkeys … were unable to load the next samples
//! of the mini-batch before the GPUs finished executing". The characteristic
//! asymmetry is that *sequential* bulk reads are fast while *random*
//! per-image reads pay a request latency and a low per-stream bandwidth —
//! that asymmetry is exactly why loading the whole blob once (DIMD) wins
//! over fetching random JPEGs every iteration.

use serde::{Deserialize, Serialize};

/// A shared network file server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FileServer {
    /// Aggregate sequential read bandwidth, bytes/s (shared by all nodes).
    pub seq_bw: f64,
    /// Latency of one random read request, seconds.
    pub req_latency: f64,
    /// Per-stream bandwidth of random reads, bytes/s.
    pub rand_stream_bw: f64,
    /// Concurrent random streams the server sustains before saturating.
    pub max_streams: usize,
}

impl FileServer {
    /// A GPFS-class installation consistent with the paper's observations:
    /// healthy sequential bandwidth (12 GB/s aggregate — bulk loads are
    /// cheap), but random per-image reads pay a 1.5 ms request latency and a
    /// modest per-stream bandwidth, so the donkey pipeline cannot hide them
    /// (4 P100s outrun it, §4.1).
    pub fn paper_nfs() -> Self {
        FileServer {
            seq_bw: 12e9,
            req_latency: 1.5e-3,
            rand_stream_bw: 40e6,
            max_streams: 640,
        }
    }

    /// Seconds for all nodes together to bulk-load `total_bytes`
    /// sequentially (the one-time DIMD partitioned load).
    pub fn bulk_load_secs(&self, total_bytes: f64) -> f64 {
        total_bytes / self.seq_bw
    }

    /// Aggregate random-read throughput (bytes/s) for records of
    /// `avg_record_bytes`, with `streams` concurrent reader threads across
    /// the cluster.
    pub fn random_read_bw(&self, avg_record_bytes: f64, streams: usize) -> f64 {
        let s = streams.min(self.max_streams) as f64;
        let per_stream =
            avg_record_bytes / (self.req_latency + avg_record_bytes / self.rand_stream_bw);
        (s * per_stream).min(self.seq_bw)
    }

    /// Seconds for the cluster to randomly read `images` records of
    /// `avg_record_bytes` with `streams` concurrent donkey threads — the
    /// per-epoch I/O cost of the non-DIMD baseline.
    pub fn epoch_random_read_secs(
        &self,
        images: usize,
        avg_record_bytes: f64,
        streams: usize,
    ) -> f64 {
        images as f64 * avg_record_bytes / self.random_read_bw(avg_record_bytes, streams)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_load_is_linear() {
        let fs = FileServer::paper_nfs();
        // 74 GB (ImageNet-1k blob) at 12 GB/s ≈ 6 s.
        let t = fs.bulk_load_secs(74e9);
        assert!((5.0..8.0).contains(&t), "bulk {t}");
        assert!((fs.bulk_load_secs(148e9) / t - 2.0).abs() < 1e-9);
    }

    #[test]
    fn random_reads_much_slower_than_sequential() {
        let fs = FileServer::paper_nfs();
        // 110 KB average JPEG (ImageNet-1k: 74 GB / 1.28 M images ≈ 58 KB).
        let bw = fs.random_read_bw(58e3, 32);
        assert!(bw < fs.seq_bw * 0.25, "random bw {bw} too close to sequential");
    }

    #[test]
    fn more_streams_help_until_saturation() {
        let fs = FileServer::paper_nfs();
        let b8 = fs.random_read_bw(58e3, 8);
        let b64 = fs.random_read_bw(58e3, 64);
        let b1000 = fs.random_read_bw(58e3, 1000);
        let b2000 = fs.random_read_bw(58e3, 2000);
        assert!(b64 > b8);
        assert!(b1000 >= b64);
        assert_eq!(b1000, b2000, "capped at max_streams/seq_bw");
    }

    #[test]
    fn bigger_records_amortize_latency() {
        let fs = FileServer::paper_nfs();
        let small = fs.random_read_bw(10e3, 16);
        let large = fs.random_read_bw(1e6, 16);
        assert!(large > 2.0 * small, "large {large} vs small {small}");
    }

    #[test]
    fn random_epoch_dwarfs_bulk_load() {
        // The premise behind DIMD (Figure 10): randomly reading the dataset
        // every epoch costs far more than bulk-loading it once.
        let fs = FileServer::paper_nfs();
        let bulk = fs.bulk_load_secs(74e9);
        let random = fs.epoch_random_read_secs(1_281_167, 110e3, 8 * 20);
        assert!(
            random > 5.0 * bulk,
            "random epoch {random:.0}s vs one bulk load {bulk:.0}s"
        );
    }
}
