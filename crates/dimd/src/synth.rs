//! SynthImageNet: a seeded, class-conditional image generator.
//!
//! We do not have ImageNet, so we synthesize a classification dataset whose
//! *learnability* mirrors the real task's role in the paper: each class owns
//! a random low-frequency pattern bank; an image is its class pattern under
//! a random phase shift, contrast jitter and pixel noise. A CNN must learn
//! translation-robust class signatures — trivially separable datasets would
//! make the accuracy curves (Figures 13–16) meaningless.

use crate::image::RawImage;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of classes.
    pub classes: usize,
    /// Training images per class.
    pub train_per_class: usize,
    /// Validation images per class.
    pub val_per_class: usize,
    /// Generated image height/width (images are square at `base ± jitter`).
    pub base_hw: usize,
    /// ± size jitter so the resize path is exercised (0 = fixed size).
    pub hw_jitter: usize,
    /// Pixel noise amplitude (0–128).
    pub noise: f32,
    /// Master seed.
    pub seed: u64,
}

impl SynthConfig {
    /// A small, quickly learnable config for CPU training tests.
    pub fn tiny(classes: usize) -> Self {
        SynthConfig {
            classes,
            train_per_class: 64,
            val_per_class: 16,
            base_hw: 32,
            hw_jitter: 0,
            noise: 18.0,
            seed: 0x5EED,
        }
    }
}

/// The dataset: deterministic function of (config, split, index).
#[derive(Debug, Clone)]
pub struct SynthImageNet {
    cfg: SynthConfig,
    /// Per class: two spatial frequency pairs and channel amplitudes.
    patterns: Vec<ClassPattern>,
}

#[derive(Debug, Clone)]
struct ClassPattern {
    fx: [f32; 2],
    fy: [f32; 2],
    amp: [f32; 3],
    chroma: [f32; 3],
}

impl SynthImageNet {
    /// Build the generator (cheap; images are produced lazily).
    pub fn new(cfg: SynthConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let patterns = (0..cfg.classes)
            .map(|_| ClassPattern {
                fx: [rng.random_range(0.15..0.9), rng.random_range(0.15..0.9)],
                fy: [rng.random_range(0.15..0.9), rng.random_range(0.15..0.9)],
                amp: [
                    rng.random_range(30.0..70.0),
                    rng.random_range(30.0..70.0),
                    rng.random_range(30.0..70.0),
                ],
                chroma: [
                    rng.random_range(-30.0..30.0),
                    rng.random_range(-30.0..30.0),
                    rng.random_range(-30.0..30.0),
                ],
            })
            .collect();
        SynthImageNet { cfg, patterns }
    }

    /// The configuration.
    pub fn config(&self) -> &SynthConfig {
        &self.cfg
    }

    /// Total training images.
    pub fn train_len(&self) -> usize {
        self.cfg.classes * self.cfg.train_per_class
    }

    /// Total validation images.
    pub fn val_len(&self) -> usize {
        self.cfg.classes * self.cfg.val_per_class
    }

    /// Label of training image `i` (images are class-major).
    pub fn train_label(&self, i: usize) -> usize {
        i / self.cfg.train_per_class
    }

    /// Label of validation image `i`.
    pub fn val_label(&self, i: usize) -> usize {
        i / self.cfg.val_per_class
    }

    /// Generate training image `i`.
    pub fn train_image(&self, i: usize) -> RawImage {
        assert!(i < self.train_len());
        self.render(self.train_label(i), i as u64, false)
    }

    /// Generate validation image `i`.
    pub fn val_image(&self, i: usize) -> RawImage {
        assert!(i < self.val_len());
        self.render(self.val_label(i), 0x8000_0000_0000_0000 | i as u64, true)
    }

    fn render(&self, class: usize, salt: u64, val: bool) -> RawImage {
        let mut mix = salt
            .wrapping_add(self.cfg.seed)
            .wrapping_add(if val { 0x5851_F42D_4C95_7F2D } else { 0 });
        mix ^= mix >> 30;
        mix = mix.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        mix ^= mix >> 27;
        mix = mix.wrapping_mul(0x94D0_49BB_1331_11EB);
        mix ^= mix >> 31;
        let mut rng = StdRng::seed_from_u64(mix);
        let jitter = if self.cfg.hw_jitter > 0 {
            rng.random_range(0..=2 * self.cfg.hw_jitter) as i64 - self.cfg.hw_jitter as i64
        } else {
            0
        };
        let hw = (self.cfg.base_hw as i64 + jitter).max(8) as usize;
        let p = &self.patterns[class];
        let phase_x: f32 = rng.random_range(0.0..std::f32::consts::TAU);
        let phase_y: f32 = rng.random_range(0.0..std::f32::consts::TAU);
        let contrast: f32 = rng.random_range(0.7..1.3);
        let mut img = RawImage::new(3, hw, hw);
        for c in 0..3 {
            for y in 0..hw {
                for x in 0..hw {
                    let s = (p.fx[0] * x as f32 + phase_x).sin() * (p.fy[0] * y as f32 + phase_y).cos()
                        + (p.fx[1] * x as f32 + phase_y).cos() * (p.fy[1] * y as f32 + phase_x).sin();
                    let noise: f32 = rng.random_range(-self.cfg.noise..=self.cfg.noise);
                    let v = 128.0 + p.chroma[c] + contrast * p.amp[c] * s * 0.5 + noise;
                    img.set(c, y, x, v.clamp(0.0, 255.0) as u8);
                }
            }
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let ds = SynthImageNet::new(SynthConfig::tiny(4));
        assert_eq!(ds.train_image(7), ds.train_image(7));
        let ds2 = SynthImageNet::new(SynthConfig::tiny(4));
        assert_eq!(ds.train_image(7), ds2.train_image(7));
    }

    #[test]
    fn different_images_differ() {
        let ds = SynthImageNet::new(SynthConfig::tiny(4));
        assert_ne!(ds.train_image(0), ds.train_image(1));
        assert_ne!(ds.train_image(0), ds.val_image(0));
    }

    #[test]
    fn labels_are_class_major() {
        let ds = SynthImageNet::new(SynthConfig::tiny(3));
        assert_eq!(ds.train_label(0), 0);
        assert_eq!(ds.train_label(63), 0);
        assert_eq!(ds.train_label(64), 1);
        assert_eq!(ds.val_label(47), 2);
        assert_eq!(ds.train_len(), 192);
        assert_eq!(ds.val_len(), 48);
    }

    #[test]
    fn size_jitter_produces_varied_dims() {
        let mut cfg = SynthConfig::tiny(2);
        cfg.hw_jitter = 8;
        cfg.base_hw = 48;
        let ds = SynthImageNet::new(cfg);
        let sizes: std::collections::HashSet<usize> =
            (0..20).map(|i| ds.train_image(i).h).collect();
        assert!(sizes.len() > 1, "jitter should vary sizes");
        assert!(sizes.iter().all(|&s| (40..=56).contains(&s)));
    }

    #[test]
    fn classes_are_statistically_distinct() {
        // Mean per-class images should differ more across classes than the
        // noise level within a class.
        let ds = SynthImageNet::new(SynthConfig::tiny(2));
        let mean_img = |class: usize| {
            let mut acc = vec![0.0f64; 3 * 32 * 32];
            for i in 0..8 {
                let img = ds.train_image(class * 64 + i);
                for (a, &b) in acc.iter_mut().zip(&img.data) {
                    *a += b as f64 / 8.0;
                }
            }
            acc
        };
        let m0 = mean_img(0);
        let m1 = mean_img(1);
        let dist: f64 =
            m0.iter().zip(&m1).map(|(a, b)| (a - b).abs()).sum::<f64>() / m0.len() as f64;
        assert!(dist > 5.0, "class means too similar: {dist}");
    }

    #[test]
    fn images_survive_codec() {
        let ds = SynthImageNet::new(SynthConfig::tiny(2));
        let img = ds.train_image(0);
        let enc = crate::codec::encode_image(&img, 60);
        let dec = crate::codec::decode_image(&enc);
        assert!(crate::codec::psnr(&img, &dec) > 24.0);
    }
}
