//! CRC-32 (IEEE 802.3) — record-level integrity for the blob store. A
//! 220 GB blob that lives for a multi-day 22k training run on GPFS wants
//! end-to-end checksums; every production record format (TFRecord,
//! RecordIO) carries them.
//!
//! The implementation lives in `dcnn_collectives::transport` (the TCP
//! frame trailer uses the same polynomial, and the dependency already
//! points dimd → collectives); this module re-exports it so blob-store
//! code keeps its `crc::crc32` spelling.

pub use dcnn_collectives::transport::{crc32, crc32_bytewise, crc32_update};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sliced_and_bytewise_agree_on_record_shaped_buffers() {
        // Blob records are arbitrary-length compressed byte runs; sweep the
        // alignment classes a record boundary can land on.
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1021, 4096] {
            let data: Vec<u8> =
                (0..len).map(|i| ((i as u32).wrapping_mul(2654435761) >> 13) as u8).collect();
            assert_eq!(crc32(&data), crc32_bytewise(&data), "len {len}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = vec![0xA5u8; 257];
        let base = crc32(&data);
        for byte in [0usize, 100, 256] {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "missed flip at {byte}:{bit}");
            }
        }
    }
}
