//! CRC-32 (IEEE 802.3), from scratch — record-level integrity for the blob
//! store. A 220 GB blob that lives for a multi-day 22k training run on GPFS
//! wants end-to-end checksums; every production record format (TFRecord,
//! RecordIO) carries them.

/// Reflected polynomial of CRC-32/IEEE.
const POLY: u32 = 0xEDB8_8320;

const fn table() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        t[i] = c;
        i += 1;
    }
    t
}

/// Lookup table computed at compile time.
static TABLE: [u32; 256] = table();

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = vec![0xA5u8; 257];
        let base = crc32(&data);
        for byte in [0usize, 100, 256] {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "missed flip at {byte}:{bit}");
            }
        }
    }
}
