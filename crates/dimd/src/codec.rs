//! A from-scratch block-DCT image codec.
//!
//! The paper stores the dataset as compressed JPEGs and decompresses them
//! in memory during SGD ("an in-memory JPEG decompresser is also used to
//! decompress images to generate image tensor objects", §4.1). We implement
//! the same class of codec so that record sizes, compression ratios and
//! decode CPU costs are real: 8×8 DCT-II per channel, JPEG-style
//! quality-scaled quantization, zigzag scan, DC delta coding and
//! varint entropy coding with end-of-block truncation.

use crate::image::RawImage;

const MAGIC: &[u8; 4] = b"DCC1";

/// JPEG Annex K luminance quantization table (zigzag-ordered at use time).
const QBASE: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// Zigzag scan order for an 8×8 block.
const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27,
    20, 13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58,
    59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

fn quant_table(quality: u8) -> [f32; 64] {
    let q = quality.clamp(1, 100) as f32;
    let scale = if q < 50.0 { 5000.0 / q } else { 200.0 - 2.0 * q } / 100.0;
    let mut t = [0.0f32; 64];
    for i in 0..64 {
        t[i] = (QBASE[i] as f32 * scale).clamp(1.0, 255.0);
    }
    t
}

/// Orthonormal 8-point DCT-II basis, precomputed.
fn dct_basis() -> [[f32; 8]; 8] {
    let mut b = [[0.0f32; 8]; 8];
    for (k, row) in b.iter_mut().enumerate() {
        let a = if k == 0 { (1.0f32 / 8.0).sqrt() } else { (2.0f32 / 8.0).sqrt() };
        for (n, v) in row.iter_mut().enumerate() {
            *v = a * ((std::f32::consts::PI / 8.0) * (n as f32 + 0.5) * k as f32).cos();
        }
    }
    b
}

fn dct2d(block: &[f32; 64], basis: &[[f32; 8]; 8]) -> [f32; 64] {
    // rows then columns
    let mut tmp = [0.0f32; 64];
    for y in 0..8 {
        for k in 0..8 {
            let mut acc = 0.0;
            for x in 0..8 {
                acc += block[y * 8 + x] * basis[k][x];
            }
            tmp[y * 8 + k] = acc;
        }
    }
    let mut out = [0.0f32; 64];
    for k in 0..8 {
        for x in 0..8 {
            let mut acc = 0.0;
            for y in 0..8 {
                acc += tmp[y * 8 + x] * basis[k][y];
            }
            out[k * 8 + x] = acc;
        }
    }
    out
}

fn idct2d(coef: &[f32; 64], basis: &[[f32; 8]; 8]) -> [f32; 64] {
    let mut tmp = [0.0f32; 64];
    for k in 0..8 {
        for x in 0..8 {
            let mut acc = 0.0;
            for ky in 0..8 {
                acc += coef[ky * 8 + x] * basis[ky][k];
            }
            tmp[k * 8 + x] = acc;
        }
    }
    let mut out = [0.0f32; 64];
    for y in 0..8 {
        for x in 0..8 {
            let mut acc = 0.0;
            for kx in 0..8 {
                acc += tmp[y * 8 + kx] * basis[kx][x];
            }
            out[y * 8 + x] = acc;
        }
    }
    out
}

fn put_varint(out: &mut Vec<u8>, v: i32) {
    // zigzag-map the sign, then LEB128.
    let mut u = ((v << 1) ^ (v >> 31)) as u32;
    loop {
        let byte = (u & 0x7F) as u8;
        u >>= 7;
        if u == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(data: &[u8], pos: &mut usize) -> i32 {
    let mut u: u32 = 0;
    let mut shift = 0;
    loop {
        let byte = data[*pos];
        *pos += 1;
        u |= ((byte & 0x7F) as u32) << shift;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
        assert!(shift < 35, "varint too long");
    }
    ((u >> 1) as i32) ^ -((u & 1) as i32)
}

/// Compress an image. `quality` ∈ 1..=100 (higher = larger + more faithful).
pub fn encode_image(img: &RawImage, quality: u8) -> Vec<u8> {
    let qt = quant_table(quality);
    let basis = dct_basis();
    let mut out = Vec::with_capacity(img.data.len() / 4 + 32);
    out.extend_from_slice(MAGIC);
    out.push(img.c as u8);
    out.extend_from_slice(&(img.h as u32).to_le_bytes());
    out.extend_from_slice(&(img.w as u32).to_le_bytes());
    out.push(quality.clamp(1, 100));

    let bh = img.h.div_ceil(8);
    let bw = img.w.div_ceil(8);
    for c in 0..img.c {
        let mut prev_dc: i32 = 0;
        for by in 0..bh {
            for bx in 0..bw {
                // Gather the block with edge replication, centered at 0.
                let mut block = [0.0f32; 64];
                for y in 0..8 {
                    let sy = (by * 8 + y).min(img.h - 1);
                    for x in 0..8 {
                        let sx = (bx * 8 + x).min(img.w - 1);
                        block[y * 8 + x] = img.at(c, sy, sx) as f32 - 128.0;
                    }
                }
                let coef = dct2d(&block, &basis);
                // Quantize in zigzag order; DC is delta-coded.
                let mut q = [0i32; 64];
                for (zi, &pos) in ZIGZAG.iter().enumerate() {
                    q[zi] = (coef[pos] / qt[pos]).round() as i32;
                }
                let dc = q[0];
                q[0] = dc - prev_dc;
                prev_dc = dc;
                // End-of-block: keep coefficients up to the last nonzero.
                let last = q.iter().rposition(|&v| v != 0).map(|i| i + 1).unwrap_or(0);
                out.push(last as u8);
                for &v in &q[..last] {
                    put_varint(&mut out, v);
                }
            }
        }
    }
    out
}

/// Decompress an image produced by [`encode_image`].
///
/// # Panics
/// Panics on malformed input (wrong magic, truncation).
pub fn decode_image(data: &[u8]) -> RawImage {
    assert!(data.len() > 14 && &data[0..4] == MAGIC, "bad codec magic");
    let c = data[4] as usize;
    let h = u32::from_le_bytes(data[5..9].try_into().expect("4")) as usize;
    let w = u32::from_le_bytes(data[9..13].try_into().expect("4")) as usize;
    let quality = data[13];
    let qt = quant_table(quality);
    let basis = dct_basis();
    let mut img = RawImage::new(c, h, w);
    let mut pos = 14usize;
    let bh = h.div_ceil(8);
    let bw = w.div_ceil(8);
    for ci in 0..c {
        let mut prev_dc: i32 = 0;
        for by in 0..bh {
            for bx in 0..bw {
                let last = data[pos] as usize;
                pos += 1;
                assert!(last <= 64, "corrupt block header");
                let mut q = [0i32; 64];
                for item in q.iter_mut().take(last) {
                    *item = get_varint(data, &mut pos);
                }
                let dc = q[0] + prev_dc;
                prev_dc = dc;
                q[0] = dc;
                let mut coef = [0.0f32; 64];
                for (zi, &p) in ZIGZAG.iter().enumerate() {
                    coef[p] = q[zi] as f32 * qt[p];
                }
                let block = idct2d(&coef, &basis);
                for y in 0..8 {
                    let dy = by * 8 + y;
                    if dy >= h {
                        continue;
                    }
                    for x in 0..8 {
                        let dx = bx * 8 + x;
                        if dx >= w {
                            continue;
                        }
                        img.set(ci, dy, dx, (block[y * 8 + x] + 128.0).round().clamp(0.0, 255.0) as u8);
                    }
                }
            }
        }
    }
    img
}

/// Peak signal-to-noise ratio between two same-shape images, in dB.
pub fn psnr(a: &RawImage, b: &RawImage) -> f64 {
    assert_eq!((a.c, a.h, a.w), (b.c, b.h, b.w));
    let mse: f64 = a
        .data
        .iter()
        .zip(&b.data)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        / a.data.len() as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn natural_image(h: usize, w: usize) -> RawImage {
        // Smooth gradients + low-frequency waves: JPEG-friendly content.
        let mut img = RawImage::new(3, h, w);
        for c in 0..3 {
            for y in 0..h {
                for x in 0..w {
                    let v = 128.0
                        + 60.0 * ((x as f32 * 0.07 + c as f32).sin())
                        + 50.0 * ((y as f32 * 0.05).cos());
                    img.set(c, y, x, v.clamp(0.0, 255.0) as u8);
                }
            }
        }
        img
    }

    #[test]
    fn flat_image_compresses_hugely_and_exactly() {
        let img = RawImage { c: 3, h: 64, w: 64, data: vec![128; 3 * 64 * 64] };
        let enc = encode_image(&img, 50);
        assert!(enc.len() < img.data.len() / 20, "flat: {} bytes", enc.len());
        let dec = decode_image(&enc);
        assert_eq!(dec, img);
    }

    #[test]
    fn natural_roundtrip_high_psnr() {
        let img = natural_image(48, 56);
        for (q, min_psnr) in [(30u8, 30.0), (50, 33.0), (90, 40.0)] {
            let enc = encode_image(&img, q);
            let dec = decode_image(&enc);
            let p = psnr(&img, &dec);
            assert!(p >= min_psnr, "quality {q}: PSNR {p:.1} dB");
        }
    }

    #[test]
    fn compression_ratio_reasonable() {
        let img = natural_image(64, 64);
        let enc = encode_image(&img, 50);
        let ratio = img.data.len() as f64 / enc.len() as f64;
        assert!(ratio > 3.0, "ratio {ratio:.1}");
    }

    #[test]
    fn quality_monotone_in_size() {
        let img = natural_image(64, 64);
        let lo = encode_image(&img, 20).len();
        let hi = encode_image(&img, 95).len();
        assert!(hi > lo, "q95 {hi} should exceed q20 {lo}");
    }

    #[test]
    fn non_multiple_of_8_dims() {
        let img = natural_image(33, 41);
        let dec = decode_image(&encode_image(&img, 80));
        assert_eq!((dec.c, dec.h, dec.w), (3, 33, 41));
        assert!(psnr(&img, &dec) > 32.0);
    }

    #[test]
    fn single_channel_tiny_image() {
        let img = RawImage { c: 1, h: 3, w: 5, data: vec![7, 50, 100, 150, 200, 10, 60, 110, 160, 210, 20, 70, 120, 170, 220] };
        let dec = decode_image(&encode_image(&img, 95));
        assert_eq!((dec.c, dec.h, dec.w), (1, 3, 5));
        // Small block, high quality: close reconstruction.
        for (a, b) in img.data.iter().zip(&dec.data) {
            assert!((*a as i32 - *b as i32).abs() < 24, "{a} vs {b}");
        }
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0, 1, -1, 2, -2, 63, -64, 127, -128, 1000, -100000, i32::MAX / 2];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn dct_orthonormal_roundtrip() {
        let basis = dct_basis();
        let mut block = [0.0f32; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = ((i * 37) % 256) as f32 - 128.0;
        }
        let coef = dct2d(&block, &basis);
        let back = idct2d(&coef, &basis);
        for (a, b) in block.iter().zip(&back) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        // Parseval: energy preserved.
        let e1: f32 = block.iter().map(|v| v * v).sum();
        let e2: f32 = coef.iter().map(|v| v * v).sum();
        assert!((e1 - e2).abs() < e1 * 1e-4);
    }

    #[test]
    #[should_panic]
    fn bad_magic_panics() {
        let _ = decode_image(&[0u8; 32]);
    }
}
