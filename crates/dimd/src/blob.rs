//! The DIMD storage format: one big concatenated blob of compressed records
//! plus an index of `(offset, length, label)` — the paper's "two large files
//! for the training and validation data sets … \[and\] an index file which
//! contains the start location of each image along with its label id" (§4.1).

use rayon::prelude::*;

use crate::codec::{decode_image, encode_image};
use crate::crc::crc32;
use crate::image::RawImage;
use crate::synth::SynthImageNet;

/// Index entry for one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordMeta {
    /// Byte offset into the blob.
    pub offset: u64,
    /// Record length in bytes.
    pub len: u32,
    /// Class label.
    pub label: u32,
    /// CRC-32 of the record bytes (end-to-end integrity).
    pub crc: u32,
}

/// A concatenated-record store with an index.
#[derive(Debug, Clone, Default)]
pub struct BlobStore {
    /// Concatenated compressed records.
    pub data: Vec<u8>,
    /// One entry per record.
    pub index: Vec<RecordMeta>,
}

const FILE_MAGIC: &[u8; 4] = b"DIMD";

impl BlobStore {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total blob size in bytes (what occupies node memory).
    pub fn blob_bytes(&self) -> usize {
        self.data.len()
    }

    /// The raw bytes of record `i`.
    pub fn record(&self, i: usize) -> &[u8] {
        let m = self.index[i];
        &self.data[m.offset as usize..m.offset as usize + m.len as usize]
    }

    /// Label of record `i`.
    pub fn label(&self, i: usize) -> u32 {
        self.index[i].label
    }

    /// Decode record `i` back into an image.
    pub fn decode(&self, i: usize) -> RawImage {
        decode_image(self.record(i))
    }

    /// Append a pre-compressed record.
    pub fn push_record(&mut self, bytes: &[u8], label: u32) {
        let offset = self.data.len() as u64;
        self.data.extend_from_slice(bytes);
        self.index.push(RecordMeta {
            offset,
            len: bytes.len() as u32,
            label,
            crc: crc32(bytes),
        });
    }

    /// Check record `i`'s bytes against its stored CRC-32.
    pub fn verify(&self, i: usize) -> bool {
        crc32(self.record(i)) == self.index[i].crc
    }

    /// Index of the first corrupt record, if any.
    pub fn verify_all(&self) -> Option<usize> {
        (0..self.len()).find(|&i| !self.verify(i))
    }

    /// Append an image (optionally resizing the shorter side first, as the
    /// paper's build step does with 256).
    pub fn push_image(&mut self, img: &RawImage, label: u32, quality: u8, resize_shorter: Option<usize>) {
        let bytes = match resize_shorter {
            Some(s) => encode_image(&img.resize_shorter_to(s), quality),
            None => encode_image(img, quality),
        };
        self.push_record(&bytes, label);
    }

    /// Build the training blob from a synthetic dataset, compressing records
    /// in parallel. `indices` selects which training records to include (a
    /// node's partition); pass `0..ds.train_len()` for the full set.
    pub fn build_train(
        ds: &SynthImageNet,
        indices: impl Iterator<Item = usize>,
        quality: u8,
        resize_shorter: Option<usize>,
    ) -> Self {
        let idx: Vec<usize> = indices.collect();
        let encoded: Vec<(Vec<u8>, u32)> = idx
            .par_iter()
            .map(|&i| {
                let img = ds.train_image(i);
                let img = match resize_shorter {
                    Some(s) => img.resize_shorter_to(s),
                    None => img,
                };
                (encode_image(&img, quality), ds.train_label(i) as u32)
            })
            .collect();
        let mut store = BlobStore::default();
        for (bytes, label) in encoded {
            store.push_record(&bytes, label);
        }
        store
    }

    /// Serialize to the on-disk format: magic, record count, index, blob.
    pub fn to_file_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.index.len() * 20 + self.data.len());
        out.extend_from_slice(FILE_MAGIC);
        out.extend_from_slice(&(self.index.len() as u64).to_le_bytes());
        for m in &self.index {
            out.extend_from_slice(&m.offset.to_le_bytes());
            out.extend_from_slice(&m.len.to_le_bytes());
            out.extend_from_slice(&m.label.to_le_bytes());
            out.extend_from_slice(&m.crc.to_le_bytes());
        }
        out.extend_from_slice(&self.data);
        out
    }

    /// Parse the on-disk format.
    ///
    /// # Panics
    /// Panics on malformed input.
    pub fn from_file_bytes(bytes: &[u8]) -> Self {
        assert!(bytes.len() >= 12 && &bytes[0..4] == FILE_MAGIC, "bad DIMD magic");
        let n = u64::from_le_bytes(bytes[4..12].try_into().expect("8")) as usize;
        let mut index = Vec::with_capacity(n);
        let mut pos = 12usize;
        for _ in 0..n {
            let offset = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8"));
            let len = u32::from_le_bytes(bytes[pos + 8..pos + 12].try_into().expect("4"));
            let label = u32::from_le_bytes(bytes[pos + 12..pos + 16].try_into().expect("4"));
            let crc = u32::from_le_bytes(bytes[pos + 16..pos + 20].try_into().expect("4"));
            index.push(RecordMeta { offset, len, label, crc });
            pos += 20;
        }
        BlobStore { data: bytes[pos..].to_vec(), index }
    }

    /// Average record size in bytes (0 when empty).
    pub fn avg_record_bytes(&self) -> f64 {
        if self.index.is_empty() {
            0.0
        } else {
            self.data.len() as f64 / self.index.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::psnr;
    use crate::synth::{SynthConfig, SynthImageNet};

    fn small_ds() -> SynthImageNet {
        let mut cfg = SynthConfig::tiny(3);
        cfg.train_per_class = 6;
        SynthImageNet::new(cfg)
    }

    #[test]
    fn build_and_access() {
        let ds = small_ds();
        let store = BlobStore::build_train(&ds, 0..ds.train_len(), 60, None);
        assert_eq!(store.len(), 18);
        for i in 0..store.len() {
            assert_eq!(store.label(i) as usize, ds.train_label(i));
            let dec = store.decode(i);
            let orig = ds.train_image(i);
            assert!(psnr(&orig, &dec) > 24.0, "record {i}");
        }
    }

    #[test]
    fn partition_build_selects_subset() {
        let ds = small_ds();
        let store = BlobStore::build_train(&ds, (0..18).filter(|i| i % 3 == 1), 60, None);
        assert_eq!(store.len(), 6);
        assert_eq!(store.label(0), 0); // index 1 is class 0
        assert_eq!(store.label(5), 2); // index 16 is class 2
    }

    #[test]
    fn file_roundtrip() {
        let ds = small_ds();
        let store = BlobStore::build_train(&ds, 0..6, 70, None);
        let bytes = store.to_file_bytes();
        let back = BlobStore::from_file_bytes(&bytes);
        assert_eq!(back.index, store.index);
        assert_eq!(back.data, store.data);
    }

    #[test]
    fn resize_shorter_applies_at_build() {
        let mut cfg = SynthConfig::tiny(1);
        cfg.train_per_class = 2;
        cfg.base_hw = 40;
        let ds = SynthImageNet::new(cfg);
        let store = BlobStore::build_train(&ds, 0..2, 60, Some(24));
        let img = store.decode(0);
        assert_eq!(img.h.min(img.w), 24);
    }

    #[test]
    fn offsets_are_contiguous() {
        let ds = small_ds();
        let store = BlobStore::build_train(&ds, 0..10, 60, None);
        let mut expect = 0u64;
        for m in &store.index {
            assert_eq!(m.offset, expect);
            expect += m.len as u64;
        }
        assert_eq!(expect as usize, store.data.len());
    }

    #[test]
    fn crc_verification_catches_corruption() {
        let ds = small_ds();
        let mut store = BlobStore::build_train(&ds, 0..6, 60, None);
        assert_eq!(store.verify_all(), None);
        // Flip a byte in record 3's payload.
        let off = store.index[3].offset as usize + 2;
        store.data[off] ^= 0x40;
        assert!(!store.verify(3));
        assert_eq!(store.verify_all(), Some(3));
        // And a serialized round-trip carries the CRCs.
        store.data[off] ^= 0x40;
        let back = BlobStore::from_file_bytes(&store.to_file_bytes());
        assert_eq!(back.verify_all(), None);
    }

    #[test]
    fn avg_record_bytes_sane() {
        let ds = small_ds();
        let store = BlobStore::build_train(&ds, 0..18, 60, None);
        let avg = store.avg_record_bytes();
        // 32×32×3 = 3072 raw; compressed should be well under that.
        assert!(avg > 50.0 && avg < 3072.0, "avg {avg}");
        assert_eq!(BlobStore::default().avg_record_bytes(), 0.0);
    }

    #[test]
    #[should_panic]
    fn bad_file_magic_panics() {
        let _ = BlobStore::from_file_bytes(&[1, 2, 3, 4, 0, 0, 0, 0, 0, 0, 0, 0]);
    }
}
