#![warn(missing_docs)]
// Index loops over parallel arrays (ranks, channels, coefficient tables) are
// clearer than zipped iterators in this domain.
#![allow(clippy::needless_range_loop)]

//! # dcnn-dimd — Distributed In-Memory Data (paper §4.1)
//!
//! The paper's first contribution: instead of fetching random JPEGs from a
//! slow network file system every iteration, resize and compress the whole
//! dataset once into *one blob file plus an index*, load partitions of it
//! into node memory, serve random mini-batches from memory (decompressing
//! on the fly), and periodically **shuffle the partitions across nodes with
//! `MPI_Alltoallv`** (Algorithm 2) so mini-batch sampling stays globally
//! random.
//!
//! Everything the paper used but we lack is substituted with a real
//! implementation of the same code path:
//!
//! * ImageNet → [`synth::SynthImageNet`], a seeded class-conditional image
//!   generator (the data is synthetic; the byte-handling is not).
//! * libjpeg → [`codec`], a from-scratch 8×8 block-DCT codec with
//!   quality-scaled quantization, zigzag scan and varint entropy coding, so
//!   record sizes and decode costs behave like JPEG's.
//! * The 70 GB / 220 GB blob + index files → [`blob::BlobStore`], with the
//!   same build pipeline (resize shorter side to 256 → compress →
//!   concatenate → index of (offset, length, label)).
//! * GPFS/NFS → [`fileserver::FileServer`], an analytic model of sequential
//!   vs random-access throughput (the I/O bottleneck DIMD removes).
//! * `MPI_Alltoallv` → `dcnn-collectives`' pairwise implementation, run for
//!   real across rank threads, **including Algorithm 2's segmentation that
//!   keeps each exchange under MPI's 32-bit counts**.

pub mod blob;
pub mod codec;
pub mod crc;
pub mod fileserver;
pub mod image;
pub mod plan;
pub mod prefetch;
pub mod service;
pub mod shuffle;
pub mod store;
pub mod synth;

pub use blob::{BlobStore, RecordMeta};
pub use codec::{decode_image, encode_image};
pub use fileserver::FileServer;
pub use image::RawImage;
pub use plan::{plan_groups, PartitionPlan};
pub use prefetch::Prefetcher;
pub use service::{serve_blocking, BatchSource, Hello, LocalSource, ServiceClient, ServiceSource};
pub use shuffle::{try_shuffle_hosted, HostedPartition, HostedShuffle, Record};
pub use store::{decode_augmented_batch, Dimd, ValSet};
pub use synth::{SynthConfig, SynthImageNet};
