//! The in-memory store a learner trains from: the three DIMD APIs of §4.1
//! — *partitioned load*, *random in-memory batch load*, and *shuffle*.

use dcnn_collectives::runtime::Comm;
use dcnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::codec::decode_image;
use crate::image::{IMAGENET_MEAN, IMAGENET_STD};
use crate::shuffle::{shuffle_records, Record};
use crate::synth::SynthImageNet;

/// A learner's in-memory partition of the training set.
pub struct Dimd {
    records: Vec<Record>,
    /// Epoch sampling state: a shuffled ordering of local records.
    order: Vec<usize>,
    cursor: usize,
    rng: StdRng,
    epoch_seed: u64,
}

impl Dimd {
    /// **Partitioned load** (API i): member `group_rank` of a group of
    /// `group_size` learners loads every `group_size`-th record, so the
    /// group collectively owns the whole dataset. With `group_size == 1`
    /// the learner holds everything (the "enough memory" extreme).
    pub fn load_partition(
        ds: &SynthImageNet,
        group_rank: usize,
        group_size: usize,
        quality: u8,
        seed: u64,
    ) -> Self {
        assert!(group_size >= 1 && group_rank < group_size);
        let idx: Vec<usize> =
            (0..ds.train_len()).filter(|i| i % group_size == group_rank).collect();
        let records: Vec<Record> = idx
            .par_iter()
            .map(|&i| {
                (
                    crate::codec::encode_image(&ds.train_image(i), quality),
                    ds.train_label(i) as u32,
                )
            })
            .collect();
        Self::from_records(records, seed)
    }

    /// Wrap an existing record set (e.g. after deserializing a blob file).
    pub fn from_records(records: Vec<Record>, seed: u64) -> Self {
        let n = records.len();
        let mut d = Dimd {
            records,
            order: (0..n).collect(),
            cursor: 0,
            rng: StdRng::seed_from_u64(seed),
            epoch_seed: seed,
        };
        d.order.shuffle(&mut d.rng);
        d
    }

    /// Number of locally held records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Bytes of node memory the partition occupies (the y-axis annotation of
    /// Figures 7–9).
    pub fn memory_bytes(&self) -> usize {
        self.records.iter().map(|(b, _)| b.len() + 16).sum()
    }

    /// The sampling half of [`Dimd::random_batch`]: advance the epoch
    /// cursor (reshuffling when a pass completes) and return the picked
    /// records plus the augmentation salt for this batch. The blob server
    /// runs exactly this on behalf of a remote trainer rank and ships the
    /// still-compressed records; the client then decodes them through
    /// [`decode_augmented_batch`] — the same function the local path calls
    /// — so local and service-backed training are bitwise identical.
    pub fn sample_batch_records(&mut self, n: usize) -> (u64, Vec<Record>) {
        assert!(!self.records.is_empty(), "empty partition");
        let mut picks = Vec::with_capacity(n);
        for _ in 0..n {
            if self.cursor >= self.order.len() {
                self.order.shuffle(&mut self.rng);
                self.cursor = 0;
            }
            picks.push(self.order[self.cursor]);
            self.cursor += 1;
        }
        let salt: u64 = self.epoch_seed.wrapping_add(self.cursor as u64);
        (salt, picks.iter().map(|&i| self.records[i].clone()).collect())
    }

    /// **Random in-memory batch load** (API ii): decode `n` randomly
    /// sampled records (without replacement within an epoch pass), apply the
    /// paper's augmentation (random `crop²` crop + flip) and normalize.
    /// Returns `([n, 3, crop, crop], labels)`.
    pub fn random_batch(&mut self, n: usize, crop: usize) -> (Tensor, Vec<usize>) {
        let (salt, records) = self.sample_batch_records(n);
        decode_augmented_batch(&records, crop, salt)
    }

    /// **Shuffle across learners** (API iii): Algorithm 2 over the ranks of
    /// `comm` (pass a group sub-communicator for group-based shuffles).
    pub fn shuffle(&mut self, comm: &Comm, round: u64, max_segment_bytes: usize) {
        let records = self.take_records();
        let out = shuffle_records(comm, records, self.epoch_seed ^ round, max_segment_bytes);
        self.install_shuffled_records(out);
    }

    /// The base seed this partition's sampling and shuffle streams derive
    /// from (what `load_partition` was given).
    pub fn epoch_seed(&self) -> u64 {
        self.epoch_seed
    }

    /// Remove this partition's records for an externally-run exchange —
    /// the blob-server fabric runs the hosted shuffle over many trainers'
    /// partitions at once ([`crate::shuffle::try_shuffle_hosted`]) and
    /// cannot go through [`Dimd::shuffle`]'s per-`Comm`-rank path.
    pub fn take_records(&mut self) -> Vec<Record> {
        std::mem::take(&mut self.records)
    }

    /// Install post-exchange records with exactly [`Dimd::shuffle`]'s
    /// bookkeeping: rebuild the sampling order, reshuffle it with the
    /// *ongoing* rng (so subsequent picks continue the same stream as the
    /// classic path), and rewind the epoch cursor.
    pub fn install_shuffled_records(&mut self, records: Vec<Record>) {
        self.records = records;
        self.order = (0..self.records.len()).collect();
        self.order.shuffle(&mut self.rng);
        self.cursor = 0;
    }

    /// Labels currently held (diagnostics / tests).
    pub fn labels(&self) -> Vec<u32> {
        self.records.iter().map(|(_, l)| *l).collect()
    }
}

/// Decode and augment one sampled batch: the per-sample decode + random
/// crop/flip + normalize pipeline of [`Dimd::random_batch`], factored out
/// so the data-plane client (which receives still-compressed records and a
/// salt over the wire) runs the byte-identical code the in-process path
/// runs. Returns `([n, 3, crop, crop], labels)`.
pub fn decode_augmented_batch(records: &[Record], crop: usize, salt: u64) -> (Tensor, Vec<usize>) {
    let n = records.len();
    // Per-sample decode+augment in parallel ("donkey" threads).
    let decoded: Vec<(Vec<f32>, usize)> = records
        .par_iter()
        .enumerate()
        .map(|(j, (bytes, label))| {
            let img = decode_image(bytes);
            let mut rng = StdRng::seed_from_u64(salt ^ (j as u64) << 17 ^ *label as u64);
            let img = img.random_crop_flip(crop, &mut rng);
            (img.to_tensor(&IMAGENET_MEAN, &IMAGENET_STD).into_vec(), *label as usize)
        })
        .collect();
    let mut data = Vec::with_capacity(n * 3 * crop * crop);
    let mut labels = Vec::with_capacity(n);
    for (img, label) in decoded {
        data.extend_from_slice(&img);
        labels.push(label);
    }
    (Tensor::from_vec(data, &[n, 3, crop, crop]), labels)
}

/// The in-memory validation set. The paper stores *two* blob files — "two
/// large files for the training and validation data sets" (§4.1) — and the
/// validation blob is small enough that every learner holds it whole.
/// Evaluation uses the deterministic center-crop path, no augmentation.
pub struct ValSet {
    records: Vec<Record>,
}

impl ValSet {
    /// Compress and load the full validation split.
    pub fn load(ds: &SynthImageNet, quality: u8) -> Self {
        let records: Vec<Record> = (0..ds.val_len())
            .collect::<Vec<_>>()
            .par_iter()
            .map(|&i| {
                (
                    crate::codec::encode_image(&ds.val_image(i), quality),
                    ds.val_label(i) as u32,
                )
            })
            .collect();
        ValSet { records }
    }

    /// Number of validation records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.records.iter().map(|(b, _)| b.len() + 16).sum()
    }

    /// Decode the given records as an evaluation batch:
    /// `([len, 3, crop, crop], labels)` with center crops.
    pub fn batch(&self, indices: &[usize], crop: usize) -> (Tensor, Vec<usize>) {
        assert!(!indices.is_empty());
        let decoded: Vec<(Vec<f32>, usize)> = indices
            .par_iter()
            .map(|&i| {
                let (bytes, label) = &self.records[i];
                let img = decode_image(bytes).center_crop(crop);
                (img.to_tensor(&IMAGENET_MEAN, &IMAGENET_STD).into_vec(), *label as usize)
            })
            .collect();
        let mut data = Vec::with_capacity(indices.len() * 3 * crop * crop);
        let mut labels = Vec::with_capacity(indices.len());
        for (img, label) in decoded {
            data.extend_from_slice(&img);
            labels.push(label);
        }
        (Tensor::from_vec(data, &[indices.len(), 3, crop, crop]), labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;
    use dcnn_collectives::run_cluster;

    fn ds() -> SynthImageNet {
        let mut cfg = SynthConfig::tiny(4);
        cfg.train_per_class = 8;
        SynthImageNet::new(cfg)
    }

    #[test]
    fn partitions_cover_dataset_disjointly() {
        let ds = ds();
        let parts: Vec<Dimd> =
            (0..4).map(|r| Dimd::load_partition(&ds, r, 4, 60, r as u64)).collect();
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, ds.train_len());
        // Class coverage: strided partitioning interleaves classes.
        for p in &parts {
            let labels = p.labels();
            let distinct: std::collections::HashSet<_> = labels.iter().collect();
            assert!(distinct.len() >= 2, "partition should span classes");
        }
    }

    #[test]
    fn full_load_when_group_of_one() {
        let ds = ds();
        let d = Dimd::load_partition(&ds, 0, 1, 60, 0);
        assert_eq!(d.len(), ds.train_len());
        assert!(d.memory_bytes() > 0);
    }

    #[test]
    fn random_batch_shapes_and_determinism() {
        let ds = ds();
        let mut d1 = Dimd::load_partition(&ds, 0, 1, 60, 7);
        let mut d2 = Dimd::load_partition(&ds, 0, 1, 60, 7);
        let (t1, l1) = d1.random_batch(6, 24);
        let (t2, l2) = d2.random_batch(6, 24);
        assert_eq!(t1.shape(), &[6, 3, 24, 24]);
        assert_eq!(l1.len(), 6);
        assert_eq!(t1, t2);
        assert_eq!(l1, l2);
    }

    #[test]
    fn epoch_pass_visits_everything_once() {
        let ds = ds();
        let mut d = Dimd::load_partition(&ds, 0, 1, 60, 3);
        let n = d.len();
        let mut seen = vec![0usize; 4];
        // one full epoch in batches of 8
        for _ in 0..n / 8 {
            let (_, labels) = d.random_batch(8, 16);
            for l in labels {
                seen[l] += 1;
            }
        }
        // Exactly 8 per class (8 per class in the dataset).
        assert_eq!(seen, vec![8, 8, 8, 8]);
    }

    #[test]
    fn batches_vary_across_draws() {
        let ds = ds();
        let mut d = Dimd::load_partition(&ds, 0, 1, 60, 9);
        let (t1, _) = d.random_batch(4, 16);
        let (t2, _) = d.random_batch(4, 16);
        assert_ne!(t1, t2);
    }

    #[test]
    fn distributed_shuffle_keeps_global_census() {
        let ds = ds();
        let before: Vec<u32> = (0..ds.train_len()).map(|i| ds.train_label(i) as u32).collect();
        let mut expect: Vec<u32> = before.clone();
        expect.sort_unstable();
        let after = run_cluster(4, |c| {
            let mut d = Dimd::load_partition(&ds, c.rank(), 4, 60, 1);
            d.shuffle(c, 0, crate::shuffle::MPI_COUNT_LIMIT);
            d.labels()
        });
        let mut got: Vec<u32> = after.into_iter().flatten().collect();
        got.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn val_set_loads_and_batches() {
        let ds = ds();
        let vs = ValSet::load(&ds, 70);
        assert_eq!(vs.len(), ds.val_len());
        assert!(vs.memory_bytes() > 0);
        let (t, labels) = vs.batch(&[0, 1, ds.val_len() - 1], 16);
        assert_eq!(t.shape(), &[3, 3, 16, 16]);
        assert_eq!(labels[0], ds.val_label(0));
        assert_eq!(labels[2], ds.val_label(ds.val_len() - 1));
    }

    #[test]
    fn val_batches_are_deterministic() {
        let ds = ds();
        let vs = ValSet::load(&ds, 70);
        let (a, _) = vs.batch(&[2, 5], 16);
        let (b, _) = vs.batch(&[2, 5], 16);
        assert_eq!(a, b);
    }

    #[test]
    fn shuffle_resets_epoch_cursor() {
        let ds = ds();
        let out = run_cluster(2, |c| {
            let mut d = Dimd::load_partition(&ds, c.rank(), 2, 60, 5);
            let _ = d.random_batch(4, 16);
            d.shuffle(c, 1, crate::shuffle::MPI_COUNT_LIMIT);
            let (t, _) = d.random_batch(4, 16);
            t.len()
        });
        assert!(out.iter().all(|&l| l == 4 * 3 * 16 * 16));
    }
}
