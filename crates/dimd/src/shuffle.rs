//! The distributed in-memory shuffle — Algorithm 2 of the paper.
//!
//! Every record is assigned a uniformly random destination rank; the
//! exchange runs as `MPI_Alltoallv`. Because MPI counts and displacements
//! are 32-bit, the paper first partitions the local tensor into `m` segments
//! ("this is to overcome the deficiency of MPI to handle more than 32 bit
//! offsets") and alltoallv's each segment separately; we reproduce exactly
//! that segmentation, with a configurable cap so tests can exercise multiple
//! segments. After the exchange each node permutes its received records
//! locally.

use dcnn_collectives::primitives::alltoallv_bytes;
use dcnn_collectives::runtime::Comm;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// MPI's real limit; tests use far smaller caps to force segmentation.
pub const MPI_COUNT_LIMIT: usize = i32::MAX as usize;

/// A record travelling through the shuffle: compressed bytes + label.
pub type Record = (Vec<u8>, u32);

fn pack(records: &[Record]) -> Vec<u8> {
    let total: usize = records.iter().map(|(b, _)| 8 + b.len()).sum();
    let mut out = Vec::with_capacity(total);
    for (bytes, label) in records {
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&label.to_le_bytes());
        out.extend_from_slice(bytes);
    }
    out
}

/// What was wrong with a malformed packed record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShuffleErrorKind {
    /// Fewer than the 8 header bytes remained in the buffer.
    Header {
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// The header promised `need` payload bytes; fewer remained.
    Payload {
        /// Payload bytes the header promised.
        need: usize,
        /// Bytes actually remaining after the header.
        remaining: usize,
    },
}

/// A malformed buffer in the shuffle exchange, with enough context to
/// point at the culprit: which receiving rank saw it, which sending rank
/// packed it, which alltoallv segment round carried it, and where parsing
/// stopped. A truncated record means wire corruption or a peer running a
/// different version — either way the operator needs the link, not a bare
/// "truncated record header".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShuffleError {
    /// Rank that was unpacking when the corruption surfaced.
    pub rank: usize,
    /// Rank whose packed buffer was malformed.
    pub src: usize,
    /// Zero-based alltoallv segment round (Algorithm 2's `m` loop).
    pub segment: usize,
    /// Byte offset into the received buffer where parsing stopped.
    pub offset: usize,
    /// What was truncated.
    pub kind: ShuffleErrorKind,
}

impl std::fmt::Display for ShuffleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {}: malformed shuffle record from rank {} in segment round {} at byte {}: ",
            self.rank, self.src, self.segment, self.offset
        )?;
        match self.kind {
            ShuffleErrorKind::Header { remaining } => {
                write!(f, "record header truncated ({remaining} of 8 bytes)")
            }
            ShuffleErrorKind::Payload { need, remaining } => {
                write!(f, "record payload truncated ({remaining} of {need} bytes)")
            }
        }
    }
}

impl std::error::Error for ShuffleError {}

fn unpack(buf: &[u8], out: &mut Vec<Record>) -> Result<(), (usize, ShuffleErrorKind)> {
    let mut off = 0usize;
    while off < buf.len() {
        let rest = &buf[off..];
        if rest.len() < 8 {
            return Err((off, ShuffleErrorKind::Header { remaining: rest.len() }));
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4")) as usize;
        let label = u32::from_le_bytes(rest[4..8].try_into().expect("4"));
        if rest.len() < 8 + len {
            return Err((
                off,
                ShuffleErrorKind::Payload { need: len, remaining: rest.len() - 8 },
            ));
        }
        out.push((rest[8..8 + len].to_vec(), label));
        off += 8 + len;
    }
    Ok(())
}

/// Shuffle `records` across the ranks of `comm` (Algorithm 2).
///
/// * `seed` — shuffle round seed; all ranks must pass the same value (each
///   rank derives its own stream from it, like the paper's per-learner
///   seeds).
/// * `max_segment_bytes` — the 32-bit-count emulation: the total payload a
///   single alltoallv may carry from this rank. Pass [`MPI_COUNT_LIMIT`]
///   for realism or something small to exercise segmentation.
///
/// Returns this rank's new partition, locally permuted.
///
/// # Panics
/// Panics with a rendered [`ShuffleError`] if a received buffer holds a
/// truncated record; use [`try_shuffle_records`] to handle that as a value.
pub fn shuffle_records(
    comm: &Comm,
    records: Vec<Record>,
    seed: u64,
    max_segment_bytes: usize,
) -> Vec<Record> {
    try_shuffle_records(comm, records, seed, max_segment_bytes)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`shuffle_records`], but a malformed received buffer comes back as a
/// typed [`ShuffleError`] naming the link and segment round instead of a
/// panic.
pub fn try_shuffle_records(
    comm: &Comm,
    records: Vec<Record>,
    seed: u64,
    max_segment_bytes: usize,
) -> Result<Vec<Record>, ShuffleError> {
    let n = comm.size();
    assert!(max_segment_bytes > 0);
    if n <= 1 {
        let mut out = records;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1D);
        out.shuffle(&mut rng);
        return Ok(out);
    }
    let mut rng = StdRng::seed_from_u64(
        seed.wrapping_mul(0x9E3779B97F4A7C15) ^ comm.global_rank() as u64,
    );

    // Assign destinations up front (uniform over ranks, self included).
    let mut assigned: Vec<(usize, Record)> =
        records.into_iter().map(|r| (rng.random_range(0..n), r)).collect();

    let mut received: Vec<Record> = Vec::new();
    let mut round = 0usize;
    // Segment greedily: each alltoallv round ships at most
    // `max_segment_bytes` of payload from this rank — but every rank must
    // participate in the same number of rounds, so rounds continue until all
    // ranks are drained (coordinated via an allgather of remaining counts).
    loop {
        let mut seg_bytes = 0usize;
        let mut end = 0usize;
        while end < assigned.len() {
            let sz = 8 + assigned[end].1 .0.len();
            if seg_bytes + sz > max_segment_bytes && end > 0 {
                break;
            }
            seg_bytes += sz;
            end += 1;
        }

        // Do all ranks agree there is nothing left? (allgather of a flag)
        let remaining = assigned.len() as u64;
        let flags = dcnn_collectives::primitives::allgather_bytes(
            comm,
            remaining.to_le_bytes().to_vec(),
        );
        let global_remaining: u64 = flags
            .iter()
            .map(|b| u64::from_le_bytes(b.as_slice().try_into().expect("8")))
            .max()
            .expect("non-empty cluster");
        if global_remaining == 0 {
            break;
        }

        // Build per-destination buffers for this segment.
        let mut per_dest: Vec<Vec<Record>> = vec![Vec::new(); n];
        for (dest, rec) in assigned.drain(..end) {
            per_dest[dest].push(rec);
        }
        let send: Vec<Vec<u8>> = per_dest.iter().map(|d| pack(d)).collect();
        let recv = alltoallv_bytes(comm, send);
        for (src, buf) in recv.iter().enumerate() {
            unpack(buf, &mut received).map_err(|(offset, kind)| ShuffleError {
                rank: comm.rank(),
                src,
                segment: round,
                offset,
                kind,
            })?;
        }
        round += 1;
    }

    // Local permutation (the paper's final `random_permutation` step).
    // XOR the salt in (the old `| 0xD1D` forced the low bits on, so seeds
    // differing only in those bits produced identical permutations).
    let mut perm_rng =
        StdRng::seed_from_u64((seed ^ ((comm.global_rank() as u64) << 32)) ^ 0xD1D);
    received.shuffle(&mut perm_rng);
    Ok(received)
}

/// Byte-count matrix of one shuffle round for virtual-time simulation:
/// `counts[src][dst]` bytes. With `groups` groups of `nodes/groups` members
/// each (paper Figure 9), exchange stays within the group; a uniformly
/// random reassignment sends `partition/S` to each of the `S` group members
/// (the self-share stays local and costs nothing on the fabric).
pub fn shuffle_counts_matrix(nodes: usize, partition_bytes: f64, groups: usize) -> Vec<Vec<f64>> {
    assert!(nodes > 0 && groups > 0 && nodes.is_multiple_of(groups), "groups must divide nodes");
    let group_size = nodes / groups;
    let share = partition_bytes / group_size as f64;
    let mut m = vec![vec![0.0; nodes]; nodes];
    for (src, row) in m.iter_mut().enumerate() {
        let g = src / group_size;
        for dst in g * group_size..(g + 1) * group_size {
            if dst != src {
                row[dst] = share;
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcnn_collectives::run_cluster;
    use std::collections::HashMap;

    fn make_records(rank: usize, count: usize) -> Vec<Record> {
        (0..count)
            .map(|i| {
                let len = 5 + (rank * 7 + i * 3) % 40;
                (vec![(rank * 100 + i) as u8; len], (rank * 1000 + i) as u32)
            })
            .collect()
    }

    fn census(all: &[Vec<Record>]) -> HashMap<(Vec<u8>, u32), usize> {
        let mut m = HashMap::new();
        for recs in all {
            for r in recs {
                *m.entry(r.clone()).or_insert(0) += 1;
            }
        }
        m
    }

    #[test]
    fn shuffle_preserves_record_multiset() {
        for n in [2, 4, 5] {
            let before: Vec<Vec<Record>> = (0..n).map(|r| make_records(r, 20)).collect();
            let expect = census(&before);
            let after = run_cluster(n, |c| {
                shuffle_records(c, make_records(c.rank(), 20), 99, MPI_COUNT_LIMIT)
            });
            assert_eq!(census(&after), expect, "n={n}");
        }
    }

    #[test]
    fn segmentation_matches_unsegmented_multiset() {
        let n = 4;
        let before: Vec<Vec<Record>> = (0..n).map(|r| make_records(r, 30)).collect();
        let expect = census(&before);
        // Tiny cap: forces many alltoallv rounds (Algorithm 2's m > 1).
        let after = run_cluster(n, |c| {
            shuffle_records(c, make_records(c.rank(), 30), 7, 64)
        });
        assert_eq!(census(&after), expect);
    }

    #[test]
    fn shuffle_actually_moves_records() {
        let n = 4;
        let after = run_cluster(n, |c| {
            shuffle_records(c, make_records(c.rank(), 40), 3, MPI_COUNT_LIMIT)
        });
        // Rank 0 should now hold some records that originated elsewhere
        // (labels ≥ 1000).
        assert!(
            after[0].iter().any(|(_, label)| *label >= 1000),
            "no foreign records on rank 0"
        );
    }

    #[test]
    fn uneven_partitions_rebalance_approximately() {
        let n = 4;
        let after = run_cluster(n, |c| {
            // Rank 0 starts with everything.
            let recs = if c.rank() == 0 { make_records(0, 400) } else { Vec::new() };
            shuffle_records(c, recs, 11, MPI_COUNT_LIMIT)
        });
        for (r, recs) in after.iter().enumerate() {
            assert!(
                (60..=140).contains(&recs.len()),
                "rank {r} got {} records",
                recs.len()
            );
        }
    }

    #[test]
    fn single_rank_shuffle_is_local_permutation() {
        let out = run_cluster(1, |c| {
            shuffle_records(c, make_records(0, 10), 5, MPI_COUNT_LIMIT)
        });
        assert_eq!(out[0].len(), 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            run_cluster(3, move |c| {
                shuffle_records(c, make_records(c.rank(), 15), seed, MPI_COUNT_LIMIT)
            })
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn group_shuffle_stays_within_group() {
        // 4 ranks, 2 groups: records must not cross group boundaries.
        let after = run_cluster(4, |c| {
            let group = c.rank() / 2;
            let sub = c.split(group as u64, c.rank() as i64);
            shuffle_records(&sub, make_records(c.rank(), 25), 13, MPI_COUNT_LIMIT)
        });
        for (r, recs) in after.iter().enumerate() {
            let group = r / 2;
            for (_, label) in recs {
                let origin = (*label / 1000) as usize;
                assert_eq!(origin / 2, group, "rank {r} received from {origin}");
            }
        }
    }

    #[test]
    fn adjacent_seeds_permute_differently() {
        // Regression: the perm seed used to be `seed ^ rank << 32 | 0xD1D`,
        // which ORs the salt in — every seed pair differing only within the
        // 0xD1D bits collapsed to the same local permutation.
        let run = |seed: u64| {
            run_cluster(2, move |c| {
                shuffle_records(c, make_records(c.rank(), 40), seed, MPI_COUNT_LIMIT)
            })
        };
        let mut distinct = 0;
        for base in [0u64, 0x100, 0xD00] {
            let a = run(base);
            let b = run(base + 1);
            assert_eq!(census(&a), census(&b), "same records, different order");
            if a != b {
                distinct += 1;
            }
        }
        assert!(
            distinct >= 2,
            "adjacent seeds produced identical shuffles in {}/3 cases",
            3 - distinct
        );
    }

    #[test]
    fn truncated_buffers_are_typed_errors_with_context() {
        let packed = pack(&make_records(0, 3));
        // Intact buffer parses.
        let mut out = Vec::new();
        unpack(&packed, &mut out).expect("intact buffer");
        assert_eq!(out.len(), 3);
        // Chop mid-payload: the header promises more than remains.
        let (off, kind) = unpack(&packed[..packed.len() - 2], &mut Vec::new())
            .expect_err("truncated payload");
        assert!(matches!(kind, ShuffleErrorKind::Payload { .. }), "{kind:?}");
        // Chop mid-header of the first record.
        let (off0, kind0) =
            unpack(&packed[..5], &mut Vec::new()).expect_err("truncated header");
        assert_eq!(off0, 0);
        assert_eq!(kind0, ShuffleErrorKind::Header { remaining: 5 });
        // The rendered error names every coordinate an operator needs.
        let e = ShuffleError { rank: 2, src: 3, segment: 1, offset: off, kind };
        let s = e.to_string();
        for needle in ["rank 2", "rank 3", "segment round 1", "truncated"] {
            assert!(s.contains(needle), "{s:?} missing {needle:?}");
        }
    }

    #[test]
    fn try_shuffle_returns_clean_records() {
        let n = 3;
        let before: Vec<Vec<Record>> = (0..n).map(|r| make_records(r, 12)).collect();
        let expect = census(&before);
        let after = run_cluster(n, |c| {
            try_shuffle_records(c, make_records(c.rank(), 12), 7, MPI_COUNT_LIMIT)
                .expect("clean exchange")
        });
        assert_eq!(census(&after), expect);
    }

    #[test]
    fn counts_matrix_shapes() {
        let m = shuffle_counts_matrix(8, 800.0, 2);
        // src 0 sends 200 to each of ranks 1..3 (its group), nothing beyond.
        assert_eq!(m[0][1], 200.0);
        assert_eq!(m[0][3], 200.0);
        assert_eq!(m[0][4], 0.0);
        assert_eq!(m[0][0], 0.0);
        // Total fabric bytes: 8 nodes × 3 peers × 200.
        let total: f64 = m.iter().flatten().sum();
        assert_eq!(total, 8.0 * 3.0 * 200.0);
    }

    #[test]
    #[should_panic]
    fn counts_matrix_bad_groups_panics() {
        let _ = shuffle_counts_matrix(8, 1.0, 3);
    }
}
