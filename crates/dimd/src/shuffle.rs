//! The distributed in-memory shuffle — Algorithm 2 of the paper.
//!
//! Every record is assigned a uniformly random destination rank; the
//! exchange runs as `MPI_Alltoallv`. Because MPI counts and displacements
//! are 32-bit, the paper first partitions the local tensor into `m` segments
//! ("this is to overcome the deficiency of MPI to handle more than 32 bit
//! offsets") and alltoallv's each segment separately; we reproduce exactly
//! that segmentation, with a configurable cap so tests can exercise multiple
//! segments. After the exchange each node permutes its received records
//! locally.

use dcnn_collectives::primitives::alltoallv_bytes;
use dcnn_collectives::runtime::Comm;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// MPI's real limit; tests use far smaller caps to force segmentation.
pub const MPI_COUNT_LIMIT: usize = i32::MAX as usize;

/// A record travelling through the shuffle: compressed bytes + label.
pub type Record = (Vec<u8>, u32);

/// Pack records into their exchange form: per record
/// `len u32 | label u32 | bytes`. The same encoding carries shuffle
/// segments between ranks and mini-batches from a blob server to its
/// clients (`dimd::service`).
pub fn pack(records: &[Record]) -> Vec<u8> {
    let total: usize = records.iter().map(|(b, _)| 8 + b.len()).sum();
    let mut out = Vec::with_capacity(total);
    for (bytes, label) in records {
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&label.to_le_bytes());
        out.extend_from_slice(bytes);
    }
    out
}

/// What was wrong with a malformed packed record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShuffleErrorKind {
    /// Fewer than the 8 header bytes remained in the buffer.
    Header {
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// The header promised `need` payload bytes; fewer remained.
    Payload {
        /// Payload bytes the header promised.
        need: usize,
        /// Bytes actually remaining after the header.
        remaining: usize,
    },
}

/// A malformed buffer in the shuffle exchange, with enough context to
/// point at the culprit: which receiving rank saw it, which sending rank
/// packed it, which alltoallv segment round carried it, and where parsing
/// stopped. A truncated record means wire corruption or a peer running a
/// different version — either way the operator needs the link, not a bare
/// "truncated record header".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShuffleError {
    /// Rank that was unpacking when the corruption surfaced.
    pub rank: usize,
    /// Rank whose packed buffer was malformed.
    pub src: usize,
    /// Zero-based alltoallv segment round (Algorithm 2's `m` loop).
    pub segment: usize,
    /// Byte offset into the received buffer where parsing stopped.
    pub offset: usize,
    /// What was truncated.
    pub kind: ShuffleErrorKind,
}

impl std::fmt::Display for ShuffleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {}: malformed shuffle record from rank {} in segment round {} at byte {}: ",
            self.rank, self.src, self.segment, self.offset
        )?;
        match self.kind {
            ShuffleErrorKind::Header { remaining } => {
                write!(f, "record header truncated ({remaining} of 8 bytes)")
            }
            ShuffleErrorKind::Payload { need, remaining } => {
                write!(f, "record payload truncated ({remaining} of {need} bytes)")
            }
        }
    }
}

impl std::error::Error for ShuffleError {}

/// Parse a [`pack`]-encoded buffer, appending records to `out`. On a
/// truncated record, returns the byte offset where parsing stopped plus
/// what was missing; callers wrap that into a [`ShuffleError`] (or a
/// data-plane equivalent) with link context.
pub fn unpack(buf: &[u8], out: &mut Vec<Record>) -> Result<(), (usize, ShuffleErrorKind)> {
    let mut off = 0usize;
    while off < buf.len() {
        let rest = &buf[off..];
        if rest.len() < 8 {
            return Err((off, ShuffleErrorKind::Header { remaining: rest.len() }));
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4")) as usize;
        let label = u32::from_le_bytes(rest[4..8].try_into().expect("4"));
        if rest.len() < 8 + len {
            return Err((
                off,
                ShuffleErrorKind::Payload { need: len, remaining: rest.len() - 8 },
            ));
        }
        out.push((rest[8..8 + len].to_vec(), label));
        off += 8 + len;
    }
    Ok(())
}

/// Shuffle `records` across the ranks of `comm` (Algorithm 2).
///
/// * `seed` — shuffle round seed; all ranks must pass the same value (each
///   rank derives its own stream from it, like the paper's per-learner
///   seeds).
/// * `max_segment_bytes` — the 32-bit-count emulation: the total payload a
///   single alltoallv may carry from this rank. Pass [`MPI_COUNT_LIMIT`]
///   for realism or something small to exercise segmentation.
///
/// Returns this rank's new partition, locally permuted.
///
/// # Panics
/// Panics with a rendered [`ShuffleError`] if a received buffer holds a
/// truncated record; use [`try_shuffle_records`] to handle that as a value.
pub fn shuffle_records(
    comm: &Comm,
    records: Vec<Record>,
    seed: u64,
    max_segment_bytes: usize,
) -> Vec<Record> {
    try_shuffle_records(comm, records, seed, max_segment_bytes)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`shuffle_records`], but a malformed received buffer comes back as a
/// typed [`ShuffleError`] naming the link and segment round instead of a
/// panic.
pub fn try_shuffle_records(
    comm: &Comm,
    records: Vec<Record>,
    seed: u64,
    max_segment_bytes: usize,
) -> Result<Vec<Record>, ShuffleError> {
    let mine = vec![HostedPartition {
        virtual_rank: comm.rank(),
        rng_id: comm.global_rank() as u64,
        seed,
        records,
    }];
    let mut out = try_shuffle_hosted(comm, mine, comm.size(), |v| v, max_segment_bytes)?;
    Ok(out.partitions.pop().expect("one hosted partition").1)
}

/// One virtual rank's partition while its shuffle runs on a hosting
/// fabric. In the classic path every trainer rank hosts its own partition
/// (`virtual_rank == comm.rank()`); in the data-plane service a smaller
/// fleet of blob servers hosts all trainer partitions and runs the same
/// exchange between server processes, bit-for-bit.
pub struct HostedPartition {
    /// The trainer rank this partition belongs to — its position in the
    /// virtual world. Destination draws land in this space and receive
    /// order replays in this order.
    pub virtual_rank: usize,
    /// The id mixed into this partition's rng streams. The classic path
    /// passes the owner's *global* rank, which differs from
    /// `virtual_rank` on split sub-communicators.
    pub rng_id: u64,
    /// This partition's shuffle-round seed (the classic path's `seed`).
    pub seed: u64,
    /// The records currently held for this virtual rank.
    pub records: Vec<Record>,
}

/// What [`try_shuffle_hosted`] hands back: each hosted partition's new
/// records, plus how many alltoallv segment rounds the exchange took
/// (Algorithm 2's `m` — observable so tests and server logs can prove
/// the 32-bit segmentation actually engaged).
pub struct HostedShuffle {
    /// `(virtual_rank, records)` for every partition passed in, same order.
    pub partitions: Vec<(usize, Vec<Record>)>,
    /// Number of alltoallv segment rounds executed.
    pub rounds: usize,
}

/// Algorithm 2 generalized to hosted partitions: `comm` is the fabric the
/// exchange physically runs on (trainer ranks classically, blob servers in
/// the data-plane service), `mine` the partitions this process hosts,
/// `virtual_world` the total partition count, and `host_of` the
/// partition→fabric-rank placement (every process must agree on it).
///
/// The result is bitwise-identical to running the classic
/// [`try_shuffle_records`] with `virtual_world` ranks: destination draws,
/// greedy segmentation, round count, receive order (by virtual source
/// rank), and the final local permutation all replay per *virtual* rank,
/// independent of where the partitions physically live.
pub fn try_shuffle_hosted(
    comm: &Comm,
    mine: Vec<HostedPartition>,
    virtual_world: usize,
    host_of: impl Fn(usize) -> usize,
    max_segment_bytes: usize,
) -> Result<HostedShuffle, ShuffleError> {
    assert!(max_segment_bytes > 0);
    assert!(virtual_world >= 1, "virtual world must be non-empty");
    if virtual_world <= 1 {
        // Single trainer rank: a purely local permutation, same stream as
        // the classic single-rank path.
        let partitions = mine
            .into_iter()
            .map(|p| {
                let mut out = p.records;
                let mut rng = StdRng::seed_from_u64(p.seed ^ 0xD1D);
                out.shuffle(&mut rng);
                (p.virtual_rank, out)
            })
            .collect();
        return Ok(HostedShuffle { partitions, rounds: 0 });
    }
    let fabric = comm.size();

    // Assign destinations up front, per virtual rank (uniform over the
    // virtual world, self included) — the stream depends only on the
    // partition's seed and rng_id, never on placement.
    // (virtual_rank, rng_id, seed, [(dest, record)]) per hosted partition.
    type PartState = (usize, u64, u64, Vec<(usize, Record)>);
    let mut parts: Vec<PartState> = mine
        .into_iter()
        .map(|p| {
            let mut rng =
                StdRng::seed_from_u64(p.seed.wrapping_mul(0x9E3779B97F4A7C15) ^ p.rng_id);
            let assigned: Vec<(usize, Record)> = p
                .records
                .into_iter()
                .map(|r| (rng.random_range(0..virtual_world), r))
                .collect();
            (p.virtual_rank, p.rng_id, p.seed, assigned)
        })
        .collect();
    let local_of: std::collections::HashMap<usize, usize> =
        parts.iter().enumerate().map(|(i, p)| (p.0, i)).collect();

    let mut received: Vec<Vec<Record>> = parts.iter().map(|_| Vec::new()).collect();
    let mut round = 0usize;
    // Segment greedily per virtual rank: each alltoallv round ships at most
    // `max_segment_bytes` of payload from each partition — and every fabric
    // rank participates in the same number of rounds, coordinated via an
    // allgather of the worst remaining count.
    loop {
        let mut cuts = Vec::with_capacity(parts.len());
        let mut my_remaining = 0u64;
        for (_, _, _, assigned) in &parts {
            let mut seg_bytes = 0usize;
            let mut end = 0usize;
            while end < assigned.len() {
                let sz = 8 + assigned[end].1 .0.len();
                if seg_bytes + sz > max_segment_bytes && end > 0 {
                    break;
                }
                seg_bytes += sz;
                end += 1;
            }
            my_remaining = my_remaining.max(assigned.len() as u64);
            cuts.push(end);
        }

        // Do all fabric ranks agree there is nothing left?
        let flags = dcnn_collectives::primitives::allgather_bytes(
            comm,
            my_remaining.to_le_bytes().to_vec(),
        );
        let global_remaining: u64 = flags
            .iter()
            .map(|b| u64::from_le_bytes(b.as_slice().try_into().expect("8")))
            .max()
            .expect("non-empty cluster");
        if global_remaining == 0 {
            break;
        }

        // Frame this round's traffic per destination *server*: a run of
        // `src_virtual u32 | dst_virtual u32 | len u32 | packed records`
        // sub-chunks, so the receiver can replay appends in virtual-source
        // order regardless of which server carried them.
        let mut send: Vec<Vec<u8>> = vec![Vec::new(); fabric];
        for ((u, _, _, assigned), end) in parts.iter_mut().zip(&cuts) {
            let mut per_dest: Vec<Vec<Record>> = vec![Vec::new(); virtual_world];
            for (dest, rec) in assigned.drain(..*end) {
                per_dest[dest].push(rec);
            }
            for (v, recs) in per_dest.iter().enumerate() {
                if recs.is_empty() {
                    continue;
                }
                let body = pack(recs);
                let out = &mut send[host_of(v)];
                out.extend_from_slice(&(*u as u32).to_le_bytes());
                out.extend_from_slice(&(v as u32).to_le_bytes());
                out.extend_from_slice(&(body.len() as u32).to_le_bytes());
                out.extend_from_slice(&body);
            }
        }
        let recv = alltoallv_bytes(comm, send);

        // Gather sub-chunks keyed (virtual dst, virtual src); the BTreeMap
        // iteration then replays each partition's appends in virtual-source
        // order — exactly the classic path's `for src in 0..n` order.
        let mut chunks: std::collections::BTreeMap<(usize, usize), Vec<Record>> =
            std::collections::BTreeMap::new();
        for (src_server, buf) in recv.iter().enumerate() {
            let mut off = 0usize;
            while off < buf.len() {
                if buf.len() - off < 12 {
                    return Err(ShuffleError {
                        rank: comm.rank(),
                        src: src_server,
                        segment: round,
                        offset: off,
                        kind: ShuffleErrorKind::Header { remaining: buf.len() - off },
                    });
                }
                let u = u32::from_le_bytes(buf[off..off + 4].try_into().expect("4")) as usize;
                let v =
                    u32::from_le_bytes(buf[off + 4..off + 8].try_into().expect("4")) as usize;
                let len =
                    u32::from_le_bytes(buf[off + 8..off + 12].try_into().expect("4")) as usize;
                off += 12;
                if buf.len() - off < len {
                    return Err(ShuffleError {
                        rank: comm.rank(),
                        src: u,
                        segment: round,
                        offset: off,
                        kind: ShuffleErrorKind::Payload { need: len, remaining: buf.len() - off },
                    });
                }
                let slot = chunks.entry((v, u)).or_default();
                unpack(&buf[off..off + len], slot).map_err(|(o, kind)| ShuffleError {
                    rank: comm.rank(),
                    src: u,
                    segment: round,
                    offset: off + o,
                    kind,
                })?;
                off += len;
            }
        }
        for ((v, _), recs) in chunks {
            let li = *local_of
                .get(&v)
                .expect("received a chunk for a partition not hosted here: host_of mismatch");
            received[li].extend(recs);
        }
        round += 1;
    }

    // Local permutation per virtual rank (the paper's final
    // `random_permutation` step) — XOR the salt in, as in the classic path.
    let partitions = parts
        .into_iter()
        .enumerate()
        .map(|(i, (v, rng_id, seed, _))| {
            let mut recs = std::mem::take(&mut received[i]);
            let mut perm_rng = StdRng::seed_from_u64((seed ^ (rng_id << 32)) ^ 0xD1D);
            recs.shuffle(&mut perm_rng);
            (v, recs)
        })
        .collect();
    Ok(HostedShuffle { partitions, rounds: round })
}

/// Byte-count matrix of one shuffle round for virtual-time simulation:
/// `counts[src][dst]` bytes. With `groups` groups of `nodes/groups` members
/// each (paper Figure 9), exchange stays within the group; a uniformly
/// random reassignment sends `partition/S` to each of the `S` group members
/// (the self-share stays local and costs nothing on the fabric).
pub fn shuffle_counts_matrix(nodes: usize, partition_bytes: f64, groups: usize) -> Vec<Vec<f64>> {
    assert!(nodes > 0 && groups > 0 && nodes.is_multiple_of(groups), "groups must divide nodes");
    let group_size = nodes / groups;
    let share = partition_bytes / group_size as f64;
    let mut m = vec![vec![0.0; nodes]; nodes];
    for (src, row) in m.iter_mut().enumerate() {
        let g = src / group_size;
        for dst in g * group_size..(g + 1) * group_size {
            if dst != src {
                row[dst] = share;
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcnn_collectives::run_cluster;
    use std::collections::HashMap;

    fn make_records(rank: usize, count: usize) -> Vec<Record> {
        (0..count)
            .map(|i| {
                let len = 5 + (rank * 7 + i * 3) % 40;
                (vec![(rank * 100 + i) as u8; len], (rank * 1000 + i) as u32)
            })
            .collect()
    }

    fn census(all: &[Vec<Record>]) -> HashMap<(Vec<u8>, u32), usize> {
        let mut m = HashMap::new();
        for recs in all {
            for r in recs {
                *m.entry(r.clone()).or_insert(0) += 1;
            }
        }
        m
    }

    #[test]
    fn shuffle_preserves_record_multiset() {
        for n in [2, 4, 5] {
            let before: Vec<Vec<Record>> = (0..n).map(|r| make_records(r, 20)).collect();
            let expect = census(&before);
            let after = run_cluster(n, |c| {
                shuffle_records(c, make_records(c.rank(), 20), 99, MPI_COUNT_LIMIT)
            });
            assert_eq!(census(&after), expect, "n={n}");
        }
    }

    #[test]
    fn segmentation_matches_unsegmented_multiset() {
        let n = 4;
        let before: Vec<Vec<Record>> = (0..n).map(|r| make_records(r, 30)).collect();
        let expect = census(&before);
        // Tiny cap: forces many alltoallv rounds (Algorithm 2's m > 1).
        let after = run_cluster(n, |c| {
            shuffle_records(c, make_records(c.rank(), 30), 7, 64)
        });
        assert_eq!(census(&after), expect);
    }

    #[test]
    fn shuffle_actually_moves_records() {
        let n = 4;
        let after = run_cluster(n, |c| {
            shuffle_records(c, make_records(c.rank(), 40), 3, MPI_COUNT_LIMIT)
        });
        // Rank 0 should now hold some records that originated elsewhere
        // (labels ≥ 1000).
        assert!(
            after[0].iter().any(|(_, label)| *label >= 1000),
            "no foreign records on rank 0"
        );
    }

    #[test]
    fn uneven_partitions_rebalance_approximately() {
        let n = 4;
        let after = run_cluster(n, |c| {
            // Rank 0 starts with everything.
            let recs = if c.rank() == 0 { make_records(0, 400) } else { Vec::new() };
            shuffle_records(c, recs, 11, MPI_COUNT_LIMIT)
        });
        for (r, recs) in after.iter().enumerate() {
            assert!(
                (60..=140).contains(&recs.len()),
                "rank {r} got {} records",
                recs.len()
            );
        }
    }

    #[test]
    fn single_rank_shuffle_is_local_permutation() {
        let out = run_cluster(1, |c| {
            shuffle_records(c, make_records(0, 10), 5, MPI_COUNT_LIMIT)
        });
        assert_eq!(out[0].len(), 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            run_cluster(3, move |c| {
                shuffle_records(c, make_records(c.rank(), 15), seed, MPI_COUNT_LIMIT)
            })
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn group_shuffle_stays_within_group() {
        // 4 ranks, 2 groups: records must not cross group boundaries.
        let after = run_cluster(4, |c| {
            let group = c.rank() / 2;
            let sub = c.split(group as u64, c.rank() as i64);
            shuffle_records(&sub, make_records(c.rank(), 25), 13, MPI_COUNT_LIMIT)
        });
        for (r, recs) in after.iter().enumerate() {
            let group = r / 2;
            for (_, label) in recs {
                let origin = (*label / 1000) as usize;
                assert_eq!(origin / 2, group, "rank {r} received from {origin}");
            }
        }
    }

    #[test]
    fn adjacent_seeds_permute_differently() {
        // Regression: the perm seed used to be `seed ^ rank << 32 | 0xD1D`,
        // which ORs the salt in — every seed pair differing only within the
        // 0xD1D bits collapsed to the same local permutation.
        let run = |seed: u64| {
            run_cluster(2, move |c| {
                shuffle_records(c, make_records(c.rank(), 40), seed, MPI_COUNT_LIMIT)
            })
        };
        let mut distinct = 0;
        for base in [0u64, 0x100, 0xD00] {
            let a = run(base);
            let b = run(base + 1);
            assert_eq!(census(&a), census(&b), "same records, different order");
            if a != b {
                distinct += 1;
            }
        }
        assert!(
            distinct >= 2,
            "adjacent seeds produced identical shuffles in {}/3 cases",
            3 - distinct
        );
    }

    #[test]
    fn truncated_buffers_are_typed_errors_with_context() {
        let packed = pack(&make_records(0, 3));
        // Intact buffer parses.
        let mut out = Vec::new();
        unpack(&packed, &mut out).expect("intact buffer");
        assert_eq!(out.len(), 3);
        // Chop mid-payload: the header promises more than remains.
        let (off, kind) = unpack(&packed[..packed.len() - 2], &mut Vec::new())
            .expect_err("truncated payload");
        assert!(matches!(kind, ShuffleErrorKind::Payload { .. }), "{kind:?}");
        // Chop mid-header of the first record.
        let (off0, kind0) =
            unpack(&packed[..5], &mut Vec::new()).expect_err("truncated header");
        assert_eq!(off0, 0);
        assert_eq!(kind0, ShuffleErrorKind::Header { remaining: 5 });
        // The rendered error names every coordinate an operator needs.
        let e = ShuffleError { rank: 2, src: 3, segment: 1, offset: off, kind };
        let s = e.to_string();
        for needle in ["rank 2", "rank 3", "segment round 1", "truncated"] {
            assert!(s.contains(needle), "{s:?} missing {needle:?}");
        }
    }

    #[test]
    fn try_shuffle_returns_clean_records() {
        let n = 3;
        let before: Vec<Vec<Record>> = (0..n).map(|r| make_records(r, 12)).collect();
        let expect = census(&before);
        let after = run_cluster(n, |c| {
            try_shuffle_records(c, make_records(c.rank(), 12), 7, MPI_COUNT_LIMIT)
                .expect("clean exchange")
        });
        assert_eq!(census(&after), expect);
    }

    /// Per-rank seeds the way `Dimd::shuffle` derives them — the hosted
    /// path must replay exactly these streams.
    fn vseed(v: usize) -> u64 {
        0x55 ^ ((v as u64) << 20)
    }

    fn hosted_run(servers: usize, virtual_world: usize, cap: usize) -> (Vec<Vec<Record>>, usize) {
        let outs = run_cluster(servers, move |c| {
            let mine: Vec<HostedPartition> = (0..virtual_world)
                .filter(|v| v % servers == c.rank())
                .map(|v| HostedPartition {
                    virtual_rank: v,
                    rng_id: v as u64,
                    seed: vseed(v),
                    records: make_records(v, 25),
                })
                .collect();
            let out = try_shuffle_hosted(c, mine, virtual_world, |v| v % servers, cap)
                .expect("clean hosted exchange");
            (out.partitions, out.rounds)
        });
        let mut by_v: Vec<Vec<Record>> = vec![Vec::new(); virtual_world];
        let mut rounds = 0;
        for (partitions, r) in outs {
            rounds = rounds.max(r);
            for (v, recs) in partitions {
                by_v[v] = recs;
            }
        }
        (by_v, rounds)
    }

    #[test]
    fn hosted_shuffle_matches_classic_bitwise() {
        let t = 4;
        // The reference: t trainer ranks each shuffling their own partition.
        let classic = run_cluster(t, |c| {
            shuffle_records(c, make_records(c.rank(), 25), vseed(c.rank()), MPI_COUNT_LIMIT)
        });
        // The same virtual world hosted on fewer servers — including a
        // single server, where the whole exchange is self-delivery.
        for servers in [1, 2] {
            let (hosted, _) = hosted_run(servers, t, MPI_COUNT_LIMIT);
            assert_eq!(hosted, classic, "{servers} servers");
        }
    }

    #[test]
    fn hosted_shuffle_matches_classic_under_segmentation() {
        // A 96-byte cap forces many alltoallv rounds; segmentation changes
        // the receive order, so equality here proves the hosted greedy cuts
        // and round count replay the classic ones per virtual rank.
        let t = 4;
        let classic = run_cluster(t, |c| {
            shuffle_records(c, make_records(c.rank(), 25), vseed(c.rank()), 96)
        });
        let (hosted, rounds) = hosted_run(2, t, 96);
        assert_eq!(hosted, classic);
        assert!(rounds >= 2, "cap did not engage segmentation (rounds={rounds})");
    }

    #[test]
    fn hosted_shuffle_single_virtual_rank_is_local() {
        let (hosted, rounds) = hosted_run(1, 1, MPI_COUNT_LIMIT);
        let classic =
            run_cluster(1, |c| shuffle_records(c, make_records(0, 25), vseed(0), MPI_COUNT_LIMIT));
        assert_eq!(hosted, classic);
        assert_eq!(rounds, 0);
    }

    #[test]
    fn counts_matrix_shapes() {
        let m = shuffle_counts_matrix(8, 800.0, 2);
        // src 0 sends 200 to each of ranks 1..3 (its group), nothing beyond.
        assert_eq!(m[0][1], 200.0);
        assert_eq!(m[0][3], 200.0);
        assert_eq!(m[0][4], 0.0);
        assert_eq!(m[0][0], 0.0);
        // Total fabric bytes: 8 nodes × 3 peers × 200.
        let total: f64 = m.iter().flatten().sum();
        assert_eq!(total, 8.0 * 3.0 * 200.0);
    }

    #[test]
    #[should_panic]
    fn counts_matrix_bad_groups_panics() {
        let _ = shuffle_counts_matrix(8, 1.0, 3);
    }
}
