//! Partition planning — §4.1: "With this API each learner on a node loads a
//! sub-set of the dataset into memory. The size of the sub-set is based on
//! the available memory at each node. We can divide the learners into groups
//! such that each group of learners collectively own the entire dataset."
//!
//! This module picks the group size: the paper's two extremes are group size
//! 1 (every learner holds everything — "enough memory available") and group
//! size = cluster ("limited memory … each learner would hold 1/ℓ of the
//! data"). We choose the *smallest* group that fits, because smaller groups
//! mean more local diversity between shuffles and cheaper group-local
//! shuffles on asymmetric fabrics.

/// Fraction of host memory the partition may occupy (the rest is working
/// set: decode buffers, gradients, activations staged on the host).
pub const MEMORY_HEADROOM: f64 = 0.8;

/// A partitioning decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    /// Learners per group (each group collectively owns the dataset).
    pub group_size: usize,
    /// Number of groups (`nodes / group_size`).
    pub groups: usize,
}

/// Pick the smallest group size that fits `blob_bytes / group_size` into
/// `host_mem × headroom` per learner, among group sizes dividing `nodes`.
/// Returns `None` if even the full partitioning (one group of all nodes)
/// does not fit.
pub fn plan_groups(blob_bytes: f64, host_mem: f64, nodes: usize) -> Option<PartitionPlan> {
    assert!(nodes >= 1 && blob_bytes >= 0.0 && host_mem > 0.0);
    let budget = host_mem * MEMORY_HEADROOM;
    for group_size in 1..=nodes {
        if !nodes.is_multiple_of(group_size) {
            continue;
        }
        if blob_bytes / group_size as f64 <= budget {
            return Some(PartitionPlan { group_size, groups: nodes / group_size });
        }
    }
    None
}

/// Bytes each learner holds under a plan.
pub fn bytes_per_learner(blob_bytes: f64, plan: &PartitionPlan) -> f64 {
    blob_bytes / plan.group_size as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINSKY_MEM: f64 = 256e9;

    #[test]
    fn imagenet_1k_fits_everywhere() {
        // 70 GB blob ≤ 0.8 × 256 GB: every learner holds everything.
        let plan = plan_groups(70e9, MINSKY_MEM, 32).expect("fits");
        assert_eq!(plan, PartitionPlan { group_size: 1, groups: 32 });
        assert_eq!(bytes_per_learner(70e9, &plan), 70e9);
    }

    #[test]
    fn imagenet_22k_needs_partitioning() {
        // 220 GB > 204.8 GB budget → pairs of learners share the dataset.
        let plan = plan_groups(220e9, MINSKY_MEM, 32).expect("fits in pairs");
        assert_eq!(plan.group_size, 2);
        assert_eq!(plan.groups, 16);
        assert!(bytes_per_learner(220e9, &plan) <= MINSKY_MEM * MEMORY_HEADROOM);
    }

    #[test]
    fn huge_dataset_spreads_over_all_nodes() {
        // 6 TB over 32 × 256 GB nodes → 187.5 GB each with group 32.
        let plan = plan_groups(6e12, MINSKY_MEM, 32).expect("fits fully spread");
        assert_eq!(plan.group_size, 32);
        assert_eq!(plan.groups, 1);
    }

    #[test]
    fn impossible_dataset_returns_none() {
        assert_eq!(plan_groups(1e13, MINSKY_MEM, 32), None);
    }

    #[test]
    fn group_size_divides_nodes() {
        // 12 nodes: candidate group sizes are 1,2,3,4,6,12. A blob needing
        // ≥ a fifth of memory×nodes lands on a divisor, not 5.
        let mem = 10.0;
        let blob = 38.0; // needs group ≥ 4.75 → smallest divisor is 6
        let plan = plan_groups(blob, mem, 12).expect("fits");
        assert_eq!(plan.group_size, 6);
    }

    #[test]
    fn zero_size_blob_trivially_fits() {
        let plan = plan_groups(0.0, 1.0, 7).expect("fits");
        assert_eq!(plan.group_size, 1);
    }
}
