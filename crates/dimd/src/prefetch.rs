//! The donkey prefetch pipeline, for real: background threads decode and
//! augment upcoming mini-batches while the GPUs train on the current one —
//! exactly the overlap Torch's donkeys are supposed to provide and that DIMD
//! makes possible (in-memory records decode fast enough to stay ahead,
//! §4.1).
//!
//! [`Prefetcher::run_epoch`] takes ownership of the [`Dimd`] partition,
//! streams `iterations` batches through the pipeline, and returns the
//! partition when joined — ready for the end-of-epoch shuffle.
//!
//! The pipeline has two stages, mirroring the data-plane service split:
//! a *picker* thread draws records from the store (cheap — no decode), and
//! `workers` decode threads run the JPEG-decode + augment + normalize work
//! in parallel. `depth` bounds the number of batches picked but not yet
//! consumed to *exactly* `depth` (the old bounded-channel design allowed
//! `depth + 1`: `depth` queued plus one blocked in `send`).

use dcnn_tensor::Tensor;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};

use crate::shuffle::Record;
use crate::store::{decode_augmented_batch, Dimd};

/// A counting gate: `acquire` blocks until a permit is free (or the gate
/// closes), `release` returns one. Bounds in-flight batches to the permit
/// count exactly.
struct Permits {
    state: Mutex<(usize, bool)>,
    cv: Condvar,
}

impl Permits {
    fn new(count: usize) -> Self {
        Permits { state: Mutex::new((count, false)), cv: Condvar::new() }
    }

    /// Take a permit; `false` means the gate closed while waiting.
    fn acquire(&self) -> bool {
        let mut st = self.state.lock().expect("permit lock");
        loop {
            if st.1 {
                return false;
            }
            if st.0 > 0 {
                st.0 -= 1;
                return true;
            }
            st = self.cv.wait(st).expect("permit lock");
        }
    }

    fn release(&self) {
        let mut st = self.state.lock().expect("permit lock");
        st.0 += 1;
        self.cv.notify_all();
    }

    fn close(&self) {
        let mut st = self.state.lock().expect("permit lock");
        st.1 = true;
        self.cv.notify_all();
    }
}

/// A running prefetch pipeline for one epoch.
pub struct Prefetcher {
    outs: Vec<Receiver<(Tensor, Vec<usize>)>>,
    next: Cell<usize>,
    permits: Arc<Permits>,
    produced: Arc<AtomicUsize>,
    picker: std::thread::JoinHandle<Dimd>,
    decoders: Vec<std::thread::JoinHandle<()>>,
}

impl Prefetcher {
    /// Spawn the pipeline with a single decode thread: `iterations`
    /// batches of `batch` images cropped to `crop²`, at most `depth`
    /// batches picked but not yet consumed.
    pub fn run_epoch(
        dimd: Dimd,
        iterations: usize,
        batch: usize,
        crop: usize,
        depth: usize,
    ) -> Prefetcher {
        Prefetcher::run_epoch_with(dimd, iterations, batch, crop, depth, 1)
    }

    /// [`Prefetcher::run_epoch`] with `workers` parallel decode threads.
    /// Batches are handed to decoders round-robin and consumed in the same
    /// order, so the delivered sequence is identical for any worker count.
    pub fn run_epoch_with(
        dimd: Dimd,
        iterations: usize,
        batch: usize,
        crop: usize,
        depth: usize,
        workers: usize,
    ) -> Prefetcher {
        assert!(depth >= 1, "queue depth must be at least 1");
        assert!(workers >= 1, "need at least one decode worker");
        let permits = Arc::new(Permits::new(depth));
        let produced = Arc::new(AtomicUsize::new(0));

        let mut job_txs: Vec<Sender<(u64, Vec<Record>)>> = Vec::with_capacity(workers);
        let mut outs = Vec::with_capacity(workers);
        let mut decoders = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (job_tx, job_rx) = channel::<(u64, Vec<Record>)>();
            let (out_tx, out_rx) = channel();
            job_txs.push(job_tx);
            outs.push(out_rx);
            decoders.push(std::thread::spawn(move || {
                while let Ok((salt, records)) = job_rx.recv() {
                    if out_tx.send(decode_augmented_batch(&records, crop, salt)).is_err() {
                        break; // consumer dropped early
                    }
                }
            }));
        }

        let picker_permits = Arc::clone(&permits);
        let picker_produced = Arc::clone(&produced);
        let picker = std::thread::spawn(move || {
            let mut dimd = dimd;
            for i in 0..iterations {
                if !picker_permits.acquire() {
                    break; // consumer finished early
                }
                let job = dimd.sample_batch_records(batch);
                picker_produced.fetch_add(1, Ordering::SeqCst);
                if job_txs[i % job_txs.len()].send(job).is_err() {
                    break;
                }
            }
            dimd
        });

        Prefetcher { outs, next: Cell::new(0), permits, produced, picker, decoders }
    }

    /// Receive the next batch (blocks until the pipeline catches up).
    ///
    /// # Panics
    /// Panics if more than `iterations` batches are requested.
    pub fn next_batch(&self) -> (Tensor, Vec<usize>) {
        let w = self.next.get();
        self.next.set((w + 1) % self.outs.len());
        let b = self.outs[w]
            .recv()
            .expect("prefetcher exhausted: more batches requested than produced");
        self.permits.release();
        b
    }

    /// Batches picked from the store so far (consumed or in flight) —
    /// observable so tests can pin the `depth` bound.
    pub fn produced(&self) -> usize {
        self.produced.load(Ordering::SeqCst)
    }

    /// Join the pipeline and recover the partition.
    pub fn finish(self) -> Dimd {
        self.permits.close();
        drop(self.outs);
        let dimd = self.picker.join().expect("prefetch picker panicked");
        for d in self.decoders {
            d.join().expect("prefetch decoder panicked");
        }
        dimd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthConfig, SynthImageNet};

    fn ds() -> SynthImageNet {
        let mut cfg = SynthConfig::tiny(3);
        cfg.train_per_class = 12;
        cfg.base_hw = 16;
        SynthImageNet::new(cfg)
    }

    #[test]
    fn prefetched_batches_match_direct_sampling() {
        let ds = ds();
        // Same seed ⇒ identical sampling order with or without the pipeline.
        let mut direct = Dimd::load_partition(&ds, 0, 1, 70, 7);
        let pre = Dimd::load_partition(&ds, 0, 1, 70, 7);
        let p = Prefetcher::run_epoch(pre, 4, 6, 16, 2);
        for _ in 0..4 {
            let (xd, ld) = direct.random_batch(6, 16);
            let (xp, lp) = p.next_batch();
            assert_eq!(xd, xp);
            assert_eq!(ld, lp);
        }
        let back = p.finish();
        assert_eq!(back.len(), direct.len());
    }

    #[test]
    fn parallel_decoders_preserve_batch_order() {
        let ds = ds();
        let mut direct = Dimd::load_partition(&ds, 0, 1, 70, 21);
        let pre = Dimd::load_partition(&ds, 0, 1, 70, 21);
        // 3 decode workers: delivery order must still match direct sampling.
        let p = Prefetcher::run_epoch_with(pre, 7, 4, 16, 2, 3);
        for i in 0..7 {
            let (xd, ld) = direct.random_batch(4, 16);
            let (xp, lp) = p.next_batch();
            assert_eq!(xd, xp, "batch {i} out of order");
            assert_eq!(ld, lp, "batch {i} labels out of order");
        }
        p.finish();
    }

    #[test]
    fn depth_bounds_picked_batches_exactly() {
        let ds = ds();
        let dimd = Dimd::load_partition(&ds, 0, 1, 70, 5);
        let depth = 3;
        let p = Prefetcher::run_epoch(dimd, 100, 2, 16, depth);
        // Consume nothing: the picker must stall at exactly `depth` picks
        // (the old sync_channel(depth) design crept to depth + 1).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while p.produced() < depth && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(p.produced(), depth, "picker did not reach depth");
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(p.produced(), depth, "picker overran the depth bound");
        // Consuming one batch frees exactly one permit.
        let _ = p.next_batch();
        while p.produced() < depth + 1 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(p.produced(), depth + 1);
        p.finish();
    }

    #[test]
    fn early_drop_does_not_hang() {
        let ds = ds();
        let dimd = Dimd::load_partition(&ds, 0, 1, 70, 9);
        let p = Prefetcher::run_epoch(dimd, 100, 4, 16, 1);
        let _ = p.next_batch();
        let back = p.finish(); // closes the gate with 99 batches pending
        assert_eq!(back.len(), 36);
    }

    #[test]
    fn partition_usable_after_epoch() {
        let ds = ds();
        let dimd = Dimd::load_partition(&ds, 0, 1, 70, 3);
        let p = Prefetcher::run_epoch(dimd, 2, 4, 16, 2);
        let _ = p.next_batch();
        let _ = p.next_batch();
        let mut back = p.finish();
        let (x, _) = back.random_batch(4, 16);
        assert_eq!(x.shape(), &[4, 3, 16, 16]);
    }

    #[test]
    #[should_panic]
    fn over_consuming_panics() {
        let ds = ds();
        let dimd = Dimd::load_partition(&ds, 0, 1, 70, 3);
        let p = Prefetcher::run_epoch(dimd, 1, 4, 16, 1);
        let _ = p.next_batch();
        let _ = p.next_batch();
    }
}
