//! The donkey prefetch pipeline, for real: a background thread decodes and
//! augments upcoming mini-batches while the GPUs train on the current one —
//! exactly the overlap Torch's donkeys are supposed to provide and that DIMD
//! makes possible (in-memory records decode fast enough to stay ahead,
//! §4.1).
//!
//! [`Prefetcher::run_epoch`] takes ownership of the [`Dimd`] partition,
//! streams `iterations` batches through a bounded channel, and returns the
//! partition when joined — ready for the end-of-epoch shuffle.

use dcnn_tensor::Tensor;
use std::sync::mpsc::{sync_channel, Receiver};

use crate::store::Dimd;

/// A running prefetch pipeline for one epoch.
pub struct Prefetcher {
    rx: Receiver<(Tensor, Vec<usize>)>,
    handle: std::thread::JoinHandle<Dimd>,
}

impl Prefetcher {
    /// Spawn the donkey thread: it produces `iterations` batches of
    /// `batch` images cropped to `crop²`, keeping at most `depth` decoded
    /// batches queued ahead of the consumer.
    pub fn run_epoch(
        dimd: Dimd,
        iterations: usize,
        batch: usize,
        crop: usize,
        depth: usize,
    ) -> Prefetcher {
        assert!(depth >= 1, "queue depth must be at least 1");
        let (tx, rx) = sync_channel(depth);
        let handle = std::thread::spawn(move || {
            let mut dimd = dimd;
            for _ in 0..iterations {
                let b = dimd.random_batch(batch, crop);
                if tx.send(b).is_err() {
                    break; // consumer dropped early
                }
            }
            dimd
        });
        Prefetcher { rx, handle }
    }

    /// Receive the next batch (blocks until the donkey catches up).
    ///
    /// # Panics
    /// Panics if more than `iterations` batches are requested.
    pub fn next_batch(&self) -> (Tensor, Vec<usize>) {
        self.rx.recv().expect("prefetcher exhausted: more batches requested than produced")
    }

    /// Join the donkey thread and recover the partition.
    pub fn finish(self) -> Dimd {
        drop(self.rx);
        self.handle.join().expect("prefetch thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthConfig, SynthImageNet};

    fn ds() -> SynthImageNet {
        let mut cfg = SynthConfig::tiny(3);
        cfg.train_per_class = 12;
        cfg.base_hw = 16;
        SynthImageNet::new(cfg)
    }

    #[test]
    fn prefetched_batches_match_direct_sampling() {
        let ds = ds();
        // Same seed ⇒ identical sampling order with or without the pipeline.
        let mut direct = Dimd::load_partition(&ds, 0, 1, 70, 7);
        let pre = Dimd::load_partition(&ds, 0, 1, 70, 7);
        let p = Prefetcher::run_epoch(pre, 4, 6, 16, 2);
        for _ in 0..4 {
            let (xd, ld) = direct.random_batch(6, 16);
            let (xp, lp) = p.next_batch();
            assert_eq!(xd, xp);
            assert_eq!(ld, lp);
        }
        let back = p.finish();
        assert_eq!(back.len(), direct.len());
    }

    #[test]
    fn early_drop_does_not_hang() {
        let ds = ds();
        let dimd = Dimd::load_partition(&ds, 0, 1, 70, 9);
        let p = Prefetcher::run_epoch(dimd, 100, 4, 16, 1);
        let _ = p.next_batch();
        let back = p.finish(); // drops the receiver with 99 batches pending
        assert_eq!(back.len(), 36);
    }

    #[test]
    fn partition_usable_after_epoch() {
        let ds = ds();
        let dimd = Dimd::load_partition(&ds, 0, 1, 70, 3);
        let p = Prefetcher::run_epoch(dimd, 2, 4, 16, 2);
        let _ = p.next_batch();
        let _ = p.next_batch();
        let mut back = p.finish();
        let (x, _) = back.random_batch(4, 16);
        assert_eq!(x.shape(), &[4, 3, 16, 16]);
    }

    #[test]
    #[should_panic]
    fn over_consuming_panics() {
        let ds = ds();
        let dimd = Dimd::load_partition(&ds, 0, 1, 70, 3);
        let p = Prefetcher::run_epoch(dimd, 1, 4, 16, 1);
        let _ = p.next_batch();
        let _ = p.next_batch();
    }
}
