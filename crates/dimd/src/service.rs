//! The DIMD data plane as a real multi-process service: rank-resident
//! **blob servers** own trainers' [`Dimd`] partitions and stream
//! decode-ahead mini-batches to remote trainer ranks over TCP, using the
//! same CRC'd DCTP frame format as the rank fabric
//! (`dcnn_collectives::transport::wire`).
//!
//! The paper keeps data *in memory next to the learner*; this module is
//! the other deployment the same APIs support — a small fleet of data
//! servers feeding a larger fleet of trainers, as production input
//! pipelines (tf.data service, Ray Data) do. The contract is strict
//! **bitwise identity**: a service-backed epoch must produce exactly the
//! training batches the in-process path produces, because the server runs
//! the very same [`Dimd::sample_batch_records`] stream on the trainer's
//! behalf and ships the still-compressed records + augmentation salt; the
//! client decodes them through [`decode_augmented_batch`] — the identical
//! code path local training calls.
//!
//! Protocol, on top of DCTP service frames (all little-endian):
//!
//! * client → server `KIND_DATA_REQ` with `tag == HELLO_TAG`: the
//!   [`Hello`] handshake (who am I, global job shape).
//! * client → server `KIND_DATA_REQ`: request batch `tag = seq` of epoch
//!   `comm_id`. Clients pipeline up to `prefetch_depth` of these.
//! * server → client `KIND_DATA_BATCH`: `tag = seq`, `comm_id = salt`,
//!   payload = [`pack`]ed records.
//! * client → server `KIND_DATA_EOE` (`comm_id = epoch`): this rank
//!   finished the epoch. When every rank a server hosts has sent it, the
//!   server fleet runs Algorithm 2's segmented alltoallv **between server
//!   processes** ([`try_shuffle_hosted`]) if the cadence says so, then
//!   acks each client with `KIND_DATA_EOE`.

use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::{Duration, Instant};

use dcnn_collectives::runtime::{Comm, CommError};
use dcnn_collectives::transport::wire::{
    encode_bye, read_frame, write_service_frames_vectored, FrameRead, KIND_DATA_BATCH,
    KIND_DATA_EOE, KIND_DATA_REQ,
};
use dcnn_collectives::transport::{Payload, WireMsg};
use dcnn_tensor::Tensor;

use crate::prefetch::Prefetcher;
use crate::shuffle::{pack, try_shuffle_hosted, unpack, HostedPartition};
use crate::store::{decode_augmented_batch, Dimd};

/// `tag` value marking a `KIND_DATA_REQ` frame as the [`Hello`] handshake
/// rather than a batch request (real seqs are far smaller).
pub const HELLO_TAG: u32 = 0xFFFF_FFFF;

const HELLO_MAGIC: [u8; 4] = *b"DIMD";
const HELLO_VERSION: u32 = 1;

/// How many queued frames a server writer folds into one vectored write
/// (mirrors the rank fabric's writer batching).
const WRITE_BATCH_MAX: usize = 64;

/// The client handshake: identifies the trainer rank and carries the job
/// shape every participant must agree on. The server cross-checks all its
/// clients sent the same global parameters — config skew between ranks
/// would silently break bitwise identity, so it is a hard error instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// This client's trainer rank.
    pub rank: usize,
    /// Trainer world size (number of partitions the service hosts).
    pub world: usize,
    /// Records per requested batch for this rank.
    pub batch: usize,
    /// Batch requests this rank will make per epoch.
    pub requests_per_epoch: usize,
    /// Total epochs in the job.
    pub epochs: usize,
    /// Cross-node shuffle cadence: shuffle when
    /// `(epoch + 1) % shuffle_every == 0`; `0` = never.
    pub shuffle_every: usize,
    /// Algorithm 2 segmentation cap for the epoch shuffle, in bytes.
    pub segment_bytes: u64,
}

impl Hello {
    /// Serialize for the handshake frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 4 + 6 * 4 + 8);
        out.extend_from_slice(&HELLO_MAGIC);
        out.extend_from_slice(&HELLO_VERSION.to_le_bytes());
        for v in [
            self.rank,
            self.world,
            self.batch,
            self.requests_per_epoch,
            self.epochs,
            self.shuffle_every,
        ] {
            out.extend_from_slice(&(v as u32).to_le_bytes());
        }
        out.extend_from_slice(&self.segment_bytes.to_le_bytes());
        out
    }

    /// Parse a handshake payload.
    pub fn decode(buf: &[u8]) -> Result<Hello, String> {
        if buf.len() != 4 + 4 + 6 * 4 + 8 {
            return Err(format!("handshake length {} (want {})", buf.len(), 4 + 4 + 6 * 4 + 8));
        }
        if buf[0..4] != HELLO_MAGIC {
            return Err(format!("bad handshake magic {:02x?}", &buf[0..4]));
        }
        let u32_at = |i: usize| {
            u32::from_le_bytes(buf[i..i + 4].try_into().expect("4 bytes")) as usize
        };
        let version = u32_at(4);
        if version != HELLO_VERSION as usize {
            return Err(format!("handshake version {version} (want {HELLO_VERSION})"));
        }
        Ok(Hello {
            rank: u32_at(8),
            world: u32_at(12),
            batch: u32_at(16),
            requests_per_epoch: u32_at(20),
            epochs: u32_at(24),
            shuffle_every: u32_at(28),
            segment_bytes: u64::from_le_bytes(buf[32..40].try_into().expect("8 bytes")),
        })
    }

    /// The fields every client of a job must agree on (everything except
    /// its own rank and per-rank batch size).
    fn job_shape(&self) -> (usize, usize, usize, usize, u64) {
        (self.world, self.requests_per_epoch, self.epochs, self.shuffle_every, self.segment_bytes)
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// What a finished [`serve_blocking`] call observed.
#[derive(Debug)]
pub struct ServeReport {
    /// Total batches served across all clients and epochs.
    pub batches_served: usize,
    /// Alltoallv segment-round counts, one per executed epoch shuffle
    /// (Algorithm 2's `m` — proves the 32-bit segmentation engaged).
    pub shuffle_rounds: Vec<usize>,
}

/// Events the per-connection reader threads feed the store loop. Each
/// client's events arrive in its socket order, so per-partition request
/// order — and therefore the sampling rng stream — is preserved.
enum Event {
    Hello { hello: Hello, stream: TcpStream },
    Req { rank: usize, epoch: u64, seq: u32 },
    Eoe { rank: usize, epoch: u64 },
    Gone { rank: usize, cause: String },
}

/// Per-connected-client server state.
struct Client {
    hello: Hello,
    writer: Sender<(u8, WireMsg)>,
    /// The writer thread, joined on clean shutdown so the final EOE ack
    /// and BYE reach the wire before the server process can exit.
    writer_thread: std::thread::JoinHandle<()>,
    next_seq: u32,
    eoe_epoch: Option<u64>,
}

/// Read frames from one client socket and translate them into [`Event`]s.
/// `rank < 0` until the handshake names the peer.
fn spawn_client_reader(stream: TcpStream, events: Sender<Event>) {
    std::thread::spawn(move || {
        let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "?".into());
        let mut reader = BufReader::new(stream.try_clone().expect("clone client socket"));
        let mut stream = Some(stream);
        let mut rank: Option<usize> = None;
        loop {
            match read_frame(&mut reader) {
                Ok(FrameRead::Service { kind: KIND_DATA_REQ, msg }) if msg.tag == HELLO_TAG => {
                    match Hello::decode(msg.payload.as_bytes()) {
                        Ok(hello) => {
                            rank = Some(hello.rank);
                            let Some(stream) = stream.take() else {
                                eprintln!("dcnn-data-server: duplicate handshake from {peer}");
                                return;
                            };
                            if events.send(Event::Hello { hello, stream }).is_err() {
                                return;
                            }
                        }
                        Err(e) => {
                            eprintln!("dcnn-data-server: bad handshake from {peer}: {e}");
                            return;
                        }
                    }
                }
                Ok(FrameRead::Service { kind: KIND_DATA_REQ, msg }) => {
                    let Some(rank) = rank else { return };
                    if events
                        .send(Event::Req { rank, epoch: msg.comm_id, seq: msg.tag })
                        .is_err()
                    {
                        return;
                    }
                }
                Ok(FrameRead::Service { kind: KIND_DATA_EOE, msg }) => {
                    let Some(rank) = rank else { return };
                    if events.send(Event::Eoe { rank, epoch: msg.comm_id }).is_err() {
                        return;
                    }
                }
                Ok(FrameRead::Bye) => {
                    if let Some(rank) = rank {
                        let _ = events.send(Event::Gone {
                            rank,
                            cause: "client sent BYE".into(),
                        });
                    }
                    return;
                }
                Ok(FrameRead::Eof) | Ok(FrameRead::Msg(_)) | Ok(FrameRead::Service { .. }) => {
                    if let Some(rank) = rank {
                        let _ = events.send(Event::Gone {
                            rank,
                            cause: "connection closed without BYE".into(),
                        });
                    }
                    return;
                }
                Err(e) => {
                    if let Some(rank) = rank {
                        let _ = events.send(Event::Gone {
                            rank,
                            cause: e.to_string(),
                        });
                    }
                    return;
                }
            }
        }
    });
}

/// Batch queued frames into vectored writes on one client socket, then a
/// BYE when the queue closes — the same drain + `try_recv` batching the
/// rank fabric's writer thread uses.
fn spawn_client_writer(
    mut stream: TcpStream,
    rx: Receiver<(u8, WireMsg)>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        while let Ok(first) = rx.recv() {
            let mut frames = vec![first];
            while frames.len() < WRITE_BATCH_MAX {
                match rx.try_recv() {
                    Ok(f) => frames.push(f),
                    Err(_) => break,
                }
            }
            if write_service_frames_vectored(&mut stream, &frames).is_err() {
                return;
            }
        }
        let _ = stream.write_all(&encode_bye(0));
        let _ = stream.flush();
    })
}

/// Run one blob server: accept the expected clients on `listener`, serve
/// their batch requests from `partitions`, run the cross-node epoch
/// shuffle over `comm` (the *server* fabric) at the cadence the clients'
/// handshakes declare, and return when the job's final epoch is acked.
///
/// `partitions` maps trainer (virtual) ranks to their [`Dimd`] stores;
/// server `comm.rank()` of `comm.size()` must host exactly the ranks
/// `{ v : v % comm.size() == comm.rank(), v < trainer_world }`.
///
/// `fault_after_batches` is the fault-injection hook: after serving that
/// many batches the server drops every connection and returns an error —
/// from the clients' point of view, a crashed data server.
pub fn serve_blocking(
    listener: TcpListener,
    comm: &Comm,
    mut partitions: Vec<(usize, Dimd)>,
    trainer_world: usize,
    fault_after_batches: Option<usize>,
) -> io::Result<ServeReport> {
    let servers = comm.size();
    let me = comm.rank();
    partitions.sort_by_key(|(v, _)| *v);
    for (v, _) in &partitions {
        assert!(
            *v < trainer_world && *v % servers == me,
            "partition {v} does not belong on server {me} of {servers}"
        );
    }
    let hosted: Vec<usize> = partitions.iter().map(|(v, _)| *v).collect();
    assert!(!hosted.is_empty(), "server {me} hosts no partitions");

    let (events_tx, events) = channel::<Event>();

    // Accept until every hosted rank has handshaked. The reader thread owns
    // frame parsing; accepted sockets surface here as Hello events. Clients
    // that handshook early may already be pipelining batch requests while
    // later clients are still connecting — buffer those for the store loop.
    let mut clients: HashMap<usize, Client> = HashMap::new();
    let mut job: Option<Hello> = None;
    let mut pending: std::collections::VecDeque<Event> = std::collections::VecDeque::new();
    while clients.len() < hosted.len() {
        let (stream, _) = listener.accept()?;
        stream.set_nodelay(true).ok();
        spawn_client_reader(stream, events_tx.clone());
        // Wait for this connection's handshake (or its failure) before
        // accepting more — the handshake is the first frame on its socket.
        loop {
            match events.recv() {
                Ok(Event::Hello { hello, stream }) => {
                    assert!(
                        hosted.contains(&hello.rank),
                        "client rank {} is not hosted by server {me} of {servers}",
                        hello.rank
                    );
                    assert_eq!(
                        hello.world, trainer_world,
                        "client rank {} disagrees on trainer world",
                        hello.rank
                    );
                    if let Some(first) = &job {
                        assert_eq!(
                            first.job_shape(),
                            hello.job_shape(),
                            "client rank {} disagrees on the job shape",
                            hello.rank
                        );
                    } else {
                        job = Some(hello);
                    }
                    let (tx, rx) = channel();
                    let writer_thread = spawn_client_writer(stream, rx);
                    clients.insert(
                        hello.rank,
                        Client { hello, writer: tx, writer_thread, next_seq: 0, eoe_epoch: None },
                    );
                    break;
                }
                Ok(Event::Gone { rank, cause, .. }) => {
                    return Err(io::Error::other(format!(
                        "client rank {rank} failed during handshake: {cause}"
                    )));
                }
                Ok(ev) => pending.push_back(ev),
                Err(_) => return Err(io::Error::other("reader threads gone")),
            }
        }
    }
    let job = job.expect("at least one client");

    // The store loop: single-threaded ownership of every hosted partition.
    // Per-client order is socket order, so each partition's sample stream
    // replays exactly what the trainer's in-process path would draw.
    let mut report = ServeReport { batches_served: 0, shuffle_rounds: Vec::new() };
    let mut epoch = 0u64;
    loop {
        let ev = match pending.pop_front() {
            Some(ev) => ev,
            None => match events.recv() {
                Ok(ev) => ev,
                Err(_) => return Err(io::Error::other("all client readers exited mid-job")),
            },
        };
        match ev {
            Event::Hello { .. } => return Err(io::Error::other("duplicate handshake")),
            Event::Req { rank, epoch: e, seq } => {
                assert_eq!(e, epoch, "rank {rank} requested epoch {e} during epoch {epoch}");
                let client = clients.get_mut(&rank).expect("known client");
                assert_eq!(seq, client.next_seq, "rank {rank} request out of order");
                client.next_seq += 1;
                let batch = client.hello.batch;
                let dimd = &mut partitions
                    .iter_mut()
                    .find(|(v, _)| *v == rank)
                    .expect("hosted partition")
                    .1;
                let (salt, records) = dimd.sample_batch_records(batch);
                report.batches_served += 1;
                let frame = WireMsg {
                    src: me,
                    comm_id: salt,
                    tag: seq,
                    payload: Payload::bytes(pack(&records)),
                };
                let _ = client.writer.send((KIND_DATA_BATCH, frame));
                if let Some(n) = fault_after_batches {
                    if report.batches_served >= n {
                        // Simulate a crashed server: drop every socket on
                        // the floor. Clients must observe a structured
                        // peer-death, not a hang.
                        drop(clients);
                        return Err(io::Error::other(format!(
                            "fault: killed after serving {n} batches"
                        )));
                    }
                }
            }
            Event::Eoe { rank, epoch: e } => {
                assert_eq!(e, epoch, "rank {rank} ended epoch {e} during epoch {epoch}");
                let client = clients.get_mut(&rank).expect("known client");
                client.eoe_epoch = Some(e);
                if !clients.values().all(|c| c.eoe_epoch == Some(epoch)) {
                    continue;
                }
                // Every hosted rank finished this epoch. Shuffle across the
                // server fabric if the cadence says so, then release the
                // clients into the next epoch.
                let due =
                    job.shuffle_every > 0 && (epoch as usize + 1).is_multiple_of(job.shuffle_every);
                if due {
                    let mine: Vec<HostedPartition> = partitions
                        .iter_mut()
                        .map(|(v, d)| HostedPartition {
                            virtual_rank: *v,
                            rng_id: *v as u64,
                            seed: d.epoch_seed() ^ epoch,
                            records: d.take_records(),
                        })
                        .collect();
                    let out = try_shuffle_hosted(
                        comm,
                        mine,
                        trainer_world,
                        |v| v % servers,
                        job.segment_bytes as usize,
                    )
                    .map_err(|e| io::Error::other(e.to_string()))?;
                    eprintln!(
                        "dcnn-data-server: rank {me}: shuffle epoch={epoch} rounds={}",
                        out.rounds
                    );
                    report.shuffle_rounds.push(out.rounds);
                    for (v, recs) in out.partitions {
                        partitions
                            .iter_mut()
                            .find(|(pv, _)| *pv == v)
                            .expect("hosted partition")
                            .1
                            .install_shuffled_records(recs);
                    }
                }
                for client in clients.values_mut() {
                    let ack = WireMsg {
                        src: me,
                        comm_id: epoch,
                        tag: 0,
                        payload: Payload::bytes(Vec::new()),
                    };
                    let _ = client.writer.send((KIND_DATA_EOE, ack));
                    client.eoe_epoch = None;
                    client.next_seq = 0;
                }
                epoch += 1;
                if epoch as usize >= job.epochs {
                    // Closing the writer channels makes each writer drain
                    // the final EOE ack and send BYE; join them so those
                    // frames are on the wire before the server process can
                    // exit and tear the sockets down under the clients.
                    for (_, client) in clients.drain() {
                        drop(client.writer);
                        let _ = client.writer_thread.join();
                    }
                    return Ok(report);
                }
            }
            // A clean BYE only makes sense once the job is over; the store
            // loop is still running, so either way the client is gone early.
            Event::Gone { rank, cause } => {
                return Err(io::Error::other(format!(
                    "client rank {rank} died mid-job ({cause})"
                )));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A still-compressed batch on its way to a decode worker: augmentation
/// salt + packed record bytes.
type DecodeJob = (u64, Vec<u8>);
/// One decode lane: where the reader enqueues jobs, plus a handle on that
/// lane's output for delivering death notices in-band.
type DecodeLane = (Sender<DecodeJob>, Sender<Decoded>);

/// What the decode workers hand the consumer: a decoded batch, or the
/// reader thread's report that the server link died.
enum Decoded {
    Batch(Tensor, Vec<usize>),
    Dead(String),
}

/// A trainer rank's connection to its blob server: pipelines batch
/// requests `depth` ahead, decodes arriving record sets on `workers`
/// parallel threads, and delivers batches in request order.
pub struct ServiceClient {
    stream: TcpStream,
    hello: Hello,
    server_index: usize,
    addr: String,
    depth: usize,
    outs: Vec<Receiver<Decoded>>,
    eoe: Receiver<u64>,
    epoch: u64,
    sent: usize,
    consumed: usize,
    reader: Option<std::thread::JoinHandle<()>>,
    decoders: Vec<std::thread::JoinHandle<()>>,
}

impl ServiceClient {
    /// Dial `addr` (retrying while the server comes up, until `timeout`),
    /// perform the [`Hello`] handshake, and spawn the reader + `workers`
    /// decode threads. `server_index` is only used to label failures.
    pub fn connect(
        addr: &str,
        server_index: usize,
        hello: Hello,
        crop: usize,
        depth: usize,
        workers: usize,
        timeout: Duration,
    ) -> io::Result<ServiceClient> {
        assert!(workers >= 1, "need at least one decode worker");
        let deadline = Instant::now() + timeout;
        let mut pause = Duration::from_millis(5);
        let stream = loop {
            match TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            e.kind(),
                            format!("data server {addr} unreachable: {e}"),
                        ));
                    }
                    std::thread::sleep(pause);
                    pause = (pause * 2).min(Duration::from_millis(200));
                }
            }
        };
        stream.set_nodelay(true).ok();

        let mut tx_stream = stream.try_clone()?;
        let handshake = WireMsg {
            src: hello.rank,
            comm_id: 0,
            tag: HELLO_TAG,
            payload: Payload::bytes(hello.encode()),
        };
        write_service_frames_vectored(&mut tx_stream, &[(KIND_DATA_REQ, handshake)])?;

        // Decode workers: jobs arrive round-robin by request seq and leave
        // on per-worker FIFO channels, so consuming round-robin preserves
        // request order for any worker count.
        let mut job_txs: Vec<DecodeLane> = Vec::with_capacity(workers);
        let mut outs = Vec::with_capacity(workers);
        let mut decoders = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (job_tx, job_rx) = channel::<DecodeJob>();
            let (out_tx, out_rx) = channel::<Decoded>();
            job_txs.push((job_tx, out_tx.clone()));
            outs.push(out_rx);
            decoders.push(std::thread::spawn(move || {
                while let Ok((salt, body)) = job_rx.recv() {
                    let mut records = Vec::new();
                    if let Err((off, kind)) = unpack(&body, &mut records) {
                        let _ = out_tx.send(Decoded::Dead(format!(
                            "malformed batch payload at byte {off}: {kind:?}"
                        )));
                        return;
                    }
                    let (x, labels) = decode_augmented_batch(&records, crop, salt);
                    if out_tx.send(Decoded::Batch(x, labels)).is_err() {
                        return;
                    }
                }
            }));
        }

        let (eoe_tx, eoe) = channel::<u64>();
        let reader_stream = stream.try_clone()?;
        let reader = std::thread::spawn(move || {
            let mut r = BufReader::new(reader_stream);
            let mut seq = 0usize;
            let die = |job_txs: &[DecodeLane], cause: String| {
                for (_, out_tx) in job_txs {
                    let _ = out_tx.send(Decoded::Dead(cause.clone()));
                }
            };
            loop {
                match read_frame(&mut r) {
                    Ok(FrameRead::Service { kind: KIND_DATA_BATCH, msg }) => {
                        let body = msg.payload.as_bytes().to_vec();
                        let w = seq % job_txs.len();
                        seq += 1;
                        if job_txs[w].0.send((msg.comm_id, body)).is_err() {
                            return;
                        }
                    }
                    Ok(FrameRead::Service { kind: KIND_DATA_EOE, msg }) => {
                        seq = 0;
                        if eoe_tx.send(msg.comm_id).is_err() {
                            return;
                        }
                    }
                    Ok(FrameRead::Bye) => {
                        // Graceful server goodbye after the last epoch: stop
                        // reading. If batches were still owed, the exhausted
                        // channels surface it at the consumer.
                        return;
                    }
                    Ok(FrameRead::Eof) => {
                        die(&job_txs, "server closed the connection without BYE".into());
                        return;
                    }
                    Ok(FrameRead::Msg(_)) | Ok(FrameRead::Service { .. }) => {
                        die(&job_txs, "unexpected rank-fabric frame on the data plane".into());
                        return;
                    }
                    Err(e) => {
                        die(&job_txs, e.to_string());
                        return;
                    }
                }
            }
        });

        Ok(ServiceClient {
            stream,
            hello,
            server_index,
            addr: addr.to_string(),
            depth,
            outs,
            eoe,
            epoch: 0,
            sent: 0,
            consumed: 0,
            reader: Some(reader),
            decoders,
        })
    }

    /// Raise the data-plane analogue of a torn fabric link: a structured
    /// [`CommError::PeerDead`] naming the server, delivered through the
    /// same panic channel the collectives use — so `dcnn-launch` prints
    /// the one-line structured abort instead of a backtrace.
    fn die(&self, cause: String) -> ! {
        std::panic::panic_any(CommError::PeerDead {
            rank: self.hello.rank,
            peer: self.server_index,
            cause: format!("data server {}: {cause}", self.addr),
            phase: Some("data-plane".into()),
            bucket: None,
            label: None,
        })
    }

    fn send_req(&mut self, seq: usize) {
        let req = WireMsg {
            src: self.hello.rank,
            comm_id: self.epoch,
            tag: seq as u32,
            payload: Payload::bytes(Vec::new()),
        };
        let mut stream = &self.stream;
        if let Err(e) = write_service_frames_vectored(&mut stream, &[(KIND_DATA_REQ, req)]) {
            self.die(e.to_string());
        }
    }

    /// Open an epoch: prime the request pipeline `depth` deep (depth 0 =
    /// fully synchronous request-then-wait).
    pub fn begin_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.sent = 0;
        self.consumed = 0;
        let window = self.depth.min(self.hello.requests_per_epoch);
        for seq in 0..window {
            self.send_req(seq);
        }
        self.sent = window;
    }

    /// Receive the next decoded batch, keeping the request window full.
    pub fn next_batch(&mut self) -> (Tensor, Vec<usize>) {
        assert!(
            self.consumed < self.hello.requests_per_epoch,
            "epoch over-consumed: {} batches of {}",
            self.consumed + 1,
            self.hello.requests_per_epoch
        );
        if self.depth == 0 {
            self.send_req(self.sent);
            self.sent += 1;
        }
        let w = self.consumed % self.outs.len();
        let out = match self.outs[w].recv() {
            Ok(Decoded::Batch(x, labels)) => (x, labels),
            Ok(Decoded::Dead(cause)) => self.die(cause),
            Err(_) => self.die("decode pipeline exited".into()),
        };
        self.consumed += 1;
        if self.depth > 0 && self.sent < self.hello.requests_per_epoch {
            let seq = self.sent;
            self.send_req(seq);
            self.sent += 1;
        }
        out
    }

    /// Close an epoch: tell the server this rank is done and block until
    /// the fleet acks — which is also when the cross-node shuffle (if due
    /// this epoch) has completed on the servers.
    pub fn end_epoch(&mut self, epoch: u64) {
        assert_eq!(
            self.consumed, self.hello.requests_per_epoch,
            "epoch ended early: {} of {} batches consumed",
            self.consumed, self.hello.requests_per_epoch
        );
        let eoe = WireMsg {
            src: self.hello.rank,
            comm_id: epoch,
            tag: 0,
            payload: Payload::bytes(Vec::new()),
        };
        let mut stream = &self.stream;
        if let Err(e) = write_service_frames_vectored(&mut stream, &[(KIND_DATA_EOE, eoe)]) {
            self.die(e.to_string());
        }
        match self.eoe.recv() {
            Ok(e) => assert_eq!(e, epoch, "out-of-order epoch ack"),
            Err(_) => {
                // The reader died; the cause sentinel is waiting in the
                // decode channels.
                let w = self.consumed % self.outs.len();
                match self.outs[w].try_recv() {
                    Ok(Decoded::Dead(cause)) => self.die(cause),
                    _ => self.die("server vanished at end of epoch".into()),
                }
            }
        }
    }

    /// Graceful teardown: BYE the server, close the socket, join threads.
    pub fn finish(mut self) {
        let _ = (&self.stream).write_all(&encode_bye(self.hello.rank));
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(r) = self.reader.take() {
            let _ = r.join();
        }
        drop(self.outs);
        for d in self.decoders.drain(..) {
            let _ = d.join();
        }
    }
}

// ---------------------------------------------------------------------------
// BatchSource: one seam for both data paths
// ---------------------------------------------------------------------------

/// Where a trainer's mini-batches come from — the in-process [`Dimd`] +
/// [`Prefetcher`] path or the remote blob-server service — behind one
/// seam, so the training loop is identical either way.
pub trait BatchSource {
    /// Start an epoch (spins up the prefetch pipeline / request window).
    fn begin_epoch(&mut self, epoch: usize);
    /// The next `([n, 3, crop, crop], labels)` batch, in epoch order.
    fn next_batch(&mut self) -> (Tensor, Vec<usize>);
    /// Finish the epoch; `shuffle` runs the cross-node reshuffle (locally
    /// via [`Dimd::shuffle`], remotely by the server fleet — the service
    /// decides from the handshake cadence, so the flag is advisory there).
    fn end_epoch(&mut self, epoch: usize, shuffle: bool);
    /// Tear down; in-process sources hand the partition back.
    fn finish(self: Box<Self>) -> Option<Dimd>;
}

/// The in-process path: a [`Dimd`] partition, optionally fronted by the
/// [`Prefetcher`] pipeline when `depth > 0`.
pub struct LocalSource<'a> {
    comm: &'a Comm,
    dimd: Option<Dimd>,
    pre: Option<Prefetcher>,
    epoch: usize,
    batches_per_epoch: usize,
    batch: usize,
    crop: usize,
    depth: usize,
    workers: usize,
    segment_bytes: usize,
}

impl<'a> LocalSource<'a> {
    /// Wrap a partition. `batches_per_epoch` counts every micro-batch the
    /// trainer will draw (iterations × accumulation steps).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        comm: &'a Comm,
        dimd: Dimd,
        batches_per_epoch: usize,
        batch: usize,
        crop: usize,
        depth: usize,
        workers: usize,
        segment_bytes: usize,
    ) -> LocalSource<'a> {
        LocalSource {
            comm,
            dimd: Some(dimd),
            pre: None,
            epoch: 0,
            batches_per_epoch,
            batch,
            crop,
            depth,
            workers,
            segment_bytes,
        }
    }
}

impl BatchSource for LocalSource<'_> {
    fn begin_epoch(&mut self, epoch: usize) {
        self.epoch = epoch;
        if self.depth > 0 {
            self.pre = Some(Prefetcher::run_epoch_with(
                self.dimd.take().expect("partition present"),
                self.batches_per_epoch,
                self.batch,
                self.crop,
                self.depth,
                self.workers,
            ));
        }
    }

    fn next_batch(&mut self) -> (Tensor, Vec<usize>) {
        match &self.pre {
            Some(p) => p.next_batch(),
            None => self
                .dimd
                .as_mut()
                .expect("partition present")
                .random_batch(self.batch, self.crop),
        }
    }

    fn end_epoch(&mut self, epoch: usize, shuffle: bool) {
        if let Some(p) = self.pre.take() {
            self.dimd = Some(p.finish());
        }
        if shuffle {
            self.dimd
                .as_mut()
                .expect("partition present")
                .shuffle(self.comm, epoch as u64, self.segment_bytes);
        }
    }

    fn finish(self: Box<Self>) -> Option<Dimd> {
        match (self.dimd, self.pre) {
            (Some(d), _) => Some(d),
            (None, Some(p)) => Some(p.finish()),
            (None, None) => None,
        }
    }
}

/// The service path: batches come from a remote blob server via
/// [`ServiceClient`].
pub struct ServiceSource {
    client: Option<ServiceClient>,
}

impl ServiceSource {
    /// Connect this rank to its server (`addrs[rank % addrs.len()]`).
    #[allow(clippy::too_many_arguments)]
    pub fn connect(
        addrs: &[String],
        hello: Hello,
        crop: usize,
        depth: usize,
        workers: usize,
        timeout: Duration,
    ) -> io::Result<ServiceSource> {
        assert!(!addrs.is_empty(), "DCNN_DATA_SERVICE has no addresses");
        let idx = hello.rank % addrs.len();
        let client =
            ServiceClient::connect(&addrs[idx], idx, hello, crop, depth, workers, timeout)?;
        Ok(ServiceSource { client: Some(client) })
    }
}

impl BatchSource for ServiceSource {
    fn begin_epoch(&mut self, epoch: usize) {
        self.client.as_mut().expect("connected").begin_epoch(epoch as u64);
    }

    fn next_batch(&mut self) -> (Tensor, Vec<usize>) {
        self.client.as_mut().expect("connected").next_batch()
    }

    fn end_epoch(&mut self, epoch: usize, _shuffle: bool) {
        self.client.as_mut().expect("connected").end_epoch(epoch as u64);
    }

    fn finish(mut self: Box<Self>) -> Option<Dimd> {
        if let Some(c) = self.client.take() {
            c.finish();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthConfig, SynthImageNet};
    use dcnn_collectives::run_cluster;

    const WORLD: usize = 2;
    const EPOCHS: usize = 2;
    const ITERS: usize = 3;
    const BATCH: usize = 4;
    const CROP: usize = 16;
    const QUALITY: u8 = 70;
    const SEED: u64 = 0x5EED;
    const SEG: u64 = 256; // tiny: forces multi-round segmented shuffles

    fn ds() -> SynthImageNet {
        let mut cfg = SynthConfig::tiny(3);
        cfg.train_per_class = 10;
        cfg.base_hw = 16;
        SynthImageNet::new(cfg)
    }

    fn partition(ds: &SynthImageNet, rank: usize) -> Dimd {
        Dimd::load_partition(ds, rank, WORLD, QUALITY, SEED ^ ((rank as u64) << 20))
    }

    fn hello(rank: usize) -> Hello {
        Hello {
            rank,
            world: WORLD,
            batch: BATCH,
            requests_per_epoch: ITERS,
            epochs: EPOCHS,
            shuffle_every: 1,
            segment_bytes: SEG,
        }
    }

    /// The in-process reference: every batch each rank would train on,
    /// with the cross-node shuffle between epochs.
    fn reference_batches() -> Vec<Vec<(Tensor, Vec<usize>)>> {
        let ds = ds();
        run_cluster(WORLD, |c| {
            let mut d = partition(&ds, c.rank());
            let mut out = Vec::new();
            for epoch in 0..EPOCHS {
                for _ in 0..ITERS {
                    out.push(d.random_batch(BATCH, CROP));
                }
                d.shuffle(c, epoch as u64, SEG as usize);
            }
            out
        })
    }

    /// Drive the full service with one server process-equivalent (a
    /// world-1 server fabric on a thread) and `WORLD` client threads.
    fn service_batches(depth: usize, workers: usize) -> Vec<Vec<(Tensor, Vec<usize>)>> {
        let ds = ds();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = std::thread::spawn(move || {
            let parts: Vec<(usize, Dimd)> =
                (0..WORLD).map(|v| (v, partition(&ds, v))).collect();
            let parts = std::sync::Mutex::new(Some(parts));
            run_cluster(1, move |c| {
                let parts = parts.lock().expect("parts").take().expect("one server rank");
                serve_blocking(
                    listener.try_clone().expect("clone listener"),
                    c,
                    parts,
                    WORLD,
                    None,
                )
                .expect("serve")
            })
        });
        let clients: Vec<_> = (0..WORLD)
            .map(|r| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut c = ServiceClient::connect(
                        &addr,
                        0,
                        hello(r),
                        CROP,
                        depth,
                        workers,
                        Duration::from_secs(10),
                    )
                    .expect("connect");
                    let mut out = Vec::new();
                    for epoch in 0..EPOCHS {
                        c.begin_epoch(epoch as u64);
                        for _ in 0..ITERS {
                            out.push(c.next_batch());
                        }
                        c.end_epoch(epoch as u64);
                    }
                    c.finish();
                    out
                })
            })
            .collect();
        let result: Vec<_> = clients.into_iter().map(|h| h.join().expect("client")).collect();
        let reports = server.join().expect("server");
        assert_eq!(reports[0].batches_served, WORLD * EPOCHS * ITERS);
        // Final epoch also shuffles (cadence 1), and the tiny cap forces
        // Algorithm 2's segmentation into multiple rounds.
        assert_eq!(reports[0].shuffle_rounds.len(), EPOCHS);
        assert!(reports[0].shuffle_rounds.iter().all(|&r| r >= 2), "{:?}", reports[0]);
        result
    }

    #[test]
    fn service_epoch_is_bitwise_identical_to_local() {
        let reference = reference_batches();
        // Synchronous client (depth 0) and a pipelined, parallel-decode
        // client must both reproduce the local path exactly.
        assert_eq!(service_batches(0, 1), reference);
        assert_eq!(service_batches(2, 3), reference);
    }

    #[test]
    fn dead_server_surfaces_structured_peer_death() {
        let ds = ds();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = std::thread::spawn(move || {
            let parts: Vec<(usize, Dimd)> =
                (0..WORLD).map(|v| (v, partition(&ds, v))).collect();
            let parts = std::sync::Mutex::new(Some(parts));
            run_cluster(1, move |c| {
                let parts = parts.lock().expect("parts").take().expect("one server rank");
                serve_blocking(
                    listener.try_clone().expect("clone listener"),
                    c,
                    parts,
                    WORLD,
                    Some(2), // die after two batches
                )
            })
        });
        let clients: Vec<_> = (0..WORLD)
            .map(|r| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut c = ServiceClient::connect(
                        &addr,
                        0,
                        hello(r),
                        CROP,
                        2,
                        1,
                        Duration::from_secs(10),
                    )
                    .expect("connect");
                    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        for epoch in 0..EPOCHS {
                            c.begin_epoch(epoch as u64);
                            for _ in 0..ITERS {
                                let _ = c.next_batch();
                            }
                            c.end_epoch(epoch as u64);
                        }
                    }));
                    match caught {
                        Ok(()) => panic!("client survived a dead server"),
                        Err(p) => match p.downcast::<CommError>() {
                            Ok(e) => *e,
                            Err(_) => panic!("client died with a non-structured panic"),
                        },
                    }
                })
            })
            .collect();
        let errors: Vec<CommError> =
            clients.into_iter().map(|h| h.join().expect("client thread")).collect();
        for (r, e) in errors.iter().enumerate() {
            let CommError::PeerDead { rank, peer, cause, phase, .. } = e;
            assert_eq!(*rank, r);
            assert_eq!(*peer, 0, "server index");
            assert!(cause.contains("data server"), "{cause:?}");
            assert_eq!(phase.as_deref(), Some("data-plane"));
        }
        let report = server.join().expect("server thread");
        assert!(report[0].is_err(), "server should report the injected fault");
    }
}
