//! Overlap-aware gradient exchange: bucketed, nonblocking allreduce driven
//! by backward hooks.
//!
//! Backprop finishes the **last** layer's gradient first, yet the classic
//! Algorithm 1 waits for the whole flattened gradient before starting one
//! fused allreduce. [`GradSync`] instead packs the model's parameter
//! segments — walked in reverse layer order, the order backprop completes
//! them — into size-targeted buckets. Two launch schedules share that plan:
//!
//! * **Drain** ([`GradSync::reduce`]): after backward completes, launch
//!   every bucket's nonblocking reduce back-to-back and drain the handles
//!   in launch order — buckets overlap *each other* but not backprop.
//! * **Hooked** ([`GradSync::begin`] → [`GradStream`]): the backward hook
//!   reports each parameter range the moment its gradient is final
//!   ([`GradStream::segment_ready`]); a bucket seals and launches the
//!   instant its last segment arrives, so early buckets travel the network
//!   while earlier layers are still backpropagating.
//!   [`GradStream::finish`] then launches any stragglers **first-needed
//!   first** (the bucket covering the first forward layer goes out ahead of
//!   the rest) and drains the in-flight handles in reverse-launch order, so
//!   the bucket the next iteration's forward pass needs first completes
//!   first.
//!
//! A bucket size of `0` disables bucketing entirely: one blocking allreduce
//! over the fused gradient, byte-for-byte today's behavior. At two ranks the
//! bucketed path is **bitwise identical** to the blocking one for every
//! algorithm (a single f32 addition per element commutes); at larger scale
//! each algorithm's summation order over a sub-range can differ from its
//! order over the fused buffer, exactly as MPI makes no cross-count
//! reproducibility promise. Seal order is deterministic and identical on
//! every rank (each rank walks the same module tree backwards), which is
//! what lets the runtime derive matching bucket communicator IDs from
//! launch sequence numbers alone.
//!
//! [`GradSync::with_shards`] swaps every allreduce in the plan — fused,
//! drained or hooked — for a reduce-scatter over the
//! [`crate::shard::ShardMap`] owner map: after the exchange only the
//! caller's owned range is fully reduced, which is all the sharded
//! optimizer reads before it allgathers the stepped parameters.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

use dcnn_collectives::runtime::{BucketSpan, Comm, CommStats, PendingReduce};
use dcnn_collectives::{agree_scores, quantize_f16, AlgoPolicy, Allreduce, Tuner};
use dcnn_tensor::layers::ParamSegment;

use crate::shard::ShardMap;

/// One planned bucket: a contiguous span of the flattened gradient covering
/// consecutive parameter segments in reverse layer order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bucket {
    /// Start offset within the flattened gradient.
    pub offset: usize,
    /// Number of scalars.
    pub len: usize,
    /// Names of the parameter segments packed into this bucket, in reverse
    /// layer order (diagnostic: shows up in overlap reports).
    pub params: Vec<String>,
}

impl Bucket {
    /// The bucket's span over the flattened gradient.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.offset..self.offset + self.len
    }

    /// Payload size in bytes.
    pub fn bytes(&self) -> usize {
        self.len * 4
    }
}

/// Greedily pack `segments` (given in forward layer order) into buckets of
/// roughly `bucket_bytes` each, walking the segments in **reverse** so the
/// first bucket holds the parameters backprop finishes first. A segment
/// larger than the target gets a bucket of its own; `bucket_bytes == 0`
/// yields a single bucket spanning everything (the blocking path).
pub fn plan_buckets(segments: &[ParamSegment], bucket_bytes: usize) -> Vec<Bucket> {
    let total: usize = segments.iter().map(|s| s.len).sum();
    if bucket_bytes == 0 || segments.is_empty() {
        return vec![Bucket {
            offset: 0,
            len: total,
            params: segments.iter().map(|s| s.name.clone()).rev().collect(),
        }];
    }
    let mut out = Vec::new();
    let mut cur: Option<Bucket> = None;
    for seg in segments.iter().rev() {
        match &mut cur {
            Some(b) if (b.len + seg.len) * 4 <= bucket_bytes => {
                // Reverse walk: `seg` immediately precedes the bucket's
                // current start in the flat layout.
                debug_assert_eq!(seg.offset + seg.len, b.offset);
                b.offset = seg.offset;
                b.len += seg.len;
                b.params.push(seg.name.clone());
            }
            _ => {
                if let Some(b) = cur.take() {
                    out.push(b);
                }
                cur = Some(Bucket {
                    offset: seg.offset,
                    len: seg.len,
                    params: vec![seg.name.clone()],
                });
            }
        }
    }
    if let Some(b) = cur {
        out.push(b);
    }
    out
}

/// How [`GradSync`] resolves the algorithm for each bucket launch: one
/// pinned handle, or a measurement-driven [`Tuner`] consulted per launch.
/// The `RefCell` keeps selection usable from `&self` launch paths
/// ([`GradStream`] holds a shared borrow of the sync while sealing).
enum Selector {
    Fixed(Arc<dyn Allreduce + Send + Sync>),
    Auto(RefCell<Tuner>),
}

impl Selector {
    /// The algorithm handle for the bucket at plan `slot` holding `bytes`
    /// bytes. `track` must be true for nonblocking launches so the tuner
    /// can attribute the bucket's completion span back to this choice.
    fn pick(
        &self,
        slot: usize,
        bytes: u64,
        world: usize,
        track: bool,
    ) -> Arc<dyn Allreduce + Send + Sync> {
        match self {
            Selector::Fixed(a) => Arc::clone(a),
            Selector::Auto(t) => t.borrow_mut().select(slot, bytes, world, track).handle,
        }
    }
}

/// The gradient-exchange engine: owns the algorithm policy and the bucket
/// plan, and runs one exchange per training iteration.
pub struct GradSync {
    selector: Selector,
    segments: Vec<ParamSegment>,
    buckets: Vec<Bucket>,
    bucket_bytes: usize,
    fp16: bool,
    bucketed: bool,
    shards: Option<ShardMap>,
}

impl GradSync {
    /// Plan buckets over `segments` (forward layer order, as produced by
    /// `dcnn_tensor::layers::param_segments`) and resolve `policy` into the
    /// launch-time selector: `Fixed` builds the one algorithm, `Auto`
    /// stands up a [`Tuner`] that probes and then picks per bucket size.
    /// `bucket_bytes == 0` selects the fused blocking exchange; `fp16`
    /// quantizes each bucket's payload before it is reduced (elementwise,
    /// so identical to quantizing the fused gradient).
    pub fn with_policy(
        policy: AlgoPolicy,
        segments: &[ParamSegment],
        bucket_bytes: usize,
        fp16: bool,
    ) -> Self {
        let selector = match policy {
            AlgoPolicy::Fixed(a) => Selector::Fixed(a.build_shared()),
            AlgoPolicy::Auto(cfg) => Selector::Auto(RefCell::new(Tuner::new(cfg))),
        };
        GradSync::from_selector(selector, segments, bucket_bytes, fp16)
    }

    /// Construct from a bare algorithm handle.
    #[deprecated(
        note = "thread a typed `AlgoPolicy` through `GradSync::with_policy` instead of a \
                trait-object handle"
    )]
    pub fn new(
        algo: Arc<dyn Allreduce + Send + Sync>,
        segments: &[ParamSegment],
        bucket_bytes: usize,
        fp16: bool,
    ) -> Self {
        GradSync::from_selector(Selector::Fixed(algo), segments, bucket_bytes, fp16)
    }

    fn from_selector(
        selector: Selector,
        segments: &[ParamSegment],
        bucket_bytes: usize,
        fp16: bool,
    ) -> Self {
        let buckets = plan_buckets(segments, bucket_bytes);
        GradSync {
            selector,
            segments: segments.to_vec(),
            buckets,
            bucket_bytes,
            fp16,
            bucketed: bucket_bytes > 0,
            shards: None,
        }
    }

    /// Switch the exchange to the sharded strategy: every reduce becomes a
    /// reduce-scatter over `shards`' owner map, so after [`GradSync::reduce`]
    /// (or a [`GradStream`]) only this rank's owned range of the gradient is
    /// fully reduced — the rest holds partial sums the optimizer must not
    /// read. `shards.total()` must equal the segment map's total length.
    pub fn with_shards(mut self, shards: ShardMap) -> Self {
        let total: usize = self.segments.iter().map(|s| s.len).sum();
        assert_eq!(shards.total(), total, "shard map must cover the gradient");
        self.shards = Some(shards);
        self
    }

    /// Whether reduces run as shard-owner reduce-scatters.
    pub fn is_sharded(&self) -> bool {
        self.shards.is_some()
    }

    /// The planned buckets, in launch (reverse layer) order.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// The current bucket size target in bytes (`0` = fused blocking).
    pub fn bucket_bytes(&self) -> usize {
        self.bucket_bytes
    }

    /// Re-plan the buckets for a new size target (adaptive sizing between
    /// epochs). Every rank must call this with the **same** target — the
    /// plan drives launch order and bucket communicator derivation, so it
    /// has to stay identical cluster-wide.
    pub fn replan(&mut self, bucket_bytes: usize) {
        self.buckets = plan_buckets(&self.segments, bucket_bytes);
        self.bucket_bytes = bucket_bytes;
        self.bucketed = bucket_bytes > 0;
    }

    /// Whether the nonblocking bucketed path is active.
    pub fn is_bucketed(&self) -> bool {
        self.bucketed
    }

    /// The policy's display name: the fixed algorithm's phase label, or
    /// `"auto"` when a tuner is choosing per bucket.
    pub fn algo_name(&self) -> &'static str {
        match &self.selector {
            Selector::Fixed(a) => a.name(),
            Selector::Auto(_) => "auto",
        }
    }

    /// Total nanoseconds `stats` attributes to this sync's allreduce
    /// phase(s): one phase label when the policy is fixed, the sum over the
    /// tuner's (deduplicated) candidate labels when it is auto — two
    /// parameterizations of the same algorithm share one phase label.
    pub fn allreduce_phase_ns(&self, stats: &CommStats) -> u64 {
        match &self.selector {
            Selector::Fixed(a) => stats.phase(a.name()),
            Selector::Auto(t) => {
                let names: std::collections::BTreeSet<&'static str> =
                    t.borrow().candidates().iter().map(|c| c.name()).collect();
                names.iter().map(|n| stats.phase(n)).sum()
            }
        }
    }

    /// Epoch boundary hook for the tuner. `spans` are the bucket spans the
    /// communicator completed during the finished epoch. When the probe
    /// window just closed this runs the **collective** agreement round
    /// (every rank reaches this on the same epoch, so the collective is
    /// matched) and freezes the decision table. Returns the rendered
    /// decision table, or `None` for a fixed policy.
    pub fn tune_epoch_end(&self, comm: &Comm, spans: &[BucketSpan]) -> Option<String> {
        match &self.selector {
            Selector::Fixed(_) => None,
            Selector::Auto(t) => {
                let mut t = t.borrow_mut();
                if t.end_epoch(spans) {
                    let merged = agree_scores(comm, &t.score_table());
                    t.apply_agreed(&merged);
                }
                Some(t.decision_table())
            }
        }
    }

    /// The current decision table without any communication: the fixed
    /// algorithm's name, or the tuner's frozen table (`"probe"` while the
    /// warm-up window is still open). Safe to call off the collective path,
    /// e.g. while flushing stats after an injected fault.
    pub fn choices_string(&self) -> String {
        match &self.selector {
            Selector::Fixed(a) => a.name().to_string(),
            Selector::Auto(t) => t.borrow().decision_table(),
        }
    }

    /// Name of the parameter segment containing flat index `idx` (used to
    /// label a bucket with the segment that sealed it).
    fn segment_name_at(&self, idx: usize) -> &str {
        let i = self.segments.partition_point(|s| s.offset <= idx);
        if i == 0 {
            return "";
        }
        &self.segments[i - 1].name
    }

    /// Start one iteration's streaming exchange. Feed the stream from the
    /// backward hook via [`GradStream::segment_ready`], then call
    /// [`GradStream::finish`] before the SGD step.
    pub fn begin<'a>(&'a self, comm: &'a Comm) -> GradStream<'a> {
        GradStream {
            sync: self,
            comm,
            remaining: self.buckets.iter().map(|b| b.len).collect(),
            pending: self.buckets.iter().map(|_| None).collect(),
            launch_order: Vec::with_capacity(self.buckets.len()),
        }
    }

    /// Sum `grad` elementwise across all ranks of `comm`, in place.
    ///
    /// Blocking mode runs one fused allreduce on the calling thread.
    /// Bucketed mode launches every bucket's nonblocking reduce in reverse
    /// layer order, then drains the handles in launch order and scatters
    /// the reduced payloads back — early buckets finish while later ones
    /// are still being packed or are in flight.
    pub fn reduce(&self, comm: &Comm, grad: &mut [f32]) {
        if !self.bucketed {
            if self.fp16 {
                quantize_f16(grad);
            }
            let bytes = (grad.len() * 4) as u64;
            match &self.selector {
                Selector::Fixed(algo) => match &self.shards {
                    None => algo.run(comm, grad),
                    Some(sm) => algo.reduce_scatter(comm, grad, &sm.counts()),
                },
                Selector::Auto(t) => {
                    // Blocking launch: no bucket span will record this, so
                    // time it here and report back to the tuner directly.
                    let sel = t.borrow_mut().select(0, bytes, comm.size(), false);
                    let start = Instant::now();
                    match &self.shards {
                        None => sel.handle.run(comm, grad),
                        Some(sm) => sel.handle.reduce_scatter(comm, grad, &sm.counts()),
                    }
                    t.borrow_mut().record(&sel, bytes, start.elapsed().as_nanos() as u64);
                }
            }
            return;
        }
        let mut pending = Vec::with_capacity(self.buckets.len());
        for (slot, b) in self.buckets.iter().enumerate() {
            let mut payload = grad[b.range()].to_vec();
            if self.fp16 {
                quantize_f16(&mut payload);
            }
            let algo = self.selector.pick(slot, b.bytes() as u64, comm.size(), true);
            pending.push(match &self.shards {
                None => comm.allreduce_async(algo, payload),
                Some(sm) => {
                    comm.reduce_scatter_async(algo, payload, sm.bucket_counts(b.range()))
                }
            });
        }
        for (b, p) in self.buckets.iter().zip(pending) {
            let reduced = p.wait();
            grad[b.range()].copy_from_slice(&reduced);
        }
    }
}

/// One training iteration's streaming gradient exchange: buckets seal and
/// launch as the backward hook reports parameter ranges, and the remainder
/// drains with next-iteration priority in [`GradStream::finish`].
pub struct GradStream<'a> {
    sync: &'a GradSync,
    comm: &'a Comm,
    /// Scalars of each bucket not yet reported by the hook; `0` = sealed.
    remaining: Vec<usize>,
    /// In-flight handle per bucket (set when the bucket launches).
    pending: Vec<Option<PendingReduce>>,
    /// Bucket indices in the order they launched.
    launch_order: Vec<usize>,
}

impl<'a> GradStream<'a> {
    /// Report that `grad[off..off + len]` is final (no later backward step
    /// will touch it). Every bucket the range overlaps credits the overlap;
    /// a bucket whose last outstanding scalars just arrived seals — its
    /// payload is copied out of `grad` and its nonblocking allreduce
    /// launches immediately, labeled with the name of the parameter segment
    /// that sealed it (the watchdog surfaces that label if the reduce ever
    /// blocks).
    ///
    /// All ranks must report the same ranges in the same order — true by
    /// construction when the reports come from the backward hook over
    /// identical model replicas.
    pub fn segment_ready(&mut self, grad: &[f32], off: usize, len: usize) {
        let end = off + len;
        for (i, b) in self.sync.buckets.iter().enumerate() {
            if self.remaining[i] == 0 {
                continue;
            }
            let lo = b.offset.max(off);
            let hi = (b.offset + b.len).min(end);
            if lo >= hi {
                continue;
            }
            self.remaining[i] -= hi - lo;
            if self.remaining[i] == 0 {
                self.seal(i, grad, lo);
            }
        }
    }

    /// Number of buckets whose reduce has launched so far.
    pub fn launched(&self) -> usize {
        self.launch_order.len()
    }

    fn seal(&mut self, i: usize, grad: &[f32], sealed_at: usize) {
        let sync = self.sync;
        let b = &sync.buckets[i];
        let mut payload = grad[b.range()].to_vec();
        if sync.fp16 {
            quantize_f16(&mut payload);
        }
        let label: Arc<str> = Arc::from(sync.segment_name_at(sealed_at));
        // Seal order is deterministic and identical on every rank, and the
        // tuner's choice depends only on the bucket's plan index — so every
        // rank launches the same algorithm for the same seq.
        let algo = sync.selector.pick(i, b.bytes() as u64, self.comm.size(), true);
        self.pending[i] = Some(match &sync.shards {
            None => self.comm.allreduce_async_labeled(algo, payload, Some(label)),
            Some(sm) => self.comm.reduce_scatter_async_labeled(
                algo,
                payload,
                sm.bucket_counts(b.range()),
                Some(label),
            ),
        });
        self.launch_order.push(i);
    }

    /// Launch any buckets backprop never sealed (stragglers, or ranges the
    /// caller withheld) and drain everything in flight, scattering the
    /// reduced payloads back into `grad`.
    ///
    /// Stragglers launch in **reverse bucket-index order** — the plan's last
    /// bucket covers the first forward layers, which the next iteration
    /// needs first — and the drain walks reverse-launch order for the same
    /// reason. Both orders are deterministic, so ranks keep launching the
    /// same buckets in the same sequence.
    pub fn finish(mut self, grad: &mut [f32]) {
        for i in (0..self.sync.buckets.len()).rev() {
            if self.remaining[i] > 0 {
                self.remaining[i] = 0;
                self.seal(i, grad, self.sync.buckets[i].offset);
            }
        }
        let order = std::mem::take(&mut self.launch_order);
        for &i in order.iter().rev() {
            let p = self.pending[i].take().expect("launched bucket has a handle");
            let reduced = p.wait();
            grad[self.sync.buckets[i].range()].copy_from_slice(&reduced);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcnn_collectives::{run_cluster, AllreduceAlgo};

    fn segs(lens: &[usize]) -> Vec<ParamSegment> {
        let mut out = Vec::new();
        let mut off = 0;
        for (i, &l) in lens.iter().enumerate() {
            out.push(ParamSegment { name: format!("p{i}"), offset: off, len: l });
            off += l;
        }
        out
    }

    #[test]
    fn zero_target_is_one_fused_bucket() {
        let s = segs(&[10, 20, 30]);
        let plan = plan_buckets(&s, 0);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].offset, 0);
        assert_eq!(plan[0].len, 60);
        assert_eq!(plan[0].params, ["p2", "p1", "p0"]);
    }

    #[test]
    fn buckets_tile_the_gradient_in_reverse_order() {
        let s = segs(&[100, 3, 7, 50, 40]);
        let total: usize = 200;
        for bytes in [1, 64, 160, 200, 400, 1_000_000] {
            let plan = plan_buckets(&s, bytes);
            // Launch order walks the flat layout backwards without gaps.
            let mut end = total;
            let mut names = Vec::new();
            for b in &plan {
                assert_eq!(b.offset + b.len, end, "gap at bucket {b:?}");
                assert!(b.len > 0);
                end = b.offset;
                names.extend(b.params.iter().cloned());
            }
            assert_eq!(end, 0, "buckets must reach offset 0");
            assert_eq!(names, ["p4", "p3", "p2", "p1", "p0"]);
        }
    }

    #[test]
    fn respects_size_target_except_oversized_segments() {
        let s = segs(&[100, 3, 7, 50, 40]);
        let plan = plan_buckets(&s, 160); // 40 floats
        for b in &plan {
            assert!(
                b.bytes() <= 160 || b.params.len() == 1,
                "over-target multi-segment bucket: {b:?}"
            );
        }
        // 100-float segment must sit alone.
        let big = plan.iter().find(|b| b.params.contains(&"p0".to_string())).unwrap();
        assert_eq!(big.params, ["p0"]);
    }

    #[test]
    fn bucketed_reduce_matches_blocking_bitwise_at_two_ranks() {
        let s = segs(&[33, 5, 61, 2]);
        let out = run_cluster(2, move |comm| {
            let mk = |rank: usize| -> Vec<f32> {
                (0..101).map(|i| ((i * 37 + rank * 11) as f32 * 0.618).sin()).collect()
            };
            let algo = AllreduceAlgo::RingReduceScatter;
            let mut blocking = mk(comm.rank());
            GradSync::with_policy(algo.into(), &s, 0, false).reduce(comm, &mut blocking);
            let mut bucketed = mk(comm.rank());
            GradSync::with_policy(algo.into(), &s, 128, false).reduce(comm, &mut bucketed);
            (blocking, bucketed)
        });
        for (rank, (a, b)) in out.iter().enumerate() {
            for i in 0..a.len() {
                assert_eq!(
                    a[i].to_bits(),
                    b[i].to_bits(),
                    "rank {rank} elem {i}: {} vs {}",
                    a[i],
                    b[i]
                );
            }
        }
    }

    #[test]
    fn streamed_exchange_matches_blocking_bitwise_at_two_ranks() {
        let s = segs(&[33, 5, 61, 2]);
        let out = run_cluster(2, move |comm| {
            let mk = |rank: usize| -> Vec<f32> {
                (0..101).map(|i| ((i * 37 + rank * 11) as f32 * 0.618).sin()).collect()
            };
            let algo = AllreduceAlgo::RingReduceScatter;
            let mut blocking = mk(comm.rank());
            GradSync::with_policy(algo.into(), &s, 0, false).reduce(comm, &mut blocking);

            // Hooked: report segments in backward (reverse) order so buckets
            // seal and launch mid-"backprop".
            let gsync = GradSync::with_policy(algo.into(), &s, 128, false);
            let mut streamed = mk(comm.rank());
            let mut stream = gsync.begin(comm);
            for seg in s.iter().rev() {
                stream.segment_ready(&streamed, seg.offset, seg.len);
            }
            assert_eq!(stream.launched(), gsync.buckets().len(), "every bucket sealed");
            stream.finish(&mut streamed);
            (blocking, streamed)
        });
        for (rank, (a, b)) in out.iter().enumerate() {
            for i in 0..a.len() {
                assert_eq!(a[i].to_bits(), b[i].to_bits(), "rank {rank} elem {i}");
            }
        }
    }

    #[test]
    fn finish_launches_stragglers_and_still_matches() {
        // Report only the tail segment; finish must seal and reduce the
        // rest (first-needed-first) and end bitwise equal to blocking.
        let s = segs(&[40, 9, 12]);
        let out = run_cluster(2, move |comm| {
            let mk = |rank: usize| -> Vec<f32> {
                (0..61).map(|i| ((i + 3 * rank) as f32).cos()).collect()
            };
            let algo = AllreduceAlgo::HalvingDoubling;
            let mut blocking = mk(comm.rank());
            GradSync::with_policy(algo.into(), &s, 0, false).reduce(comm, &mut blocking);

            let gsync = GradSync::with_policy(algo.into(), &s, 64, false);
            let mut streamed = mk(comm.rank());
            let mut stream = gsync.begin(comm);
            stream.segment_ready(&streamed, s[2].offset, s[2].len);
            stream.finish(&mut streamed);
            (blocking, streamed)
        });
        for (a, b) in &out {
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn replan_retiles_and_reports_target() {
        let s = segs(&[100, 3, 7, 50, 40]);
        let mut g = GradSync::with_policy(AllreduceAlgo::RingReduceScatter.into(), &s, 0, false);
        assert!(!g.is_bucketed());
        assert_eq!(g.bucket_bytes(), 0);
        assert_eq!(g.buckets().len(), 1);
        g.replan(160);
        assert!(g.is_bucketed());
        assert_eq!(g.bucket_bytes(), 160);
        assert!(g.buckets().len() > 1);
        let mut end = 200;
        for b in g.buckets() {
            assert_eq!(b.offset + b.len, end);
            end = b.offset;
        }
        assert_eq!(end, 0);
    }

    #[test]
    fn sharded_fused_reduce_matches_replicated_on_owned_range_every_algorithm() {
        // The strategy seam: after a sharded fused reduce, this rank's owned
        // range must carry exactly the bits the replicated fused reduce
        // produces there — for every algorithm, at a world size that leaves
        // uneven shards.
        let total = 101usize;
        for algo_kind in AllreduceAlgo::all() {
            let s = segs(&[33, 5, 61, 2]);
            let out = run_cluster(3, move |comm| {
                let mk = |rank: usize| -> Vec<f32> {
                    (0..total).map(|i| ((i * 37 + rank * 11) as f32 * 0.618).sin()).collect()
                };
                let mut replicated = mk(comm.rank());
                GradSync::with_policy(algo_kind.into(), &s, 0, false)
                    .reduce(comm, &mut replicated);
                let sm = ShardMap::new(total, comm.size());
                let mut sharded = mk(comm.rank());
                GradSync::with_policy(algo_kind.into(), &s, 0, false)
                    .with_shards(sm.clone())
                    .reduce(comm, &mut sharded);
                let owned = sm.owned(comm.rank());
                (replicated[owned.clone()].to_vec(), sharded[owned].to_vec())
            });
            for (rank, (a, b)) in out.iter().enumerate() {
                assert_eq!(
                    a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "{algo_kind:?} rank {rank}"
                );
            }
        }
    }

    #[test]
    fn sharded_bucketed_and_streamed_match_fused_with_ring_at_three_ranks() {
        // The ring's true reduce-scatter anchors each element at its owner,
        // so sharded bucketing (per-bucket reduce-scatters) and the hooked
        // stream must land the same owned bits as the fused sharded
        // exchange — even at three ranks, where summation order matters.
        let s = segs(&[33, 5, 61, 2]);
        let total = 101usize;
        let out = run_cluster(3, move |comm| {
            let mk = |rank: usize| -> Vec<f32> {
                (0..total).map(|i| ((i * 41 + rank * 13) as f32 * 0.377).cos()).collect()
            };
            let algo = AllreduceAlgo::RingReduceScatter;
            let sm = ShardMap::new(total, comm.size());
            let mut fused = mk(comm.rank());
            GradSync::with_policy(algo.into(), &s, 0, false)
                .with_shards(sm.clone())
                .reduce(comm, &mut fused);

            let mut bucketed = mk(comm.rank());
            GradSync::with_policy(algo.into(), &s, 128, false)
                .with_shards(sm.clone())
                .reduce(comm, &mut bucketed);

            let gsync =
                GradSync::with_policy(algo.into(), &s, 128, false).with_shards(sm.clone());
            let mut streamed = mk(comm.rank());
            let mut stream = gsync.begin(comm);
            for seg in s.iter().rev() {
                stream.segment_ready(&streamed, seg.offset, seg.len);
            }
            stream.finish(&mut streamed);

            let owned = sm.owned(comm.rank());
            (
                fused[owned.clone()].to_vec(),
                bucketed[owned.clone()].to_vec(),
                streamed[owned].to_vec(),
            )
        });
        for (rank, (f, b, st)) in out.iter().enumerate() {
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(f), bits(b), "rank {rank}: bucketed diverged");
            assert_eq!(bits(f), bits(st), "rank {rank}: streamed diverged");
        }
    }

    #[test]
    fn auto_single_candidate_matches_fixed_bitwise_everywhere() {
        // Satellite acceptance: `Auto` with one registered candidate must be
        // bitwise-identical to `Fixed` of that algorithm for every launch
        // schedule (fused / drain / hooked) in both the replicated and the
        // sharded strategy — at three ranks, where summation order matters.
        use dcnn_collectives::{AlgoPolicy, TunerConfig};
        let total = 101usize;
        let auto = || {
            AlgoPolicy::Auto(TunerConfig::with_candidates(vec![AllreduceAlgo::RingReduceScatter]))
        };
        let fixed = || AlgoPolicy::Fixed(AllreduceAlgo::RingReduceScatter);
        for sharded in [false, true] {
            let s = segs(&[33, 5, 61, 2]);
            let out = run_cluster(3, move |comm| {
                let mk = |rank: usize| -> Vec<f32> {
                    (0..total).map(|i| ((i * 37 + rank * 11) as f32 * 0.618).sin()).collect()
                };
                let build = |policy: AlgoPolicy, bytes: usize| {
                    let g = GradSync::with_policy(policy, &s, bytes, false);
                    if sharded {
                        g.with_shards(ShardMap::new(total, comm.size()))
                    } else {
                        g
                    }
                };
                let run_fused = |policy: AlgoPolicy| {
                    let mut g = mk(comm.rank());
                    build(policy, 0).reduce(comm, &mut g);
                    g
                };
                let run_drain = |policy: AlgoPolicy| {
                    let mut g = mk(comm.rank());
                    build(policy, 128).reduce(comm, &mut g);
                    g
                };
                let run_hooked = |policy: AlgoPolicy| {
                    let gsync = build(policy, 128);
                    let mut g = mk(comm.rank());
                    let mut stream = gsync.begin(comm);
                    for seg in s.iter().rev() {
                        stream.segment_ready(&g, seg.offset, seg.len);
                    }
                    stream.finish(&mut g);
                    g
                };
                let owned = ShardMap::new(total, comm.size()).owned(comm.rank());
                let view = |v: Vec<f32>| -> Vec<u32> {
                    let r = if sharded { &v[owned.clone()] } else { &v[..] };
                    r.iter().map(|x| x.to_bits()).collect()
                };
                (
                    view(run_fused(auto())) == view(run_fused(fixed())),
                    view(run_drain(auto())) == view(run_drain(fixed())),
                    view(run_hooked(auto())) == view(run_hooked(fixed())),
                )
            });
            for (rank, (fused, drain, hooked)) in out.iter().enumerate() {
                assert!(fused, "sharded={sharded} rank {rank}: fused diverged");
                assert!(drain, "sharded={sharded} rank {rank}: drain diverged");
                assert!(hooked, "sharded={sharded} rank {rank}: hooked diverged");
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_handle_constructor_still_reduces() {
        // The trait-object constructor stays one release as a shim; it must
        // keep producing the same bits as the policy path.
        let s = segs(&[17, 48]);
        let out = run_cluster(2, move |comm| {
            let mk = |rank: usize| -> Vec<f32> {
                (0..65).map(|i| ((i + rank * 7) as f32).cos()).collect()
            };
            let mut shim = mk(comm.rank());
            GradSync::new(AllreduceAlgo::PipelinedRing.build_shared(), &s, 128, false)
                .reduce(comm, &mut shim);
            let mut policy = mk(comm.rank());
            GradSync::with_policy(AllreduceAlgo::PipelinedRing.into(), &s, 128, false)
                .reduce(comm, &mut policy);
            (shim, policy)
        });
        for (a, b) in &out {
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn fp16_bucketing_equals_fp16_fused_at_two_ranks() {
        let s = segs(&[17, 48]);
        let out = run_cluster(2, move |comm| {
            let mk = |rank: usize| -> Vec<f32> {
                (0..65).map(|i| ((i + rank * 7) as f32).cos()).collect()
            };
            let algo = AllreduceAlgo::RecursiveDoubling;
            let mut fused = mk(comm.rank());
            GradSync::with_policy(algo.into(), &s, 0, true).reduce(comm, &mut fused);
            let mut bucketed = mk(comm.rank());
            GradSync::with_policy(algo.into(), &s, 64, true).reduce(comm, &mut bucketed);
            (fused, bucketed)
        });
        for (a, b) in &out {
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }
}
