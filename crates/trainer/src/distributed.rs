//! Algorithm 1, executed for real on the threaded runtime.
//!
//! One rank per learner; each learner drives `m` model replicas through a
//! [`DptExecutor`], samples its batch shard from a [`Dimd`] partition,
//! averages gradients across the cluster with the configured allreduce, and
//! steps SGD under the paper's warmup + step-decay schedule. Weights start
//! identical everywhere (same factory seed) and stay identical because every
//! rank applies the same averaged gradient — asserted in tests.


use dcnn_collectives::primitives::allgather_bytes;
use dcnn_collectives::reduce;
use dcnn_collectives::runtime::{Comm, CommError, CommStats};
use dcnn_collectives::{
    run_cluster, AlgoPolicy, AllreduceAlgo, FaultSpec, OverlapMode, RuntimeConfig,
};
use dcnn_dimd::shuffle::MPI_COUNT_LIMIT;
use dcnn_dimd::{BatchSource, Dimd, Hello, LocalSource, ServiceSource, SynthImageNet, ValSet};
use dcnn_dpt::{DptExecutor, DptStrategy};
use dcnn_tensor::layers::{
    collect_params, release_momentum, resident_bytes, set_grads, Module,
};
use dcnn_tensor::loss::SoftmaxCrossEntropy;
use dcnn_tensor::optim::{LrSchedule, Sgd, SgdConfig};
use serde::Serialize;

use crate::checkpoint::{Checkpoint, ShardCheckpoint, ShardMeta};
use crate::grad_sync::GradSync;
use crate::shard::ShardMap;

/// Training-run configuration.
#[derive(Clone)]
pub struct TrainConfig {
    /// Learners (nodes).
    pub nodes: usize,
    /// GPUs per learner (m).
    pub gpus_per_node: usize,
    /// Batch per GPU (k).
    pub batch_per_gpu: usize,
    /// Epochs to run.
    pub epochs: usize,
    /// Inter-node allreduce policy: pin one algorithm
    /// ([`AlgoPolicy::Fixed`]) or let a measurement-driven tuner pick per
    /// bucket size ([`AlgoPolicy::Auto`]). Set it from `DCNN_ALGO` via
    /// [`TrainConfig::apply_runtime`].
    pub algo: AlgoPolicy,
    /// Data-parallel-table scheduling strategy.
    pub strategy: DptStrategy,
    /// Learning-rate schedule (defaults to the paper's).
    pub lr: LrSchedule,
    /// Network input crop size.
    pub crop: usize,
    /// DIMD codec quality.
    pub quality: u8,
    /// Base seed (model init + per-rank sampling streams).
    pub seed: u64,
    /// Run an in-memory shuffle every this many epochs (0 = never).
    pub shuffle_every_epochs: usize,
    /// Evaluate top-1 validation accuracy after each epoch.
    pub validate: bool,
    /// Quantize gradients to fp16 before the allreduce (extension: halves
    /// the exchanged payload at a bounded precision cost).
    pub fp16_grads: bool,
    /// Donkey prefetch queue depth (0 = decode batches inline).
    pub prefetch_depth: usize,
    /// Parallel decode threads per rank for the prefetch pipeline and the
    /// data-plane client (`DCNN_DATA_DECODE_WORKERS`; delivery order is
    /// identical for any count).
    pub decode_workers: usize,
    /// Comma-separated blob-server addresses (`DCNN_DATA_SERVICE`). When
    /// set, this rank streams its mini-batches from the data-plane service
    /// instead of loading a [`Dimd`] partition in-process; the servers own
    /// the partitions and run the cross-node epoch shuffle.
    pub data_service: Option<String>,
    /// Algorithm 2 segmentation cap (bytes) for the cross-node epoch
    /// shuffle. Defaults to MPI's 32-bit count limit; tests lower it to
    /// force multi-round exchanges.
    pub shuffle_segment_bytes: usize,
    /// Gradient-accumulation micro-steps: each iteration averages this many
    /// sequential micro-batches before the allreduce, multiplying the
    /// effective batch without more device memory (extension).
    pub accum_steps: usize,
    /// Target bucket size in bytes for the overlap-aware gradient exchange:
    /// parameter segments are packed into buckets of roughly this size in
    /// reverse layer order and each bucket's allreduce is launched
    /// nonblocking as it fills. `0` = one fused blocking allreduce (the
    /// classic Algorithm 1 behavior). Set it from `DCNN_BUCKET_BYTES` via
    /// [`TrainConfig::apply_runtime`].
    pub bucket_bytes: usize,
    /// When bucketing is on, how bucket reduces interleave with backprop:
    /// [`OverlapMode::Hooked`] launches each bucket from the backward hook
    /// the moment its gradients are final; [`OverlapMode::Drain`] launches
    /// all buckets after backward completes (the pre-hook behavior). Both
    /// are bitwise identical to the fused blocking exchange at two ranks.
    pub overlap: OverlapMode,
    /// Shard the optimizer state across ranks (`DCNN_SHARD_OPTIM`): each
    /// gradient exchange becomes a reduce-scatter over the canonical
    /// [`ShardMap`], each rank steps only its owned parameter range with a
    /// shard-sized velocity buffer (full-replica momentum tensors are
    /// released), and an allgather rebroadcasts the stepped parameters
    /// before the next forward. The loss trajectory stays **bitwise
    /// identical** to the replicated strategy; only where the optimizer
    /// state lives changes (~`1/nodes` of the replicated footprint).
    pub shard_optim: bool,
    /// Adaptive bucket sizing target: when nonzero (bytes) and bucketing is
    /// on, the bucket size is re-planned between epochs so the measured
    /// average of in-flight reduce bytes approaches this budget. `0`
    /// disables adaptation. All ranks agree on the measurement (cluster
    /// max), so plans stay identical everywhere.
    pub inflight_budget_bytes: usize,
    /// Injected fault for failure-path testing (`DCNN_FAULT` via
    /// [`TrainConfig::apply_runtime`]). Arming any fault also turns on
    /// per-step stderr heartbeats (`dcnn-fault: rank R step S …`), which the
    /// kill-one-rank tests use to SIGKILL a rank deterministically
    /// mid-epoch. `None` (the default) costs nothing.
    pub fault: Option<FaultSpec>,
    /// Directory to flush an abort checkpoint + partial epoch row into when
    /// a peer dies mid-epoch (`DCNN_CHECKPOINT_DIR`). `None` = stderr report
    /// only.
    pub checkpoint_dir: Option<String>,
    /// SGD hyper-parameters.
    pub sgd: SgdConfig,
}

impl TrainConfig {
    /// A paper-shaped config with the LR schedule derived from (k, n).
    /// Purely programmatic — nothing is read from the environment; layer
    /// `DCNN_*` overrides on top with [`TrainConfig::apply_runtime`].
    pub fn paper(nodes: usize, gpus_per_node: usize, batch_per_gpu: usize, epochs: usize) -> Self {
        TrainConfig {
            nodes,
            gpus_per_node,
            batch_per_gpu,
            epochs,
            algo: AlgoPolicy::Fixed(AllreduceAlgo::MultiColor(4)),
            strategy: DptStrategy::Optimized,
            lr: LrSchedule::paper(batch_per_gpu, nodes * gpus_per_node),
            crop: 32,
            quality: 70,
            seed: 42,
            shuffle_every_epochs: 1,
            validate: true,
            fp16_grads: false,
            prefetch_depth: 0,
            decode_workers: 1,
            data_service: None,
            shuffle_segment_bytes: MPI_COUNT_LIMIT,
            accum_steps: 1,
            bucket_bytes: 0,
            overlap: OverlapMode::Hooked,
            shard_optim: false,
            inflight_budget_bytes: 0,
            fault: None,
            checkpoint_dir: None,
            sgd: SgdConfig::default(),
        }
    }

    /// Overlay the training-related fields of a parsed [`RuntimeConfig`]
    /// (only the variables that were actually set): `DCNN_ALGO`,
    /// `DCNN_BUCKET_BYTES`, `DCNN_OVERLAP_MODE`, `DCNN_SHARD_OPTIM`,
    /// `DCNN_INFLIGHT_BUDGET`, `DCNN_FAULT`, `DCNN_CHECKPOINT_DIR`,
    /// `DCNN_DATA_PREFETCH_DEPTH`, `DCNN_DATA_DECODE_WORKERS` and
    /// `DCNN_DATA_SERVICE`.
    pub fn apply_runtime(&mut self, rt: &RuntimeConfig) {
        if let Some(p) = &rt.algo {
            self.algo = p.clone();
        }
        if let Some(b) = rt.bucket_bytes {
            self.bucket_bytes = b;
        }
        if let Some(s) = rt.shard_optim {
            self.shard_optim = s;
        }
        if let Some(d) = rt.data_prefetch_depth {
            self.prefetch_depth = d;
        }
        if let Some(w) = rt.data_decode_workers {
            self.decode_workers = w.max(1);
        }
        if let Some(s) = &rt.data_service {
            self.data_service = Some(s.clone());
        }
        if let Some(m) = rt.overlap_mode {
            self.overlap = m;
        }
        if let Some(b) = rt.inflight_budget_bytes {
            self.inflight_budget_bytes = b;
        }
        if let Some(f) = rt.fault {
            self.fault = Some(f);
        }
        if let Some(d) = &rt.checkpoint_dir {
            self.checkpoint_dir = Some(d.clone());
        }
    }

    /// [`TrainConfig::paper`] with `rt`'s overrides already applied.
    pub fn from_runtime(
        nodes: usize,
        gpus_per_node: usize,
        batch_per_gpu: usize,
        epochs: usize,
        rt: &RuntimeConfig,
    ) -> Self {
        let mut cfg = Self::paper(nodes, gpus_per_node, batch_per_gpu, epochs);
        cfg.apply_runtime(rt);
        cfg
    }
}

/// Per-epoch training statistics (identical on every rank).
#[derive(Debug, Clone, Serialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f64,
    /// Training top-1 accuracy over the epoch.
    pub train_acc: f64,
    /// Validation top-1 accuracy (0 when validation is disabled).
    pub val_acc: f64,
    /// Learning rate used during the epoch (at its start).
    pub lr: f32,
    /// Bytes rank 0 sent during the epoch (gradients, shuffle, control).
    pub comm_bytes: u64,
    /// Messages rank 0 sent during the epoch.
    pub comm_msgs: u64,
    /// Seconds rank 0's receives spent blocked during the epoch.
    pub comm_wait_secs: f64,
    /// Seconds rank 0 spent inside the allreduce during the epoch.
    pub allreduce_secs: f64,
    /// High-water mark of rank 0's out-of-order message stash (whole run up
    /// to this epoch; a growing value means receives chronically lag sends).
    pub stash_hwm: u64,
    /// Seconds rank 0 spent blocked draining bucket handles this epoch
    /// (zero in fused blocking mode).
    pub bucket_wait_secs: f64,
    /// Fraction of this epoch's asynchronous reduction time hidden behind
    /// other work: `1 - bucket_wait/async_comm`, clamped to `[0, 1]`, maxed
    /// over all ranks (the leading rank is the one that gets to overlap —
    /// its laggard peer drains instantly); zero when no nonblocking reduces
    /// ran.
    pub overlap_frac: f64,
    /// High-water mark of concurrently in-flight bucket reduces, maxed over
    /// all ranks (whole run up to this epoch; ≥ 2 proves genuine overlap —
    /// a rank whose peer runs ahead can drain each bucket instantly, so the
    /// overlap shows on the leading rank, not a fixed one).
    pub async_inflight_hwm: u64,
    /// Bucket size target (bytes) the exchange used during this epoch
    /// (adaptive sizing re-plans it *between* epochs; 0 = fused blocking).
    pub bucket_bytes: u64,
    /// Nonblocking bucket reduces this rank launched during the epoch
    /// (0 in fused blocking mode).
    pub buckets_launched: u64,
    /// Bytes of parameter state (values + gradients) actually resident on
    /// this rank at epoch end, measured from live buffer lengths across all
    /// local replicas.
    pub resident_param_bytes: u64,
    /// Bytes of optimizer state resident on this rank at epoch end: the
    /// replicas' momentum tensors plus the shard-local velocity buffer.
    /// Under `shard_optim` this shrinks to ~`1/nodes` of one replica's
    /// parameter bytes — the strategy's memory win, measured rather than
    /// computed.
    pub resident_opt_bytes: u64,
    /// Bytes on the busiest single outgoing link (per-peer counter) during
    /// the epoch, maxed over all ranks — the root-adjacent hotspot the
    /// multi-color trees exist to spread.
    pub link_bytes_max: u64,
    /// Busiest-link / mean-link ratio of per-peer bytes sent during the
    /// epoch (1.0 = perfectly balanced, ~world-1 = one hot link), maxed
    /// over all ranks; 0 when the epoch sent nothing.
    pub link_imbalance: f64,
    /// The allreduce decision in effect when the epoch ended: the fixed
    /// algorithm's name, `probe` while an auto tuner is still rotating
    /// candidates, or the tuner's frozen per-size decision table
    /// (`<=BYTES:algo` entries joined by `;` — comma-free so the metrics
    /// CSV stays parseable). Identical on every rank (the table is
    /// cluster-agreed before it is ever used).
    pub algo_choices: String,
}

/// Cluster-wide maximum of a per-rank `u64` (for high-water-mark stats).
fn allreduce_max_u64(comm: &Comm, v: u64) -> u64 {
    allgather_bytes(comm, v.to_le_bytes().to_vec())
        .iter()
        .map(|b| u64::from_le_bytes(b[0..8].try_into().expect("8")))
        .max()
        .unwrap_or(v)
}

/// Cluster-wide maximum of a per-rank `f64` (every rank gets the same
/// value, so derived decisions stay identical everywhere).
fn allreduce_max_f64(comm: &Comm, v: f64) -> f64 {
    allgather_bytes(comm, v.to_le_bytes().to_vec())
        .iter()
        .map(|b| f64::from_le_bytes(b[0..8].try_into().expect("8")))
        .fold(v, f64::max)
}

/// Average a per-rank scalar triple `(loss_sum, correct, count)` cluster-wide.
fn allreduce_stats(comm: &Comm, loss: f64, correct: u64, count: u64) -> (f64, u64, u64) {
    let mut buf = Vec::with_capacity(24);
    buf.extend_from_slice(&loss.to_le_bytes());
    buf.extend_from_slice(&correct.to_le_bytes());
    buf.extend_from_slice(&count.to_le_bytes());
    let all = allgather_bytes(comm, buf);
    let mut l = 0.0;
    let mut c = 0u64;
    let mut n = 0u64;
    for b in all {
        l += f64::from_le_bytes(b[0..8].try_into().expect("8"));
        c += u64::from_le_bytes(b[8..16].try_into().expect("8"));
        n += u64::from_le_bytes(b[16..24].try_into().expect("8"));
    }
    (l, c, n)
}

fn validate(comm: &Comm, exec: &mut DptExecutor, vs: &ValSet, crop: usize) -> f64 {
    let crit = SoftmaxCrossEntropy;
    let n = comm.size();
    let me = comm.rank();
    let mut correct = 0u64;
    let mut count = 0u64;
    let my_indices: Vec<usize> = (0..vs.len()).filter(|i| i % n == me).collect();
    for chunk in my_indices.chunks(16) {
        let (x, labels) = vs.batch(chunk, crop);
        let logits = exec.eval_logits(&x);
        let out = crit.forward(&logits, &labels);
        correct += out.correct as u64;
        count += chunk.len() as u64;
    }
    let (_, c, n_total) = allreduce_stats(comm, 0.0, correct, count);
    if n_total == 0 {
        0.0
    } else {
        c as f64 / n_total as f64
    }
}

/// Run distributed training; returns the per-epoch statistics (identical on
/// all ranks; rank 0's copy is returned).
pub fn train_distributed(
    cfg: &TrainConfig,
    ds: &SynthImageNet,
    factory: impl Fn() -> Box<dyn Module> + Sync,
) -> Vec<EpochStats> {
    assert!(cfg.nodes >= 1 && cfg.gpus_per_node >= 1 && cfg.batch_per_gpu >= 1);
    let mut out = run_cluster(cfg.nodes, |comm| train_on_comm(comm, cfg, ds, &factory));
    out.swap_remove(0)
}

/// Run this rank's share of Algorithm 1 on an existing communicator — the
/// entry point for multi-process runs, where [`crate::train_distributed`]'s
/// own cluster spawning doesn't apply (each OS process joins the fabric via
/// `dcnn_collectives::run_tcp_rank` and brings its own `Comm`). `cfg.nodes`
/// must equal `comm.size()`; every rank must pass identical `cfg`, `ds` and
/// `factory` seeds, exactly as the threaded path arranges implicitly.
pub fn train_on_comm(
    comm: &Comm,
    cfg: &TrainConfig,
    ds: &SynthImageNet,
    factory: &(impl Fn() -> Box<dyn Module> + Sync),
) -> Vec<EpochStats> {
    assert_eq!(
        cfg.nodes,
        comm.size(),
        "cfg.nodes must match the communicator's size"
    );
    run_rank(comm, cfg, ds, factory)
}

/// One micro-step: sample, run the DPT, return (loss, grad, correct).
fn micro_step(
    exec: &mut DptExecutor,
    x: &dcnn_tensor::Tensor,
    labels: &[usize],
    strategy: DptStrategy,
) -> (f64, Vec<f32>, u64) {
    let out = exec.step(x, labels, strategy);
    (out.loss, out.grad, out.correct as u64)
}

fn run_rank(
    comm: &Comm,
    cfg: &TrainConfig,
    ds: &SynthImageNet,
    factory: &(impl Fn() -> Box<dyn Module> + Sync),
) -> Vec<EpochStats> {
    let me = comm.rank();
    let n = comm.size();
    let batch_node = cfg.batch_per_gpu * cfg.gpus_per_node;
    let global_batch = batch_node * n;
    let iterations = (ds.train_len() / global_batch).max(1);
    let sgd = Sgd::new(cfg.sgd.clone());

    // Service mode skips the in-process partition entirely: the blob
    // servers own the DIMD partitions and this rank only streams batches.
    let mut dimd = cfg.data_service.is_none().then(|| {
        Dimd::load_partition(ds, me, n, cfg.quality, cfg.seed ^ (me as u64) << 20)
    });
    // The validation blob (paper §4.1's second DIMD file) lives whole on
    // every learner; evaluation decodes from it, like training does.
    let val = cfg.validate.then(|| ValSet::load(ds, cfg.quality));
    let mut exec = DptExecutor::new(cfg.gpus_per_node, factory);
    let param_total: usize = exec.segments().iter().map(|s| s.len).sum();
    let mut gsync =
        GradSync::with_policy(cfg.algo.clone(), exec.segments(), cfg.bucket_bytes, cfg.fp16_grads);
    // Sharded strategy: every gradient exchange becomes a reduce-scatter
    // over the canonical owner map, this rank keeps its momentum in one
    // shard-sized velocity buffer, and the replicas' full momentum tensors
    // are released — that release is the memory saving the strategy exists
    // for, and `resident_opt_bytes` measures it.
    let shards = cfg.shard_optim.then(|| ShardMap::new(param_total, n));
    let mut velocity: Vec<f32> = Vec::new();
    if let Some(sm) = &shards {
        gsync = gsync.with_shards(sm.clone());
        velocity = vec![0.0f32; sm.owned(me).len()];
        exec.visit_replicas(|m| {
            release_momentum(m);
        });
    }
    // Hooked overlap needs the parallel DPT path to stream segments during
    // backprop and a bucket plan to stream them into; otherwise the drain
    // schedule (launch-after-backward) applies.
    let hooked = cfg.overlap == OverlapMode::Hooked
        && gsync.is_bucketed()
        && cfg.strategy == DptStrategy::Optimized;
    // One accumulation buffer for the whole run: sized from the segment
    // map, reused every iteration instead of reallocating per micro-batch.
    let mut grad = vec![0.0f32; param_total];
    let mut stats = Vec::with_capacity(cfg.epochs);
    let mut progress = PartialEpoch::default();

    // The epoch loop runs under `catch_unwind` so a peer-death panic (a
    // `CommError` unwound out of whichever blocked collective observed the
    // dead link) can be intercepted: flush what this rank still knows — a
    // partial EpochStats row and, with `DCNN_CHECKPOINT_DIR` set, an abort
    // checkpoint — then let the unwind continue to the process boundary.
    // Any other panic passes through untouched.
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        train_epochs(TrainState {
            comm,
            cfg,
            iterations,
            batch_node,
            hooked,
            param_total,
            sgd: &sgd,
            dimd: &mut dimd,
            val: &val,
            exec: &mut exec,
            gsync: &mut gsync,
            grad: &mut grad,
            shards: &shards,
            velocity: &mut velocity,
            stats: &mut stats,
            progress: &mut progress,
        })
    }));
    match run {
        Ok(()) => stats,
        Err(payload) => {
            if let Some(e) = payload.downcast_ref::<CommError>() {
                flush_abort_state(comm, cfg, &mut exec, &gsync, &shards, &velocity, &progress, e);
            }
            std::panic::resume_unwind(payload)
        }
    }
}

/// Mid-epoch progress, owned outside the epoch loop so the peer-death
/// abort path can still reach it after the loop unwinds: enough to emit a
/// partial [`EpochStats`] row for the epoch that never completed.
#[derive(Default)]
struct PartialEpoch {
    epoch: usize,
    iters: usize,
    loss_sum: f64,
    correct: u64,
    seen: u64,
    buckets_launched: u64,
    start: CommStats,
}

impl PartialEpoch {
    fn begin(&mut self, epoch: usize, start: CommStats) {
        *self = PartialEpoch { epoch, start, ..PartialEpoch::default() };
    }
}

/// Borrowed training state for the epoch loop, bundled so the unwind
/// boundary in `run_rank` can reclaim the pieces after a failure.
struct TrainState<'a> {
    comm: &'a Comm,
    cfg: &'a TrainConfig,
    iterations: usize,
    batch_node: usize,
    hooked: bool,
    param_total: usize,
    sgd: &'a Sgd,
    dimd: &'a mut Option<Dimd>,
    val: &'a Option<ValSet>,
    exec: &'a mut DptExecutor,
    gsync: &'a mut GradSync,
    grad: &'a mut Vec<f32>,
    shards: &'a Option<ShardMap>,
    velocity: &'a mut Vec<f32>,
    stats: &'a mut Vec<EpochStats>,
    progress: &'a mut PartialEpoch,
}

fn train_epochs(st: TrainState<'_>) {
    let TrainState {
        comm,
        cfg,
        iterations,
        batch_node,
        hooked,
        param_total,
        sgd,
        dimd,
        val,
        exec,
        gsync,
        grad,
        shards,
        velocity,
        stats,
        progress,
    } = st;
    let me = comm.rank();
    let n = comm.size();
    let shard_counts = shards.as_ref().map(|sm| sm.counts());
    // Fault-injection arming (`DCNN_FAULT`): `kill_at` is the optimizer
    // step after which THIS rank aborts (the kernel closes its sockets, so
    // peers observe the same bare EOF a SIGKILL leaves); any armed fault
    // also emits per-step heartbeats so external tests can kill a rank at a
    // deterministic point mid-epoch.
    let kill_at = match cfg.fault {
        Some(FaultSpec::KillAfterStep { step, rank }) if rank == me => Some(step),
        _ => None,
    };
    let heartbeat = cfg.fault.is_some();
    let mut global_step = 0usize;

    // One batch source for the whole run, behind the data-plane seam: the
    // in-process partition (optionally fronted by the donkey prefetch
    // pipeline) or a remote blob server when `DCNN_DATA_SERVICE` is set.
    // Both deliver byte-identical batches for identical seeds.
    let mut source: Box<dyn BatchSource + '_> = match &cfg.data_service {
        None => Box::new(LocalSource::new(
            comm,
            dimd.take().expect("partition present"),
            iterations * cfg.accum_steps.max(1),
            batch_node,
            cfg.crop,
            cfg.prefetch_depth,
            cfg.decode_workers,
            cfg.shuffle_segment_bytes,
        )),
        Some(spec) => {
            let addrs: Vec<String> = spec.split(',').map(|s| s.trim().to_string()).collect();
            let hello = Hello {
                rank: me,
                world: n,
                batch: batch_node,
                requests_per_epoch: iterations * cfg.accum_steps.max(1),
                epochs: cfg.epochs,
                shuffle_every: cfg.shuffle_every_epochs,
                segment_bytes: cfg.shuffle_segment_bytes as u64,
            };
            let src = ServiceSource::connect(
                &addrs,
                hello,
                cfg.crop,
                cfg.prefetch_depth,
                cfg.decode_workers,
                std::time::Duration::from_secs(30),
            )
            .unwrap_or_else(|e| {
                // Surface an unreachable server through the same structured
                // channel a mid-run death uses.
                std::panic::panic_any(CommError::PeerDead {
                    rank: me,
                    peer: me % addrs.len(),
                    cause: format!("data service connect: {e}"),
                    phase: Some("data-plane".into()),
                    bucket: None,
                    label: None,
                })
            });
            Box::new(src)
        }
    };

    for epoch in 0..cfg.epochs {
        let ep_comm = comm.stats();
        progress.begin(epoch, ep_comm.clone());
        source.begin_epoch(epoch);
        for it in 0..iterations {
            let frac_epoch = epoch as f32 + it as f32 / iterations as f32;
            let lr = cfg.lr.lr_at(frac_epoch);
            // Gradient accumulation: average `accum_steps` micro-batches
            // before the exchange, reusing the pre-sized buffer (the first
            // micro-step overwrites, the rest add in place).
            let accum = cfg.accum_steps.max(1);
            let mut micro_loss = 0.0;
            let mut micro_correct = 0u64;
            for micro in 0..accum {
                let (x, labels) = source.next_batch();
                if hooked && micro + 1 == accum {
                    // Final micro-batch: stream parameter ranges out of the
                    // backward pass, finalizing each range in place (add the
                    // micro-gradient, scale by 1/accum) with exactly the
                    // per-element operation sequence of the buffered path,
                    // then hand it to the bucket scheduler — a bucket's
                    // allreduce launches the instant its last range lands.
                    let inv_accum = 1.0 / accum as f32;
                    let mut stream = gsync.begin(comm);
                    let (l, c) = exec.step_streamed(&x, &labels, |off, vals| {
                        let seg = &mut grad[off..off + vals.len()];
                        if accum == 1 {
                            seg.copy_from_slice(vals);
                        } else {
                            reduce::sum_into(seg, vals);
                            reduce::scale(seg, inv_accum);
                        }
                        stream.segment_ready(&grad[..], off, vals.len());
                    });
                    micro_loss += l / accum as f64;
                    micro_correct += c as u64;
                    stream.finish(&mut grad[..]);
                    progress.buckets_launched += gsync.buckets().len() as u64;
                } else {
                    let (l, g, c) = micro_step(exec, &x, &labels, cfg.strategy);
                    micro_loss += l / accum as f64;
                    micro_correct += c;
                    if micro == 0 {
                        grad.copy_from_slice(&g);
                    } else {
                        reduce::sum_into(grad, &g);
                    }
                }
            }
            let step_loss = micro_loss;
            let step_correct = micro_correct;
            // Inter-node average: sum node-averages, divide by N. The hooked
            // path already reduced during backprop; drain mode launches the
            // buckets nonblocking here; `bucket_bytes == 0` runs one fused
            // blocking allreduce.
            if !hooked {
                if accum > 1 {
                    reduce::scale(grad, 1.0 / accum as f32);
                }
                gsync.reduce(comm, &mut grad[..]);
                if gsync.is_bucketed() {
                    progress.buckets_launched += gsync.buckets().len() as u64;
                }
            }
            reduce::scale(grad, 1.0 / n as f32);
            match shards {
                // Replicated: every replica applies the full averaged
                // gradient with full momentum, staying in sync implicitly.
                None => exec.visit_replicas(|m| {
                    set_grads(m, &grad[..]);
                    sgd.step(m, lr);
                }),
                // Sharded: the reduce-scatter above fully reduced only this
                // rank's owned range, so step exactly that range (replica 0
                // stands in for the shard — the others resync from the
                // allgather), then rebroadcast the stepped parameters.
                // Per-element arithmetic is identical to the replicated
                // step, so the gathered weights match it bitwise.
                Some(sm) => {
                    let r0 = exec.replica(0);
                    set_grads(r0, &grad[..]);
                    sgd.step_range(r0, lr, sm.owned(me), velocity);
                    let mut params = collect_params(exec.replica(0));
                    comm.allgather_f32(&mut params, shard_counts.as_ref().expect("counts"));
                    exec.set_params_all(&params);
                }
            }
            progress.loss_sum += step_loss;
            progress.correct += step_correct;
            progress.seen += (batch_node * accum) as u64;
            progress.iters += 1;
            if heartbeat {
                eprintln!("dcnn-fault: rank {me} step {global_step} (epoch {epoch} it {it})");
            }
            if kill_at == Some(global_step) {
                eprintln!("dcnn-fault: rank {me}: kill-after-step={global_step}: aborting now");
                std::process::abort();
            }
            global_step += 1;
        }
        let (l, c, cnt) =
            allreduce_stats(comm, progress.loss_sum, progress.correct, progress.seen);
        let val_acc = match val {
            Some(vs) => validate(comm, exec, vs, cfg.crop),
            None => 0.0,
        };
        let now_comm = comm.stats();
        // Tuner epoch boundary: fold the epoch's bucket spans into the
        // measured table, and — on the epoch that closes the probe window —
        // run the cluster agreement round that freezes the decision table.
        // Every rank reaches this point on the same epoch with the same
        // tuner state, so the embedded collective is matched.
        let algo_choices = gsync
            .tune_epoch_end(comm, &now_comm.bucket_spans[ep_comm.bucket_spans.len()..])
            .unwrap_or_else(|| gsync.algo_name().to_string());
        let async_ns = now_comm.async_comm_ns - ep_comm.async_comm_ns;
        let wait_ns = now_comm.bucket_wait_ns - ep_comm.bucket_wait_ns;
        let my_overlap = if async_ns == 0 {
            0.0
        } else {
            (1.0 - wait_ns as f64 / async_ns as f64).clamp(0.0, 1.0)
        };
        let (res_param, res_opt) = measure_residency(exec, velocity);
        stats.push(EpochStats {
            epoch,
            train_loss: l / (n * iterations) as f64,
            train_acc: c as f64 / cnt as f64,
            val_acc,
            lr: cfg.lr.lr_at(epoch as f32),
            comm_bytes: now_comm.bytes_sent - ep_comm.bytes_sent,
            comm_msgs: now_comm.msgs_sent - ep_comm.msgs_sent,
            comm_wait_secs: (now_comm.recv_wait_ns - ep_comm.recv_wait_ns) as f64 / 1e9,
            allreduce_secs: (gsync.allreduce_phase_ns(&now_comm)
                - gsync.allreduce_phase_ns(&ep_comm)) as f64
                / 1e9,
            stash_hwm: now_comm.stash_hwm,
            bucket_wait_secs: wait_ns as f64 / 1e9,
            overlap_frac: allreduce_max_f64(comm, my_overlap),
            async_inflight_hwm: allreduce_max_u64(comm, now_comm.async_inflight_hwm),
            bucket_bytes: gsync.bucket_bytes() as u64,
            buckets_launched: progress.buckets_launched,
            resident_param_bytes: res_param,
            resident_opt_bytes: res_opt,
            link_bytes_max: {
                let links = now_comm.link_bytes_delta(&ep_comm);
                allreduce_max_u64(comm, CommStats::link_bytes_max(me, &links))
            },
            link_imbalance: {
                let links = now_comm.link_bytes_delta(&ep_comm);
                allreduce_max_f64(comm, CommStats::link_imbalance(me, &links))
            },
            algo_choices,
        });
        // Adaptive bucket sizing: steer the measured average of in-flight
        // reduce bytes toward the configured budget by scaling the target
        // between epochs. Every rank adopts the cluster-max measurement, so
        // all ranks re-plan to the identical target (launch order and
        // bucket communicator derivation depend on that).
        if cfg.inflight_budget_bytes > 0 && gsync.is_bucketed() {
            let avg = now_comm.inflight_bytes_avg(ep_comm.bucket_spans.len());
            let agreed = allreduce_max_u64(comm, avg);
            if agreed > 0 {
                let cur = gsync.bucket_bytes() as u128;
                let scaled = cur * cfg.inflight_budget_bytes as u128 / agreed as u128;
                let new = (scaled.min(usize::MAX as u128) as usize).clamp(1024, param_total * 4);
                if new != gsync.bucket_bytes() {
                    gsync.replan(new);
                }
            }
        }
        let shuffle_due =
            cfg.shuffle_every_epochs > 0 && (epoch + 1) % cfg.shuffle_every_epochs == 0;
        source.end_epoch(epoch, shuffle_due);
    }
    *dimd = source.finish();
}

/// Live parameter + optimizer bytes on this rank, summed over every local
/// replica's tensors plus the shard-local velocity buffer.
fn measure_residency(exec: &mut DptExecutor, velocity: &[f32]) -> (u64, u64) {
    let (mut res_param, mut res_opt) = (0usize, 0usize);
    exec.visit_replicas(|m| {
        let (p, o) = resident_bytes(m);
        res_param += p;
        res_opt += o;
    });
    res_opt += std::mem::size_of_val(velocity);
    (res_param as u64, res_opt as u64)
}

/// A peer died mid-epoch: preserve what this rank can before the unwind
/// continues — a partial [`EpochStats`] row (stderr, plus a JSON file next
/// to the checkpoint) telling the operator where training stood, and an
/// abort checkpoint making the completed steps resumable. Deliberately
/// avoids every collective call: peers are dead or dying, so only local
/// counters go into the row.
///
/// Under the sharded strategy the abort checkpoint is this rank's
/// [`ShardCheckpoint`] (`DCKS`) — full momentum no longer exists anywhere —
/// and the surviving ranks' shards merge back into a full `DCKP` state via
/// [`Checkpoint::merge`], or restore directly into another sharded run.
#[allow(clippy::too_many_arguments)]
fn flush_abort_state(
    comm: &Comm,
    cfg: &TrainConfig,
    exec: &mut DptExecutor,
    gsync: &GradSync,
    shards: &Option<ShardMap>,
    velocity: &[f32],
    progress: &PartialEpoch,
    err: &CommError,
) {
    let me = comm.rank();
    let now = comm.stats();
    let async_ns = now.async_comm_ns.saturating_sub(progress.start.async_comm_ns);
    let wait_ns = now.bucket_wait_ns.saturating_sub(progress.start.bucket_wait_ns);
    let (res_param, res_opt) = measure_residency(exec, velocity);
    let row = EpochStats {
        epoch: progress.epoch,
        train_loss: if progress.iters == 0 {
            0.0
        } else {
            progress.loss_sum / progress.iters as f64
        },
        train_acc: if progress.seen == 0 {
            0.0
        } else {
            progress.correct as f64 / progress.seen as f64
        },
        val_acc: 0.0,
        lr: cfg.lr.lr_at(progress.epoch as f32),
        comm_bytes: now.bytes_sent.saturating_sub(progress.start.bytes_sent),
        comm_msgs: now.msgs_sent.saturating_sub(progress.start.msgs_sent),
        comm_wait_secs: now.recv_wait_ns.saturating_sub(progress.start.recv_wait_ns) as f64 / 1e9,
        allreduce_secs: gsync
            .allreduce_phase_ns(&now)
            .saturating_sub(gsync.allreduce_phase_ns(&progress.start)) as f64
            / 1e9,
        stash_hwm: now.stash_hwm,
        bucket_wait_secs: wait_ns as f64 / 1e9,
        overlap_frac: if async_ns == 0 {
            0.0
        } else {
            (1.0 - wait_ns as f64 / async_ns as f64).clamp(0.0, 1.0)
        },
        async_inflight_hwm: now.async_inflight_hwm,
        bucket_bytes: gsync.bucket_bytes() as u64,
        buckets_launched: progress.buckets_launched,
        resident_param_bytes: res_param,
        resident_opt_bytes: res_opt,
        // Local-only link picture for the same no-collective reason.
        link_bytes_max: {
            let links = now.link_bytes_delta(&progress.start);
            CommStats::link_bytes_max(me, &links)
        },
        link_imbalance: {
            let links = now.link_bytes_delta(&progress.start);
            CommStats::link_imbalance(me, &links)
        },
        // No collective here — peers are dead or dying — so render whatever
        // the local tuner last knew instead of agreeing on anything.
        algo_choices: gsync.choices_string(),
    };
    eprintln!(
        "dcnn: rank {me}: aborting training after {} iteration(s) of epoch {}: {err}",
        progress.iters, progress.epoch
    );
    let json = serde_json::to_string(&row).unwrap_or_default();
    eprintln!("dcnn: rank {me}: partial epoch row: {json}");
    if let Some(dir) = &cfg.checkpoint_dir {
        let dir = std::path::Path::new(dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("dcnn: rank {me}: cannot create checkpoint dir {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("abort-rank{me}.ckpt"));
        let written = match shards {
            None => Checkpoint::capture(exec.replica(0), progress.epoch as u32).write_to(&path),
            Some(sm) => {
                let owned = sm.owned(me);
                let params = collect_params(exec.replica(0));
                ShardCheckpoint {
                    epoch: progress.epoch as u32,
                    meta: ShardMeta {
                        rank: me as u32,
                        world: sm.world() as u32,
                        offset: owned.start as u64,
                        total: sm.total() as u64,
                    },
                    params: params[owned].to_vec(),
                    momentum: velocity.to_vec(),
                }
                .write_to(&path)
            }
        };
        match written {
            Ok(()) => eprintln!(
                "dcnn: rank {me}: abort checkpoint written to {}",
                path.display()
            ),
            Err(e) => eprintln!("dcnn: rank {me}: abort checkpoint write failed: {e}"),
        }
        let _ = std::fs::write(dir.join(format!("abort-rank{me}.partial.json")), json);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcnn_dimd::SynthConfig;
    use dcnn_models::resnet::ResNetConfig;

    fn tiny_factory() -> Box<dyn Module> {
        ResNetConfig {
            blocks: vec![1],
            base_width: 6,
            bottleneck: false,
            classes: 4,
            input: [3, 16, 16],
            imagenet_stem: false,
        }
        .build(77)
    }

    fn tiny_ds() -> SynthImageNet {
        let mut cfg = SynthConfig::tiny(4);
        cfg.train_per_class = 24;
        cfg.val_per_class = 8;
        cfg.base_hw = 16;
        cfg.noise = 10.0;
        SynthImageNet::new(cfg)
    }

    fn tiny_cfg(nodes: usize, epochs: usize) -> TrainConfig {
        let mut cfg = TrainConfig::paper(nodes, 2, 4, epochs);
        cfg.crop = 16;
        cfg.lr = LrSchedule {
            init_lr: 0.05,
            base_lr: 0.05,
            warmup_epochs: 1.0,
            step_epochs: 100.0,
            decay: 0.1,
        };
        cfg
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let ds = tiny_ds();
        let stats = train_distributed(&tiny_cfg(2, 5), &ds, tiny_factory);
        assert_eq!(stats.len(), 5);
        let first = stats.first().expect("stats").train_loss;
        let last = stats.last().expect("stats").train_loss;
        assert!(
            last < first * 0.9,
            "loss should fall: {first:.3} → {last:.3}"
        );
    }

    #[test]
    fn accuracy_beats_chance_quickly() {
        let ds = tiny_ds();
        let stats = train_distributed(&tiny_cfg(2, 6), &ds, tiny_factory);
        let best = stats.iter().map(|s| s.val_acc).fold(0.0, f64::max);
        assert!(best > 0.40, "best val acc {best:.2} vs 0.25 chance");
    }

    #[test]
    fn epoch_stats_carry_comm_counters() {
        let ds = tiny_ds();
        let stats = train_distributed(&tiny_cfg(2, 2), &ds, tiny_factory);
        for s in &stats {
            assert!(s.comm_bytes > 0, "epoch {}: no bytes counted", s.epoch);
            assert!(s.comm_msgs > 0, "epoch {}: no messages counted", s.epoch);
            assert!(
                s.allreduce_secs > 0.0,
                "epoch {}: allreduce phase not timed",
                s.epoch
            );
            assert!(s.comm_wait_secs >= 0.0);
        }
    }

    #[test]
    fn node_counts_converge_similarly() {
        // Figures 13–16's key property: optimizations and node count change
        // wall-clock, not the loss trajectory (same global batch here).
        let ds = tiny_ds();
        let mut c1 = tiny_cfg(1, 6);
        c1.batch_per_gpu = 8; // global batch 16
        let mut c2 = tiny_cfg(2, 6);
        c2.batch_per_gpu = 4; // global batch 16
        let s1 = train_distributed(&c1, &ds, tiny_factory);
        let s2 = train_distributed(&c2, &ds, tiny_factory);
        let l1 = s1.last().expect("stats").train_loss;
        let l2 = s2.last().expect("stats").train_loss;
        // The runs draw different sample orders (per-rank RNG streams), so
        // the losses match only up to sampling noise — and a relative band
        // degenerates as both approach zero. Assert the real property: both
        // node counts converge, to within an absolute noise band.
        assert!(l1 < 0.5, "1-node failed to converge: loss {l1:.3}");
        assert!(l2 < 0.5, "2-node failed to converge: loss {l2:.3}");
        assert!(
            (l1 - l2).abs() < 0.3,
            "1-node {l1:.3} vs 2-node {l2:.3} should be similar"
        );
    }

    #[test]
    fn dpt_strategies_train_identically() {
        let ds = tiny_ds();
        let mut cb = tiny_cfg(2, 2);
        cb.strategy = DptStrategy::Baseline;
        cb.validate = false;
        let mut co = tiny_cfg(2, 2);
        co.strategy = DptStrategy::Optimized;
        co.validate = false;
        let sb = train_distributed(&cb, &ds, tiny_factory);
        let so = train_distributed(&co, &ds, tiny_factory);
        for (a, b) in sb.iter().zip(&so) {
            assert!(
                (a.train_loss - b.train_loss).abs() < 1e-6,
                "epoch {}: {} vs {}",
                a.epoch,
                a.train_loss,
                b.train_loss
            );
        }
    }

    #[test]
    fn gradient_accumulation_converges_like_bigger_batches() {
        // accum=2 with batch 2/GPU sees the same images/iteration as batch
        // 4/GPU (sampling order differs, so trajectories aren't identical,
        // but both must train).
        let ds = tiny_ds();
        let mut cfg = tiny_cfg(2, 3);
        cfg.batch_per_gpu = 2;
        cfg.accum_steps = 2;
        cfg.validate = false;
        let stats = train_distributed(&cfg, &ds, tiny_factory);
        let first = stats.first().expect("stats").train_loss;
        let last = stats.last().expect("stats").train_loss;
        assert!(last < first, "accumulated loss {first:.3} → {last:.3}");
        // Images seen per epoch accounts for the accumulation.
        assert!(stats.iter().all(|s| s.train_loss.is_finite()));
    }

    #[test]
    fn prefetching_gives_identical_training() {
        // The donkey pipeline must not change the math: same seeds, same
        // trajectory, with and without it.
        let ds = tiny_ds();
        let mut plain = tiny_cfg(2, 2);
        plain.validate = false;
        let mut pre = tiny_cfg(2, 2);
        pre.validate = false;
        pre.prefetch_depth = 3;
        let a = train_distributed(&plain, &ds, tiny_factory);
        let b = train_distributed(&pre, &ds, tiny_factory);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.train_loss, y.train_loss, "prefetch changed training");
        }
    }

    #[test]
    fn fp16_gradients_still_converge() {
        let ds = tiny_ds();
        let mut cfg = tiny_cfg(2, 4);
        cfg.fp16_grads = true;
        let stats = train_distributed(&cfg, &ds, tiny_factory);
        let first = stats.first().expect("stats").train_loss;
        let last = stats.last().expect("stats").train_loss;
        assert!(last < first, "fp16 loss {first:.3} → {last:.3}");
        // And stays close to the fp32 trajectory.
        let mut cfg32 = tiny_cfg(2, 4);
        cfg32.fp16_grads = false;
        let stats32 = train_distributed(&cfg32, &ds, tiny_factory);
        let last32 = stats32.last().expect("stats").train_loss;
        assert!(
            (last - last32).abs() < 0.25 * last32.max(last),
            "fp16 {last:.3} vs fp32 {last32:.3}"
        );
    }

    #[test]
    fn bucketed_training_is_bitwise_identical_to_blocking() {
        // Two ranks: every per-element sum is a single f32 addition, which
        // commutes — so any bucketing (and the async engine under it) must
        // reproduce the fused blocking run exactly, not approximately.
        let ds = tiny_ds();
        let mut blocking = tiny_cfg(2, 2);
        blocking.bucket_bytes = 0;
        blocking.validate = false;
        let mut bucketed = blocking.clone();
        bucketed.bucket_bytes = 1024; // many small buckets per iteration
        let sb = train_distributed(&blocking, &ds, tiny_factory);
        let so = train_distributed(&bucketed, &ds, tiny_factory);
        for (a, b) in sb.iter().zip(&so) {
            assert_eq!(
                a.train_loss.to_bits(),
                b.train_loss.to_bits(),
                "epoch {}: blocking {} vs bucketed {}",
                a.epoch,
                a.train_loss,
                b.train_loss
            );
            assert_eq!(a.train_acc.to_bits(), b.train_acc.to_bits());
        }
        // The blocking run never launches async reduces.
        assert_eq!(sb.last().expect("stats").async_inflight_hwm, 0);
        let last = so.last().expect("stats");
        assert!(last.bucket_wait_secs >= 0.0);
        assert!((0.0..=1.0).contains(&last.overlap_frac));
    }

    #[test]
    fn bucketed_training_overlaps_buckets_in_flight() {
        // A wider model gives buckets whose reduces take far longer than
        // the next bucket's launch, so the in-flight high-water mark must
        // observe ≥ 2 concurrent reduces (the overlap the engine exists
        // for). Tiny buckets could drain between launches; ~8 KB ones
        // cannot.
        let wide_factory = || -> Box<dyn Module> {
            ResNetConfig {
                blocks: vec![1],
                base_width: 24,
                bottleneck: false,
                classes: 4,
                input: [3, 16, 16],
                imagenet_stem: false,
            }
            .build(78)
        };
        let ds = tiny_ds();
        let mut cfg = tiny_cfg(2, 1);
        cfg.bucket_bytes = 8 * 1024;
        cfg.validate = false;
        cfg.shuffle_every_epochs = 0;
        let stats = train_distributed(&cfg, &ds, wide_factory);
        let last = stats.last().expect("stats");
        assert!(
            last.async_inflight_hwm >= 2,
            "expected ≥2 buckets in flight, saw {}",
            last.async_inflight_hwm
        );
    }

    #[test]
    fn drain_mode_training_is_bitwise_identical_to_blocking() {
        // The pre-hook schedule (launch all buckets after backward) must
        // keep working and keep matching the fused run exactly.
        let ds = tiny_ds();
        let mut blocking = tiny_cfg(2, 2);
        blocking.bucket_bytes = 0;
        blocking.validate = false;
        let mut drained = blocking.clone();
        drained.bucket_bytes = 1024;
        drained.overlap = OverlapMode::Drain;
        let sb = train_distributed(&blocking, &ds, tiny_factory);
        let sd = train_distributed(&drained, &ds, tiny_factory);
        for (a, b) in sb.iter().zip(&sd) {
            assert_eq!(
                a.train_loss.to_bits(),
                b.train_loss.to_bits(),
                "epoch {}: blocking {} vs drain {}",
                a.epoch,
                a.train_loss,
                b.train_loss
            );
        }
        assert!(sd.iter().all(|s| s.buckets_launched > 0));
    }

    #[test]
    fn hooked_overlap_matches_blocking_bitwise_for_every_algorithm() {
        // Single-bucket granularity (target larger than the model): the
        // hooked scheduler launches exactly one bucket per iteration, from
        // the backward hook, for each of the six allreduce algorithms — and
        // at two ranks every one must reproduce the fused blocking bits.
        let ds = tiny_ds();
        for algo in AllreduceAlgo::all() {
            let mut blocking = tiny_cfg(2, 1);
            blocking.algo = algo.into();
            blocking.validate = false;
            blocking.shuffle_every_epochs = 0;
            let mut hooked = blocking.clone();
            hooked.bucket_bytes = 64 * 1024 * 1024;
            hooked.overlap = OverlapMode::Hooked;
            let sb = train_distributed(&blocking, &ds, tiny_factory);
            let sh = train_distributed(&hooked, &ds, tiny_factory);
            for (a, b) in sb.iter().zip(&sh) {
                assert_eq!(
                    a.train_loss.to_bits(),
                    b.train_loss.to_bits(),
                    "{:?} epoch {}: blocking {} vs hooked {}",
                    hooked.algo,
                    a.epoch,
                    a.train_loss,
                    b.train_loss
                );
            }
        }
    }

    #[test]
    fn adaptive_bucket_sizing_replans_between_epochs() {
        // A huge in-flight budget must push the bucket target up toward the
        // clamp; the trajectory still matches blocking bitwise (any
        // bucketing is exact at two ranks), so adaptation is free.
        let ds = tiny_ds();
        let mut blocking = tiny_cfg(2, 3);
        blocking.validate = false;
        blocking.shuffle_every_epochs = 0;
        let mut adaptive = blocking.clone();
        adaptive.bucket_bytes = 1024;
        adaptive.inflight_budget_bytes = 64 * 1024 * 1024;
        let sb = train_distributed(&blocking, &ds, tiny_factory);
        let sa = train_distributed(&adaptive, &ds, tiny_factory);
        for (a, b) in sb.iter().zip(&sa) {
            assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits(), "epoch {}", a.epoch);
        }
        assert_eq!(sa[0].bucket_bytes, 1024, "first epoch runs the configured target");
        let last = sa.last().expect("stats");
        assert!(
            last.bucket_bytes > 1024,
            "budget {} should have grown the target, still {}",
            adaptive.inflight_budget_bytes,
            last.bucket_bytes
        );
        // Fewer, larger buckets → fewer launches per epoch.
        assert!(last.buckets_launched < sa[0].buckets_launched);
    }

    #[test]
    fn bucketed_fp16_matches_fused_fp16_bitwise() {
        // Quantization is elementwise, so it commutes with bucketing too.
        let ds = tiny_ds();
        let mut fused = tiny_cfg(2, 2);
        fused.fp16_grads = true;
        fused.validate = false;
        let mut bucketed = fused.clone();
        bucketed.bucket_bytes = 2048;
        let sf = train_distributed(&fused, &ds, tiny_factory);
        let sb = train_distributed(&bucketed, &ds, tiny_factory);
        for (a, b) in sf.iter().zip(&sb) {
            assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits());
        }
    }

    #[test]
    fn bucketed_training_works_with_accumulation() {
        // Buckets and micro-batch accumulation compose: the buffer-reuse
        // path feeds the same averaged gradient into the bucketed exchange.
        let ds = tiny_ds();
        let mut blocking = tiny_cfg(2, 2);
        blocking.accum_steps = 2;
        blocking.batch_per_gpu = 2;
        blocking.validate = false;
        let mut bucketed = blocking.clone();
        bucketed.bucket_bytes = 1024;
        let sb = train_distributed(&blocking, &ds, tiny_factory);
        let so = train_distributed(&bucketed, &ds, tiny_factory);
        for (a, b) in sb.iter().zip(&so) {
            assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits());
        }
    }

    /// Assert two runs took bitwise-identical trajectories (loss, accuracy
    /// and validation accuracy per epoch).
    fn assert_bitwise_trajectory(a: &[EpochStats], b: &[EpochStats], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: epoch counts differ");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(
                x.train_loss.to_bits(),
                y.train_loss.to_bits(),
                "{what} epoch {}: {} vs {}",
                x.epoch,
                x.train_loss,
                y.train_loss
            );
            assert_eq!(x.train_acc.to_bits(), y.train_acc.to_bits(), "{what} epoch {}", x.epoch);
            assert_eq!(x.val_acc.to_bits(), y.val_acc.to_bits(), "{what} epoch {}", x.epoch);
        }
    }

    #[test]
    fn sharded_training_is_bitwise_identical_every_algorithm() {
        // The strategy seam's core promise: flipping `shard_optim` never
        // changes the loss trajectory, for any of the six allreduce
        // algorithms (their reduce-scatter seam defaults to the full
        // allreduce, so the sharded math is literally the replicated math).
        let ds = tiny_ds();
        for algo in AllreduceAlgo::all() {
            let mut replicated = tiny_cfg(2, 1);
            replicated.algo = algo.into();
            replicated.validate = false;
            replicated.shuffle_every_epochs = 0;
            let mut sharded = replicated.clone();
            sharded.shard_optim = true;
            let sr = train_distributed(&replicated, &ds, tiny_factory);
            let ss = train_distributed(&sharded, &ds, tiny_factory);
            assert_bitwise_trajectory(&sr, &ss, &format!("{algo:?}"));
        }
    }

    #[test]
    fn sharded_four_ranks_matches_replicated_in_every_overlap_mode() {
        // Four ranks with the ring: the reduce-scatter is real (each rank
        // receives only its shard's sums), summation order matters, and the
        // owner-anchored ring keeps fused, drained and hooked sharded runs
        // all bitwise equal to the replicated fused run.
        let ds = tiny_ds();
        let mut replicated = tiny_cfg(4, 2);
        replicated.algo = AllreduceAlgo::RingReduceScatter.into();
        replicated.shuffle_every_epochs = 0;
        let sr = train_distributed(&replicated, &ds, tiny_factory);

        let mut fused = replicated.clone();
        fused.shard_optim = true;
        assert_bitwise_trajectory(
            &sr,
            &train_distributed(&fused, &ds, tiny_factory),
            "fused sharded",
        );

        let mut drained = fused.clone();
        drained.bucket_bytes = 1024;
        drained.overlap = OverlapMode::Drain;
        assert_bitwise_trajectory(
            &sr,
            &train_distributed(&drained, &ds, tiny_factory),
            "drained sharded",
        );

        let mut hooked = fused.clone();
        hooked.bucket_bytes = 1024;
        hooked.overlap = OverlapMode::Hooked;
        assert_bitwise_trajectory(
            &sr,
            &train_distributed(&hooked, &ds, tiny_factory),
            "hooked sharded",
        );
    }

    #[test]
    fn sharded_three_ranks_uneven_shards_match_replicated() {
        // A world size that does not divide the parameter count: shards are
        // uneven, and one may cut through a tensor. Still bitwise.
        let ds = tiny_ds();
        let mut replicated = tiny_cfg(3, 2);
        replicated.algo = AllreduceAlgo::RingReduceScatter.into();
        replicated.validate = false;
        replicated.shuffle_every_epochs = 0;
        let mut sharded = replicated.clone();
        sharded.shard_optim = true;
        let sr = train_distributed(&replicated, &ds, tiny_factory);
        let ss = train_distributed(&sharded, &ds, tiny_factory);
        assert_bitwise_trajectory(&sr, &ss, "three-rank sharded");
    }

    #[test]
    fn sharded_composes_with_fp16_and_accumulation_bitwise() {
        // The extensions stack: fp16 quantization happens before the
        // exchange and accumulation before the scale, so neither interacts
        // with who owns the reduction.
        let ds = tiny_ds();
        let mut replicated = tiny_cfg(2, 2);
        replicated.fp16_grads = true;
        replicated.accum_steps = 2;
        replicated.batch_per_gpu = 2;
        replicated.validate = false;
        let mut sharded = replicated.clone();
        sharded.shard_optim = true;
        let sr = train_distributed(&replicated, &ds, tiny_factory);
        let ss = train_distributed(&sharded, &ds, tiny_factory);
        assert_bitwise_trajectory(&sr, &ss, "fp16+accum sharded");
    }

    #[test]
    fn sharded_run_shrinks_resident_optimizer_state() {
        // The point of the exercise: same bits, ~1/world the optimizer
        // memory. Replicated keeps one full momentum buffer per local
        // replica; sharded keeps a single shard-sized velocity.
        let ds = tiny_ds();
        let mut replicated = tiny_cfg(4, 1);
        replicated.algo = AllreduceAlgo::RingReduceScatter.into();
        replicated.validate = false;
        replicated.shuffle_every_epochs = 0;
        let mut sharded = replicated.clone();
        sharded.shard_optim = true;
        let sr = train_distributed(&replicated, &ds, tiny_factory);
        let ss = train_distributed(&sharded, &ds, tiny_factory);
        assert_bitwise_trajectory(&sr, &ss, "residency run");
        let (rep, shd) = (sr.last().expect("stats"), ss.last().expect("stats"));
        assert!(rep.resident_opt_bytes > 0);
        assert!(
            shd.resident_opt_bytes * 4 <= rep.resident_opt_bytes,
            "sharded opt bytes {} should be ≤ 1/4 of replicated {}",
            shd.resident_opt_bytes,
            rep.resident_opt_bytes
        );
        // Parameter residency (values + grads) is unchanged — sharding
        // moves optimizer state only.
        assert_eq!(shd.resident_param_bytes, rep.resident_param_bytes);
    }

    #[test]
    fn allreduce_choice_does_not_change_training() {
        let ds = tiny_ds();
        let mut c1 = tiny_cfg(2, 2);
        c1.algo = AllreduceAlgo::MultiColor(2).into();
        c1.validate = false;
        let mut c2 = tiny_cfg(2, 2);
        c2.algo = AllreduceAlgo::RingReduceScatter.into();
        c2.validate = false;
        let s1 = train_distributed(&c1, &ds, tiny_factory);
        let s2 = train_distributed(&c2, &ds, tiny_factory);
        for (a, b) in s1.iter().zip(&s2) {
            assert!(
                (a.train_loss - b.train_loss).abs() < 2e-3 * a.train_loss,
                "{} vs {}",
                a.train_loss,
                b.train_loss
            );
        }
    }
    #[test]
    fn auto_policy_two_ranks_matches_fixed_bitwise_even_while_probing() {
        // At world size 2 every algorithm reduces a pair of values with one
        // f32 addition, so the tuner can rotate candidates mid-probe and
        // still produce the exact bits a fixed run does. The decision table
        // must also leave the probe state and freeze real size classes.
        use dcnn_collectives::TunerConfig;
        let ds = tiny_ds();
        let mut fixed = tiny_cfg(2, 4);
        fixed.algo = AllreduceAlgo::PipelinedRing.into();
        fixed.bucket_bytes = 1024;
        fixed.validate = false;
        fixed.shuffle_every_epochs = 0;
        let mut tuned = fixed.clone();
        tuned.algo = AlgoPolicy::Auto(TunerConfig::with_candidates(vec![
            AllreduceAlgo::PipelinedRing,
            AllreduceAlgo::HalvingDoubling,
        ]));
        let sf = train_distributed(&fixed, &ds, tiny_factory);
        let st = train_distributed(&tuned, &ds, tiny_factory);
        assert_bitwise_trajectory(&sf, &st, "auto vs fixed at 2 ranks");
        assert_eq!(st[0].algo_choices, "probe", "{:?}", st[0].algo_choices);
        let last = &st.last().expect("stats").algo_choices;
        assert!(last.contains("<="), "table never froze: {last:?}");
        assert_eq!(sf.last().expect("stats").algo_choices, "ring");
    }

    #[test]
    fn auto_policy_decisions_agree_across_four_ranks() {
        // The per-rank timings differ; the allgather+max merge must leave
        // every rank with the same table, hence the same choices string in
        // every epoch row — including the probe epochs.
        use dcnn_collectives::TunerConfig;
        let ds = tiny_ds();
        let mut cfg = tiny_cfg(4, 4);
        cfg.algo = AlgoPolicy::Auto(TunerConfig::with_candidates(vec![
            AllreduceAlgo::PipelinedRing,
            AllreduceAlgo::HalvingDoubling,
        ]));
        cfg.bucket_bytes = 1024;
        cfg.validate = false;
        cfg.shuffle_every_epochs = 0;
        let per_rank = run_cluster(cfg.nodes, |comm| {
            train_on_comm(comm, &cfg, &ds, &tiny_factory)
                .iter()
                .map(|s| s.algo_choices.clone())
                .collect::<Vec<_>>()
        });
        for (r, choices) in per_rank.iter().enumerate() {
            assert_eq!(choices, &per_rank[0], "rank {r} disagrees");
        }
        let last = per_rank[0].last().expect("choices");
        assert!(last.contains("<="), "table never froze: {last:?}");
    }
}

