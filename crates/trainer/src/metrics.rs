//! Metrics export: CSV and JSON serialization of training statistics, for
//! plotting the accuracy/error-vs-time curves (Figures 13–16) outside Rust.

use crate::distributed::EpochStats;

/// Render epoch statistics as CSV (header + one row per epoch).
pub fn stats_to_csv(stats: &[EpochStats]) -> String {
    let mut out = String::from(
        "epoch,lr,train_loss,train_acc,val_acc,comm_bytes,comm_msgs,comm_wait_secs,allreduce_secs,stash_hwm,bucket_wait_secs,overlap_frac,async_inflight_hwm,bucket_bytes,buckets_launched,resident_param_bytes,resident_opt_bytes,link_bytes_max,link_imbalance,algo_choices\n",
    );
    for s in stats {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            s.epoch,
            s.lr,
            s.train_loss,
            s.train_acc,
            s.val_acc,
            s.comm_bytes,
            s.comm_msgs,
            s.comm_wait_secs,
            s.allreduce_secs,
            s.stash_hwm,
            s.bucket_wait_secs,
            s.overlap_frac,
            s.async_inflight_hwm,
            s.bucket_bytes,
            s.buckets_launched,
            s.resident_param_bytes,
            s.resident_opt_bytes,
            s.link_bytes_max,
            s.link_imbalance,
            s.algo_choices
        ));
    }
    out
}

/// Render epoch statistics as a JSON array.
pub fn stats_to_json(stats: &[EpochStats]) -> String {
    serde_json::to_string_pretty(stats).expect("EpochStats serialize")
}

/// Attach modelled wall-clock hours (from an epoch-seconds figure) to each
/// epoch: `(hours, stats)` pairs ready for a time-axis plot.
pub fn with_time_axis(stats: &[EpochStats], epoch_secs: f64) -> Vec<(f64, EpochStats)> {
    stats
        .iter()
        .map(|s| ((s.epoch + 1) as f64 * epoch_secs / 3600.0, s.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(epoch: usize) -> EpochStats {
        EpochStats {
            epoch,
            train_loss: 1.0 / (epoch + 1) as f64,
            train_acc: 0.5,
            val_acc: 0.25 * epoch as f64,
            lr: 0.1,
            comm_bytes: 1024 * epoch as u64,
            comm_msgs: 8 * epoch as u64,
            comm_wait_secs: 0.125,
            allreduce_secs: 0.0625,
            stash_hwm: 2,
            bucket_wait_secs: 0.03125,
            overlap_frac: 0.75,
            async_inflight_hwm: 3,
            bucket_bytes: 4096,
            buckets_launched: 12 * epoch as u64,
            resident_param_bytes: 65536,
            resident_opt_bytes: 8192,
            link_bytes_max: 512 * epoch as u64,
            link_imbalance: 1.5,
            algo_choices: "multicolor".to_string(),
        }
    }

    #[test]
    fn csv_shape() {
        let csv = stats_to_csv(&[fake(0), fake(1)]);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("epoch,"));
        assert!(lines[1].starts_with("0,"));
        assert_eq!(lines[1].split(',').count(), 20);
        assert!(lines[0].ends_with("link_bytes_max,link_imbalance,algo_choices"));
    }

    #[test]
    fn json_parses_back() {
        let j = stats_to_json(&[fake(2)]);
        let v: serde_json::Value = serde_json::from_str(&j).expect("valid json");
        assert_eq!(v[0]["epoch"], 2);
        assert_eq!(v[0]["comm_bytes"], 2048);
        assert_eq!(v[0]["comm_wait_secs"], 0.125);
    }

    #[test]
    fn time_axis_is_cumulative() {
        let pts = with_time_axis(&[fake(0), fake(1), fake(2)], 3600.0);
        assert_eq!(pts[0].0, 1.0);
        assert_eq!(pts[2].0, 3.0);
    }
}
