//! The parameter shard map behind the sharded-optimizer strategy
//! (reduce-scatter → local step → allgather).
//!
//! Sharding splits the flattened parameter vector into one contiguous,
//! element-aligned range per rank using the **same owner map the ring
//! reduce-scatter uses for its chunks** ([`dcnn_collectives::even_ranges`]).
//! That alignment is what keeps the sharded trajectory bitwise identical to
//! the replicated one under `RingReduceScatter`: the value the ring delivers
//! to a chunk's owner is anchored at that owner regardless of how the
//! exchange is bucketed, so "step only my shard, then allgather" applies
//! exactly the update every replicated rank would have computed for those
//! elements. The other five algorithms reach the same guarantee differently
//! — their reduce-scatter seam runs the full allreduce — so either way the
//! shard map never changes the math, only who stores the optimizer state.
//!
//! The map is deliberately element-aligned rather than parameter-aligned:
//! shard boundaries may cut through a tensor. [`dcnn_tensor::optim::Sgd`]
//! handles that with range-restricted stepping; LARS-style optimizers that
//! need whole-tensor norms require aligned shards (see
//! [`dcnn_tensor::optim::Lars::step_range`]).

use std::ops::Range;

use dcnn_collectives::even_ranges;

/// Which ranks own which contiguous ranges of the flattened parameter
/// vector. Identical on every rank (pure function of `(total, world)`), so
/// all ranks agree on ownership without communicating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    /// `world + 1` range boundaries: rank `r` owns `offsets[r]..offsets[r+1]`.
    offsets: Vec<usize>,
}

impl ShardMap {
    /// Split `total` elements across `world` ranks: the first
    /// `total % world` shards get one extra element, exactly like the ring
    /// algorithm's chunking (non-dividing totals produce uneven — possibly
    /// empty — shards, never an error).
    pub fn new(total: usize, world: usize) -> Self {
        assert!(world >= 1, "shard map needs at least one rank");
        let mut offsets = Vec::with_capacity(world + 1);
        offsets.push(0);
        for r in even_ranges(total, world) {
            offsets.push(r.end);
        }
        ShardMap { offsets }
    }

    /// Number of ranks.
    pub fn world(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total elements covered.
    pub fn total(&self) -> usize {
        *self.offsets.last().expect("nonempty offsets")
    }

    /// The contiguous range rank `rank` owns (may be empty when
    /// `total < world`).
    pub fn owned(&self, rank: usize) -> Range<usize> {
        self.offsets[rank]..self.offsets[rank + 1]
    }

    /// Per-rank element counts over the whole vector — the `counts` argument
    /// for a fused `reduce_scatter` / `allgather_f32`.
    pub fn counts(&self) -> Vec<usize> {
        self.offsets.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Per-rank element counts *within* `range` — the counts for one
    /// gradient bucket's reduce-scatter. Each count is the length of the
    /// intersection of the rank's shard with the bucket, so the counts of
    /// any partition of `0..total` into buckets sum back to
    /// [`ShardMap::counts`], and the rank that owns a flat index globally
    /// owns it inside every bucket covering it.
    pub fn bucket_counts(&self, range: Range<usize>) -> Vec<usize> {
        self.offsets
            .windows(2)
            .map(|w| {
                let lo = w[0].clamp(range.start, range.end);
                let hi = w[1].clamp(range.start, range.end);
                hi - lo
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_tile_the_vector() {
        for (total, world) in [(12, 4), (13, 4), (3, 5), (0, 2), (7, 1)] {
            let sm = ShardMap::new(total, world);
            assert_eq!(sm.world(), world);
            assert_eq!(sm.total(), total);
            let mut off = 0;
            for r in 0..world {
                let owned = sm.owned(r);
                assert_eq!(owned.start, off, "total {total} world {world} rank {r}");
                off = owned.end;
            }
            assert_eq!(off, total);
            assert_eq!(sm.counts().iter().sum::<usize>(), total);
        }
    }

    #[test]
    fn uneven_totals_front_load_the_remainder() {
        let sm = ShardMap::new(10, 4);
        assert_eq!(sm.counts(), [3, 3, 2, 2]);
        assert_eq!(sm.owned(0), 0..3);
        assert_eq!(sm.owned(3), 8..10);
    }

    #[test]
    fn matches_the_ring_chunking() {
        // The whole bitwise argument rests on this: shard r IS ring chunk r.
        for (total, world) in [(103, 4), (64, 8), (9, 2)] {
            let sm = ShardMap::new(total, world);
            for (r, chunk) in even_ranges(total, world).iter().enumerate() {
                assert_eq!(sm.owned(r), chunk.clone());
            }
        }
    }

    #[test]
    fn bucket_counts_partition_the_global_counts() {
        let sm = ShardMap::new(100, 3);
        // Arbitrary bucket boundaries, including ones cutting through shards.
        let cuts = [0usize, 7, 34, 35, 80, 100];
        let mut summed = vec![0usize; 3];
        for w in cuts.windows(2) {
            let bc = sm.bucket_counts(w[0]..w[1]);
            assert_eq!(bc.iter().sum::<usize>(), w[1] - w[0]);
            for (s, c) in summed.iter_mut().zip(&bc) {
                *s += c;
            }
        }
        assert_eq!(summed, sm.counts());
    }

    #[test]
    fn bucket_counts_respect_global_ownership() {
        let sm = ShardMap::new(50, 4);
        // For every bucket and rank: the rank's in-bucket span is exactly
        // the intersection of its global shard with the bucket.
        for bucket in [0..50, 10..20, 12..13, 40..50, 5..5] {
            let bc = sm.bucket_counts(bucket.clone());
            let mut off = bucket.start;
            for (r, &count) in bc.iter().enumerate() {
                let owned = sm.owned(r);
                let lo = owned.start.clamp(bucket.start, bucket.end);
                let hi = owned.end.clamp(bucket.start, bucket.end);
                assert_eq!(count, hi - lo);
                assert_eq!(off, lo.min(off.max(lo)), "contiguous in rank order");
                off += count;
            }
            assert_eq!(off, bucket.end);
        }
    }
}
