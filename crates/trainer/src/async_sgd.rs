//! Asynchronous SGD — the paper's stated future work (§6: "we would like to
//! explore the use and impact of our optimizations for the case of
//! asynchronous SGD").
//!
//! Rank 0 is a parameter server (the MPI approach the paper's related-work
//! section describes for \[25\]); ranks 1..n are workers. A worker pulls the
//! current weights, computes a gradient on a DIMD-served batch, and pushes
//! it with the weight *version* it was computed from. The server applies
//! whichever gradient arrives first — workers never wait for each other —
//! and can damp stale gradients by `1/(1+staleness)` (the staleness-aware
//! rule of Zhang et al., the paper's reference \[10\]).

use dcnn_collectives::runtime::{Comm, Payload};
use dcnn_collectives::run_cluster;
use dcnn_dimd::{Dimd, SynthImageNet};
use dcnn_dpt::{DptExecutor, DptStrategy};
use dcnn_tensor::layers::{collect_params, set_grads, set_params, Module};
use dcnn_tensor::optim::{Sgd, SgdConfig};
use serde::Serialize;

const TAG_META: u32 = 0x0D00_0000;
const TAG_GRAD: u32 = 0x0D00_0001;
const TAG_PARAMS: u32 = 0x0D00_0002;
const TAG_VERSION: u32 = 0x0D00_0003;
const TAG_VAL: u32 = 0x0D00_0004;

/// Sentinel version telling a worker to stop.
const STOP: u64 = u64::MAX;

/// Asynchronous-training configuration.
#[derive(Clone)]
pub struct AsyncConfig {
    /// Worker ranks (total ranks = workers + 1 for the server).
    pub workers: usize,
    /// Simulated GPUs per worker.
    pub gpus_per_worker: usize,
    /// Batch per GPU.
    pub batch_per_gpu: usize,
    /// Gradient applications at the server.
    pub steps: usize,
    /// Learning rate (fixed; async runs are short here).
    pub lr: f32,
    /// Damp stale gradients by `1/(1+staleness)`.
    pub staleness_damping: bool,
    /// Input crop.
    pub crop: usize,
    /// DIMD codec quality.
    pub quality: u8,
    /// Seed.
    pub seed: u64,
    /// SGD hyper-parameters (momentum lives on the server).
    pub sgd: SgdConfig,
}

impl AsyncConfig {
    /// A small default: `workers` workers, one GPU each.
    pub fn new(workers: usize, steps: usize) -> Self {
        AsyncConfig {
            workers,
            gpus_per_worker: 1,
            batch_per_gpu: 4,
            steps,
            lr: 0.05,
            staleness_damping: true,
            crop: 16,
            quality: 70,
            seed: 0xA5F1C,
            sgd: SgdConfig::default(),
        }
    }
}

/// Outcome of an asynchronous run (from the server).
#[derive(Debug, Clone, Serialize)]
pub struct AsyncStats {
    /// Worker-reported losses in application order.
    pub losses: Vec<f64>,
    /// Staleness of each applied gradient.
    pub staleness: Vec<u64>,
    /// Final top-1 validation accuracy (server-side evaluation).
    pub val_acc: f64,
}

impl AsyncStats {
    /// Mean loss of the first `k` applications.
    pub fn early_loss(&self, k: usize) -> f64 {
        let k = k.min(self.losses.len()).max(1);
        self.losses[..k].iter().sum::<f64>() / k as f64
    }

    /// Mean loss of the last `k` applications.
    pub fn late_loss(&self, k: usize) -> f64 {
        let k = k.min(self.losses.len()).max(1);
        self.losses[self.losses.len() - k..].iter().sum::<f64>() / k as f64
    }

    /// Largest observed staleness.
    pub fn max_staleness(&self) -> u64 {
        self.staleness.iter().copied().max().unwrap_or(0)
    }
}

fn send_params(comm: &Comm, dst: usize, version: u64, params: &[f32]) {
    comm.send_bytes(dst, TAG_VERSION, version.to_le_bytes().to_vec());
    // Final weights ride along with STOP so workers can validate with them
    // (workers hold the trained BatchNorm running statistics, which the
    // server's master copy never sees — gradients don't carry them).
    comm.send_f32(dst, TAG_PARAMS, params);
}

fn server(comm: &Comm, cfg: &AsyncConfig, mut master: Box<dyn Module>) -> AsyncStats {
    let sgd = Sgd::new(cfg.sgd.clone());
    let mut version = 0u64;
    let params = collect_params(master.as_mut());
    for w in 1..comm.size() {
        send_params(comm, w, version, &params);
    }
    let mut losses = Vec::with_capacity(cfg.steps);
    let mut staleness = Vec::with_capacity(cfg.steps);
    let mut active = comm.size() - 1;
    while losses.len() < cfg.steps || active > 0 {
        let (src, meta) = comm.recv_any(TAG_META);
        let meta = meta.into_bytes();
        let grad_version = u64::from_le_bytes(meta[0..8].try_into().expect("8"));
        let loss = f64::from_le_bytes(meta[8..16].try_into().expect("8"));
        let grad = comm.recv_f32(src, TAG_GRAD);
        if losses.len() < cfg.steps {
            let stale = version - grad_version;
            let damp = if cfg.staleness_damping { 1.0 / (1.0 + stale as f32) } else { 1.0 };
            set_grads(master.as_mut(), &grad);
            sgd.step(master.as_mut(), cfg.lr * damp);
            version += 1;
            losses.push(loss);
            staleness.push(stale);
        }
        let params = collect_params(master.as_mut());
        if losses.len() < cfg.steps {
            send_params(comm, src, version, &params);
        } else {
            send_params(comm, src, STOP, &params);
            active -= 1;
        }
    }

    // Workers validate their shard of the val set with the final weights
    // (they own trained BN statistics) and report (correct, count).
    let mut correct = 0u64;
    let mut count = 0u64;
    for _ in 1..comm.size() {
        let (_, meta) = comm.recv_any(TAG_VAL);
        let meta = meta.into_bytes();
        correct += u64::from_le_bytes(meta[0..8].try_into().expect("8"));
        count += u64::from_le_bytes(meta[8..16].try_into().expect("8"));
    }
    AsyncStats { losses, staleness, val_acc: correct as f64 / count.max(1) as f64 }
}

fn worker(comm: &Comm, cfg: &AsyncConfig, ds: &SynthImageNet, factory: &(impl Fn() -> Box<dyn Module> + Sync)) {
    let me = comm.rank();
    let mut dimd = Dimd::load_partition(
        ds,
        me - 1,
        comm.size() - 1,
        cfg.quality,
        cfg.seed ^ (me as u64) << 24,
    );
    let mut exec = DptExecutor::new(cfg.gpus_per_worker, factory);
    let batch_node = cfg.batch_per_gpu * cfg.gpus_per_worker;
    loop {
        let vbytes = comm.recv_bytes(0, TAG_VERSION);
        let version = u64::from_le_bytes(vbytes.as_slice().try_into().expect("8"));
        let params = comm.recv_f32(0, TAG_PARAMS);
        exec.set_params_all(&params);
        if version == STOP {
            break;
        }
        let (x, labels) = dimd.random_batch(batch_node, cfg.crop);
        let out = exec.step(&x, &labels, DptStrategy::Optimized);
        let mut meta = Vec::with_capacity(16);
        meta.extend_from_slice(&version.to_le_bytes());
        meta.extend_from_slice(&out.loss.to_le_bytes());
        comm.send(0, TAG_META, Payload::bytes(meta));
        comm.send(0, TAG_GRAD, Payload::f32(out.grad));
    }

    // Validate a stride of the validation set with the final weights and
    // this worker's trained BN statistics.
    let crit = dcnn_tensor::loss::SoftmaxCrossEntropy;
    let workers = comm.size() - 1;
    let mut correct = 0u64;
    let mut count = 0u64;
    let my_indices: Vec<usize> = (0..ds.val_len()).filter(|i| i % workers == me - 1).collect();
    for chunk in my_indices.chunks(16) {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for &i in chunk {
            let img = ds.val_image(i).center_crop(cfg.crop);
            data.extend_from_slice(
                img.to_tensor(&dcnn_dimd::image::IMAGENET_MEAN, &dcnn_dimd::image::IMAGENET_STD)
                    .data(),
            );
            labels.push(ds.val_label(i));
        }
        let x = dcnn_tensor::Tensor::from_vec(data, &[chunk.len(), 3, cfg.crop, cfg.crop]);
        let logits = exec.eval_logits(&x);
        correct += crit.forward(&logits, &labels).correct as u64;
        count += chunk.len() as u64;
    }
    let mut meta = Vec::with_capacity(16);
    meta.extend_from_slice(&correct.to_le_bytes());
    meta.extend_from_slice(&count.to_le_bytes());
    comm.send(0, TAG_VAL, Payload::bytes(meta));
}

/// Run asynchronous training; returns the server's statistics.
pub fn train_async(
    cfg: &AsyncConfig,
    ds: &SynthImageNet,
    factory: impl Fn() -> Box<dyn Module> + Sync,
) -> AsyncStats {
    assert!(cfg.workers >= 1, "need at least one worker");
    let n = cfg.workers + 1;
    let mut results = run_cluster(n, |comm| {
        if comm.rank() == 0 {
            let mut master = factory();
            // Parameters must start identical everywhere; overwrite with the
            // canonical copy so momentum etc. start clean.
            let p = collect_params(master.as_mut());
            set_params(master.as_mut(), &p);
            Some(server(comm, cfg, master))
        } else {
            worker(comm, cfg, ds, &factory);
            None
        }
    });
    results.swap_remove(0).expect("server stats")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcnn_dimd::SynthConfig;
    use dcnn_models::resnet::ResNetConfig;

    fn tiny_factory() -> Box<dyn Module> {
        ResNetConfig {
            blocks: vec![1],
            base_width: 6,
            bottleneck: false,
            classes: 3,
            input: [3, 16, 16],
            imagenet_stem: false,
        }
        .build(31)
    }

    fn tiny_ds() -> SynthImageNet {
        let mut c = SynthConfig::tiny(3);
        c.train_per_class = 24;
        c.val_per_class = 8;
        c.base_hw = 16;
        c.noise = 10.0;
        SynthImageNet::new(c)
    }

    #[test]
    fn async_training_reduces_loss() {
        let ds = tiny_ds();
        let cfg = AsyncConfig::new(3, 120);
        let stats = train_async(&cfg, &ds, tiny_factory);
        assert_eq!(stats.losses.len(), 120);
        assert!(
            stats.late_loss(20) < stats.early_loss(20),
            "loss {} → {}",
            stats.early_loss(20),
            stats.late_loss(20)
        );
        assert!(stats.val_acc > 1.0 / 3.0, "val acc {}", stats.val_acc);
    }

    #[test]
    fn staleness_is_observed_with_multiple_workers() {
        let ds = tiny_ds();
        let cfg = AsyncConfig::new(4, 60);
        let stats = train_async(&cfg, &ds, tiny_factory);
        // With 4 concurrent workers some gradients must be stale.
        assert!(stats.max_staleness() >= 1, "staleness {:?}", stats.max_staleness());
        // Each worker has at most one gradient in flight, so *typical*
        // staleness is below the worker count (a slow worker can exceed it
        // while the others keep cycling, so the max is not bounded by it).
        let mean =
            stats.staleness.iter().sum::<u64>() as f64 / stats.staleness.len().max(1) as f64;
        assert!(mean < 2.0 * 4.0, "mean staleness {mean}");
    }

    #[test]
    fn single_worker_async_is_never_stale() {
        let ds = tiny_ds();
        let cfg = AsyncConfig::new(1, 30);
        let stats = train_async(&cfg, &ds, tiny_factory);
        assert_eq!(stats.max_staleness(), 0);
    }

    #[test]
    fn damping_does_not_break_convergence() {
        let ds = tiny_ds();
        for damping in [true, false] {
            let mut cfg = AsyncConfig::new(2, 60);
            cfg.staleness_damping = damping;
            let stats = train_async(&cfg, &ds, tiny_factory);
            assert!(stats.losses.iter().all(|l| l.is_finite()), "damping={damping}");
        }
    }
}
