//! End-to-end epoch-time model.
//!
//! One training iteration on the paper's system decomposes as
//!
//! ```text
//! t_iter = t_compute(batch/GPU)            # P100 roofline, GPUs parallel
//!        + t_dpt(variant)                  # data-parallel-table overheads
//!        + t_allreduce(algorithm, payload) # simulated fat-tree schedule
//! ```
//!
//! and the per-epoch data path adds either the DIMD costs (a periodic
//! alltoallv shuffle; decode is overlapped by the donkey threads) or the
//! stock path's non-overlapped file-server reads — the paper's observation
//! that "the Torch donkeys were unable to load the next samples of the
//! mini-batch before the GPUs finished" (§4.1) means the baseline's I/O sits
//! on the critical path, which is what Figures 10–11 measure.

use dcnn_collectives::{AllreduceAlgo, CostModel};
use dcnn_dimd::shuffle::shuffle_counts_matrix;
use dcnn_dimd::FileServer;
use dcnn_gpusim::NodeModel;
use dcnn_models::ModelCensus;
use dcnn_simnet::{FatTree, SimOptions};
use dcnn_dpt::{iter_overhead_secs, DptParams, DptVariant};

/// A dataset's externally visible numbers (we model ImageNet-1k/-22k by
/// their sizes; the synthetic data stands in for content, not volume).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Dataset name.
    pub name: String,
    /// Training images per epoch.
    pub images: usize,
    /// DIMD blob size in bytes (paper: 70 GB for 1k, 220 GB for 22k).
    pub blob_bytes: f64,
    /// Average *original* (pre-resize) record size — what the stock loader
    /// fetches from the file server.
    pub raw_record_bytes: f64,
}

impl Workload {
    /// ImageNet-1k: 1.28 M images, 70 GB blob, ~110 KB original JPEGs.
    pub fn imagenet_1k() -> Self {
        Workload {
            name: "imagenet-1k".into(),
            images: 1_281_167,
            blob_bytes: 70e9,
            raw_record_bytes: 110e3,
        }
    }

    /// ImageNet-22k: 7 M images, 220 GB blob.
    pub fn imagenet_22k() -> Self {
        Workload {
            name: "imagenet-22k".into(),
            images: 7_000_000,
            blob_bytes: 220e9,
            raw_record_bytes: 45e3,
        }
    }

    /// DIMD record size after the resize-to-256 build step.
    pub fn dimd_record_bytes(&self) -> f64 {
        self.blob_bytes / self.images as f64
    }
}

/// Which of the paper's three optimizations are active.
#[derive(Debug, Clone)]
pub struct OptimizationFlags {
    /// Distributed in-memory data (vs file-server loading).
    pub dimd: bool,
    /// Allreduce algorithm (the paper's default comparator is OpenMPI's).
    pub allreduce: AllreduceAlgo,
    /// Optimized data-parallel table (vs stock Torch).
    pub dpt_optimized: bool,
}

impl OptimizationFlags {
    /// The open-source baseline of Table 1.
    pub fn baseline() -> Self {
        OptimizationFlags {
            dimd: false,
            allreduce: AllreduceAlgo::RecursiveDoubling,
            dpt_optimized: false,
        }
    }

    /// The fully optimized configuration of Table 1.
    pub fn fully_optimized() -> Self {
        OptimizationFlags {
            dimd: true,
            allreduce: AllreduceAlgo::MultiColor(4),
            dpt_optimized: true,
        }
    }
}

/// The modelled cluster.
#[derive(Debug, Clone)]
pub struct ClusterSetup {
    /// Number of learners (nodes).
    pub nodes: usize,
    /// The node model (Minsky by default).
    pub node: NodeModel,
    /// Shared file server.
    pub fs: FileServer,
    /// DIMD shuffles per epoch (the paper shuffles "after every fixed number
    /// of training steps"; one shuffle per epoch is the natural period).
    pub shuffles_per_epoch: usize,
    /// Effective host memory-copy bandwidth for MPI pack/unpack staging of
    /// alltoallv payloads (pageable buffers in the Torch/MPI stack).
    pub host_copy_bw: f64,
}

impl ClusterSetup {
    /// The paper's cluster at a given node count.
    pub fn minsky(nodes: usize) -> Self {
        ClusterSetup {
            nodes,
            node: NodeModel::minsky(),
            fs: FileServer::paper_nfs(),
            shuffles_per_epoch: 1,
            host_copy_bw: 5.5e9,
        }
    }
}

/// Per-epoch time breakdown, seconds.
#[derive(Debug, Clone)]
pub struct EpochBreakdown {
    /// Iterations per epoch.
    pub iterations: usize,
    /// GPU compute (forward+backward), per epoch.
    pub compute: f64,
    /// Data-parallel-table overheads, per epoch.
    pub dpt: f64,
    /// Inter-node allreduce, per epoch.
    pub allreduce: f64,
    /// Non-overlapped data loading (zero under DIMD).
    pub data_io: f64,
    /// DIMD shuffle cost, per epoch.
    pub shuffle: f64,
}

impl EpochBreakdown {
    /// Total epoch seconds.
    pub fn total(&self) -> f64 {
        self.compute + self.dpt + self.allreduce + self.data_io + self.shuffle
    }
}

/// The composed model.
pub struct EpochTimeModel {
    /// Cluster being modelled.
    pub cluster: ClusterSetup,
    /// DPT cost constants.
    pub dpt_params: DptParams,
    /// Host-summation cost model for collective schedules.
    pub cost: CostModel,
}

impl EpochTimeModel {
    /// Model for the paper's cluster at `nodes` learners.
    pub fn minsky(nodes: usize) -> Self {
        EpochTimeModel {
            cluster: ClusterSetup::minsky(nodes),
            dpt_params: DptParams::default(),
            cost: CostModel::default(),
        }
    }

    /// Simulated wall time of one allreduce of `payload` bytes.
    pub fn allreduce_secs(&self, algo: &AllreduceAlgo, payload: f64) -> f64 {
        let n = self.cluster.nodes;
        if n <= 1 {
            return 0.0;
        }
        let topo = FatTree::minsky(n);
        algo.build()
            .schedule(n, payload, &self.cost)
            .simulate(&topo, &SimOptions::default())
            .makespan
    }

    /// Simulated wall time of one DIMD shuffle round with `groups` groups.
    pub fn shuffle_secs(&self, blob_bytes: f64, groups: usize) -> f64 {
        let n = self.cluster.nodes;
        if n <= 1 {
            return 0.0;
        }
        let partition = blob_bytes / n as f64;
        let counts = shuffle_counts_matrix(n, partition, groups);
        let topo = FatTree::minsky(n);
        let sched = dcnn_collectives::primitives::alltoallv_schedule(&counts);
        let net = sched.simulate(&topo, &SimOptions::default()).makespan;
        // Plus MPI pack/unpack staging of the partition through host memory
        // and the local permutation pass (Algorithm 2's final step).
        net + 2.0 * partition / self.cluster.host_copy_bw
            + partition / self.cluster.node.host_reduce_bw
    }

    /// Memory per node for an equally partitioned dataset (Figures 7–9).
    pub fn shuffle_memory_per_node(&self, blob_bytes: f64) -> f64 {
        blob_bytes / self.cluster.nodes as f64
    }

    /// The stock loader's non-overlapped per-epoch data time: every image is
    /// a random file-server read plus a full-size decode, spread over the
    /// node's donkey threads, and the prefetch pipeline cannot hide it.
    fn stock_data_secs(&self, workload: &Workload) -> f64 {
        let node = &self.cluster.node;
        let images_per_node = workload.images as f64 / self.cluster.nodes as f64;
        let per_image = self.cluster.fs.req_latency
            + workload.raw_record_bytes / self.cluster.fs.rand_stream_bw
            + workload.raw_record_bytes / node.decode_bw_per_core;
        // The shared server caps aggregate random throughput (wall-clock for
        // the whole cluster's epoch worth of reads).
        let cluster_streams = self.cluster.nodes * node.cores;
        let server_bw = self.cluster.fs.random_read_bw(workload.raw_record_bytes, cluster_streams);
        let server_secs = workload.images as f64 * workload.raw_record_bytes / server_bw;
        // Per-node donkey pipeline (request + transfer + decode per image).
        let donkey_secs = images_per_node * per_image / node.cores as f64;
        donkey_secs.max(server_secs)
    }

    /// Epoch breakdown for `census` at `batch_per_gpu`, with the payload
    /// optionally overridden (the paper quotes 93 MB for GoogLeNet-BN's
    /// Torch gradient buffer, §5.1).
    pub fn epoch(
        &self,
        census: &ModelCensus,
        workload: &Workload,
        batch_per_gpu: usize,
        flags: &OptimizationFlags,
        payload_override: Option<f64>,
    ) -> EpochBreakdown {
        let node = &self.cluster.node;
        let n = self.cluster.nodes;
        let batch_node = batch_per_gpu * node.gpus;
        let global_batch = batch_node * n;
        let iterations = workload.images.div_ceil(global_batch);
        let payload = payload_override.unwrap_or_else(|| census.payload_bytes());

        let compute_iter = node.device.train_step_secs(census, batch_per_gpu);
        let variant = if flags.dpt_optimized { DptVariant::Optimized } else { DptVariant::Baseline };
        let dpt_iter =
            iter_overhead_secs(census, batch_node, node, &self.dpt_params, variant).total();
        let allreduce_iter = self.allreduce_secs(&flags.allreduce, payload);

        let (data_io, shuffle) = if flags.dimd {
            // Decoding pre-resized records from memory is fully overlapped
            // by the donkeys; only the periodic shuffle is paid.
            (
                0.0,
                self.cluster.shuffles_per_epoch as f64
                    * self.shuffle_secs(workload.blob_bytes, 1),
            )
        } else {
            (self.stock_data_secs(workload), 0.0)
        };

        EpochBreakdown {
            iterations,
            compute: compute_iter * iterations as f64,
            dpt: dpt_iter * iterations as f64,
            allreduce: allreduce_iter * iterations as f64,
            data_io,
            shuffle,
        }
    }

    /// Extension (not in the paper's system): Goyal et al.'s layer-wise
    /// overlap of gradient communication with the backward pass — the
    /// technique the paper's related-work section describes (\[27\] \"pipelined
    /// the computation and communication of gradient of different layers").
    /// A layer's gradient can be allreduced as soon as backward produces it,
    /// so only the portion of the allreduce exceeding the remaining backward
    /// time is exposed — plus the final layer group's worth, which has no
    /// compute left to hide under.
    pub fn epoch_with_overlap(
        &self,
        census: &ModelCensus,
        workload: &Workload,
        batch_per_gpu: usize,
        flags: &OptimizationFlags,
        payload_override: Option<f64>,
    ) -> EpochBreakdown {
        let mut b = self.epoch(census, workload, batch_per_gpu, flags, payload_override);
        let bwd =
            self.cluster.node.device.backward_secs(census, batch_per_gpu) * b.iterations as f64;
        // The last-bucket tail: with ~32 gradient buckets, 1/32 of the
        // allreduce can never overlap.
        let tail = b.allreduce / 32.0;
        b.allreduce = (b.allreduce - bwd).max(0.0) + tail;
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcnn_models::{googlenet_bn, resnet50};

    const GOOGLENET_PAYLOAD: f64 = 93e6; // §5.1
    const RESNET_PAYLOAD: f64 = 102e6;

    #[test]
    fn figure6_multicolor_beats_others_and_scales() {
        // Epoch times for GoogLeNet-BN (payload 93 MB) at 8/16/32 learners
        // under the three allreduce algorithms.
        let census = googlenet_bn();
        let wl = Workload::imagenet_1k();
        let mut last = f64::INFINITY;
        for nodes in [8, 16, 32] {
            let m = EpochTimeModel::minsky(nodes);
            let mut flags = OptimizationFlags::fully_optimized();
            let t = |algo: AllreduceAlgo, flags: &mut OptimizationFlags| {
                flags.allreduce = algo;
                m.epoch(&census, &wl, 64, flags, Some(GOOGLENET_PAYLOAD)).total()
            };
            let mc = t(AllreduceAlgo::MultiColor(4), &mut flags);
            let ring = t(AllreduceAlgo::PipelinedRing, &mut flags);
            let rd = t(AllreduceAlgo::RecursiveDoubling, &mut flags);
            assert!(mc < ring && ring < rd, "{nodes} nodes: mc={mc:.0} ring={ring:.0} rd={rd:.0}");
            assert!(mc < last, "epoch time should fall with node count");
            last = mc;
        }
    }

    #[test]
    fn figure6_scaling_efficiency_band() {
        // §5.1: the multi-color algorithm gives ~90.5% scaling efficiency
        // from 8 to 32 learners.
        let census = googlenet_bn();
        let wl = Workload::imagenet_1k();
        let flags = OptimizationFlags::fully_optimized();
        let t8 = EpochTimeModel::minsky(8)
            .epoch(&census, &wl, 64, &flags, Some(GOOGLENET_PAYLOAD))
            .total();
        let t32 = EpochTimeModel::minsky(32)
            .epoch(&census, &wl, 64, &flags, Some(GOOGLENET_PAYLOAD))
            .total();
        let eff = t8 / (4.0 * t32);
        assert!((0.80..=1.0).contains(&eff), "scaling efficiency {eff:.3}");
    }

    #[test]
    fn figure10_dimd_gains_in_paper_band() {
        // §5.2: DIMD improves per-epoch time by ~33% for GoogLeNet-BN and
        // ~25% for ResNet-50 on ImageNet-1k (gain measured as the *baseline
        // over optimized* excess).
        let wl = Workload::imagenet_1k();
        for (census, payload, lo, hi) in [
            (googlenet_bn(), GOOGLENET_PAYLOAD, 0.20, 0.45),
            (resnet50(), RESNET_PAYLOAD, 0.15, 0.35),
        ] {
            for nodes in [8, 16, 32] {
                let m = EpochTimeModel::minsky(nodes);
                let mut with = OptimizationFlags::fully_optimized();
                with.allreduce = AllreduceAlgo::MultiColor(4);
                let mut without = with.clone();
                without.dimd = false;
                let t_with = m.epoch(&census, &wl, 64, &with, Some(payload)).total();
                let t_without = m.epoch(&census, &wl, 64, &without, Some(payload)).total();
                let gain = t_without / t_with - 1.0;
                assert!(
                    (lo..hi).contains(&gain),
                    "{} at {nodes} nodes: DIMD gain {gain:.3} (with={t_with:.0}s without={t_without:.0}s)",
                    census.name
                );
            }
        }
    }

    #[test]
    fn figure12_dpt_gains_in_paper_band() {
        // §5.3: the DPT optimizations improve per-epoch time by 15%
        // (GoogLeNet-BN) / 18% (ResNet-50).
        let wl = Workload::imagenet_1k();
        for (census, payload, lo, hi) in [
            (googlenet_bn(), GOOGLENET_PAYLOAD, 0.08, 0.30),
            (resnet50(), RESNET_PAYLOAD, 0.10, 0.30),
        ] {
            let m = EpochTimeModel::minsky(16);
            let with = OptimizationFlags::fully_optimized();
            let mut without = with.clone();
            without.dpt_optimized = false;
            let t_with = m.epoch(&census, &wl, 64, &with, Some(payload)).total();
            let t_without = m.epoch(&census, &wl, 64, &without, Some(payload)).total();
            let gain = t_without / t_with - 1.0;
            assert!((lo..hi).contains(&gain), "{}: DPT gain {gain:.3}", census.name);
        }
    }

    #[test]
    fn table1_total_improvement_bands() {
        // Table 1: fully-optimized vs open-source speedup 58–72% for
        // GoogLeNet-BN and 110–130% for ResNet-50 across 8/16/32 nodes.
        //
        // Known deviation (documented in EXPERIMENTS.md): our composed model
        // reproduces the GoogLeNet-BN band and the direction/magnitude class
        // for ResNet-50, but not ResNet's larger-than-GoogLeNet relative
        // gain — with overheads proportional to payload, activations and
        // batch bytes (all nearly equal between the two models), the
        // slower-per-iteration model mathematically shows the *smaller*
        // relative gain. The paper's +110–130% implies a ResNet-specific
        // baseline pathology its text does not identify.
        let wl = Workload::imagenet_1k();
        for (census, payload, lo, hi) in [
            (googlenet_bn(), GOOGLENET_PAYLOAD, 0.45, 0.95),
            (resnet50(), RESNET_PAYLOAD, 0.25, 1.60),
        ] {
            for nodes in [8, 16, 32] {
                let m = EpochTimeModel::minsky(nodes);
                let t_base = m
                    .epoch(&census, &wl, 64, &OptimizationFlags::baseline(), Some(payload))
                    .total();
                let t_opt = m
                    .epoch(&census, &wl, 64, &OptimizationFlags::fully_optimized(), Some(payload))
                    .total();
                let speedup = t_base / t_opt - 1.0;
                assert!(
                    (lo..hi).contains(&speedup),
                    "{} at {nodes}: total speedup {speedup:.2} (base {t_base:.0}s opt {t_opt:.0}s)",
                    census.name
                );
            }
        }
    }

    #[test]
    fn epoch_magnitudes_match_table1_scale() {
        // Table 1's optimized ResNet-50 at 8 nodes: 224 s/epoch. Ours should
        // land within a factor ~1.6 given constants were set a priori.
        let m = EpochTimeModel::minsky(8);
        let t = m
            .epoch(
                &resnet50(),
                &Workload::imagenet_1k(),
                64,
                &OptimizationFlags::fully_optimized(),
                Some(RESNET_PAYLOAD),
            )
            .total();
        assert!((140.0..=360.0).contains(&t), "ResNet-50 8-node epoch {t:.0}s (paper: 224s)");
    }

    #[test]
    fn shuffle_figures_shapes() {
        // Figures 7–8: shuffle time *decreases* with node count; memory per
        // node halves as nodes double. Figure 7: 22k shuffle at 32 nodes is
        // a few seconds.
        let wl22 = Workload::imagenet_22k();
        let mut last = f64::INFINITY;
        for nodes in [8, 16, 32] {
            let m = EpochTimeModel::minsky(nodes);
            let t = m.shuffle_secs(wl22.blob_bytes, 1);
            assert!(t < last, "shuffle should speed up with nodes: {t}");
            last = t;
            let mem = m.shuffle_memory_per_node(wl22.blob_bytes);
            assert!((mem - 220e9 / nodes as f64).abs() < 1.0);
        }
        let m32 = EpochTimeModel::minsky(32);
        let t32 = m32.shuffle_secs(wl22.blob_bytes, 1);
        assert!((1.0..=20.0).contains(&t32), "22k shuffle at 32 nodes: {t32:.1}s (paper: 4.2s)");
    }

    #[test]
    fn overlap_extension_hides_most_of_the_allreduce() {
        let census = googlenet_bn();
        let wl = Workload::imagenet_1k();
        let m = EpochTimeModel::minsky(32);
        let flags = OptimizationFlags::fully_optimized();
        let plain = m.epoch(&census, &wl, 64, &flags, Some(GOOGLENET_PAYLOAD));
        let over = m.epoch_with_overlap(&census, &wl, 64, &flags, Some(GOOGLENET_PAYLOAD));
        assert!(over.allreduce < plain.allreduce, "overlap should reduce exposure");
        assert!(over.allreduce > 0.0, "tail can never be hidden");
        assert!(over.total() < plain.total());
        // Compute itself is untouched.
        assert_eq!(over.compute, plain.compute);
    }

    #[test]
    fn figure9_group_shuffle_flat_on_symmetric_fabric() {
        // Figure 9: group-based shuffle shows "not much improvement" on a
        // symmetric cluster.
        let m = EpochTimeModel::minsky(32);
        let blob = Workload::imagenet_22k().blob_bytes;
        let t1 = m.shuffle_secs(blob, 1);
        for groups in [4, 8, 16] {
            let tg = m.shuffle_secs(blob, groups);
            let ratio = tg / t1;
            assert!(
                (0.5..=1.3).contains(&ratio),
                "groups={groups}: ratio {ratio:.2} should be near flat"
            );
        }
    }
}
