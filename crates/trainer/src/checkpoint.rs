//! Checkpointing: capture and restore the full training state (weights +
//! optimizer momentum), with a compact binary format. Multi-day ImageNet-22k
//! runs on the paper's cluster cannot afford to lose progress; this is the
//! mechanism a production deployment of the system needs.

use dcnn_tensor::layers::{
    collect_momentum, collect_params, set_momentum, set_params, Module,
};

const MAGIC: &[u8; 4] = b"DCKP";

/// Why a serialized checkpoint failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Shorter than the fixed 16-byte header.
    TooShort {
        /// Bytes actually present.
        len: usize,
    },
    /// The first four bytes are not the `DCKP` magic.
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// Header promised `expected` bytes of payload; the buffer has `len`.
    Truncated {
        /// Total length the header implies.
        expected: usize,
        /// Total length actually present.
        len: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::TooShort { len } => {
                write!(f, "checkpoint buffer too short: {len} bytes, header needs 16")
            }
            CheckpointError::BadMagic { found } => {
                write!(f, "bad checkpoint magic {found:02x?}, expected {MAGIC:02x?}")
            }
            CheckpointError::Truncated { expected, len } => {
                write!(f, "truncated checkpoint: header implies {expected} bytes, got {len}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A point-in-time training state.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Epochs completed when the checkpoint was taken.
    pub epoch: u32,
    /// Flattened model parameters.
    pub params: Vec<f32>,
    /// Flattened SGD momentum buffers.
    pub momentum: Vec<f32>,
}

impl Checkpoint {
    /// Capture the state of `m`.
    pub fn capture(m: &mut dyn Module, epoch: u32) -> Self {
        Checkpoint { epoch, params: collect_params(m), momentum: collect_momentum(m) }
    }

    /// Restore this state into `m` (which must have the same architecture).
    ///
    /// # Panics
    /// Panics if the parameter counts don't match.
    pub fn restore(&self, m: &mut dyn Module) {
        set_params(m, &self.params);
        set_momentum(m, &self.momentum);
    }

    /// Serialize to a byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(16 + 4 * (self.params.len() + self.momentum.len()));
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.params.len() as u64).to_le_bytes());
        for v in &self.params {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.momentum {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Parse a serialized checkpoint. A malformed buffer (a partial write,
    /// a wrong file, bit rot) comes back as a typed [`CheckpointError`]
    /// rather than a panic, so a resume path can fall back to earlier
    /// checkpoints.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < 16 {
            return Err(CheckpointError::TooShort { len: bytes.len() });
        }
        if &bytes[0..4] != MAGIC {
            return Err(CheckpointError::BadMagic {
                found: bytes[0..4].try_into().expect("4"),
            });
        }
        let epoch = u32::from_le_bytes(bytes[4..8].try_into().expect("4"));
        let n = u64::from_le_bytes(bytes[8..16].try_into().expect("8")) as usize;
        let expected = 16usize.saturating_add(n.saturating_mul(8));
        if bytes.len() != expected {
            return Err(CheckpointError::Truncated { expected, len: bytes.len() });
        }
        let read = |off: usize, count: usize| -> Vec<f32> {
            bytes[off..off + 4 * count]
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("4")))
                .collect()
        };
        Ok(Checkpoint { epoch, params: read(16, n), momentum: read(16 + 4 * n, n) })
    }

    /// Write the serialized checkpoint to `path` via a `.tmp` sibling and a
    /// rename, so a crash mid-write never leaves a half-written file under
    /// the final name (the abort path runs exactly when things are failing).
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        let tmp = path.with_extension("ckpt.tmp");
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)
    }

    /// Read and parse a checkpoint file; a malformed file surfaces as an
    /// `InvalidData` I/O error wrapping the [`CheckpointError`].
    pub fn read_from(path: &std::path::Path) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcnn_models::resnet::ResNetConfig;
    use dcnn_tensor::layers::zero_grads;
    use dcnn_tensor::loss::SoftmaxCrossEntropy;
    use dcnn_tensor::optim::{Sgd, SgdConfig};
    use dcnn_tensor::Tensor;

    fn model() -> Box<dyn Module> {
        ResNetConfig {
            blocks: vec![1],
            base_width: 4,
            bottleneck: false,
            classes: 3,
            input: [3, 8, 8],
            imagenet_stem: false,
        }
        .build(5)
    }

    fn train_steps(m: &mut dyn Module, steps: usize, seed: u64) -> f64 {
        let sgd = Sgd::new(SgdConfig::default());
        let crit = SoftmaxCrossEntropy;
        let mut last = 0.0;
        for s in 0..steps {
            let x = Tensor::randn(&[4, 3, 8, 8], 1.0, seed + s as u64);
            let labels = [0usize, 1, 2, 0];
            zero_grads(m);
            let y = m.forward(&x, true);
            let out = crit.forward(&y, &labels);
            let _ = m.backward(&out.grad);
            sgd.step(m, 0.05);
            last = out.loss;
        }
        last
    }

    #[test]
    fn roundtrip_bytes() {
        let mut m = model();
        train_steps(m.as_mut(), 3, 1);
        let ck = Checkpoint::capture(m.as_mut(), 7);
        let back = Checkpoint::from_bytes(&ck.to_bytes()).expect("roundtrip parses");
        assert_eq!(back, ck);
        assert_eq!(back.epoch, 7);
    }

    #[test]
    fn resume_is_bit_exact() {
        // Train 6 steps straight vs train 3, checkpoint, restore into a
        // fresh model, train 3 more: identical losses and weights (momentum
        // must be part of the state for this to hold).
        let mut a = model();
        let direct = {
            train_steps(a.as_mut(), 3, 9);
            train_steps(a.as_mut(), 3, 9 + 3)
        };
        let mut b = model();
        train_steps(b.as_mut(), 3, 9);
        let ck = Checkpoint::capture(b.as_mut(), 3);
        let mut c = model();
        ck.restore(c.as_mut());
        let resumed = train_steps(c.as_mut(), 3, 9 + 3);
        assert_eq!(direct, resumed, "resume diverged");
        assert_eq!(collect_params(a.as_mut()), collect_params(c.as_mut()));
    }

    #[test]
    fn momentum_matters() {
        // Restoring without momentum (params only) must diverge — guards
        // against silently dropping optimizer state.
        let mut a = model();
        train_steps(a.as_mut(), 3, 2);
        let ck = Checkpoint::capture(a.as_mut(), 3);
        let direct = train_steps(a.as_mut(), 2, 40);

        let mut b = model();
        set_params(b.as_mut(), &ck.params); // no momentum restore
        let partial = train_steps(b.as_mut(), 2, 40);
        assert_ne!(direct, partial, "momentum had no effect?");
    }

    #[test]
    fn too_short_buffer_is_typed_error() {
        assert_eq!(
            Checkpoint::from_bytes(&[0u8; 3]),
            Err(CheckpointError::TooShort { len: 3 })
        );
        assert_eq!(
            Checkpoint::from_bytes(&[]),
            Err(CheckpointError::TooShort { len: 0 })
        );
    }

    #[test]
    fn bad_magic_is_typed_error() {
        assert_eq!(
            Checkpoint::from_bytes(&[0u8; 20]),
            Err(CheckpointError::BadMagic { found: [0, 0, 0, 0] })
        );
    }

    #[test]
    fn truncated_buffer_is_typed_error() {
        let mut m = model();
        let full = Checkpoint::capture(m.as_mut(), 1).to_bytes();
        // Chop one byte off the end: header still promises the full size.
        let err = Checkpoint::from_bytes(&full[..full.len() - 1]).expect_err("truncated");
        assert_eq!(
            err,
            CheckpointError::Truncated { expected: full.len(), len: full.len() - 1 }
        );
        // A corrupt (absurd) count must error, not attempt a huge allocation.
        let mut bomb = full[..16].to_vec();
        bomb[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Checkpoint::from_bytes(&bomb),
            Err(CheckpointError::Truncated { .. })
        ));
    }

    #[test]
    fn file_roundtrip_and_garbage_file_is_invalid_data() {
        let dir = std::env::temp_dir().join(format!("dcnn-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("state.ckpt");
        let mut m = model();
        let ck = Checkpoint::capture(m.as_mut(), 2);
        ck.write_to(&path).expect("write");
        let back = Checkpoint::read_from(&path).expect("read");
        assert_eq!(back, ck);
        std::fs::write(&path, b"garbage").expect("overwrite");
        let err = Checkpoint::read_from(&path).expect_err("garbage must not parse");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn error_messages_name_the_cause() {
        let s = CheckpointError::Truncated { expected: 32, len: 20 }.to_string();
        assert!(s.contains("32") && s.contains("20"), "{s}");
        let s = CheckpointError::BadMagic { found: *b"NOPE" }.to_string();
        assert!(s.contains("magic"), "{s}");
    }
}
