//! Checkpointing: capture and restore the full training state (weights +
//! optimizer momentum), with a compact binary format. Multi-day ImageNet-22k
//! runs on the paper's cluster cannot afford to lose progress; this is the
//! mechanism a production deployment of the system needs.
//!
//! Two on-disk formats share the machinery:
//!
//! * `DCKP` — a full replica: every parameter and every momentum value.
//! * `DCKS` — one rank's shard under the sharded optimizer
//!   ([`crate::shard::ShardMap`]): that rank's owned slice of the parameters
//!   and of the momentum (its velocity buffer), plus the
//!   [`ShardMeta`] needed to reassemble. [`Checkpoint::merge`] stitches a
//!   full world of shards back into a `DCKP`-equivalent [`Checkpoint`] —
//!   byte-identical to what a replicated run would have captured at the same
//!   step, because the sharded trajectory is bitwise identical — and
//!   [`Checkpoint::to_shard`] slices a full checkpoint for a rank, so an
//!   aborted run restores into either strategy regardless of which one
//!   wrote the files.

use dcnn_tensor::layers::{
    collect_momentum, collect_params, set_momentum, set_params, Module,
};

use crate::shard::ShardMap;

const MAGIC: &[u8; 4] = b"DCKP";
const SHARD_MAGIC: &[u8; 4] = b"DCKS";

/// Why a serialized checkpoint failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Shorter than the fixed 16-byte header.
    TooShort {
        /// Bytes actually present.
        len: usize,
    },
    /// The first four bytes are not the `DCKP` magic.
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// Header promised `expected` bytes of payload; the buffer has `len`.
    Truncated {
        /// Total length the header implies.
        expected: usize,
        /// Total length actually present.
        len: usize,
    },
    /// A set of shard checkpoints cannot be merged into one full state.
    ShardMismatch {
        /// What disagreed (world size, epoch, offsets, …).
        why: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::TooShort { len } => {
                write!(f, "checkpoint buffer too short: {len} bytes, header needs 16")
            }
            CheckpointError::BadMagic { found } => {
                write!(f, "bad checkpoint magic {found:02x?}, expected {MAGIC:02x?}")
            }
            CheckpointError::Truncated { expected, len } => {
                write!(f, "truncated checkpoint: header implies {expected} bytes, got {len}")
            }
            CheckpointError::ShardMismatch { why } => {
                write!(f, "shard checkpoints do not merge: {why}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A point-in-time training state.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Epochs completed when the checkpoint was taken.
    pub epoch: u32,
    /// Flattened model parameters.
    pub params: Vec<f32>,
    /// Flattened SGD momentum buffers.
    pub momentum: Vec<f32>,
}

impl Checkpoint {
    /// Capture the state of `m`.
    pub fn capture(m: &mut dyn Module, epoch: u32) -> Self {
        Checkpoint { epoch, params: collect_params(m), momentum: collect_momentum(m) }
    }

    /// Restore this state into `m` (which must have the same architecture).
    ///
    /// # Panics
    /// Panics if the parameter counts don't match.
    pub fn restore(&self, m: &mut dyn Module) {
        set_params(m, &self.params);
        set_momentum(m, &self.momentum);
    }

    /// Serialize to a byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(16 + 4 * (self.params.len() + self.momentum.len()));
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.params.len() as u64).to_le_bytes());
        for v in &self.params {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.momentum {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Parse a serialized checkpoint. A malformed buffer (a partial write,
    /// a wrong file, bit rot) comes back as a typed [`CheckpointError`]
    /// rather than a panic, so a resume path can fall back to earlier
    /// checkpoints.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < 16 {
            return Err(CheckpointError::TooShort { len: bytes.len() });
        }
        if &bytes[0..4] != MAGIC {
            return Err(CheckpointError::BadMagic {
                found: bytes[0..4].try_into().expect("4"),
            });
        }
        let epoch = u32::from_le_bytes(bytes[4..8].try_into().expect("4"));
        let n = u64::from_le_bytes(bytes[8..16].try_into().expect("8")) as usize;
        let expected = 16usize.saturating_add(n.saturating_mul(8));
        if bytes.len() != expected {
            return Err(CheckpointError::Truncated { expected, len: bytes.len() });
        }
        let read = |off: usize, count: usize| -> Vec<f32> {
            bytes[off..off + 4 * count]
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("4")))
                .collect()
        };
        Ok(Checkpoint { epoch, params: read(16, n), momentum: read(16 + 4 * n, n) })
    }

    /// Write the serialized checkpoint to `path` via a `.tmp` sibling and a
    /// rename, so a crash mid-write never leaves a half-written file under
    /// the final name (the abort path runs exactly when things are failing).
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        let tmp = path.with_extension("ckpt.tmp");
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)
    }

    /// Read and parse a checkpoint file; a malformed file surfaces as an
    /// `InvalidData` I/O error wrapping the [`CheckpointError`].
    pub fn read_from(path: &std::path::Path) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Slice this full checkpoint down to `rank`'s shard under a
    /// `world`-rank [`ShardMap`] — the bridge from a replicated run into a
    /// sharded one (each rank keeps only its owned momentum slice as its
    /// velocity buffer).
    pub fn to_shard(&self, rank: usize, world: usize) -> ShardCheckpoint {
        let sm = ShardMap::new(self.params.len(), world);
        let owned = sm.owned(rank);
        ShardCheckpoint {
            epoch: self.epoch,
            meta: ShardMeta {
                rank: rank as u32,
                world: world as u32,
                offset: owned.start as u64,
                total: self.params.len() as u64,
            },
            params: self.params[owned.clone()].to_vec(),
            momentum: self.momentum[owned].to_vec(),
        }
    }

    /// Reassemble one full checkpoint from a complete world of shard
    /// checkpoints (any order). The result is byte-identical to the `DCKP`
    /// checkpoint a replicated run would have written at the same step,
    /// since shard boundaries follow the canonical [`ShardMap`] and the
    /// sharded trajectory matches the replicated one bitwise.
    pub fn merge(shards: &[ShardCheckpoint]) -> Result<Self, CheckpointError> {
        let mismatch = |why: String| CheckpointError::ShardMismatch { why };
        let first = shards.first().ok_or_else(|| mismatch("no shards given".into()))?;
        let world = first.meta.world as usize;
        let total = first.meta.total as usize;
        if shards.len() != world {
            return Err(mismatch(format!("{} shard(s) for world size {world}", shards.len())));
        }
        let sm = ShardMap::new(total, world);
        let mut params = vec![0.0f32; total];
        let mut momentum = vec![0.0f32; total];
        let mut seen = vec![false; world];
        for s in shards {
            let r = s.meta.rank as usize;
            if s.meta.world as usize != world || s.meta.total as usize != total {
                return Err(mismatch(format!(
                    "rank {r} captured world {} / total {}, expected {world} / {total}",
                    s.meta.world, s.meta.total
                )));
            }
            if s.epoch != first.epoch {
                return Err(mismatch(format!(
                    "rank {r} is at epoch {}, rank {} at {}",
                    s.epoch, first.meta.rank, first.epoch
                )));
            }
            if r >= world || std::mem::replace(&mut seen[r], true) {
                return Err(mismatch(format!("rank {r} out of range or duplicated")));
            }
            let owned = sm.owned(r);
            if s.meta.offset as usize != owned.start || s.params.len() != owned.len() {
                return Err(mismatch(format!(
                    "rank {r} holds [{}, +{}), canonical shard is [{}, +{})",
                    s.meta.offset,
                    s.params.len(),
                    owned.start,
                    owned.len()
                )));
            }
            params[owned.clone()].copy_from_slice(&s.params);
            momentum[owned].copy_from_slice(&s.momentum);
        }
        Ok(Checkpoint { epoch: first.epoch, params, momentum })
    }
}

/// Which slice of the flattened parameter vector a [`ShardCheckpoint`]
/// holds, and for which cluster shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMeta {
    /// Owning rank.
    pub rank: u32,
    /// World size the shard map was built for.
    pub world: u32,
    /// Start of the owned range within the flattened vector.
    pub offset: u64,
    /// Full flattened parameter count (all shards together).
    pub total: u64,
}

/// One rank's slice of the training state under the sharded optimizer:
/// owned parameters and owned momentum (the velocity buffer), `DCKS` on
/// disk. See [`Checkpoint::merge`] / [`Checkpoint::to_shard`] for the
/// conversions to and from the full `DCKP` state.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCheckpoint {
    /// Epochs completed when the shard was taken.
    pub epoch: u32,
    /// Shard placement metadata.
    pub meta: ShardMeta,
    /// Owned slice of the flattened parameters.
    pub params: Vec<f32>,
    /// Owned slice of the momentum (shard-local velocity).
    pub momentum: Vec<f32>,
}

impl ShardCheckpoint {
    /// Serialize to a byte buffer (`DCKS` header + owned params + owned
    /// momentum).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(40 + 4 * (self.params.len() + self.momentum.len()));
        out.extend_from_slice(SHARD_MAGIC);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.meta.rank.to_le_bytes());
        out.extend_from_slice(&self.meta.world.to_le_bytes());
        out.extend_from_slice(&self.meta.offset.to_le_bytes());
        out.extend_from_slice(&self.meta.total.to_le_bytes());
        out.extend_from_slice(&(self.params.len() as u64).to_le_bytes());
        for v in &self.params {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.momentum {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Parse a serialized shard checkpoint; malformed buffers come back as
    /// the same typed [`CheckpointError`]s the full format uses.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < 40 {
            return Err(CheckpointError::TooShort { len: bytes.len() });
        }
        if &bytes[0..4] != SHARD_MAGIC {
            return Err(CheckpointError::BadMagic {
                found: bytes[0..4].try_into().expect("4"),
            });
        }
        let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4"));
        let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8"));
        let n = u64_at(32) as usize;
        let expected = 40usize.saturating_add(n.saturating_mul(8));
        if bytes.len() != expected {
            return Err(CheckpointError::Truncated { expected, len: bytes.len() });
        }
        let read = |off: usize, count: usize| -> Vec<f32> {
            bytes[off..off + 4 * count]
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("4")))
                .collect()
        };
        Ok(ShardCheckpoint {
            epoch: u32_at(4),
            meta: ShardMeta {
                rank: u32_at(8),
                world: u32_at(12),
                offset: u64_at(16),
                total: u64_at(24),
            },
            params: read(40, n),
            momentum: read(40 + 4 * n, n),
        })
    }

    /// Write the serialized shard to `path` via a `.tmp` sibling and a
    /// rename, like [`Checkpoint::write_to`].
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        let tmp = path.with_extension("ckpt.tmp");
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)
    }

    /// Read and parse a shard checkpoint file; malformed files surface as
    /// `InvalidData` I/O errors wrapping the [`CheckpointError`].
    pub fn read_from(path: &std::path::Path) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcnn_models::resnet::ResNetConfig;
    use dcnn_tensor::layers::zero_grads;
    use dcnn_tensor::loss::SoftmaxCrossEntropy;
    use dcnn_tensor::optim::{Sgd, SgdConfig};
    use dcnn_tensor::Tensor;

    fn model() -> Box<dyn Module> {
        ResNetConfig {
            blocks: vec![1],
            base_width: 4,
            bottleneck: false,
            classes: 3,
            input: [3, 8, 8],
            imagenet_stem: false,
        }
        .build(5)
    }

    fn train_steps(m: &mut dyn Module, steps: usize, seed: u64) -> f64 {
        let sgd = Sgd::new(SgdConfig::default());
        let crit = SoftmaxCrossEntropy;
        let mut last = 0.0;
        for s in 0..steps {
            let x = Tensor::randn(&[4, 3, 8, 8], 1.0, seed + s as u64);
            let labels = [0usize, 1, 2, 0];
            zero_grads(m);
            let y = m.forward(&x, true);
            let out = crit.forward(&y, &labels);
            let _ = m.backward(&out.grad);
            sgd.step(m, 0.05);
            last = out.loss;
        }
        last
    }

    #[test]
    fn roundtrip_bytes() {
        let mut m = model();
        train_steps(m.as_mut(), 3, 1);
        let ck = Checkpoint::capture(m.as_mut(), 7);
        let back = Checkpoint::from_bytes(&ck.to_bytes()).expect("roundtrip parses");
        assert_eq!(back, ck);
        assert_eq!(back.epoch, 7);
    }

    #[test]
    fn resume_is_bit_exact() {
        // Train 6 steps straight vs train 3, checkpoint, restore into a
        // fresh model, train 3 more: identical losses and weights (momentum
        // must be part of the state for this to hold).
        let mut a = model();
        let direct = {
            train_steps(a.as_mut(), 3, 9);
            train_steps(a.as_mut(), 3, 9 + 3)
        };
        let mut b = model();
        train_steps(b.as_mut(), 3, 9);
        let ck = Checkpoint::capture(b.as_mut(), 3);
        let mut c = model();
        ck.restore(c.as_mut());
        let resumed = train_steps(c.as_mut(), 3, 9 + 3);
        assert_eq!(direct, resumed, "resume diverged");
        assert_eq!(collect_params(a.as_mut()), collect_params(c.as_mut()));
    }

    #[test]
    fn momentum_matters() {
        // Restoring without momentum (params only) must diverge — guards
        // against silently dropping optimizer state.
        let mut a = model();
        train_steps(a.as_mut(), 3, 2);
        let ck = Checkpoint::capture(a.as_mut(), 3);
        let direct = train_steps(a.as_mut(), 2, 40);

        let mut b = model();
        set_params(b.as_mut(), &ck.params); // no momentum restore
        let partial = train_steps(b.as_mut(), 2, 40);
        assert_ne!(direct, partial, "momentum had no effect?");
    }

    #[test]
    fn too_short_buffer_is_typed_error() {
        assert_eq!(
            Checkpoint::from_bytes(&[0u8; 3]),
            Err(CheckpointError::TooShort { len: 3 })
        );
        assert_eq!(
            Checkpoint::from_bytes(&[]),
            Err(CheckpointError::TooShort { len: 0 })
        );
    }

    #[test]
    fn bad_magic_is_typed_error() {
        assert_eq!(
            Checkpoint::from_bytes(&[0u8; 20]),
            Err(CheckpointError::BadMagic { found: [0, 0, 0, 0] })
        );
    }

    #[test]
    fn truncated_buffer_is_typed_error() {
        let mut m = model();
        let full = Checkpoint::capture(m.as_mut(), 1).to_bytes();
        // Chop one byte off the end: header still promises the full size.
        let err = Checkpoint::from_bytes(&full[..full.len() - 1]).expect_err("truncated");
        assert_eq!(
            err,
            CheckpointError::Truncated { expected: full.len(), len: full.len() - 1 }
        );
        // A corrupt (absurd) count must error, not attempt a huge allocation.
        let mut bomb = full[..16].to_vec();
        bomb[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Checkpoint::from_bytes(&bomb),
            Err(CheckpointError::Truncated { .. })
        ));
    }

    #[test]
    fn file_roundtrip_and_garbage_file_is_invalid_data() {
        let dir = std::env::temp_dir().join(format!("dcnn-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("state.ckpt");
        let mut m = model();
        let ck = Checkpoint::capture(m.as_mut(), 2);
        ck.write_to(&path).expect("write");
        let back = Checkpoint::read_from(&path).expect("read");
        assert_eq!(back, ck);
        std::fs::write(&path, b"garbage").expect("overwrite");
        let err = Checkpoint::read_from(&path).expect_err("garbage must not parse");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn error_messages_name_the_cause() {
        let s = CheckpointError::Truncated { expected: 32, len: 20 }.to_string();
        assert!(s.contains("32") && s.contains("20"), "{s}");
        let s = CheckpointError::BadMagic { found: *b"NOPE" }.to_string();
        assert!(s.contains("magic"), "{s}");
        let s = CheckpointError::ShardMismatch { why: "epoch skew".into() }.to_string();
        assert!(s.contains("epoch skew"), "{s}");
    }

    #[test]
    fn shard_roundtrip_bytes_and_file() {
        let mut m = model();
        train_steps(m.as_mut(), 2, 6);
        let shard = Checkpoint::capture(m.as_mut(), 4).to_shard(1, 3);
        let back = ShardCheckpoint::from_bytes(&shard.to_bytes()).expect("roundtrip");
        assert_eq!(back, shard);

        let dir = std::env::temp_dir().join(format!("dcnn-shard-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("shard.ckpt");
        shard.write_to(&path).expect("write");
        assert_eq!(ShardCheckpoint::read_from(&path).expect("read"), shard);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn to_shard_then_merge_is_byte_identity() {
        // Slicing a full checkpoint into a world of shards and merging them
        // back must reproduce the original serialization exactly — the
        // property the sharded-run checkpoint path rests on. Uneven world
        // sizes exercise the remainder-carrying shard boundaries.
        let mut m = model();
        train_steps(m.as_mut(), 3, 8);
        let full = Checkpoint::capture(m.as_mut(), 11);
        for world in [1usize, 2, 3, 5] {
            let shards: Vec<ShardCheckpoint> =
                (0..world).rev().map(|r| full.to_shard(r, world)).collect();
            let merged = Checkpoint::merge(&shards).expect("complete world merges");
            assert_eq!(merged.to_bytes(), full.to_bytes(), "world {world}");
        }
    }

    #[test]
    fn merge_rejects_inconsistent_shards() {
        let mut m = model();
        let full = Checkpoint::capture(m.as_mut(), 2);
        assert!(matches!(
            Checkpoint::merge(&[]),
            Err(CheckpointError::ShardMismatch { .. })
        ));
        // Missing a rank.
        let partial = [full.to_shard(0, 3), full.to_shard(1, 3)];
        assert!(matches!(
            Checkpoint::merge(&partial),
            Err(CheckpointError::ShardMismatch { .. })
        ));
        // Duplicate rank.
        let dup = [full.to_shard(0, 2), full.to_shard(0, 2)];
        assert!(matches!(
            Checkpoint::merge(&dup),
            Err(CheckpointError::ShardMismatch { .. })
        ));
        // Epoch skew.
        let mut skew = [full.to_shard(0, 2), full.to_shard(1, 2)];
        skew[1].epoch = 3;
        let err = Checkpoint::merge(&skew).expect_err("skewed epochs");
        assert!(err.to_string().contains("epoch"), "{err}");
    }

    #[test]
    fn sharded_world_checkpoints_merge_and_cross_restore_bitwise() {
        // A miniature sharded "cluster" without a communicator: every rank
        // holds a full replica (identical batches stand in for the
        // allreduce), steps only its owned range with a shard velocity, and
        // "allgathers" by splicing owned params together. Against it, one
        // replicated model takes the same batches. Verifies the whole
        // satellite-(d) matrix: shard checkpoints merge byte-identical to
        // the replicated checkpoint, and restore crosses strategies in both
        // directions without losing a bit.
        use crate::shard::ShardMap;
        use dcnn_tensor::layers::release_momentum;

        let world = 3usize;
        let lr = 0.05f32;
        let sgd = Sgd::new(SgdConfig::default());
        let crit = SoftmaxCrossEntropy;
        let backward = |m: &mut dyn Module, s: u64| {
            let x = Tensor::randn(&[4, 3, 8, 8], 1.0, s);
            let labels = [0usize, 1, 2, 0];
            zero_grads(m);
            let y = m.forward(&x, true);
            let out = crit.forward(&y, &labels);
            let _ = m.backward(&out.grad);
        };

        let mut rep = model();
        let total = collect_params(rep.as_mut()).len();
        let sm = ShardMap::new(total, world);
        let mut ranks: Vec<Box<dyn Module>> = (0..world).map(|_| model()).collect();
        let mut vel: Vec<Vec<f32>> =
            (0..world).map(|r| vec![0.0f32; sm.owned(r).len()]).collect();
        for m in &mut ranks {
            release_momentum(m.as_mut());
        }
        let sharded_step = |ranks: &mut [Box<dyn Module>], vel: &mut [Vec<f32>], s: u64| {
            let mut gathered = vec![0.0f32; total];
            for (r, m) in ranks.iter_mut().enumerate() {
                backward(m.as_mut(), s);
                sgd.step_range(m.as_mut(), lr, sm.owned(r), &mut vel[r]);
                let p = collect_params(m.as_mut());
                gathered[sm.owned(r)].copy_from_slice(&p[sm.owned(r)]);
            }
            for m in ranks.iter_mut() {
                set_params(m.as_mut(), &gathered);
            }
        };

        for s in 0..3 {
            backward(rep.as_mut(), s);
            sgd.step(rep.as_mut(), lr);
            sharded_step(&mut ranks, &mut vel, s);
        }

        // (1) Shards merge byte-identical to the replicated checkpoint.
        let shards: Vec<ShardCheckpoint> = (0..world)
            .map(|r| {
                let p = collect_params(ranks[r].as_mut());
                ShardCheckpoint {
                    epoch: 5,
                    meta: ShardMeta {
                        rank: r as u32,
                        world: world as u32,
                        offset: sm.owned(r).start as u64,
                        total: total as u64,
                    },
                    params: p[sm.owned(r)].to_vec(),
                    momentum: vel[r].clone(),
                }
            })
            .collect();
        let merged = Checkpoint::merge(&shards).expect("complete world merges");
        let full = Checkpoint::capture(rep.as_mut(), 5);
        assert_eq!(merged.to_bytes(), full.to_bytes(), "merge must be byte-identical");

        // (2) Sharded → replicated: the merged state resumes a replicated
        // run that tracks the original bitwise.
        let mut resumed = model();
        merged.restore(resumed.as_mut());
        for s in 10..12 {
            backward(rep.as_mut(), s);
            sgd.step(rep.as_mut(), lr);
            backward(resumed.as_mut(), s);
            sgd.step(resumed.as_mut(), lr);
        }
        assert_eq!(
            collect_params(rep.as_mut()),
            collect_params(resumed.as_mut()),
            "sharded→replicated restore diverged"
        );

        // (3) Replicated → sharded: slicing the full checkpoint seeds a
        // sharded world that also tracks the replicated run bitwise.
        let mut ranks2: Vec<Box<dyn Module>> = (0..world).map(|_| model()).collect();
        let mut vel2: Vec<Vec<f32>> = Vec::new();
        for (r, m) in ranks2.iter_mut().enumerate() {
            let shard = full.to_shard(r, world);
            set_params(m.as_mut(), &full.params);
            release_momentum(m.as_mut());
            vel2.push(shard.momentum);
        }
        for s in 10..12 {
            sharded_step(&mut ranks2, &mut vel2, s);
        }
        assert_eq!(
            collect_params(ranks2[0].as_mut()),
            collect_params(rep.as_mut()),
            "replicated→sharded restore diverged"
        );
    }

    #[test]
    fn formats_reject_each_others_magic() {
        let mut m = model();
        let full = Checkpoint::capture(m.as_mut(), 1);
        let shard_bytes = full.to_shard(0, 2).to_bytes();
        assert_eq!(
            Checkpoint::from_bytes(&shard_bytes),
            Err(CheckpointError::BadMagic { found: *b"DCKS" })
        );
        assert_eq!(
            ShardCheckpoint::from_bytes(&full.to_bytes()),
            Err(CheckpointError::BadMagic { found: *b"DCKP" })
        );
    }
}
