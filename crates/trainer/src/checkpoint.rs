//! Checkpointing: capture and restore the full training state (weights +
//! optimizer momentum), with a compact binary format. Multi-day ImageNet-22k
//! runs on the paper's cluster cannot afford to lose progress; this is the
//! mechanism a production deployment of the system needs.

use dcnn_tensor::layers::{
    collect_momentum, collect_params, set_momentum, set_params, Module,
};

const MAGIC: &[u8; 4] = b"DCKP";

/// A point-in-time training state.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Epochs completed when the checkpoint was taken.
    pub epoch: u32,
    /// Flattened model parameters.
    pub params: Vec<f32>,
    /// Flattened SGD momentum buffers.
    pub momentum: Vec<f32>,
}

impl Checkpoint {
    /// Capture the state of `m`.
    pub fn capture(m: &mut dyn Module, epoch: u32) -> Self {
        Checkpoint { epoch, params: collect_params(m), momentum: collect_momentum(m) }
    }

    /// Restore this state into `m` (which must have the same architecture).
    ///
    /// # Panics
    /// Panics if the parameter counts don't match.
    pub fn restore(&self, m: &mut dyn Module) {
        set_params(m, &self.params);
        set_momentum(m, &self.momentum);
    }

    /// Serialize to a byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(16 + 4 * (self.params.len() + self.momentum.len()));
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.params.len() as u64).to_le_bytes());
        for v in &self.params {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.momentum {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Parse a serialized checkpoint.
    ///
    /// # Panics
    /// Panics on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert!(bytes.len() >= 16 && &bytes[0..4] == MAGIC, "bad checkpoint magic");
        let epoch = u32::from_le_bytes(bytes[4..8].try_into().expect("4"));
        let n = u64::from_le_bytes(bytes[8..16].try_into().expect("8")) as usize;
        assert_eq!(bytes.len(), 16 + 8 * n, "truncated checkpoint");
        let read = |off: usize, count: usize| -> Vec<f32> {
            bytes[off..off + 4 * count]
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("4")))
                .collect()
        };
        Checkpoint { epoch, params: read(16, n), momentum: read(16 + 4 * n, n) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcnn_models::resnet::ResNetConfig;
    use dcnn_tensor::layers::zero_grads;
    use dcnn_tensor::loss::SoftmaxCrossEntropy;
    use dcnn_tensor::optim::{Sgd, SgdConfig};
    use dcnn_tensor::Tensor;

    fn model() -> Box<dyn Module> {
        ResNetConfig {
            blocks: vec![1],
            base_width: 4,
            bottleneck: false,
            classes: 3,
            input: [3, 8, 8],
            imagenet_stem: false,
        }
        .build(5)
    }

    fn train_steps(m: &mut dyn Module, steps: usize, seed: u64) -> f64 {
        let sgd = Sgd::new(SgdConfig::default());
        let crit = SoftmaxCrossEntropy;
        let mut last = 0.0;
        for s in 0..steps {
            let x = Tensor::randn(&[4, 3, 8, 8], 1.0, seed + s as u64);
            let labels = [0usize, 1, 2, 0];
            zero_grads(m);
            let y = m.forward(&x, true);
            let out = crit.forward(&y, &labels);
            let _ = m.backward(&out.grad);
            sgd.step(m, 0.05);
            last = out.loss;
        }
        last
    }

    #[test]
    fn roundtrip_bytes() {
        let mut m = model();
        train_steps(m.as_mut(), 3, 1);
        let ck = Checkpoint::capture(m.as_mut(), 7);
        let back = Checkpoint::from_bytes(&ck.to_bytes());
        assert_eq!(back, ck);
        assert_eq!(back.epoch, 7);
    }

    #[test]
    fn resume_is_bit_exact() {
        // Train 6 steps straight vs train 3, checkpoint, restore into a
        // fresh model, train 3 more: identical losses and weights (momentum
        // must be part of the state for this to hold).
        let mut a = model();
        let direct = {
            train_steps(a.as_mut(), 3, 9);
            train_steps(a.as_mut(), 3, 9 + 3)
        };
        let mut b = model();
        train_steps(b.as_mut(), 3, 9);
        let ck = Checkpoint::capture(b.as_mut(), 3);
        let mut c = model();
        ck.restore(c.as_mut());
        let resumed = train_steps(c.as_mut(), 3, 9 + 3);
        assert_eq!(direct, resumed, "resume diverged");
        assert_eq!(collect_params(a.as_mut()), collect_params(c.as_mut()));
    }

    #[test]
    fn momentum_matters() {
        // Restoring without momentum (params only) must diverge — guards
        // against silently dropping optimizer state.
        let mut a = model();
        train_steps(a.as_mut(), 3, 2);
        let ck = Checkpoint::capture(a.as_mut(), 3);
        let direct = train_steps(a.as_mut(), 2, 40);

        let mut b = model();
        set_params(b.as_mut(), &ck.params); // no momentum restore
        let partial = train_steps(b.as_mut(), 2, 40);
        assert_ne!(direct, partial, "momentum had no effect?");
    }

    #[test]
    #[should_panic]
    fn corrupt_checkpoint_panics() {
        let _ = Checkpoint::from_bytes(&[0u8; 20]);
    }
}
