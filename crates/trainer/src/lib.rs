#![warn(missing_docs)]

//! # dcnn-trainer — data-parallel distributed synchronous SGD
//!
//! The paper's Algorithm 1, twice:
//!
//! * [`distributed`] — **for real**: N learner ranks on the threaded MPI
//!   runtime, each driving m GPU-worker replicas through a data-parallel
//!   table, sampling batches from DIMD partitions, summing gradients
//!   intra-node, allreducing across nodes with a selectable algorithm,
//!   applying the paper's warmup + step-decay LR schedule, and reporting
//!   per-epoch loss and top-1 validation accuracy. This is what produces
//!   the accuracy/error curves (Figures 13–16) at laptop scale.
//! * [`epoch_model`] — **in virtual time**: the end-to-end epoch-time model
//!   that composes the P100 roofline (`dcnn-gpusim`), the data-parallel
//!   table overheads (`dcnn-dpt`), the allreduce schedules on the simulated
//!   fat-tree (`dcnn-collectives` + `dcnn-simnet`) and the file-server /
//!   DIMD data path (`dcnn-dimd`) into the epoch seconds the paper plots in
//!   Figures 6 and 10–12 and tabulates in Tables 1–2.

pub mod async_sgd;
pub mod checkpoint;
pub mod distributed;
pub mod epoch_model;
pub mod grad_sync;
pub mod metrics;
pub mod shard;

pub use async_sgd::{train_async, AsyncConfig, AsyncStats};
pub use checkpoint::{Checkpoint, CheckpointError, ShardCheckpoint, ShardMeta};
pub use distributed::{train_distributed, train_on_comm, EpochStats, TrainConfig};
pub use grad_sync::{plan_buckets, Bucket, GradStream, GradSync};
pub use epoch_model::{ClusterSetup, EpochBreakdown, EpochTimeModel, OptimizationFlags, Workload};
pub use shard::ShardMap;
