//! Degradation-injection tests of the multi-color design claim: because the
//! k colors use disjoint interior nodes, slowing the links of *one* color's
//! interior hurts only that color's share of the payload, while a
//! single-tree reduction through the same nodes collapses entirely.

use dcnn_collectives::{Allreduce, ColorTree, CostModel, MultiColor, RecursiveDoubling};
use dcnn_simnet::{FatTree, SimOptions};

fn makespan(algo: &dyn Allreduce, topo: &FatTree, n: usize, bytes: f64) -> f64 {
    algo.schedule(n, bytes, &CostModel::default())
        .simulate(topo, &SimOptions::default())
        .makespan
}

/// A *negative finding* worth pinning down: one might expect the disjoint
/// interiors to make the multi-color allreduce resilient to a slow node —
/// only one color's tree is rooted there. It is not: an allreduce needs
/// every rank's *contribution*, and a rank sends leaf contributions for
/// every color through its own NIC, so a slow NIC gates all algorithms
/// roughly in proportion to the slowdown. The colors isolate *summation
/// hot-spotting* (compute and fan-in), not NIC bandwidth faults.
#[test]
fn slow_nic_gates_every_algorithm() {
    let n = 16;
    let bytes = 64e6;
    let healthy = FatTree::minsky(n);
    let factor = 0.25;
    for algo in [
        &MultiColor::new(4) as &dyn Allreduce,
        &MultiColor::new(1) as &dyn Allreduce,
        &RecursiveDoubling as &dyn Allreduce,
    ] {
        let t0 = makespan(algo, &healthy, n, bytes);
        // Degrade the color-0 root's NIC (an interior node for exactly one
        // color, a leaf for the rest).
        let mut degraded = FatTree::minsky(n);
        degraded.degrade_node(ColorTree::build(n, 4, 0).root, factor);
        let t1 = makespan(algo, &degraded, n, bytes);
        let slowdown = t1 / t0;
        assert!(
            slowdown > 1.3,
            "{}: a 4× slower NIC must hurt: {slowdown:.2}×",
            algo.name()
        );
        assert!(
            slowdown <= 1.0 / factor + 0.5,
            "{}: slowdown {slowdown:.2}× exceeds the NIC slowdown itself",
            algo.name()
        );
    }
}

#[test]
fn degrading_a_leaf_node_hurts_every_algorithm_mildly() {
    let n = 16;
    let bytes = 32e6;
    let healthy = FatTree::minsky(n);
    // Node 15 is a leaf in every color tree (interiors live in 0..8 for
    // k=4, n=16).
    let mut degraded = FatTree::minsky(n);
    degraded.degrade_node(15, 0.5);
    for algo in [
        &MultiColor::new(4) as &dyn Allreduce,
        &RecursiveDoubling as &dyn Allreduce,
    ] {
        let t0 = makespan(algo, &healthy, n, bytes);
        let t1 = makespan(algo, &degraded, n, bytes);
        assert!(t1 >= t0 * 0.99, "{} sped up under degradation?", algo.name());
        assert!(t1 < t0 * 3.0, "{}: leaf degradation blew up: {t0} → {t1}", algo.name());
    }
}

#[test]
fn spine_degradation_shared_fairly() {
    // Degrading one spine's links halves some paths' bandwidth; the fluid
    // model must still deliver all traffic (conservation) and finish.
    let n = 32;
    let mut topo = FatTree::minsky(n);
    // Degrade every leaf↔spine link of spine 0 by walking all links whose
    // capacity equals the uplink capacity... simpler: degrade node NICs of
    // one whole leaf group.
    for v in 0..8 {
        topo.degrade_node(v, 0.5);
    }
    let algo = MultiColor::new(4);
    let t = makespan(&algo, &topo, n, 64e6);
    let healthy = makespan(&algo, &FatTree::minsky(n), n, 64e6);
    assert!(t > healthy);
    assert!(t.is_finite());
}
