//! Cross-validation of the two faces of each algorithm: the bytes the *real*
//! threaded execution puts on the wire must equal the bytes its compiled
//! schedule claims to move. This pins the simulation results (Figures 5–6)
//! to the actual implementations.

use dcnn_collectives::{run_cluster, AllreduceAlgo, CostModel};

#[test]
fn real_traffic_matches_schedule_totals() {
    let n = 8;
    let elems = 4096; // divisible by every chunking the algorithms use
    let payload_bytes = (elems * 4) as f64;
    let cost = CostModel::default();
    for algo in AllreduceAlgo::all() {
        let a = algo.build();
        let sent = run_cluster(n, |comm| {
            let before = comm.bytes_sent();
            let mut buf = vec![comm.rank() as f32; elems];
            a.run(comm, &mut buf);
            comm.bytes_sent() - before
        });
        let real_total: u64 = sent.iter().sum();
        let schedule_total = a.schedule(n, payload_bytes, &cost).total_bytes();
        // Hierarchical runs comm splits whose control messages (16 B per
        // member) add a sliver; everything else should match to rounding.
        let tol = if algo.name() == "hierarchical" { 0.02 } else { 0.005 };
        let rel = (real_total as f64 - schedule_total).abs() / schedule_total;
        assert!(
            rel <= tol,
            "{}: real {} B vs schedule {} B (rel {:.4})",
            algo.name(),
            real_total,
            schedule_total,
            rel
        );
    }
}

#[test]
fn traffic_totals_and_distribution_match_theory() {
    // Totals: the multi-color trees, both rings and halving-doubling all
    // move 2(n−1)·payload across the cluster; whole-buffer recursive
    // doubling moves n·log₂(n)·payload. Distribution: the reduce-scatter
    // ring spreads traffic perfectly evenly, while the multi-color trees
    // load interior nodes more than leaves.
    let n = 8;
    let elems = 4096;
    let per_rank = |algo: AllreduceAlgo| -> Vec<u64> {
        let a = algo.build();
        run_cluster(n, |comm| {
            let mut buf = vec![1.0f32; elems];
            a.run(comm, &mut buf);
            comm.bytes_sent()
        })
    };
    let payload = (elems * 4) as u64;
    let rs = per_rank(AllreduceAlgo::RingReduceScatter);
    let mc = per_rank(AllreduceAlgo::MultiColor(4));
    let rd = per_rank(AllreduceAlgo::RecursiveDoubling);
    let hd = per_rank(AllreduceAlgo::HalvingDoubling);

    let total = |v: &[u64]| v.iter().sum::<u64>();
    assert_eq!(total(&rs), 2 * (n as u64 - 1) * payload);
    assert_eq!(total(&mc), 2 * (n as u64 - 1) * payload);
    assert_eq!(total(&hd), 2 * (n as u64 - 1) * payload);
    assert_eq!(total(&rd), 3 * n as u64 * payload); // log2(8) rounds

    // Reduce-scatter ring: perfectly uniform per rank.
    assert!(rs.iter().all(|&b| b == rs[0]), "{rs:?}");
    // The multi-color construction puts every node in exactly one color's
    // interior, so its per-rank traffic is *also* perfectly balanced — the
    // design property behind Figure 2's "non leaf nodes are distinct across
    // colors". (With one color the tree hot-spots instead.)
    assert!(mc.iter().all(|&b| b == mc[0]), "multicolor unbalanced: {mc:?}");
    let one = per_rank(AllreduceAlgo::MultiColor(1));
    let (mn, mx) = (one.iter().min().expect("ranks"), one.iter().max().expect("ranks"));
    assert!(mx > mn, "single tree should hot-spot: {one:?}");
}

#[test]
fn message_counts_reflect_pipelining() {
    // The pipelined algorithms send many sub-chunk messages; the whole-
    // buffer recursive doubling sends exactly log₂(n) per rank.
    let n = 8;
    let elems = 1 << 20; // large enough to hit the pipeline caps
    let msgs = |algo: AllreduceAlgo| -> u64 {
        let a = algo.build();
        run_cluster(n, |comm| {
            let mut buf = vec![1.0f32; elems];
            a.run(comm, &mut buf);
            comm.msgs_sent()
        })
        .iter()
        .sum()
    };
    let rd = msgs(AllreduceAlgo::RecursiveDoubling);
    assert_eq!(rd, (n as u64) * 3); // log2(8) exchanges per rank
    let mc = msgs(AllreduceAlgo::MultiColor(4));
    assert!(mc > rd, "pipelined trees should send more, smaller messages");
}
