//! Provoked-deadlock tests: the watchdog must turn a hung receive into a
//! readable cross-rank report instead of a bare timeout panic.
//!
//! Each test drives a short [`ClusterBuilder::recv_timeout`] so a genuine
//! deadlock resolves in milliseconds, catches the propagated panic, and
//! asserts on the report text.

use dcnn_collectives::runtime::ClusterBuilder;
use std::time::Duration;

/// Run `f` on `n` ranks with a test-short watchdog timeout and return the
/// deadlock report it panicked with.
fn provoke(n: usize, f: impl Fn(&dcnn_collectives::Comm) + Sync) -> String {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        ClusterBuilder::new(n)
            .recv_timeout(Duration::from_millis(250))
            .run(|c| f(c));
    }));
    let payload = result.expect_err("cluster should deadlock");
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload should be the report string")
}

#[test]
fn crossed_tags_report_names_both_ranks_and_their_waits() {
    // Classic mis-ordered collective: both ranks send tag A / recv tag B in
    // opposite orders, so each blocks on a message the other never sends.
    let report = provoke(2, |c| {
        if c.rank() == 0 {
            let _ = c.recv(1, 7); // waits for tag 7; rank 1 only sends tag 8
            c.send_bytes(1, 8, vec![0]);
        } else {
            let _ = c.recv(0, 8); // waits for tag 8; rank 0 only sends tag 7
            c.send_bytes(0, 7, vec![1]);
        }
    });
    assert!(report.contains("deadlock suspected"), "{report}");
    // Both blocked ranks appear with exactly what they wait on.
    assert!(report.contains("rank 0: waiting on src 1"), "{report}");
    assert!(report.contains("tag 7"), "{report}");
    assert!(report.contains("rank 1: waiting on src 0"), "{report}");
    assert!(report.contains("tag 8"), "{report}");
    // And the wait-for cycle is called out.
    assert!(report.contains("wait-for cycle"), "{report}");
    assert!(report.contains("rank 0 ->"), "{report}");
    assert!(report.contains("rank 1 ->"), "{report}");
}

#[test]
fn report_shows_stashed_messages() {
    // Rank 1 sends tag 9 but rank 0 waits on tag 7: the arrival parks in
    // the stash and the report must surface it (the classic wrong-tag bug).
    let report = provoke(2, |c| {
        if c.rank() == 0 {
            let _ = c.recv(1, 7);
        } else {
            c.send_bytes(0, 9, vec![1, 2, 3]);
            let _ = c.recv(0, 7); // keep rank 1 alive and blocked too
        }
    });
    assert!(report.contains("rank 0: waiting on src 1"), "{report}");
    assert!(report.contains("tag 9"), "{report}"); // the stashed key
    assert!(report.contains("x1"), "{report}"); // one queued message
}

#[test]
fn recv_any_timeout_notes_unblocked_peers() {
    // The parameter-server shape: rank 0 serves recv_any but every worker
    // already exited. No cycle exists — the report must say the waited-on
    // ranks are not blocked (they finished).
    let report = provoke(2, |c| {
        if c.rank() == 0 {
            let _ = c.recv_any(3);
        }
        // rank 1 returns immediately without sending
    });
    assert!(report.contains("rank 0: waiting on any of"), "{report}");
    assert!(report.contains("rank 1: not blocked"), "{report}");
    assert!(report.contains("no wait-for cycle"), "{report}");
}

#[test]
fn subcommunicator_deadlock_reports_nonzero_comm_id() {
    // Deadlock inside a split: the report's comm ids distinguish the
    // subcommunicator (non-zero hash) from the world (0x0).
    let report = provoke(4, |c| {
        let sub = c.split((c.rank() % 2) as u64, c.rank() as i64);
        if c.rank() % 2 == 0 {
            // Even group deadlocks on crossed tags within the split.
            if sub.rank() == 0 {
                let _ = sub.recv(1, 5);
            } else {
                let _ = sub.recv(0, 6);
            }
        } else {
            // Odd group deadlocks too (keeps the run from finishing early).
            let _ = sub.recv((sub.rank() + 1) % 2, 40);
        }
    });
    assert!(report.contains("deadlock suspected"), "{report}");
    // All four ranks blocked, none on the world communicator.
    for r in 0..4 {
        assert!(report.contains(&format!("rank {r}: waiting on")), "{report}");
    }
    assert!(!report.contains("comm 0x0,"), "{report}");
    assert!(report.contains("wait-for cycle"), "{report}");
}

#[test]
fn async_bucket_deadlock_names_the_owning_bucket() {
    // Rank 0 launches a nonblocking bucket reduce that rank 1 never joins:
    // the blocked receive lives on rank 0's comm worker, and the report
    // must attribute it to the bucket (its launch sequence number) rather
    // than printing an anonymous rank-0 wait.
    use dcnn_collectives::AllreduceAlgo;
    let report = provoke(2, |c| {
        if c.rank() == 0 {
            let algo = AllreduceAlgo::RecursiveDoubling.build_shared();
            let p = c.allreduce_async(algo, vec![1.0f32; 64]);
            let _ = p.wait(); // never resolves: the peer never launches
        } else {
            let _ = c.recv(0, 33); // keep rank 1 alive and blocked too
        }
    });
    assert!(report.contains("deadlock suspected"), "{report}");
    assert!(report.contains("rank 0 [bucket 0]: waiting on src 1"), "{report}");
    assert!(report.contains("rank 1: waiting on src 0"), "{report}");
    assert!(report.contains("tag 33"), "{report}");
}

#[test]
fn labeled_bucket_deadlock_names_the_sealing_segment() {
    // The hooked overlap engine labels each bucket launch with the name of
    // the parameter segment that sealed it; a hung bucket reduce must
    // surface that label so the report points at a layer, not just a
    // sequence number.
    use dcnn_collectives::AllreduceAlgo;
    use std::sync::Arc;
    let report = provoke(2, |c| {
        if c.rank() == 0 {
            let algo = AllreduceAlgo::RecursiveDoubling.build_shared();
            let label: Arc<str> = Arc::from("blocks.0.main.2.weight");
            let p = c.allreduce_async_labeled(algo, vec![1.0f32; 64], Some(label));
            let _ = p.wait(); // never resolves: the peer never launches
        } else {
            let _ = c.recv(0, 33); // keep rank 1 alive and blocked too
        }
    });
    assert!(report.contains("deadlock suspected"), "{report}");
    assert!(
        report.contains("rank 0 [bucket 0, sealed by blocks.0.main.2.weight]: waiting on src 1"),
        "{report}"
    );
}

#[test]
fn healthy_cluster_with_short_timeout_does_not_fire() {
    // The watchdog must not false-positive on a run that simply takes a few
    // poll intervals: rank 1 sleeps well past the poll slice, then sends.
    let out = ClusterBuilder::new(2)
        .recv_timeout(Duration::from_millis(400))
        .run(|c| {
            if c.rank() == 0 {
                c.recv_bytes(1, 1)[0]
            } else {
                std::thread::sleep(Duration::from_millis(200));
                c.send_bytes(0, 1, vec![42]);
                0
            }
        });
    assert_eq!(out.results[0], 42);
    // The slow receive was counted as a blocked receive.
    assert_eq!(out.stats[0].recv_blocks, 1);
    assert!(out.stats[0].recv_wait_ns >= 150_000_000);
}
