//! Cross-algorithm integration tests: every allreduce implementation must
//! compute the same sums, and the simulated fabric must rank the paper's
//! three algorithms the way Figure 5 does.

use std::sync::Arc;

use dcnn_collectives::{
    run_cluster, Allreduce, AllreduceAlgo, ClusterBuilder, CostModel, MultiColor,
    PipelinedRing, RecursiveDoubling, TransportKind,
};
use dcnn_simnet::{throughput_gbps, FatTree, SimOptions};
use proptest::prelude::*;

fn reference(n: usize, len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            (0..n)
                .map(|r| contribution(r, i, seed))
                .sum()
        })
        .collect()
}

fn contribution(rank: usize, i: usize, seed: u64) -> f32 {
    let x = (rank as u64)
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(i as u64)
        .wrapping_add(seed);
    ((x % 1000) as f32 - 500.0) / 250.0
}

fn run_algo(algo: &AllreduceAlgo, n: usize, len: usize, seed: u64) -> Vec<Vec<f32>> {
    let a = algo.build();
    run_cluster(n, move |c| {
        let mut buf: Vec<f32> = (0..len).map(|i| contribution(c.rank(), i, seed)).collect();
        a.run(c, &mut buf);
        buf
    })
}

#[test]
fn all_algorithms_agree_with_reference() {
    for n in [2, 3, 5, 8] {
        for len in [1, 17, 260] {
            let expect = reference(n, len, 42);
            for algo in AllreduceAlgo::all() {
                let out = run_algo(&algo, n, len, 42);
                for (rank, buf) in out.iter().enumerate() {
                    for i in 0..len {
                        let err = (buf[i] - expect[i]).abs();
                        assert!(
                            err <= 1e-4 * expect[i].abs().max(1.0),
                            "{} n={n} len={len} rank={rank} i={i}: {} vs {}",
                            algo.name(),
                            buf[i],
                            expect[i]
                        );
                    }
                }
            }
        }
    }
}

/// Blocking reference on an arbitrary transport.
fn run_blocking(kind: TransportKind, algo: &AllreduceAlgo, n: usize, len: usize) -> Vec<Vec<f32>> {
    let a = algo.build();
    ClusterBuilder::new(n)
        .transport(kind)
        .run(move |c| {
            let mut buf: Vec<f32> = (0..len).map(|i| contribution(c.rank(), i, 9)).collect();
            a.run(c, &mut buf);
            buf
        })
        .results
}

/// Same payload through the nonblocking engine, cut into `bucket_len`-sized
/// buckets all launched before any is drained.
fn run_async_bucketed(
    kind: TransportKind,
    algo: &AllreduceAlgo,
    n: usize,
    len: usize,
    bucket_len: usize,
) -> Vec<Vec<f32>> {
    let a = algo.build_shared();
    ClusterBuilder::new(n)
        .transport(kind)
        .run(move |c| {
            let full: Vec<f32> = (0..len).map(|i| contribution(c.rank(), i, 9)).collect();
            let mut spans = Vec::new();
            let mut pending = Vec::new();
            let mut start = 0;
            while start < len {
                let end = (start + bucket_len).min(len);
                pending.push(c.allreduce_async(Arc::clone(&a), full[start..end].to_vec()));
                spans.push(start..end);
                start = end;
            }
            let mut out = vec![0.0f32; len];
            for (span, p) in spans.into_iter().zip(pending) {
                out[span].copy_from_slice(&p.wait());
            }
            out
        })
        .results
}

fn assert_bitwise(label: &str, a: &[Vec<f32>], b: &[Vec<f32>]) {
    for (rank, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.len(), y.len(), "{label} rank {rank}");
        for i in 0..x.len() {
            assert_eq!(
                x[i].to_bits(),
                y[i].to_bits(),
                "{label} rank={rank} i={i}: {} vs {}",
                x[i],
                y[i]
            );
        }
    }
}

/// One async bucket spanning the whole payload is the blocking call run on
/// a worker thread: every algorithm, both transports, bitwise identical.
#[test]
fn async_single_bucket_bitwise_matches_blocking_every_algorithm() {
    let (n, len) = (4, 193);
    for kind in [TransportKind::Threads, TransportKind::Tcp] {
        for algo in AllreduceAlgo::all() {
            let blocking = run_blocking(kind, &algo, n, len);
            let async_one = run_async_bucketed(kind, &algo, n, len, len);
            assert_bitwise(&format!("{} {kind:?}", algo.name()), &blocking, &async_one);
        }
    }
}

/// At two ranks every per-element sum is one f32 addition, so any bucketing
/// must reproduce the fused blocking result exactly — the invariant the
/// trainer's bitwise CI smoke leans on, across all algorithms and both
/// transports.
#[test]
fn bucketed_async_bitwise_matches_blocking_at_two_ranks() {
    let (n, len) = (2, 260);
    for kind in [TransportKind::Threads, TransportKind::Tcp] {
        for algo in AllreduceAlgo::all() {
            let blocking = run_blocking(kind, &algo, n, len);
            let bucketed = run_async_bucketed(kind, &algo, n, len, 37);
            assert_bitwise(&format!("{} {kind:?}", algo.name()), &blocking, &bucketed);
        }
    }
}

/// Even per-rank counts for a `len`-element buffer.
fn even_counts(len: usize, n: usize) -> Vec<usize> {
    dcnn_collectives::even_ranges(len, n).iter().map(|c| c.len()).collect()
}

/// The sharded optimizer's contract on the reduce-scatter seam: for every
/// algorithm, the chunk a rank owns after `reduce_scatter` is bit-identical
/// to the same chunk after the full replicated `run`. For the five
/// algorithms without a native scatter phase that is by construction (the
/// default seam *is* `run`); for the reduce-scatter ring it holds because
/// `run` is composed from the same scatter primitive.
#[test]
fn reduce_scatter_seam_owned_chunk_matches_run_every_algorithm() {
    for n in [2, 4, 5] {
        // 103 is not divisible by any tested n: uneven shards.
        let len = 103;
        let counts = even_counts(len, n);
        for algo in AllreduceAlgo::all() {
            let full = run_algo(&algo, n, len, 7);
            let a = algo.build();
            let cts = counts.clone();
            let scattered = run_cluster(n, move |c| {
                let mut buf: Vec<f32> =
                    (0..len).map(|i| contribution(c.rank(), i, 7)).collect();
                a.reduce_scatter(c, &mut buf, &cts);
                buf
            });
            let mut start = 0;
            for (rank, &cnt) in counts.iter().enumerate() {
                for i in start..start + cnt {
                    assert_eq!(
                        scattered[rank][i].to_bits(),
                        full[rank][i].to_bits(),
                        "{} n={n} rank={rank} i={i}: {} vs {}",
                        algo.name(),
                        scattered[rank][i],
                        full[rank][i]
                    );
                }
                start += cnt;
            }
        }
    }
}

/// Async reduce-scatter launches resolve to the same owned bits as the
/// blocking seam call, every algorithm, both transports.
#[test]
fn async_reduce_scatter_bitwise_matches_blocking_every_algorithm() {
    let (n, len) = (4, 193);
    let counts = even_counts(len, n);
    for kind in [TransportKind::Threads, TransportKind::Tcp] {
        for algo in AllreduceAlgo::all() {
            let a = algo.build();
            let cts = counts.clone();
            let blocking = ClusterBuilder::new(n)
                .transport(kind)
                .run(move |c| {
                    let mut buf: Vec<f32> =
                        (0..len).map(|i| contribution(c.rank(), i, 9)).collect();
                    a.reduce_scatter(c, &mut buf, &cts);
                    buf
                })
                .results;
            let a = algo.build_shared();
            let cts = counts.clone();
            let asynced = ClusterBuilder::new(n)
                .transport(kind)
                .run(move |c| {
                    let buf: Vec<f32> =
                        (0..len).map(|i| contribution(c.rank(), i, 9)).collect();
                    c.reduce_scatter_async(Arc::clone(&a), buf, cts.clone()).wait()
                })
                .results;
            // Only owned chunks are specified; compare those.
            let mut start = 0;
            for (rank, &cnt) in counts.iter().enumerate() {
                for i in start..start + cnt {
                    assert_eq!(
                        blocking[rank][i].to_bits(),
                        asynced[rank][i].to_bits(),
                        "{} {kind:?} rank={rank} i={i}",
                        algo.name()
                    );
                }
                start += cnt;
            }
        }
    }
}

/// The param-path allgather: async handle resolves to the blocking result,
/// both transports, and scatter/gather byte counters move.
#[test]
fn allgather_f32_async_matches_blocking_and_counts() {
    let (n, len) = (4, 101);
    let counts = even_counts(len, n);
    for kind in [TransportKind::Threads, TransportKind::Tcp] {
        let cts = counts.clone();
        let run = ClusterBuilder::new(n).transport(kind).run(move |c| {
            let mut off = 0usize;
            let mut buf = vec![0.0f32; len];
            for (r, &cnt) in cts.iter().enumerate() {
                for (i, v) in buf.iter_mut().enumerate().skip(off).take(cnt) {
                    *v = if r == c.rank() { contribution(r, i, 3) } else { -1.0 };
                }
                off += cnt;
            }
            let blocking = {
                let mut b = buf.clone();
                c.allgather_f32(&mut b, &cts);
                b
            };
            let asynced = c.allgather_async(buf, cts.clone(), None).wait();
            (blocking, asynced)
        });
        for (rank, (blocking, asynced)) in run.results.iter().enumerate() {
            let mut off = 0usize;
            for (owner, &cnt) in counts.iter().enumerate() {
                for i in off..off + cnt {
                    assert_eq!(
                        blocking[i].to_bits(),
                        contribution(owner, i, 3).to_bits(),
                        "{kind:?} rank={rank} owner={owner} i={i}"
                    );
                    assert_eq!(blocking[i].to_bits(), asynced[i].to_bits());
                }
                off += cnt;
            }
        }
        for (rank, st) in run.stats.iter().enumerate() {
            assert!(st.gather_bytes > 0, "{kind:?} rank {rank} gather_bytes");
            assert!(st.gather_wait_ns > 0, "{kind:?} rank {rank} gather_wait_ns");
        }
    }
}

#[test]
fn figure5_ordering_large_messages() {
    // Figure 5: at large message sizes on 16 nodes, throughput order is
    // multicolor > ring > default OpenMPI.
    let topo = FatTree::minsky(16);
    let cost = CostModel::default();
    let opts = SimOptions::default();
    let bytes = 93e6; // the GoogLeNet-BN payload of §5.1
    let mc = MultiColor::new(4).schedule(16, bytes, &cost).simulate(&topo, &opts).makespan;
    let ring = PipelinedRing::default().schedule(16, bytes, &cost).simulate(&topo, &opts).makespan;
    let rd = RecursiveDoubling.schedule(16, bytes, &cost).simulate(&topo, &opts).makespan;
    assert!(mc < ring, "multicolor {mc} should beat ring {ring}");
    assert!(ring < rd, "ring {ring} should beat openmpi-default {rd}");
    // Paper §5.1: multi-color takes 50-60% less time than default OpenMPI.
    let saving = 1.0 - mc / rd;
    assert!(
        saving > 0.40,
        "multicolor should save >40% over default: saved {:.0}%",
        saving * 100.0
    );
    // Sanity: achieved bus throughput is below the NIC aggregate.
    let gbps = throughput_gbps(bytes, mc);
    assert!(gbps > 1.0 && gbps < 400.0, "throughput {gbps} Gbps");
}

#[test]
fn schedules_execute_on_all_paper_node_counts() {
    let cost = CostModel::default();
    let opts = SimOptions::default();
    for nodes in [8usize, 16, 32] {
        let topo = FatTree::minsky(nodes);
        for algo in AllreduceAlgo::all() {
            let s = algo.build().schedule(nodes, 4e6, &cost);
            s.validate();
            let rep = s.simulate(&topo, &opts);
            assert!(rep.makespan > 0.0, "{} at {nodes}", algo.name());
            assert!(rep.makespan < 1.0, "{} at {nodes}: implausible {}", algo.name(), rep.makespan);
        }
    }
}

#[test]
fn multicolor_scaling_efficiency_shape() {
    // Figure 6: the multi-color algorithm keeps epoch time scaling near-
    // linear. Here we check allreduce time grows slowly from 8 to 32 nodes.
    let cost = CostModel::default();
    let opts = SimOptions::default();
    let bytes = 93e6;
    let t8 = MultiColor::new(4)
        .schedule(8, bytes, &cost)
        .simulate(&FatTree::minsky(8), &opts)
        .makespan;
    let t32 = MultiColor::new(4)
        .schedule(32, bytes, &cost)
        .simulate(&FatTree::minsky(32), &opts)
        .makespan;
    assert!(
        t32 < t8 * 2.0,
        "allreduce should not blow up with node count: 8n={t8}, 32n={t32}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every algorithm sums correctly for arbitrary (n, len).
    #[test]
    fn allreduce_correct_prop(n in 2usize..7, len in 1usize..120, seed in 0u64..u64::MAX) {
        let expect = reference(n, len, seed);
        for algo in AllreduceAlgo::all() {
            let out = run_algo(&algo, n, len, seed);
            for buf in &out {
                for i in 0..len {
                    prop_assert!((buf[i] - expect[i]).abs() <= 1e-3 * expect[i].abs().max(1.0),
                        "{} n={n} len={len}", algo.name());
                }
            }
        }
    }

    /// Schedules are valid DAGs and simulate without stalling for arbitrary
    /// payload sizes.
    #[test]
    fn schedules_simulate_prop(n in 2usize..10, kb in 1u32..2048) {
        let topo = FatTree::minsky(n);
        let cost = CostModel::default();
        for algo in AllreduceAlgo::all() {
            let s = algo.build().schedule(n, kb as f64 * 1024.0, &cost);
            s.validate();
            let rep = s.simulate(&topo, &SimOptions::default());
            prop_assert!(rep.makespan.is_finite() && rep.makespan >= 0.0);
        }
    }
}
