//! Doc-consistency: the README's environment-variable table and
//! [`RuntimeConfig::ENV_VARS`] must describe the same set of `DCNN_*`
//! knobs, in both directions. A variable added to the parser without a
//! README row (or documented without a parser) fails here, not in review.

use dcnn_collectives::RuntimeConfig;
use std::collections::BTreeSet;

/// Pull every `DCNN_[A-Z0-9_]+` token out of a line.
fn dcnn_tokens(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while let Some(pos) = line[i..].find("DCNN_") {
        let start = i + pos;
        let mut end = start;
        while end < bytes.len() && (bytes[end].is_ascii_uppercase() || bytes[end].is_ascii_digit() || bytes[end] == b'_') {
            end += 1;
        }
        if end > start + "DCNN_".len() {
            out.push(line[start..end].to_string());
        }
        i = end.max(start + 1);
    }
    out
}

/// The README env table: markdown rows of the form `| \`DCNN_...\` | ... |`.
/// A single row may document several variables (e.g. `DCNN_RANK` /
/// `DCNN_WORLD` share one), so tokens are extracted per row, not one-per-row.
fn readme_table_vars(readme: &str) -> BTreeSet<String> {
    readme
        .lines()
        .filter(|l| l.trim_start().starts_with("| `DCNN_"))
        .flat_map(dcnn_tokens)
        .collect()
}

#[test]
fn readme_env_table_matches_runtime_config() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
    let readme = std::fs::read_to_string(path).expect("README.md at workspace root");

    let documented = readme_table_vars(&readme);
    assert!(
        !documented.is_empty(),
        "README env table not found (no `| \\`DCNN_...\\`` rows)"
    );

    let parsed: BTreeSet<String> = RuntimeConfig::ENV_VARS.iter().map(|v| v.to_string()).collect();

    let undocumented: Vec<_> = parsed.difference(&documented).collect();
    assert!(
        undocumented.is_empty(),
        "RuntimeConfig parses vars missing from the README env table: {undocumented:?}"
    );
    let unparsed: Vec<_> = documented.difference(&parsed).collect();
    assert!(
        unparsed.is_empty(),
        "README env table documents vars RuntimeConfig never parses: {unparsed:?}"
    );
}

#[test]
fn every_readme_mention_is_a_known_variable() {
    // Prose and examples outside the table also name DCNN_* vars; none of
    // those mentions may refer to a variable the parser doesn't know.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
    let readme = std::fs::read_to_string(path).expect("README.md at workspace root");
    let parsed: BTreeSet<String> = RuntimeConfig::ENV_VARS.iter().map(|v| v.to_string()).collect();
    for (ln, line) in readme.lines().enumerate() {
        for tok in dcnn_tokens(line) {
            assert!(
                parsed.contains(&tok),
                "README line {} mentions unknown variable {tok}",
                ln + 1
            );
        }
    }
}
