//! Backend equivalence: the same collective math must come out of the
//! threaded mpsc fabric and the TCP socket fabric — bit for bit, and with
//! the same `CommStats` byte/message counts (counters live in the `Comm`
//! layer, above the transport, so a backend that secretly resent or
//! re-framed messages would show up here).
//!
//! TCP runs here keep ranks as threads of this process (the sockets are
//! real; only the process boundary is absent). Spawned-process coverage
//! lives in the facade crate's `transport_process` test, which drives the
//! `dcnn-launch` binary.

use std::sync::Arc;
use std::time::Duration;

use dcnn_collectives::runtime::ClusterRun;
use dcnn_collectives::{AllreduceAlgo, ClusterBuilder, Comm, RuntimeConfig, TransportKind};

fn contribution(rank: usize, i: usize, seed: u64) -> f32 {
    let x = (rank as u64)
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(i as u64)
        .wrapping_add(seed);
    ((x % 1000) as f32 - 500.0) / 250.0
}

fn run_algo(kind: TransportKind, algo: &AllreduceAlgo, n: usize, len: usize) -> ClusterRun<Vec<f32>> {
    let a = algo.build();
    ClusterBuilder::new(n).transport(kind).run(move |c| {
        let mut buf: Vec<f32> = (0..len).map(|i| contribution(c.rank(), i, 7)).collect();
        a.run(c, &mut buf);
        buf
    })
}

/// Every algorithm, several world sizes: TCP and threads produce bitwise
/// identical buffers on every rank, and identical send/recv counters.
#[test]
fn all_algorithms_bitwise_identical_across_backends() {
    for n in [2, 4] {
        for algo in AllreduceAlgo::all() {
            let th = run_algo(TransportKind::Threads, &algo, n, 260);
            let tcp = run_algo(TransportKind::Tcp, &algo, n, 260);
            for rank in 0..n {
                let a: &[f32] = &th.results[rank];
                let b: &[f32] = &tcp.results[rank];
                assert_eq!(a.len(), b.len());
                for i in 0..a.len() {
                    assert_eq!(
                        a[i].to_bits(),
                        b[i].to_bits(),
                        "{} n={n} rank={rank} i={i}: {} (threads) vs {} (tcp)",
                        algo.name(),
                        a[i],
                        b[i]
                    );
                }
                let (sa, sb) = (&th.stats[rank], &tcp.stats[rank]);
                assert_eq!(sa.bytes_sent, sb.bytes_sent, "{} rank {rank}", algo.name());
                assert_eq!(sa.msgs_sent, sb.msgs_sent, "{} rank {rank}", algo.name());
                assert_eq!(sa.bytes_recvd, sb.bytes_recvd, "{} rank {rank}", algo.name());
                assert_eq!(sa.msgs_recvd, sb.msgs_recvd, "{} rank {rank}", algo.name());
            }
        }
    }
}

/// Communicator split and barrier survive the socket fabric: the 4-rank
/// split into even/odd sub-communicators computes the same sub-sums.
#[test]
fn split_and_barrier_work_over_tcp() {
    let work = |c: &Comm| {
        let sub = c.split((c.rank() % 2) as u64, c.rank() as i64);
        let mut buf = vec![c.rank() as f32 + 1.0; 8];
        AllreduceAlgo::RecursiveDoubling.build().run(&sub, &mut buf);
        c.barrier();
        buf[0]
    };
    let th = ClusterBuilder::new(4).transport(TransportKind::Threads).run(work);
    let tcp = ClusterBuilder::new(4).transport(TransportKind::Tcp).run(work);
    // Evens: 1 + 3 = 4; odds: 2 + 4 = 6.
    assert_eq!(th.results, vec![4.0, 6.0, 4.0, 6.0]);
    assert_eq!(th.results, tcp.results);
}

/// A payload big enough to cross the reduce-kernel split threshold and the
/// TCP bulk little-endian copy: threads (split kernels, zero-copy buffers)
/// and TCP (split kernels, reinterpret-cast frame encode, direct decode
/// into the final allocation) must agree bit for bit. A tiny threshold
/// forces the chunk-split path on a buffer whose length is not a multiple
/// of the chunk size.
#[test]
fn large_payload_allreduce_bitwise_through_split_kernels_and_bulk_copy() {
    let len = 70_003; // odd on purpose: exercises every tail path at once
    let cfg = RuntimeConfig::default().with_reduce_par_threshold(1024);
    let run = |kind: TransportKind| {
        let cfg = cfg.clone();
        let a = AllreduceAlgo::HalvingDoubling.build();
        ClusterBuilder::new(2).transport(kind).configure(cfg).run(move |c| {
            let mut buf: Vec<f32> = (0..len).map(|i| contribution(c.rank(), i, 42)).collect();
            a.run(c, &mut buf);
            buf
        })
    };
    let th = run(TransportKind::Threads);
    let tcp = run(TransportKind::Tcp);
    for rank in 0..2 {
        let (a, b) = (&th.results[rank], &tcp.results[rank]);
        assert_eq!(a.len(), b.len());
        for i in 0..len {
            assert_eq!(
                a[i].to_bits(),
                b[i].to_bits(),
                "rank={rank} i={i}: {} (threads) vs {} (tcp)",
                a[i],
                b[i]
            );
        }
    }
}

/// The threaded hot path never copies an f32 payload: the receiver ends up
/// with the *same allocation* the sender handed over (`Arc` pointer
/// equality observed via the buffer's data pointer).
#[test]
fn threaded_f32_send_is_zero_copy() {
    let out = ClusterBuilder::new(2)
        .transport(TransportKind::Threads)
        .recv_timeout(Duration::from_secs(20))
        .run(|c| {
            if c.rank() == 0 {
                let data = Arc::new(vec![1.0f32, 2.0, 3.0]);
                let ptr = data.as_ptr() as usize;
                c.send_shared_f32(1, 3, data);
                ptr
            } else {
                let got = c.recv_f32(0, 3);
                assert_eq!(got, vec![1.0, 2.0, 3.0]);
                got.as_ptr() as usize
            }
        });
    assert_eq!(
        out.results[0], out.results[1],
        "receiver should own the sender's buffer, not a copy"
    );
}

/// Same property through a full allreduce: no per-send clone means the
/// bytes counter equals the sum of payload sizes exactly once per message
/// (a cloning fabric can't be caught by value equality, but the pointer
/// test above plus identical counters across backends pin the path down).
#[test]
fn tcp_backend_reports_itself() {
    let out = ClusterBuilder::new(2)
        .transport(TransportKind::Tcp)
        .run(|c| c.transport_backend().to_string());
    assert_eq!(out.results, vec!["tcp".to_string(), "tcp".to_string()]);
    let th = ClusterBuilder::new(1).run(|c| c.transport_backend().to_string());
    assert_eq!(th.results, vec!["threads".to_string()]);
}
