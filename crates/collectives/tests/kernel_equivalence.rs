//! Bitwise equivalence of the vectorized / chunk-split reduce kernels
//! against their scalar references.
//!
//! The kernels are element-independent — `dst[i]` depends only on
//! `dst[i]`/`src[i]` — so the 8-lane unrolling and the above-threshold
//! chunk split must produce results bit-identical to a naive scalar loop
//! at every length and every threshold, including on NaN and infinity
//! payloads where `==` comparison would lie. These tests compare raw
//! `to_bits()` words.
//!
//! The split threshold is process-global (`reduce::set_par_threshold`), so
//! every test that mutates it holds [`THRESHOLD_LOCK`]. Other test
//! binaries run in their own processes and are unaffected.

use std::sync::{Mutex, MutexGuard};

use dcnn_collectives::reduce::{self, reference};

static THRESHOLD_LOCK: Mutex<()> = Mutex::new(());

/// Take the global-threshold lock (surviving a poisoned mutex from an
/// earlier assert failure) and reset the threshold on drop.
fn lock_threshold() -> ThresholdGuard {
    let guard = THRESHOLD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    ThresholdGuard { _guard: guard }
}

struct ThresholdGuard {
    _guard: MutexGuard<'static, ()>,
}

impl Drop for ThresholdGuard {
    fn drop(&mut self) {
        reduce::set_par_threshold(reduce::DEFAULT_PAR_THRESHOLD);
    }
}

/// Deterministic pseudo-random f32s with NaN, ±inf, subnormals and signed
/// zeros sprinkled in — bit patterns the vector path must carry verbatim.
fn awkward_values(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            match i % 17 {
                3 => f32::NAN,
                7 => f32::INFINITY,
                11 => f32::NEG_INFINITY,
                13 => -0.0,
                15 => f32::from_bits(0x0000_0001), // smallest subnormal
                _ => ((state >> 40) as i32 as f32) * 1.000_123e-3,
            }
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Lengths that hit every tail case of the 8-lane unroll and straddle the
/// chunk boundary of the split path (PAR_CHUNK = 1 << 15).
fn lengths() -> Vec<usize> {
    vec![
        0,
        1,
        7,
        8,
        9,
        63,
        1023,
        (1 << 15) - 1,
        1 << 15,
        (1 << 15) + 1,
        3 * (1 << 15) + 5,
    ]
}

#[test]
fn sum_into_matches_reference_at_every_threshold() {
    let _guard = lock_threshold();
    for &n in &lengths() {
        let src = awkward_values(n, 1);
        let base = awkward_values(n, 2);
        // 0 = never split, 1 = always split, default = size-dependent.
        for threshold in [0, 1, reduce::DEFAULT_PAR_THRESHOLD] {
            reduce::set_par_threshold(threshold);
            let mut fast = base.clone();
            let mut slow = base.clone();
            reduce::sum_into(&mut fast, &src);
            reference::sum_into(&mut slow, &src);
            assert_eq!(
                bits(&fast),
                bits(&slow),
                "sum_into diverges at n={n}, threshold={threshold}"
            );
        }
    }
}

#[test]
fn sum_to_matches_reference_at_every_threshold() {
    let _guard = lock_threshold();
    for &n in &lengths() {
        let a = awkward_values(n, 3);
        let b = awkward_values(n, 4);
        for threshold in [0, 1, reduce::DEFAULT_PAR_THRESHOLD] {
            reduce::set_par_threshold(threshold);
            let mut fast = vec![0.0f32; n];
            let mut slow = vec![0.0f32; n];
            reduce::sum_to(&mut fast, &a, &b);
            reference::sum_to(&mut slow, &a, &b);
            assert_eq!(
                bits(&fast),
                bits(&slow),
                "sum_to diverges at n={n}, threshold={threshold}"
            );
        }
    }
}

#[test]
fn scale_matches_reference_at_every_threshold() {
    let _guard = lock_threshold();
    for &n in &lengths() {
        let base = awkward_values(n, 5);
        for factor in [0.25f32, 1.0 / 3.0, f32::NAN, f32::INFINITY, -0.0] {
            for threshold in [0, 1, reduce::DEFAULT_PAR_THRESHOLD] {
                reduce::set_par_threshold(threshold);
                let mut fast = base.clone();
                let mut slow = base.clone();
                reduce::scale(&mut fast, factor);
                reference::scale(&mut slow, factor);
                assert_eq!(
                    bits(&fast),
                    bits(&slow),
                    "scale diverges at n={n}, factor={factor}, threshold={threshold}"
                );
            }
        }
    }
}

#[test]
fn threshold_boundary_is_exact() {
    // split_enabled flips exactly at len >= threshold; both sides must
    // agree bitwise with the reference (they do for any split, but the
    // boundary lengths are where an off-by-one in chunking would live).
    let _guard = lock_threshold();
    let t = 4096usize;
    reduce::set_par_threshold(t);
    for n in [t - 1, t, t + 1] {
        let src = awkward_values(n, 6);
        let mut fast = awkward_values(n, 7);
        let mut slow = fast.clone();
        reduce::sum_into(&mut fast, &src);
        reference::sum_into(&mut slow, &src);
        assert_eq!(bits(&fast), bits(&slow), "boundary n={n} vs threshold={t}");
    }
}

#[test]
fn zero_threshold_means_never_split() {
    let _guard = lock_threshold();
    reduce::set_par_threshold(0);
    assert_eq!(reduce::par_threshold(), 0);
    // A huge buffer must still go through the sequential path and match.
    let n = 1 << 18;
    let src = awkward_values(n, 8);
    let mut fast = awkward_values(n, 9);
    let mut slow = fast.clone();
    reduce::sum_into(&mut fast, &src);
    reference::sum_into(&mut slow, &src);
    assert_eq!(bits(&fast), bits(&slow));
}
