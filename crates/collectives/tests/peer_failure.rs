//! Peer failure propagates as a structured [`CommError`] instead of a hang:
//! sever a live TCP link via the `drop-link` fault and check that a blocked
//! collective fails fast with an error naming the dead peer — with no
//! `DCNN_RECV_TIMEOUT_MS` involved, on the real socket transport.

use std::time::{Duration, Instant};

use dcnn_collectives::runtime::ClusterBuilder;
use dcnn_collectives::{
    Allreduce, CommError, FaultSpec, MultiColor, RuntimeConfig, TransportKind,
};

fn peer_dead_from(payload: Box<dyn std::any::Any + Send>) -> CommError {
    match payload.downcast::<CommError>() {
        Ok(e) => *e,
        Err(other) => {
            let msg = other
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| other.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string payload>".to_string());
            panic!("expected a CommError panic payload, got: {msg}");
        }
    }
}

#[test]
fn severed_link_fails_collective_with_structured_error() {
    // Rank 0 severs its socket to rank 1 the moment the fabric is up. The
    // first allreduce then blocks on the dead link; the LinkDown event must
    // fail it immediately — well inside the (default, 60 s) watchdog window.
    let cfg = RuntimeConfig::default().with_fault(FaultSpec::DropLink { from: 0, to: 1 });
    let started = Instant::now();
    let run = std::panic::catch_unwind(|| {
        ClusterBuilder::new(2)
            .transport(TransportKind::Tcp)
            .configure(cfg)
            .run(|comm| {
                let mut buf = vec![comm.rank() as f32; 64];
                MultiColor::new(2).run(comm, &mut buf);
                buf
            })
    });
    let elapsed = started.elapsed();

    let Err(payload) = run else {
        panic!("collective over a severed link must fail")
    };
    let err = peer_dead_from(payload);
    let CommError::PeerDead { rank, peer, cause, .. } = &err;
    assert!(
        (*rank == 0 && *peer == 1) || (*rank == 1 && *peer == 0),
        "wrong endpoints in {err}"
    );
    assert!(!cause.is_empty(), "cause must describe the tear: {err}");
    let msg = err.to_string();
    assert!(msg.contains("is dead"), "{msg}");
    assert!(
        elapsed < Duration::from_secs(10),
        "failure took {elapsed:?}; LinkDown should fail fast, not wait out a timeout"
    );
}

#[test]
fn point_to_point_recv_from_dead_peer_fails_with_phase_context() {
    // Same fault, but a bare recv inside a labeled phase: the error must
    // carry the phase attribution so the report says *where* training was.
    let cfg = RuntimeConfig::default().with_fault(FaultSpec::DropLink { from: 0, to: 1 });
    let run = std::panic::catch_unwind(|| {
        ClusterBuilder::new(2)
            .transport(TransportKind::Tcp)
            .configure(cfg)
            .run(|comm| {
                let _g = comm.phase("shuffle");
                if comm.rank() == 0 {
                    comm.recv_f32(1, 7)
                } else {
                    comm.recv_f32(0, 7)
                }
            })
    });
    let Err(payload) = run else { panic!("recv from a dead peer must fail") };
    let err = peer_dead_from(payload);
    let CommError::PeerDead { phase, .. } = &err;
    assert_eq!(phase.as_deref(), Some("shuffle"), "missing phase in {err}");
}
