//! Runtime event tracing for deadlock diagnosis and perf forensics.
//!
//! When enabled (builder option [`crate::runtime::ClusterBuilder::trace`] or
//! the `DCNN_TRACE` environment variable), every rank records one
//! [`TraceEvent`] per point-to-point operation — sends, deliveries, stash
//! traffic and blocked-receive enter/exit — with monotonic timestamps taken
//! against the cluster's start instant. Recording appends to a plain
//! per-rank `Vec` on the rank's own thread, so the toggle costs one branch
//! per operation when off and no synchronization when on.
//!
//! The collected stream comes back in [`crate::runtime::ClusterRun::events`],
//! merged across ranks and sorted by time; [`render_trace`] formats it for
//! human reading when chasing an ordering bug, and [`write_trace_json`]
//! exports it as JSON lines (`DCNN_TRACE_JSON=path`) so traces from
//! separate rank processes can be concatenated and re-sorted offline.

use serde::Serialize;

/// What happened (one variant per traced runtime operation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TraceEventKind {
    /// A message was pushed to a peer's inbox (eager send — never blocks).
    Send,
    /// A matching message was delivered to a receive call.
    Recv,
    /// An out-of-order arrival was parked in the stash.
    Stash,
    /// A previously stashed message satisfied a receive.
    Unstash,
    /// A receive ran out of immediately available messages and blocked.
    BlockEnter,
    /// A blocked receive was satisfied and resumed.
    BlockExit,
    /// A nonblocking allreduce was handed to the comm worker (`tag` holds
    /// the launch sequence number, `comm_id` the derived bucket comm).
    AsyncLaunch,
    /// A nonblocking allreduce finished on the comm worker.
    AsyncDone,
    /// The link to `peer` died abnormally (no BYE): the receive that
    /// observed the death records it before failing over to the structured
    /// `CommError::PeerDead` path.
    LinkDown,
}

impl TraceEventKind {
    /// Fixed-width tag for rendered traces.
    pub fn label(&self) -> &'static str {
        match self {
            TraceEventKind::Send => "send",
            TraceEventKind::Recv => "recv",
            TraceEventKind::Stash => "stash",
            TraceEventKind::Unstash => "unstash",
            TraceEventKind::BlockEnter => "block",
            TraceEventKind::BlockExit => "resume",
            TraceEventKind::AsyncLaunch => "launch",
            TraceEventKind::AsyncDone => "reduced",
            TraceEventKind::LinkDown => "linkdown",
        }
    }
}

/// One recorded runtime event.
#[derive(Debug, Clone, Serialize)]
pub struct TraceEvent {
    /// Nanoseconds since the cluster started (monotonic, comparable across
    /// ranks — all ranks share one epoch instant).
    pub t_ns: u64,
    /// Global rank that recorded the event.
    pub rank: usize,
    /// Operation kind.
    pub kind: TraceEventKind,
    /// Communicator the operation ran on (0 = world).
    pub comm_id: u64,
    /// MPI-style message tag.
    pub tag: u32,
    /// The peer global rank: destination for sends, source for receives and
    /// stash traffic. `None` for an any-source blocked receive.
    pub peer: Option<usize>,
    /// Payload size in bytes (0 for block enter/exit markers).
    pub bytes: usize,
}

impl TraceEvent {
    /// One-line rendering: `[  12.345ms] rank 1 send    -> 0  comm 0x0 tag 7  4096 B`.
    pub fn render(&self) -> String {
        let peer = match (self.kind, self.peer) {
            (TraceEventKind::Send, Some(p)) => format!("-> {p}"),
            (_, Some(p)) => format!("<- {p}"),
            (_, None) => "<- any".to_string(),
        };
        format!(
            "[{:>10.3}ms] rank {} {:<7} {:<7} comm {:#x} tag {} {} B",
            self.t_ns as f64 / 1e6,
            self.rank,
            self.kind.label(),
            peer,
            self.comm_id,
            self.tag,
            self.bytes
        )
    }
}

/// Render a merged event stream, one event per line in time order.
pub fn render_trace(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.render());
        out.push('\n');
    }
    out
}

/// Whether the `DCNN_TRACE` environment variable asks for tracing
/// (`1`, `true`, `on`, case-insensitive).
#[deprecated(note = "use crate::config::RuntimeConfig::from_env, which parses every DCNN_* \
                     variable in one place and rejects malformed values")]
pub fn trace_enabled_from_env() -> bool {
    match std::env::var("DCNN_TRACE") {
        Ok(v) => matches!(v.to_ascii_lowercase().as_str(), "1" | "true" | "on"),
        Err(_) => false,
    }
}

/// The output path the `DCNN_TRACE_JSON` environment variable asks trace
/// events to be exported to, if any. Setting it implies tracing on.
#[deprecated(note = "use crate::config::RuntimeConfig::from_env, which parses every DCNN_* \
                     variable in one place and rejects malformed values")]
pub fn trace_json_path_from_env() -> Option<String> {
    match std::env::var("DCNN_TRACE_JSON") {
        Ok(p) if !p.is_empty() => Some(p),
        _ => None,
    }
}

/// Serialize `events` to `out` as JSON lines — one compact object per
/// event, in the order given. Multi-process runs write one file per rank
/// (`<path>.rank<N>`); concatenating the files and sorting on `t_ns`
/// reconstructs the merged timeline, which is why the format is
/// line-oriented rather than one big array.
pub fn trace_to_json_lines(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        e.json_write(&mut out);
        out.push('\n');
    }
    out
}

/// Write `events` to `path` as JSON lines (see [`trace_to_json_lines`]).
pub fn write_trace_json(path: &std::path::Path, events: &[TraceEvent]) -> std::io::Result<()> {
    std::fs::write(path, trace_to_json_lines(events))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_mentions_ranks_tags_and_direction() {
        let e = TraceEvent {
            t_ns: 1_500_000,
            rank: 2,
            kind: TraceEventKind::Send,
            comm_id: 0,
            tag: 7,
            peer: Some(3),
            bytes: 4096,
        };
        let s = e.render();
        assert!(s.contains("rank 2"), "{s}");
        assert!(s.contains("-> 3"), "{s}");
        assert!(s.contains("tag 7"), "{s}");
        assert!(s.contains("4096 B"), "{s}");

        let b = TraceEvent { kind: TraceEventKind::BlockEnter, peer: None, ..e };
        assert!(b.render().contains("<- any"));
    }

    #[test]
    fn json_lines_round_trip_through_value_parser() {
        let events = vec![
            TraceEvent {
                t_ns: 42,
                rank: 1,
                kind: TraceEventKind::Send,
                comm_id: 3,
                tag: 7,
                peer: Some(0),
                bytes: 16,
            },
            TraceEvent {
                t_ns: 99,
                rank: 0,
                kind: TraceEventKind::BlockEnter,
                comm_id: 0,
                tag: 0,
                peer: None,
                bytes: 0,
            },
        ];
        let text = trace_to_json_lines(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let v: serde_json::Value = serde_json::from_str(lines[0]).expect("line 0 parses");
        assert_eq!(v.get("t_ns").and_then(|x| x.as_u64()), Some(42));
        assert_eq!(v.get("kind").and_then(|x| x.as_str()), Some("Send"));
        assert_eq!(v.get("peer").and_then(|x| x.as_u64()), Some(0));
        let w: serde_json::Value = serde_json::from_str(lines[1]).expect("line 1 parses");
        assert!(matches!(w.get("peer"), Some(serde_json::Value::Null)));
    }

    #[test]
    #[allow(deprecated)]
    fn env_toggle_parses() {
        // Only exercises the parser, not the environment (tests run in
        // parallel; setting env vars here would race other tests).
        assert!(!trace_enabled_from_env() || std::env::var("DCNN_TRACE").is_ok());
    }
}
