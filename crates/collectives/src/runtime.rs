//! Threaded rank runtime: the crate's stand-in for MPI.
//!
//! [`run_cluster`] spawns one OS thread per rank and gives each a [`Comm`]
//! for the world communicator. Point-to-point messages travel over unbounded
//! crossbeam channels (an *eager* protocol: sends never block, so collectives
//! written against this runtime are deadlock-free as long as every posted
//! receive is eventually matched). Tag matching follows MPI semantics: a
//! receive names `(source, communicator, tag)` and out-of-order arrivals are
//! stashed.
//!
//! [`Comm::split`] creates sub-communicators the way `MPI_Comm_split` does;
//! DIMD's group-based shuffle (paper §4.1, Figure 9) is built on it.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Select, Sender};

/// How long a receive may wait before the runtime declares a deadlock.
/// Collectives in this crate complete in milliseconds; 60 s means "a bug".
const RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// Payload of a message. Keeping `f32` payloads typed avoids any
/// serialization cost on the hot allreduce path (the buffer is moved through
/// the channel untouched, as RDMA would).
#[derive(Debug, Clone)]
pub enum Payload {
    /// Raw bytes (index exchanges, control messages, image records).
    Bytes(Vec<u8>),
    /// Gradient / parameter data.
    F32(Vec<f32>),
}

impl Payload {
    /// Interpret as bytes; panics if the payload is typed `f32`.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            Payload::Bytes(b) => b,
            Payload::F32(_) => panic!("expected byte payload, got f32"),
        }
    }

    /// Interpret as `f32`s; panics if the payload is raw bytes.
    pub fn into_f32(self) -> Vec<f32> {
        match self {
            Payload::F32(v) => v,
            Payload::Bytes(_) => panic!("expected f32 payload, got bytes"),
        }
    }

    /// Size in bytes, for accounting.
    pub fn len_bytes(&self) -> usize {
        match self {
            Payload::Bytes(b) => b.len(),
            Payload::F32(v) => v.len() * 4,
        }
    }
}

struct Msg {
    src: usize, // global rank
    comm_id: u64,
    tag: u32,
    payload: Payload,
}

/// Per-rank receive state: one channel per peer plus an out-of-order stash.
struct Endpoint {
    rxs: Vec<Receiver<Msg>>,
    stash: HashMap<(usize, u64, u32), Vec<Payload>>,
}

impl Endpoint {
    fn recv_matching(&mut self, me: usize, src: usize, comm_id: u64, tag: u32) -> Payload {
        let key = (src, comm_id, tag);
        if let Some(q) = self.stash.get_mut(&key) {
            if !q.is_empty() {
                let p = q.remove(0);
                if q.is_empty() {
                    self.stash.remove(&key);
                }
                return p;
            }
        }
        loop {
            let msg = self.rxs[src]
                .recv_timeout(RECV_TIMEOUT)
                .unwrap_or_else(|e| {
                    panic!(
                        "rank {me}: recv from {src} (comm {comm_id:#x}, tag {tag}) failed: {e} \
                         — likely a collective ordering bug"
                    )
                });
            if msg.comm_id == comm_id && msg.tag == tag {
                return msg.payload;
            }
            self.stash
                .entry((msg.src, msg.comm_id, msg.tag))
                .or_default()
                .push(msg.payload);
        }
    }

    /// Receive from *any* of the global ranks in `sources` (MPI's
    /// `MPI_ANY_SOURCE`). Returns `(global_src, payload)`.
    fn recv_any_matching(
        &mut self,
        me: usize,
        sources: &[usize],
        comm_id: u64,
        tag: u32,
    ) -> (usize, Payload) {
        loop {
            // Stash first: an eligible message may already have arrived.
            for &src in sources {
                let key = (src, comm_id, tag);
                if let Some(q) = self.stash.get_mut(&key) {
                    if !q.is_empty() {
                        let p = q.remove(0);
                        if q.is_empty() {
                            self.stash.remove(&key);
                        }
                        return (src, p);
                    }
                }
            }
            // Block until anything arrives on any channel, then stash or
            // deliver. Selecting over every peer (not just `sources`) keeps
            // unrelated traffic from blocking the wait.
            let mut sel = Select::new();
            for rx in &self.rxs {
                sel.recv(rx);
            }
            let op = sel.select_timeout(RECV_TIMEOUT).unwrap_or_else(|e| {
                panic!("rank {me}: recv_any (comm {comm_id:#x}, tag {tag}) timed out: {e}")
            });
            let idx = op.index();
            let msg = op.recv(&self.rxs[idx]).expect("peer hung up");
            if msg.comm_id == comm_id && msg.tag == tag && sources.contains(&msg.src) {
                return (msg.src, msg.payload);
            }
            self.stash
                .entry((msg.src, msg.comm_id, msg.tag))
                .or_default()
                .push(msg.payload);
        }
    }
}

/// A communicator handle: a group of ranks that can exchange messages and run
/// collectives. Cheap to clone-like via [`Comm::split`]; not `Send` (each
/// rank's `Comm`s live on that rank's thread, as MPI communicators do).
pub struct Comm {
    global_rank: usize,
    /// Global ranks of the group members, in group-rank order.
    group: Arc<Vec<usize>>,
    /// This rank's index within `group`.
    my_index: usize,
    comm_id: u64,
    split_count: std::cell::Cell<u64>,
    txs: Arc<Vec<Vec<Sender<Msg>>>>, // txs[src][dst]
    endpoint: Rc<RefCell<Endpoint>>,
    /// Bytes this *rank* has sent, shared across all communicator handles on
    /// the rank (parent and splits), like an MPI profiling counter.
    bytes_sent: Rc<std::cell::Cell<u64>>,
    /// Messages this rank has sent.
    msgs_sent: Rc<std::cell::Cell<u64>>,
}

/// Reserved tag namespace for runtime-internal collectives (split, barrier).
const TAG_INTERNAL: u32 = 0xFFFF_0000;

impl Comm {
    /// Rank within this communicator.
    pub fn rank(&self) -> usize {
        self.my_index
    }

    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// Rank within the world communicator.
    pub fn global_rank(&self) -> usize {
        self.global_rank
    }

    /// Global ranks of the members of this communicator.
    pub fn group(&self) -> &[usize] {
        &self.group
    }

    /// Total bytes this rank has sent (across all communicator handles).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.get()
    }

    /// Total messages this rank has sent (across all communicator handles).
    pub fn msgs_sent(&self) -> u64 {
        self.msgs_sent.get()
    }

    /// Send `payload` to group rank `dst` with `tag`. Never blocks.
    pub fn send(&self, dst: usize, tag: u32, payload: Payload) {
        assert!(tag < TAG_INTERNAL, "tag {tag:#x} is reserved for the runtime");
        self.send_raw(dst, tag, payload)
    }

    fn send_raw(&self, dst: usize, tag: u32, payload: Payload) {
        let gdst = self.group[dst];
        self.bytes_sent.set(self.bytes_sent.get() + payload.len_bytes() as u64);
        self.msgs_sent.set(self.msgs_sent.get() + 1);
        self.txs[self.global_rank][gdst]
            .send(Msg { src: self.global_rank, comm_id: self.comm_id, tag, payload })
            .expect("peer hung up");
    }

    /// Receive the next message from group rank `src` with `tag`.
    pub fn recv(&self, src: usize, tag: u32) -> Payload {
        assert!(tag < TAG_INTERNAL, "tag {tag:#x} is reserved for the runtime");
        self.recv_raw(src, tag)
    }

    /// Receive from any group member (`MPI_ANY_SOURCE`). Returns the sender's
    /// group rank and the payload. Used by asynchronous SGD's parameter
    /// server, which serves whichever worker finishes first.
    pub fn recv_any(&self, tag: u32) -> (usize, Payload) {
        assert!(tag < TAG_INTERNAL, "tag {tag:#x} is reserved for the runtime");
        let (gsrc, payload) = self.endpoint.borrow_mut().recv_any_matching(
            self.global_rank,
            &self.group,
            self.comm_id,
            tag,
        );
        let grank = self
            .group
            .iter()
            .position(|&g| g == gsrc)
            .expect("source is a group member");
        (grank, payload)
    }

    fn recv_raw(&self, src: usize, tag: u32) -> Payload {
        let gsrc = self.group[src];
        self.endpoint
            .borrow_mut()
            .recv_matching(self.global_rank, gsrc, self.comm_id, tag)
    }

    /// Convenience: send an `f32` slice (copies once into the message).
    pub fn send_f32(&self, dst: usize, tag: u32, data: &[f32]) {
        self.send(dst, tag, Payload::F32(data.to_vec()));
    }

    /// Convenience: receive an `f32` vector.
    pub fn recv_f32(&self, src: usize, tag: u32) -> Vec<f32> {
        self.recv(src, tag).into_f32()
    }

    /// Convenience: send bytes.
    pub fn send_bytes(&self, dst: usize, tag: u32, data: Vec<u8>) {
        self.send(dst, tag, Payload::Bytes(data));
    }

    /// Convenience: receive bytes.
    pub fn recv_bytes(&self, src: usize, tag: u32) -> Vec<u8> {
        self.recv(src, tag).into_bytes()
    }

    /// Dissemination barrier over this communicator (⌈log₂ n⌉ rounds).
    pub fn barrier(&self) {
        let n = self.size();
        if n <= 1 {
            return;
        }
        let mut step = 1usize;
        let mut round = 0u32;
        while step < n {
            let to = (self.my_index + step) % n;
            let from = (self.my_index + n - step % n) % n;
            self.send_raw(to, TAG_INTERNAL + 1 + round, Payload::Bytes(Vec::new()));
            let _ = self.recv_raw(from, TAG_INTERNAL + 1 + round);
            step <<= 1;
            round += 1;
        }
    }

    /// Split into sub-communicators, like `MPI_Comm_split`: ranks passing the
    /// same `color` form a group, ordered by `(key, rank)`. Must be called by
    /// every member of this communicator.
    pub fn split(&self, color: u64, key: i64) -> Comm {
        let n = self.size();
        let me = self.my_index;
        let gen = self.split_count.get();
        self.split_count.set(gen + 1);
        let tag_up = TAG_INTERNAL + 100;
        let tag_down = TAG_INTERNAL + 101;

        // Gather (color, key) at group rank 0, broadcast the table back.
        let table: Vec<(u64, i64)>;
        if me == 0 {
            let mut t = vec![(0, 0); n];
            t[0] = (color, key);
            for (src, slot) in t.iter_mut().enumerate().skip(1) {
                let b = self.recv_raw(src, tag_up).into_bytes();
                let c = u64::from_le_bytes(b[0..8].try_into().expect("8 bytes"));
                let k = i64::from_le_bytes(b[8..16].try_into().expect("8 bytes"));
                *slot = (c, k);
            }
            table = t;
            let mut flat = Vec::with_capacity(n * 16);
            for &(c, k) in &table {
                flat.extend_from_slice(&c.to_le_bytes());
                flat.extend_from_slice(&k.to_le_bytes());
            }
            for dst in 1..n {
                self.send_raw(dst, tag_down, Payload::Bytes(flat.clone()));
            }
        } else {
            let mut b = Vec::with_capacity(16);
            b.extend_from_slice(&color.to_le_bytes());
            b.extend_from_slice(&key.to_le_bytes());
            self.send_raw(0, tag_up, Payload::Bytes(b));
            let flat = self.recv_raw(0, tag_down).into_bytes();
            table = flat
                .chunks_exact(16)
                .map(|c| {
                    (
                        u64::from_le_bytes(c[0..8].try_into().expect("8")),
                        i64::from_le_bytes(c[8..16].try_into().expect("8")),
                    )
                })
                .collect();
        }

        // Members with my color, sorted by (key, group rank), mapped to
        // global ranks.
        let mut members: Vec<(i64, usize)> = table
            .iter()
            .enumerate()
            .filter(|(_, &(c, _))| c == color)
            .map(|(r, &(_, k))| (k, r))
            .collect();
        members.sort_unstable();
        let group: Vec<usize> = members.iter().map(|&(_, r)| self.group[r]).collect();
        let my_index = group
            .iter()
            .position(|&g| g == self.global_rank)
            .expect("caller is a member of its own color group");

        // Deterministic child communicator id, identical across members.
        let mut h = self.comm_id ^ 0x51_7c_c1_b7_27_22_0a_95;
        for &(c, k) in &table {
            h = h.wrapping_mul(0x100000001b3).wrapping_add(c ^ k as u64);
        }
        h = h.wrapping_mul(0x100000001b3).wrapping_add(color);
        h = h.wrapping_mul(0x100000001b3).wrapping_add(gen);

        Comm {
            global_rank: self.global_rank,
            group: Arc::new(group),
            my_index,
            comm_id: h,
            split_count: std::cell::Cell::new(0),
            txs: Arc::clone(&self.txs),
            endpoint: Rc::clone(&self.endpoint),
            bytes_sent: Rc::clone(&self.bytes_sent),
            msgs_sent: Rc::clone(&self.msgs_sent),
        }
    }
}

/// Spawn `n` rank threads, run `f` on each with its world [`Comm`], and
/// return the per-rank results in rank order.
///
/// # Panics
/// Propagates any rank panic (after all threads have been joined or died).
pub fn run_cluster<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    assert!(n > 0, "cluster needs at least one rank");
    // Build the full channel fabric: one FIFO per ordered pair.
    let mut txs: Vec<Vec<Sender<Msg>>> = Vec::with_capacity(n);
    let mut rx_table: Vec<Vec<Option<Receiver<Msg>>>> = (0..n)
        .map(|_| (0..n).map(|_| None).collect())
        .collect();
    for src in 0..n {
        let mut row = Vec::with_capacity(n);
        for (dst, rx_row) in rx_table.iter_mut().enumerate() {
            let (tx, rx) = unbounded();
            row.push(tx);
            rx_row[src] = Some(rx);
            let _ = dst;
        }
        txs.push(row);
    }
    let txs = Arc::new(txs);
    let world: Arc<Vec<usize>> = Arc::new((0..n).collect());

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (rank, rx_row) in rx_table.into_iter().enumerate() {
            let txs = Arc::clone(&txs);
            let world = Arc::clone(&world);
            let f = &f;
            handles.push(scope.spawn(move || {
                let endpoint = Endpoint {
                    rxs: rx_row.into_iter().map(|o| o.expect("filled")).collect(),
                    stash: HashMap::new(),
                };
                let comm = Comm {
                    global_rank: rank,
                    group: world,
                    my_index: rank,
                    comm_id: 0,
                    split_count: std::cell::Cell::new(0),
                    txs,
                    endpoint: Rc::new(RefCell::new(endpoint)),
                    bytes_sent: Rc::new(std::cell::Cell::new(0)),
                    msgs_sent: Rc::new(std::cell::Cell::new(0)),
                };
                f(&comm)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_and_sizes() {
        let out = run_cluster(4, |c| (c.rank(), c.size()));
        assert_eq!(out, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn point_to_point_roundtrip() {
        let out = run_cluster(2, |c| {
            if c.rank() == 0 {
                c.send_f32(1, 7, &[1.0, 2.0, 3.0]);
                c.recv_f32(1, 8)
            } else {
                let v = c.recv_f32(0, 7);
                c.send_f32(0, 8, &v.iter().map(|x| x * 2.0).collect::<Vec<_>>());
                v
            }
        });
        assert_eq!(out[0], vec![2.0, 4.0, 6.0]);
        assert_eq!(out[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn tag_matching_reorders() {
        let out = run_cluster(2, |c| {
            if c.rank() == 0 {
                c.send_bytes(1, 1, vec![1]);
                c.send_bytes(1, 2, vec![2]);
                Vec::new()
            } else {
                // Receive in the opposite order of sending.
                let b2 = c.recv_bytes(0, 2);
                let b1 = c.recv_bytes(0, 1);
                vec![b1[0], b2[0]]
            }
        });
        assert_eq!(out[1], vec![1, 2]);
    }

    #[test]
    fn same_tag_preserves_fifo() {
        let out = run_cluster(2, |c| {
            if c.rank() == 0 {
                for i in 0..10u8 {
                    c.send_bytes(1, 3, vec![i]);
                }
                Vec::new()
            } else {
                (0..10).map(|_| c.recv_bytes(0, 3)[0]).collect()
            }
        });
        assert_eq!(out[1], (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn barrier_completes() {
        for n in [1, 2, 3, 5, 8] {
            run_cluster(n, |c| {
                for _ in 0..3 {
                    c.barrier();
                }
            });
        }
    }

    #[test]
    fn split_by_parity() {
        let out = run_cluster(6, |c| {
            let sub = c.split((c.rank() % 2) as u64, c.rank() as i64);
            (sub.rank(), sub.size(), sub.group().to_vec())
        });
        assert_eq!(out[0], (0, 3, vec![0, 2, 4]));
        assert_eq!(out[3], (1, 3, vec![1, 3, 5]));
        assert_eq!(out[5], (2, 3, vec![1, 3, 5]));
    }

    #[test]
    fn split_key_reorders() {
        let out = run_cluster(4, |c| {
            // Reverse order via key.
            let sub = c.split(0, -(c.rank() as i64));
            sub.rank()
        });
        assert_eq!(out, vec![3, 2, 1, 0]);
    }

    #[test]
    fn subcomm_messaging_is_isolated() {
        let out = run_cluster(4, |c| {
            let sub = c.split((c.rank() % 2) as u64, 0);
            // Exchange within the subgroup while the parent also talks.
            if sub.rank() == 0 {
                sub.send_bytes(1, 5, vec![c.rank() as u8]);
                c.barrier();
                0
            } else {
                let v = sub.recv_bytes(0, 5);
                c.barrier();
                v[0] as usize
            }
        });
        assert_eq!(out[2], 0); // rank 2 got byte from rank 0
        assert_eq!(out[3], 1); // rank 3 got byte from rank 1
    }

    #[test]
    fn nested_split() {
        let out = run_cluster(8, |c| {
            let half = c.split((c.rank() / 4) as u64, 0);
            let quarter = half.split((half.rank() / 2) as u64, 0);
            quarter.barrier();
            (half.size(), quarter.size(), quarter.group().to_vec())
        });
        assert_eq!(out[0].0, 4);
        assert_eq!(out[0].1, 2);
        assert_eq!(out[6].2, vec![6, 7]);
    }

    #[test]
    fn bytes_sent_accounting() {
        let out = run_cluster(2, |c| {
            if c.rank() == 0 {
                c.send_f32(1, 0, &[0.0; 100]);
            } else {
                let _ = c.recv_f32(0, 0);
            }
            c.bytes_sent()
        });
        assert_eq!(out[0], 400);
        assert_eq!(out[1], 0);
    }

    #[test]
    fn recv_any_serves_first_arrival() {
        let out = run_cluster(4, |c| {
            if c.rank() == 0 {
                let mut seen = Vec::new();
                for _ in 0..3 {
                    let (src, p) = c.recv_any(9);
                    seen.push((src, p.into_bytes()[0]));
                }
                seen.sort_unstable();
                seen
            } else {
                c.send_bytes(0, 9, vec![c.rank() as u8 * 2]);
                Vec::new()
            }
        });
        assert_eq!(out[0], vec![(1, 2), (2, 4), (3, 6)]);
    }

    #[test]
    fn recv_any_stashes_unrelated_tags() {
        let out = run_cluster(2, |c| {
            if c.rank() == 0 {
                // First a message with a different tag arrives; recv_any for
                // tag 5 must skip over it without losing it.
                let (src, p) = c.recv_any(5);
                let other = c.recv_bytes(1, 6);
                (src, p.into_bytes()[0], other[0])
            } else {
                c.send_bytes(0, 6, vec![66]);
                c.send_bytes(0, 5, vec![55]);
                (0, 0, 0)
            }
        });
        assert_eq!(out[0], (1, 55, 66));
    }

    #[test]
    fn recv_any_in_subcommunicator() {
        let out = run_cluster(4, |c| {
            let sub = c.split((c.rank() % 2) as u64, c.rank() as i64);
            if sub.rank() == 0 {
                let (src, p) = sub.recv_any(3);
                (src, p.into_bytes()[0])
            } else {
                sub.send_bytes(0, 3, vec![c.rank() as u8]);
                (99, 99)
            }
        });
        assert_eq!(out[0], (1, 2)); // rank 2 is sub-rank 1 of the even group
        assert_eq!(out[1], (1, 3));
    }

    #[test]
    #[should_panic]
    fn reserved_tag_rejected() {
        run_cluster(2, |c| {
            if c.rank() == 0 {
                c.send_bytes(1, TAG_INTERNAL + 5, vec![]);
            }
        });
    }
}
