//! Rank runtime: the crate's stand-in for MPI, over pluggable transports.
//!
//! [`run_cluster`] spawns one OS thread per rank and gives each a [`Comm`]
//! for the world communicator. Point-to-point messages travel over a
//! [`Transport`] backend (an *eager* protocol: sends never block, so
//! collectives written against this runtime are deadlock-free as long as
//! every posted receive is eventually matched). Tag matching follows MPI
//! semantics: a receive names `(source, communicator, tag)` and out-of-order
//! arrivals are stashed.
//!
//! Two backends exist (see [`crate::transport`]): in-process `mpsc` inboxes
//! with `Arc`-shared zero-copy payloads (the default), and real TCP sockets
//! ([`ClusterBuilder::transport`] or `DCNN_TRANSPORT=tcp`). For ranks as
//! separate OS processes, [`run_tcp_rank`] is the per-process entry point
//! (driven by the `dcnn-launch` binary via `DCNN_RANK` / `DCNN_WORLD` /
//! `DCNN_RENDEZVOUS`).
//!
//! [`Comm::split`] creates sub-communicators the way `MPI_Comm_split` does;
//! DIMD's group-based shuffle (paper §4.1, Figure 9) is built on it.
//!
//! ## Nonblocking collectives
//!
//! [`Comm::allreduce_async`] (or [`crate::algorithms::Allreduce::start`])
//! launches an allreduce on the rank's comm worker — a small lazily-spawned
//! thread pool (`DCNN_COMM_WORKERS`, default 2) — and returns a
//! [`PendingReduce`] handle. Each launch runs on its own derived bucket
//! communicator, so several reductions can be in flight without their
//! messages cross-matching; the rank's single transport inbox is shared
//! between the main thread and the workers through the receive router (a
//! leader/follower protocol: exactly one thread polls the transport at a
//! time, parking non-matching arrivals in the stash for the others). The
//! bucketed overlap-aware trainer loop is built on this.
//!
//! ## Deadlock watchdog
//!
//! A receive that stays blocked past the cluster's receive timeout
//! ([`ClusterBuilder::recv_timeout`], default 60 s, overridable with the
//! `DCNN_RECV_TIMEOUT_MS` environment variable) does not die with a bare
//! timeout panic. Instead, every blocked consumer (a rank's main thread, or
//! one of its in-flight async buckets) publishes its blocked-receive
//! descriptor `(rank, sources, comm, tag)` and a snapshot of its stash keys
//! into a shared diagnostics registry; the first rank to time out assembles
//! the cross-rank wait-for graph, runs cycle detection, and panics with a
//! readable report naming every blocked rank (bucket reduces labelled with
//! their bucket number), what it waits for, what it has stashed, and the
//! deadlock cycle if one exists. All other timing-out ranks panic with the
//! same (memoized) report.
//!
//! ## Tracing and counters
//!
//! [`ClusterBuilder::trace`] (or `DCNN_TRACE=1`) turns on per-rank event
//! recording (see [`crate::trace`]); the runtime always keeps cheap per-rank
//! counters — bytes/messages sent and received, time spent blocked in
//! receives, stash high-water mark, async launches and their in-flight
//! high-water mark, time spent draining async reduces, and per-phase timings
//! via [`Comm::phase`] — returned as [`CommStats`] in [`ClusterRun::stats`]
//! and queryable mid-run with [`Comm::stats`].

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::algorithms::Allreduce;
use crate::config::RuntimeConfig;
use crate::trace::{write_trace_json, TraceEvent, TraceEventKind};
use crate::transport::local::local_fabric;
use crate::transport::tcp::{TcpOptions, TcpTransport};
use crate::transport::{RecvPoll, Transport, TransportKind, WireMsg};

pub use crate::transport::Payload;

/// Which consumer of a rank's inbox a receive belongs to: the rank's main
/// thread, or the comm worker running one async bucket reduce. Ordered so
/// `Main` sorts before buckets in watchdog reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum ConsumerId {
    /// The rank's own thread (blocking sends/receives/collectives).
    Main,
    /// The async reduce launched with this sequence number on its parent
    /// communicator.
    Bucket(u64),
}

/// A structured communication failure. Raised as a panic *payload* (via
/// `std::panic::panic_any`) so it rides the existing propagation machinery
/// unchanged — comm workers re-raise it through
/// `CommWorker::shutdown_and_propagate` / [`PendingReduce::wait`], rank
/// threads through [`ClusterBuilder::run`]'s join — and is caught and
/// returned as a value at the process boundary by [`try_run_tcp_rank_with`].
/// A dedicated panic hook prints the structured message instead of the
/// default panic banner, so a dying rank reports `rank 2: peer rank 1 is
/// dead (...)`, not a raw backtrace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A receive could never complete because the link to the peer it
    /// needed died (torn socket, killed process, frame corruption).
    PeerDead {
        /// The surviving rank reporting the failure.
        rank: usize,
        /// The dead peer's global rank.
        peer: usize,
        /// The transport's failure cause (the underlying I/O error).
        cause: String,
        /// Innermost [`Comm::phase`] label on the failing thread — the
        /// algorithm phase ("ring_rs", "bcast", …) the receive belonged to.
        phase: Option<String>,
        /// The in-flight async bucket (launch sequence number) whose reduce
        /// hit the dead peer; `None` when the main thread did.
        bucket: Option<u64>,
        /// The gradient segment that sealed the bucket, when labeled.
        label: Option<String>,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::PeerDead { rank, peer, cause, phase, bucket, label } => {
                write!(f, "rank {rank}: peer rank {peer} is dead ({cause})")?;
                if let Some(p) = phase {
                    write!(f, " during {p}")?;
                }
                if let Some(b) = bucket {
                    write!(f, " [bucket {b}")?;
                    if let Some(l) = label {
                        write!(f, ", sealed by {l}")?;
                    }
                    write!(f, "]")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Replace the default panic hook with one that prints a single structured
/// line for [`CommError`] payloads and defers to the previous hook for
/// everything else. Installed lazily, right before the first structured
/// panic, so ordinary runs never touch the global hook.
fn install_comm_error_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(e) = info.payload().downcast_ref::<CommError>() {
                eprintln!("dcnn: {e}");
            } else {
                prev(info);
            }
        }));
    });
}

thread_local! {
    /// Innermost-to-outermost [`Comm::phase`] labels active on this thread.
    /// Thread-local because phases run both on rank main threads and on
    /// comm workers (each bucket's collective enters its algorithm phase on
    /// the worker thread), and a peer-death report must name the phase of
    /// the thread that was actually blocked.
    static PHASE_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// The phase label the current thread is inside, if any.
fn current_phase() -> Option<String> {
    PHASE_STACK.with(|s| s.borrow().last().map(|l| l.to_string()))
}

/// A blocked-receive descriptor, published to the diagnostics registry while
/// a consumer waits in a receive past the first poll interval.
#[derive(Debug, Clone)]
struct BlockedRecv {
    /// Global ranks the receive can match (one entry for a plain `recv`,
    /// the whole group for `recv_any`).
    sources: Vec<usize>,
    /// True for an any-source receive.
    any_source: bool,
    comm_id: u64,
    tag: u32,
    /// Nanoseconds since cluster start when the consumer blocked.
    since_ns: u64,
    /// For bucket consumers: the gradient segment that sealed the bucket
    /// (set by the trainer's streaming scheduler), so watchdog reports can
    /// name the layer instead of just a launch sequence number.
    label: Option<Arc<str>>,
}

/// Per-rank slot in the shared diagnostics registry.
#[derive(Default)]
struct RankDiag {
    /// Blocked-receive descriptors, one per blocked consumer of the rank's
    /// inbox (main thread and/or in-flight async buckets).
    blocked: Vec<(ConsumerId, BlockedRecv)>,
    /// Stash keys `(src, comm_id, tag, queued)` snapshotted at block time.
    stash_keys: Vec<(usize, u64, u32, usize)>,
}

/// State shared by every rank of one cluster run: configuration, the
/// diagnostics registry, and the sinks results are flushed into.
struct ClusterShared {
    epoch: Instant,
    recv_timeout: Duration,
    trace_on: bool,
    /// True when the world spans OS processes: the diagnostics registry
    /// only sees this process's ranks, so deadlock reports must say so
    /// instead of claiming remote ranks are "not blocked".
    cross_process: bool,
    /// Comm worker threads each rank spawns for async reduces.
    comm_workers: usize,
    diags: Vec<Mutex<RankDiag>>,
    /// Memoized deadlock report: built once by the first rank to time out,
    /// then reused by every other rank so all panics carry the same text.
    report: Mutex<Option<Arc<String>>>,
    trace_sink: Mutex<Vec<TraceEvent>>,
    stats_sink: Mutex<Vec<CommStats>>,
}

impl ClusterShared {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// Per-rank counters and trace buffer, shared by every [`Comm`] handle of
/// the rank (world, splits and async buckets) across the rank's main thread
/// and its comm workers, like an MPI profiling layer.
struct RankLocal {
    rank: usize,
    shared: Arc<ClusterShared>,
    bytes_sent: AtomicU64,
    msgs_sent: AtomicU64,
    bytes_recvd: AtomicU64,
    msgs_recvd: AtomicU64,
    recv_wait_ns: AtomicU64,
    recv_blocks: AtomicU64,
    stash_hwm: AtomicU64,
    /// Async reduces launched via [`Comm::allreduce_async`].
    async_launched: AtomicU64,
    /// Async reduces launched but not yet completed, right now.
    async_inflight: AtomicU64,
    /// High-water mark of `async_inflight` — proof of overlap when ≥ 2.
    async_inflight_hwm: AtomicU64,
    /// Time the main thread spent blocked in [`PendingReduce::wait`].
    bucket_wait_ns: AtomicU64,
    /// Wall time comm workers spent inside async collectives.
    async_comm_ns: AtomicU64,
    /// Payload bytes fed through [`Comm::reduce_scatter`].
    scatter_bytes: AtomicU64,
    /// Wall time spent inside blocking [`Comm::reduce_scatter`] calls.
    scatter_wait_ns: AtomicU64,
    /// Payload bytes fed through [`Comm::allgather_f32`].
    gather_bytes: AtomicU64,
    /// Wall time spent inside blocking [`Comm::allgather_f32`] calls.
    gather_wait_ns: AtomicU64,
    /// Bytes sent to each peer, indexed by global rank (`link_sent[rank]`
    /// counts loopback self-sends). The per-link view of `bytes_sent`, for
    /// cross-checking real link utilization against the simulator's.
    link_sent: Vec<AtomicU64>,
    /// Launch/complete timestamps for every async bucket reduce, in
    /// completion order.
    bucket_spans: Mutex<Vec<BucketSpan>>,
    /// Inclusive per-phase wall time: `(label, ns, entries)`.
    phases: Mutex<Vec<(&'static str, u64, u64)>>,
    events: Mutex<Vec<TraceEvent>>,
}

impl RankLocal {
    fn new(rank: usize, shared: Arc<ClusterShared>) -> Self {
        let world = shared.diags.len();
        RankLocal {
            rank,
            shared,
            bytes_sent: AtomicU64::new(0),
            msgs_sent: AtomicU64::new(0),
            bytes_recvd: AtomicU64::new(0),
            msgs_recvd: AtomicU64::new(0),
            recv_wait_ns: AtomicU64::new(0),
            recv_blocks: AtomicU64::new(0),
            stash_hwm: AtomicU64::new(0),
            async_launched: AtomicU64::new(0),
            async_inflight: AtomicU64::new(0),
            async_inflight_hwm: AtomicU64::new(0),
            bucket_wait_ns: AtomicU64::new(0),
            async_comm_ns: AtomicU64::new(0),
            scatter_bytes: AtomicU64::new(0),
            scatter_wait_ns: AtomicU64::new(0),
            gather_bytes: AtomicU64::new(0),
            gather_wait_ns: AtomicU64::new(0),
            link_sent: (0..world).map(|_| AtomicU64::new(0)).collect(),
            bucket_spans: Mutex::new(Vec::new()),
            phases: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
        }
    }

    #[inline]
    fn trace(&self, kind: TraceEventKind, comm_id: u64, tag: u32, peer: Option<usize>, bytes: usize) {
        if !self.shared.trace_on {
            return;
        }
        self.events.lock().expect("trace buffer").push(TraceEvent {
            t_ns: self.shared.now_ns(),
            rank: self.rank,
            kind,
            comm_id,
            tag,
            peer,
            bytes,
        });
    }

    fn add_phase(&self, label: &'static str, ns: u64) {
        let mut phases = self.phases.lock().expect("phase table");
        if let Some(p) = phases.iter_mut().find(|p| p.0 == label) {
            p.1 += ns;
            p.2 += 1;
        } else {
            phases.push((label, ns, 1));
        }
    }

    fn snapshot(&self) -> CommStats {
        CommStats {
            bytes_sent: self.bytes_sent.load(Relaxed),
            msgs_sent: self.msgs_sent.load(Relaxed),
            bytes_recvd: self.bytes_recvd.load(Relaxed),
            msgs_recvd: self.msgs_recvd.load(Relaxed),
            recv_wait_ns: self.recv_wait_ns.load(Relaxed),
            recv_blocks: self.recv_blocks.load(Relaxed),
            stash_hwm: self.stash_hwm.load(Relaxed),
            async_launched: self.async_launched.load(Relaxed),
            async_inflight_hwm: self.async_inflight_hwm.load(Relaxed),
            bucket_wait_ns: self.bucket_wait_ns.load(Relaxed),
            async_comm_ns: self.async_comm_ns.load(Relaxed),
            scatter_bytes: self.scatter_bytes.load(Relaxed),
            scatter_wait_ns: self.scatter_wait_ns.load(Relaxed),
            gather_bytes: self.gather_bytes.load(Relaxed),
            gather_wait_ns: self.gather_wait_ns.load(Relaxed),
            link_bytes_sent: self.link_sent.iter().map(|a| a.load(Relaxed)).collect(),
            bucket_spans: self.bucket_spans.lock().expect("bucket spans").clone(),
            phase_ns: self
                .phases
                .lock()
                .expect("phase table")
                .iter()
                .map(|&(l, ns, n)| (l.to_string(), ns, n))
                .collect(),
        }
    }

    /// Flush this rank's trace events and final counters into the shared
    /// sinks (called once, after the rank closure returns).
    fn flush(&self) {
        if self.shared.trace_on {
            let mut events = self.events.lock().expect("trace buffer");
            self.shared.trace_sink.lock().expect("trace sink").append(&mut events);
        }
        self.shared.stats_sink.lock().expect("stats sink")[self.rank] = self.snapshot();
    }
}

/// Launch/complete timestamps of one async bucket reduce, for bandwidth
/// measurement (adaptive bucket sizing) and `repro comm` reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketSpan {
    /// Launch sequence number on the parent communicator.
    pub seq: u64,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Nanoseconds since cluster start when the launch was submitted.
    pub launch_ns: u64,
    /// Nanoseconds since cluster start when the reduce completed.
    pub done_ns: u64,
    /// The sealing gradient segment, when the launcher supplied one.
    pub label: String,
}

impl BucketSpan {
    /// Wall nanoseconds the bucket was in flight.
    pub fn duration_ns(&self) -> u64 {
        self.done_ns.saturating_sub(self.launch_ns)
    }
}

/// Snapshot of one rank's communication counters.
#[derive(Debug, Clone, Default)]
pub struct CommStats {
    /// Bytes this rank pushed onto the wire (all communicators).
    pub bytes_sent: u64,
    /// Messages this rank pushed onto the wire.
    pub msgs_sent: u64,
    /// Bytes delivered to receives on this rank.
    pub bytes_recvd: u64,
    /// Messages delivered to receives on this rank.
    pub msgs_recvd: u64,
    /// Total nanoseconds receives spent waiting for data.
    pub recv_wait_ns: u64,
    /// Receives that stalled at least one poll interval without data.
    pub recv_blocks: u64,
    /// High-water mark of messages parked in the out-of-order stash.
    pub stash_hwm: u64,
    /// Async reduces launched via [`Comm::allreduce_async`].
    pub async_launched: u64,
    /// High-water mark of async reduces in flight at once; ≥ 2 proves
    /// bucket reductions actually overlapped.
    pub async_inflight_hwm: u64,
    /// Nanoseconds the launching thread spent blocked in
    /// [`PendingReduce::wait`] — communication *not* hidden by compute.
    pub bucket_wait_ns: u64,
    /// Nanoseconds comm workers spent inside async collectives (inclusive
    /// wall time across buckets; overlapping buckets both count).
    pub async_comm_ns: u64,
    /// Payload bytes fed through [`Comm::reduce_scatter`] (blocking calls
    /// and the scatter halves of async launches alike).
    pub scatter_bytes: u64,
    /// Nanoseconds spent inside [`Comm::reduce_scatter`].
    pub scatter_wait_ns: u64,
    /// Payload bytes fed through [`Comm::allgather_f32`].
    pub gather_bytes: u64,
    /// Nanoseconds spent inside [`Comm::allgather_f32`].
    pub gather_wait_ns: u64,
    /// Bytes this rank sent to each peer, indexed by global rank (the entry
    /// at this rank's own index counts loopback self-sends). Sums to
    /// `bytes_sent`; the per-link resolution is what the real-vs-simnet
    /// cross-check compares against [`dcnn_simnet`]'s `link_bytes`.
    pub link_bytes_sent: Vec<u64>,
    /// Launch/complete timestamps per async bucket reduce, in completion
    /// order — the raw data behind bandwidth measurement and adaptive
    /// bucket sizing.
    pub bucket_spans: Vec<BucketSpan>,
    /// Inclusive wall time per [`Comm::phase`] label: `(label, ns, entries)`.
    /// Nested phases both accumulate, so times are inclusive.
    pub phase_ns: Vec<(String, u64, u64)>,
}

impl CommStats {
    /// Seconds receives spent blocked, for reporting.
    pub fn recv_wait_secs(&self) -> f64 {
        self.recv_wait_ns as f64 / 1e9
    }

    /// Seconds the launching thread spent draining async bucket reduces.
    pub fn bucket_wait_secs(&self) -> f64 {
        self.bucket_wait_ns as f64 / 1e9
    }

    /// Seconds spent inside reduce-scatter calls, for reporting.
    pub fn scatter_wait_secs(&self) -> f64 {
        self.scatter_wait_ns as f64 / 1e9
    }

    /// Seconds spent inside `f32` allgather calls, for reporting.
    pub fn gather_wait_secs(&self) -> f64 {
        self.gather_wait_ns as f64 / 1e9
    }

    /// Fraction of async collective time hidden behind compute:
    /// `1 − bucket_wait / async_comm`, clamped to `[0, 1]`; `0.0` when no
    /// async reduce ran.
    pub fn overlap_fraction(&self) -> f64 {
        if self.async_comm_ns == 0 {
            return 0.0;
        }
        (1.0 - self.bucket_wait_ns as f64 / self.async_comm_ns as f64).clamp(0.0, 1.0)
    }

    /// Nanoseconds accumulated under `label`, 0 if never entered.
    pub fn phase(&self, label: &str) -> u64 {
        self.phase_ns.iter().find(|p| p.0 == label).map_or(0, |p| p.1)
    }

    /// Per-peer bytes sent since the `earlier` snapshot (element-wise
    /// saturating difference; a peer index `earlier` had not seen yet
    /// counts from zero). The epoch-delta view of `link_bytes_sent`.
    pub fn link_bytes_delta(&self, earlier: &CommStats) -> Vec<u64> {
        self.link_bytes_sent
            .iter()
            .enumerate()
            .map(|(i, &b)| b.saturating_sub(earlier.link_bytes_sent.get(i).copied().unwrap_or(0)))
            .collect()
    }

    /// The busiest outgoing link's byte count, ignoring loopback
    /// self-sends at `me`. 0 when this rank never sent to a real peer.
    pub fn link_bytes_max(me: usize, links: &[u64]) -> u64 {
        links.iter().enumerate().filter(|&(i, _)| i != me).map(|(_, &b)| b).max().unwrap_or(0)
    }

    /// Imbalance of outgoing link traffic: busiest link ÷ mean over peer
    /// links (loopback excluded). `1.0` is perfectly even; `0.0` when no
    /// peer traffic was sent. Algorithms with rooted trees (multicolor,
    /// ring-to-root) show > 1; symmetric rings sit at ~1.
    pub fn link_imbalance(me: usize, links: &[u64]) -> f64 {
        let peers: Vec<u64> =
            links.iter().enumerate().filter(|&(i, _)| i != me).map(|(_, &b)| b).collect();
        let total: u64 = peers.iter().sum();
        if peers.is_empty() || total == 0 {
            return 0.0;
        }
        let mean = total as f64 / peers.len() as f64;
        *peers.iter().max().expect("non-empty") as f64 / mean
    }

    /// Time-averaged bytes in flight across the async bucket reduces in
    /// `bucket_spans[from..]`: Σ(bytes × duration) over the window from the
    /// earliest launch to the latest completion. This is the measurement
    /// adaptive bucket sizing steers toward the configured in-flight
    /// budget. Returns 0 when the window is empty or instantaneous.
    pub fn inflight_bytes_avg(&self, from: usize) -> u64 {
        let spans = match self.bucket_spans.get(from..) {
            Some(s) if !s.is_empty() => s,
            _ => return 0,
        };
        let start = spans.iter().map(|s| s.launch_ns).min().unwrap_or(0);
        let end = spans.iter().map(|s| s.done_ns).max().unwrap_or(0);
        let window = end.saturating_sub(start) as u128;
        if window == 0 {
            return 0;
        }
        let byte_ns: u128 =
            spans.iter().map(|s| s.bytes as u128 * s.duration_ns() as u128).sum();
        (byte_ns / window) as u64
    }
}

/// Measures one labeled phase; created by [`Comm::phase`], records on drop.
/// While alive, the label sits on the thread's phase stack so a peer-death
/// report can name the algorithm phase the failing receive belonged to.
pub struct PhaseGuard {
    local: Arc<RankLocal>,
    label: &'static str,
    start: Instant,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        PHASE_STACK.with(|s| {
            s.borrow_mut().pop();
        });
        self.local.add_phase(self.label, self.start.elapsed().as_nanos() as u64);
    }
}

/// The part of the receive router that lives under its mutex: the
/// out-of-order stash plus the leader/follower flag.
struct RouterState {
    stash: HashMap<(usize, u64, u32), VecDeque<Payload>>,
    stash_len: u64,
    /// True while some consumer is polling the transport with the lock
    /// released; everyone else waits on the condvar instead of polling.
    pumping: bool,
    /// Peers whose links died abnormally (`peer` → failure cause). A
    /// receive that can only be satisfied by a dead peer fails fast with
    /// [`CommError::PeerDead`] instead of waiting out the watchdog.
    dead: HashMap<usize, String>,
}

/// Per-rank receive router: the rank's single transport inbox plus an
/// out-of-order stash, shared by every consumer of the rank (the main
/// thread and the comm workers running async bucket reduces). One inbox per
/// rank preserves per-sender FIFO order (all MPI guarantees); the router's
/// leader/follower protocol lets many consumers block on it concurrently —
/// exactly one polls the transport at a time, parking arrivals that match
/// someone else's receive in the stash and waking the waiters.
struct Router {
    transport: Arc<dyn Transport>,
    local: Arc<RankLocal>,
    state: Mutex<RouterState>,
    cv: Condvar,
}

impl Router {
    fn new(transport: Arc<dyn Transport>, local: Arc<RankLocal>) -> Self {
        Router {
            transport,
            local,
            state: Mutex::new(RouterState {
                stash: HashMap::new(),
                stash_len: 0,
                pumping: false,
                dead: HashMap::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn take_stashed(&self, state: &mut RouterState, key: (usize, u64, u32)) -> Option<Payload> {
        let q = state.stash.get_mut(&key)?;
        let p = q.pop_front()?;
        if q.is_empty() {
            state.stash.remove(&key);
        }
        state.stash_len -= 1;
        self.local.trace(TraceEventKind::Unstash, key.1, key.2, Some(key.0), p.len_bytes());
        Some(p)
    }

    fn stash_msg(&self, state: &mut RouterState, msg: WireMsg) {
        self.local.trace(
            TraceEventKind::Stash,
            msg.comm_id,
            msg.tag,
            Some(msg.src),
            msg.payload.len_bytes(),
        );
        state.stash.entry((msg.src, msg.comm_id, msg.tag)).or_default().push_back(msg.payload);
        state.stash_len += 1;
        self.local.stash_hwm.fetch_max(state.stash_len, Relaxed);
    }

    fn delivered(&self, src: usize, comm_id: u64, tag: u32, payload: Payload) -> Payload {
        self.local.bytes_recvd.fetch_add(payload.len_bytes() as u64, Relaxed);
        self.local.msgs_recvd.fetch_add(1, Relaxed);
        self.local.trace(TraceEventKind::Recv, comm_id, tag, Some(src), payload.len_bytes());
        payload
    }

    /// Bookkeeping for a satisfied receive: retract the blocked-receive
    /// descriptor if one was published and account the blocked time.
    fn finish_wait(
        &self,
        published: bool,
        wait_start: Option<Instant>,
        consumer: ConsumerId,
        comm_id: u64,
        tag: u32,
    ) {
        if published {
            self.unpublish_blocked(consumer, comm_id, tag);
        }
        if let Some(t0) = wait_start {
            self.local.recv_wait_ns.fetch_add(t0.elapsed().as_nanos() as u64, Relaxed);
        }
    }

    /// Blocking receive matching `(any of sources, comm_id, tag)` on behalf
    /// of `consumer`. Returns `(global_src, payload)`. On timeout, panics
    /// with the watchdog's cross-rank deadlock report.
    fn recv_from_sources(
        &self,
        sources: &[usize],
        any_source: bool,
        comm_id: u64,
        tag: u32,
        consumer: ConsumerId,
        label: Option<&Arc<str>>,
    ) -> (usize, Payload) {
        let timeout = self.local.shared.recv_timeout;
        // Poll in slices so blocked consumers publish diagnostics long
        // before any rank's deadline expires; the fast path (data already
        // stashed) never touches the registry.
        let poll = (timeout / 4).min(Duration::from_millis(100)).max(Duration::from_millis(1));
        let mut state = self.state.lock().expect("router state");
        let mut wait_start: Option<Instant> = None;
        let mut published = false;
        loop {
            // Check the stash first: the fast path on entry, and afterwards
            // whatever another consumer's poll may have parked for us.
            for &src in sources {
                if let Some(p) = self.take_stashed(&mut state, (src, comm_id, tag)) {
                    drop(state);
                    self.finish_wait(published, wait_start, consumer, comm_id, tag);
                    return (src, self.delivered(src, comm_id, tag, p));
                }
            }
            // Nothing stashed: if every source that could still satisfy this
            // receive is dead, no message will ever arrive — fail fast with
            // a structured error instead of waiting out the watchdog.
            // (Messages that arrived before the link died were already
            // checked above, so nothing deliverable is lost.)
            if !state.dead.is_empty() {
                let me = self.local.rank;
                let fatal = if any_source {
                    // An any-source receive is doomed only once every
                    // non-self source is dead (self-sends bypass the wire).
                    sources
                        .iter()
                        .filter(|&&s| s != me)
                        .all(|s| state.dead.contains_key(s))
                        .then(|| sources.iter().find(|&&s| s != me && state.dead.contains_key(&s)))
                        .flatten()
                } else {
                    sources.first().filter(|&&s| s != me && state.dead.contains_key(&s))
                };
                if let Some(&peer) = fatal {
                    let cause = state.dead.get(&peer).cloned().unwrap_or_default();
                    // Release the lock before unwinding so sibling
                    // consumers see a clean (unpoisoned) router.
                    drop(state);
                    self.fail_peer_dead(peer, cause, consumer, label);
                }
            }
            let started = *wait_start.get_or_insert_with(Instant::now);
            if !state.pumping {
                // Become the pumper: poll the transport with the lock
                // released so other consumers can keep checking the stash.
                state.pumping = true;
                drop(state);
                let polled = self.transport.recv_timeout(poll);
                state = self.state.lock().expect("router state");
                state.pumping = false;
                self.cv.notify_all();
                match polled {
                    RecvPoll::Msg(msg) => {
                        let matches =
                            msg.comm_id == comm_id && msg.tag == tag && sources.contains(&msg.src);
                        if matches {
                            drop(state);
                            self.finish_wait(published, wait_start, consumer, comm_id, tag);
                            let src = msg.src;
                            return (src, self.delivered(src, comm_id, tag, msg.payload));
                        }
                        self.stash_msg(&mut state, msg);
                    }
                    RecvPoll::TimedOut => {
                        if !published {
                            self.publish_blocked(
                                &state, sources, any_source, comm_id, tag, consumer, label,
                            );
                            published = true;
                        }
                        if started.elapsed() >= timeout {
                            drop(state);
                            let report = deadlock_report(&self.local.shared, self.local.rank);
                            panic!("{report}");
                        }
                    }
                    RecvPoll::LinkDown { peer, cause } => {
                        // A link died. Record it and loop: the dead-source
                        // check at the top decides whether *this* receive is
                        // doomed; followers woken by the notify above re-run
                        // the same check for theirs.
                        self.local.trace(
                            TraceEventKind::LinkDown,
                            comm_id,
                            tag,
                            Some(peer),
                            0,
                        );
                        state.dead.entry(peer).or_insert(cause);
                        self.cv.notify_all();
                    }
                    RecvPoll::Closed => {
                        // Unreachable on the threaded backend while this rank
                        // lives (it holds a sender to itself); on TCP it means
                        // every peer link died. Fail loudly rather than spin.
                        drop(state);
                        panic!(
                            "rank {}: inbox disconnected (every peer hung up)",
                            self.local.rank
                        );
                    }
                }
            } else {
                // Another consumer is polling the transport; sleep until it
                // stashes or delivers something, then re-check.
                let (guard, _timed_out) =
                    self.cv.wait_timeout(state, poll).expect("router state");
                state = guard;
                if !published && started.elapsed() >= poll {
                    self.publish_blocked(
                        &state, sources, any_source, comm_id, tag, consumer, label,
                    );
                    published = true;
                }
                if started.elapsed() >= timeout {
                    drop(state);
                    let report = deadlock_report(&self.local.shared, self.local.rank);
                    panic!("{report}");
                }
            }
        }
    }

    /// Abort a doomed receive with a structured [`CommError::PeerDead`]
    /// panic payload, attributed with the thread's current algorithm phase
    /// and (for bucket consumers) the bucket number and sealing segment —
    /// the same descriptors the deadlock watchdog reports.
    fn fail_peer_dead(
        &self,
        peer: usize,
        cause: String,
        consumer: ConsumerId,
        label: Option<&Arc<str>>,
    ) -> ! {
        let (bucket, seg) = match consumer {
            ConsumerId::Main => (None, None),
            ConsumerId::Bucket(k) => (Some(k), label.map(|l| l.to_string())),
        };
        let err = CommError::PeerDead {
            rank: self.local.rank,
            peer,
            cause,
            phase: current_phase(),
            bucket,
            label: seg,
        };
        install_comm_error_hook();
        std::panic::panic_any(err);
    }

    #[allow(clippy::too_many_arguments)]
    fn publish_blocked(
        &self,
        state: &RouterState,
        sources: &[usize],
        any_source: bool,
        comm_id: u64,
        tag: u32,
        consumer: ConsumerId,
        label: Option<&Arc<str>>,
    ) {
        let shared = &self.local.shared;
        let me = self.local.rank;
        self.local.recv_blocks.fetch_add(1, Relaxed);
        self.local.trace(
            TraceEventKind::BlockEnter,
            comm_id,
            tag,
            if any_source { None } else { sources.first().copied() },
            0,
        );
        let desc = BlockedRecv {
            sources: sources.to_vec(),
            any_source,
            comm_id,
            tag,
            since_ns: shared.now_ns(),
            label: label.cloned(),
        };
        let mut slot = shared.diags[me].lock().expect("diag slot");
        if let Some(e) = slot.blocked.iter_mut().find(|(c, _)| *c == consumer) {
            e.1 = desc;
        } else {
            slot.blocked.push((consumer, desc));
        }
        slot.stash_keys = state
            .stash
            .iter()
            .map(|(&(src, cid, t), q)| (src, cid, t, q.len()))
            .collect();
        slot.stash_keys.sort_unstable();
    }

    fn unpublish_blocked(&self, consumer: ConsumerId, comm_id: u64, tag: u32) {
        let shared = &self.local.shared;
        let mut slot = shared.diags[self.local.rank].lock().expect("diag slot");
        slot.blocked.retain(|(c, _)| *c != consumer);
        if slot.blocked.is_empty() {
            slot.stash_keys.clear();
        }
        drop(slot);
        self.local.trace(TraceEventKind::BlockExit, comm_id, tag, None, 0);
    }
}

/// One rank's diagnostics snapshot: its blocked-receive descriptors (one per
/// blocked consumer) and its stash keys `(src, comm_id, tag, queued)`.
type DiagSnapshot = (Vec<(ConsumerId, BlockedRecv)>, Vec<(usize, u64, u32, usize)>);

/// The rank's main-thread blocked descriptor, if any. The wait-for graph is
/// built over main threads only: a rank whose main thread still runs can
/// always make progress toward the send a peer waits on, while async bucket
/// workers reduce independently and are reported but not graphed.
fn main_blocked(entry: &DiagSnapshot) -> Option<&BlockedRecv> {
    entry.0.iter().find(|(c, _)| *c == ConsumerId::Main).map(|(_, b)| b)
}

/// Build (once) the cross-rank deadlock report: every blocked consumer's
/// receive descriptor and stash snapshot, the wait-for graph, and any cycle
/// in it.
fn deadlock_report(shared: &Arc<ClusterShared>, me: usize) -> Arc<String> {
    let mut memo = shared.report.lock().expect("report memo");
    if let Some(r) = memo.as_ref() {
        return Arc::clone(r);
    }
    let snap: Vec<DiagSnapshot> = shared
        .diags
        .iter()
        .map(|m| {
            let d = m.lock().expect("diag slot");
            (d.blocked.clone(), d.stash_keys.clone())
        })
        .collect();

    let timeout = shared.recv_timeout;
    let mut out = format!(
        "deadlock suspected: rank {me} blocked in recv past the {timeout:?} watchdog timeout \
         (set via ClusterBuilder::recv_timeout or DCNN_RECV_TIMEOUT_MS)\n\
         blocked receives:\n"
    );
    for (rank, (blocked, stash)) in snap.iter().enumerate() {
        if blocked.is_empty() {
            if shared.cross_process {
                out.push_str(&format!(
                    "  rank {rank}: no visibility (remote process; re-run that rank with \
                     DCNN_TRACE=1 for its side)\n"
                ));
            } else {
                out.push_str(&format!("  rank {rank}: not blocked (running or finished)\n"));
            }
            continue;
        }
        let mut entries = blocked.clone();
        entries.sort_by_key(|&(c, _)| c);
        for (consumer, b) in &entries {
            let who = match (consumer, b.label.as_deref()) {
                (ConsumerId::Main, _) => format!("rank {rank}"),
                (ConsumerId::Bucket(k), Some(l)) => {
                    format!("rank {rank} [bucket {k}, sealed by {l}]")
                }
                (ConsumerId::Bucket(k), None) => format!("rank {rank} [bucket {k}]"),
            };
            let src = if b.any_source {
                format!("any of {:?}", b.sources)
            } else {
                format!("src {}", b.sources[0])
            };
            let waited = (shared.now_ns().saturating_sub(b.since_ns)) as f64 / 1e9;
            out.push_str(&format!(
                "  {who}: waiting on {src} (comm {:#x}, tag {}), blocked {waited:.1}s\n",
                b.comm_id, b.tag
            ));
        }
        if stash.is_empty() {
            out.push_str("          stash: empty\n");
        } else {
            out.push_str("          stash:");
            for &(s, cid, t, n) in stash {
                out.push_str(&format!(" (src {s}, comm {cid:#x}, tag {t}) x{n}"));
            }
            out.push('\n');
        }
    }

    // Wait-for graph: r -> s when blocked rank r can only be satisfied by a
    // send from s. Edges into non-blocked ranks cannot close a cycle.
    if let Some(cycle) = find_wait_cycle(&snap) {
        out.push_str("wait-for cycle: ");
        for r in &cycle {
            out.push_str(&format!("rank {r} -> "));
        }
        out.push_str(&format!(
            "rank {} (each rank waits on a send the next never posts)\n",
            cycle[0]
        ));
        out.push_str(
            "hint: ranks disagree on collective order or tags — compare each rank's \
             blocked (comm, tag) above, and re-run with DCNN_TRACE=1 for the full event log\n",
        );
    } else {
        let waiting_on_live: Vec<usize> = snap
            .iter()
            .enumerate()
            .filter_map(|(r, entry)| {
                main_blocked(entry)
                    .filter(|b| b.sources.iter().any(|&s| main_blocked(&snap[s]).is_none()))
                    .map(|_| r)
            })
            .collect();
        out.push_str(&format!(
            "no wait-for cycle: blocked ranks {waiting_on_live:?} wait on ranks that are not \
             blocked — the expected sender likely exited or never reached the matching send\n"
        ));
    }

    let report = Arc::new(out);
    *memo = Some(Arc::clone(&report));
    report
}

/// Find a cycle in the blocked-rank wait-for graph, as the rank sequence
/// around the cycle (each waits on the next; last waits on first).
fn find_wait_cycle(snap: &[DiagSnapshot]) -> Option<Vec<usize>> {
    let n = snap.len();
    // 0 = unvisited, 1 = on the current DFS path, 2 = done.
    let mut state = vec![0u8; n];
    let mut stack: Vec<usize> = Vec::new();

    fn dfs(
        r: usize,
        snap: &[DiagSnapshot],
        state: &mut [u8],
        stack: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        state[r] = 1;
        stack.push(r);
        if let Some(b) = main_blocked(&snap[r]) {
            // An any-source receive is stuck only if every possible sender
            // is; while one source still runs, draw no edges (it may send).
            let live_source = b.any_source
                && b.sources.iter().any(|&s| s != r && main_blocked(&snap[s]).is_none());
            for &s in &b.sources {
                if live_source || (b.any_source && s == r) {
                    continue; // a blocked rank cannot send to itself
                }
                if main_blocked(&snap[s]).is_none() {
                    continue; // a running rank can still satisfy the recv
                }
                match state[s] {
                    0 => {
                        if let Some(c) = dfs(s, snap, state, stack) {
                            return Some(c);
                        }
                    }
                    1 => {
                        let start = stack.iter().position(|&x| x == s).expect("on path");
                        return Some(stack[start..].to_vec());
                    }
                    _ => {}
                }
            }
        }
        stack.pop();
        state[r] = 2;
        None
    }

    (0..n).find_map(|r| {
        if state[r] == 0 {
            dfs(r, snap, &mut state, &mut stack)
        } else {
            None
        }
    })
}

/// Work item for the comm worker pool: one bucket's blocking collective.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct WorkerState {
    tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

/// A rank's comm worker pool: runs the blocking collective behind each
/// async bucket reduce off the rank's main thread. Threads spawn lazily on
/// the first launch (purely blocking runs pay nothing) and are joined — with
/// any panic payload re-raised, so a watchdog deadlock report survives to
/// the rank thread — when the rank's closure returns.
struct CommWorker {
    rank: usize,
    /// Pool size (from [`RuntimeConfig::comm_workers_or_default`], i.e.
    /// `DCNN_COMM_WORKERS`; default 2, minimum 1).
    threads: usize,
    state: Mutex<WorkerState>,
}

impl CommWorker {
    fn new(rank: usize, threads: usize) -> Self {
        CommWorker {
            rank,
            threads: threads.max(1),
            state: Mutex::new(WorkerState { tx: None, handles: Vec::new() }),
        }
    }

    fn submit(&self, job: Job) {
        let mut state = self.state.lock().expect("comm worker state");
        if state.tx.is_none() {
            assert!(
                state.handles.is_empty(),
                "rank {}: async launch after comm worker shutdown",
                self.rank
            );
            let (tx, rx) = channel::<Job>();
            let rx = Arc::new(Mutex::new(rx));
            for i in 0..self.threads {
                let rx = Arc::clone(&rx);
                let handle = std::thread::Builder::new()
                    .name(format!("dcnn-comm-{}-{i}", self.rank))
                    .spawn(move || loop {
                        // The queue lock is held only for the dequeue; it is
                        // released before the job runs, so a panicking job
                        // cannot poison it.
                        let job = rx.lock().expect("job queue").recv();
                        match job {
                            Ok(job) => job(),
                            Err(_) => return,
                        }
                    })
                    .expect("spawn comm worker thread");
                state.handles.push(handle);
            }
            state.tx = Some(tx);
        }
        if state.tx.as_ref().expect("job sender").send(job).is_err() {
            drop(state);
            // Every worker died before taking the job: join them and
            // re-raise the panic that killed them.
            self.shutdown_and_propagate();
            panic!("rank {}: comm workers exited before accepting the job", self.rank);
        }
    }

    /// Close the job queue, join every worker thread, and re-raise the
    /// first worker panic (if any) on the calling thread. Idempotent.
    fn shutdown_and_propagate(&self) {
        let handles = {
            let mut state = self.state.lock().expect("comm worker state");
            state.tx = None;
            std::mem::take(&mut state.handles)
        };
        let mut first_panic = None;
        for h in handles {
            if let Err(payload) = h.join() {
                if first_panic.is_none() {
                    first_panic = Some(payload);
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Handle to one in-flight nonblocking allreduce, returned by
/// [`Comm::allreduce_async`] / [`crate::algorithms::Allreduce::start`].
/// Resolve it with [`wait`](PendingReduce::wait) (blocking) or poll it with
/// [`try_complete`](PendingReduce::try_complete).
pub struct PendingReduce {
    rx: Receiver<Vec<f32>>,
    done: Option<Vec<f32>>,
    seq: u64,
    local: Arc<RankLocal>,
    worker: Arc<CommWorker>,
}

impl PendingReduce {
    /// Launch sequence number on the parent communicator (bucket index when
    /// every iteration launches its buckets in order).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// True once the reduced buffer is ready; never blocks. After `true`,
    /// [`wait`](PendingReduce::wait) returns immediately.
    pub fn try_complete(&mut self) -> bool {
        if self.done.is_some() {
            return true;
        }
        match self.rx.try_recv() {
            Ok(buf) => {
                self.done = Some(buf);
                true
            }
            Err(TryRecvError::Empty) => false,
            Err(TryRecvError::Disconnected) => self.worker_died(),
        }
    }

    /// Block until the reduction finishes and return the reduced buffer
    /// (every rank's elementwise sum). Blocked time is accounted to
    /// [`CommStats::bucket_wait_ns`].
    pub fn wait(mut self) -> Vec<f32> {
        if let Some(buf) = self.done.take() {
            return buf;
        }
        let start = Instant::now();
        let res = self.rx.recv();
        self.local.bucket_wait_ns.fetch_add(start.elapsed().as_nanos() as u64, Relaxed);
        match res {
            Ok(buf) => buf,
            Err(_) => self.worker_died(),
        }
    }

    /// The worker dropped the result channel without sending: it panicked
    /// (e.g. the deadlock watchdog fired inside the bucket's collective).
    /// Join the pool and re-raise its payload so the report reaches the
    /// rank thread.
    fn worker_died(&self) -> ! {
        self.worker.shutdown_and_propagate();
        panic!("bucket {}: comm worker exited without delivering a result", self.seq)
    }
}

/// A communicator handle: a group of ranks that can exchange messages and
/// run collectives. Cheap to clone-like via [`Comm::split`]. A `Comm` is
/// owned by one rank; it is `Send` (async bucket reduces move a derived
/// handle onto the rank's comm worker) but not `Sync` — concurrent
/// consumers of a rank's inbox each get their own handle, as MPI
/// communicators work.
pub struct Comm {
    global_rank: usize,
    /// Global ranks of the group members, in group-rank order.
    group: Arc<Vec<usize>>,
    /// This rank's index within `group`.
    my_index: usize,
    comm_id: u64,
    split_count: Cell<u64>,
    /// Async launches on this communicator, numbering derived bucket
    /// communicators (symmetric across ranks by collective-call order).
    async_seq: Cell<u64>,
    /// The message fabric (threads or TCP), addressed by global rank.
    transport: Arc<dyn Transport>,
    /// The rank's shared receive router (stash + leader/follower polling).
    router: Arc<Router>,
    /// Counters and trace buffer, shared across all communicator handles on
    /// the rank (parent, splits and buckets), like an MPI profiling layer.
    local: Arc<RankLocal>,
    /// The rank's comm worker pool for async reduces.
    worker: Arc<CommWorker>,
    /// Which inbox consumer this handle's receives belong to.
    consumer: ConsumerId,
    /// Human-readable attribution for bucket communicators (the gradient
    /// segment that sealed the bucket); shown by the deadlock watchdog.
    label: Option<Arc<str>>,
}

/// Reserved tag namespace for runtime-internal collectives (split, barrier).
const TAG_INTERNAL: u32 = 0xFFFF_0000;

impl Comm {
    /// Rank within this communicator.
    pub fn rank(&self) -> usize {
        self.my_index
    }

    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// Rank within the world communicator.
    pub fn global_rank(&self) -> usize {
        self.global_rank
    }

    /// Global ranks of the members of this communicator.
    pub fn group(&self) -> &[usize] {
        &self.group
    }

    /// Name of the transport backend carrying this communicator's messages
    /// ("threads", "tcp") — for diagnostics and smoke tests.
    pub fn transport_backend(&self) -> &'static str {
        self.transport.backend()
    }

    /// Total bytes this rank has sent (across all communicator handles).
    pub fn bytes_sent(&self) -> u64 {
        self.local.bytes_sent.load(Relaxed)
    }

    /// Total messages this rank has sent (across all communicator handles).
    pub fn msgs_sent(&self) -> u64 {
        self.local.msgs_sent.load(Relaxed)
    }

    /// Snapshot of this rank's communication counters (shared across all of
    /// the rank's communicator handles). Diff two snapshots to attribute
    /// traffic and blocked time to a region, e.g. one training epoch.
    pub fn stats(&self) -> CommStats {
        self.local.snapshot()
    }

    /// Start a labeled timing phase; the elapsed wall time is added to this
    /// rank's [`CommStats::phase_ns`] when the returned guard drops. Phases
    /// may nest (times are inclusive).
    pub fn phase(&self, label: &'static str) -> PhaseGuard {
        PHASE_STACK.with(|s| s.borrow_mut().push(label));
        PhaseGuard { local: Arc::clone(&self.local), label, start: Instant::now() }
    }

    /// Send `payload` to group rank `dst` with `tag`. Never blocks.
    pub fn send(&self, dst: usize, tag: u32, payload: Payload) {
        assert!(tag < TAG_INTERNAL, "tag {tag:#x} is reserved for the runtime");
        self.send_raw(dst, tag, payload)
    }

    fn send_raw(&self, dst: usize, tag: u32, payload: Payload) {
        let gdst = self.group[dst];
        self.local.bytes_sent.fetch_add(payload.len_bytes() as u64, Relaxed);
        self.local.link_sent[gdst].fetch_add(payload.len_bytes() as u64, Relaxed);
        self.local.msgs_sent.fetch_add(1, Relaxed);
        self.local.trace(TraceEventKind::Send, self.comm_id, tag, Some(gdst), payload.len_bytes());
        self.transport.send(
            gdst,
            WireMsg { src: self.global_rank, comm_id: self.comm_id, tag, payload },
        );
    }

    /// Receive the next message from group rank `src` with `tag`.
    pub fn recv(&self, src: usize, tag: u32) -> Payload {
        assert!(tag < TAG_INTERNAL, "tag {tag:#x} is reserved for the runtime");
        self.recv_raw(src, tag)
    }

    /// Receive from any group member (`MPI_ANY_SOURCE`). Returns the sender's
    /// group rank and the payload. Used by asynchronous SGD's parameter
    /// server, which serves whichever worker finishes first.
    pub fn recv_any(&self, tag: u32) -> (usize, Payload) {
        assert!(tag < TAG_INTERNAL, "tag {tag:#x} is reserved for the runtime");
        let (gsrc, payload) = self.router.recv_from_sources(
            &self.group,
            true,
            self.comm_id,
            tag,
            self.consumer,
            self.label.as_ref(),
        );
        let grank = self
            .group
            .iter()
            .position(|&g| g == gsrc)
            .expect("source is a group member");
        (grank, payload)
    }

    fn recv_raw(&self, src: usize, tag: u32) -> Payload {
        let gsrc = self.group[src];
        self.router
            .recv_from_sources(&[gsrc], false, self.comm_id, tag, self.consumer, self.label.as_ref())
            .1
    }

    /// Convenience: send an `f32` slice (copies once into the message).
    pub fn send_f32(&self, dst: usize, tag: u32, data: &[f32]) {
        self.send(dst, tag, Payload::f32(data.to_vec()));
    }

    /// Send an already-shared `f32` buffer without copying it; the threaded
    /// backend delivers the sender's allocation to the receiver (zero-copy,
    /// as RDMA would), TCP frames it at the socket boundary only.
    pub fn send_shared_f32(&self, dst: usize, tag: u32, data: std::sync::Arc<Vec<f32>>) {
        self.send(dst, tag, Payload::shared_f32(data));
    }

    /// Convenience: receive an `f32` vector.
    pub fn recv_f32(&self, src: usize, tag: u32) -> Vec<f32> {
        self.recv(src, tag).into_f32()
    }

    /// Convenience: send bytes.
    pub fn send_bytes(&self, dst: usize, tag: u32, data: Vec<u8>) {
        self.send(dst, tag, Payload::bytes(data));
    }

    /// Convenience: receive bytes.
    pub fn recv_bytes(&self, src: usize, tag: u32) -> Vec<u8> {
        self.recv(src, tag).into_bytes()
    }

    /// Dissemination barrier over this communicator (⌈log₂ n⌉ rounds).
    pub fn barrier(&self) {
        let n = self.size();
        if n <= 1 {
            return;
        }
        let _phase = self.phase("barrier");
        let mut step = 1usize;
        let mut round = 0u32;
        while step < n {
            let to = (self.my_index + step) % n;
            // `step < n` always holds here, so no modulo of `step` is
            // needed before the subtraction.
            let from = (self.my_index + n - step) % n;
            self.send_raw(to, TAG_INTERNAL + 1 + round, Payload::bytes(Vec::new()));
            let _ = self.recv_raw(from, TAG_INTERNAL + 1 + round);
            step <<= 1;
            round += 1;
        }
    }

    /// Launch a nonblocking allreduce of `bucket` on this rank's comm
    /// worker, returning a handle to the in-flight reduction. On
    /// [`PendingReduce::wait`] the buffer holds the elementwise sum over
    /// all ranks, exactly as the blocking [`Allreduce::run`] would leave it.
    ///
    /// Collective: every rank of this communicator must launch the same
    /// sequence of async reduces (same algorithms, same bucket lengths, same
    /// order). Each launch runs on its own derived bucket communicator — a
    /// fresh tag space keyed by the launch sequence number — so several
    /// in-flight buckets can never cross-match, on either transport.
    pub fn allreduce_async(
        &self,
        algo: Arc<dyn Allreduce + Send + Sync>,
        bucket: Vec<f32>,
    ) -> PendingReduce {
        self.allreduce_async_labeled(algo, bucket, None)
    }

    /// [`Comm::allreduce_async`] with a human-readable attribution label —
    /// the gradient segment that sealed this bucket. The label shows up in
    /// deadlock-watchdog reports (`rank 0 [bucket 3, sealed by conv1.w]`)
    /// and in the bucket's [`BucketSpan`]; it has no effect on the
    /// collective itself.
    pub fn allreduce_async_labeled(
        &self,
        algo: Arc<dyn Allreduce + Send + Sync>,
        bucket: Vec<f32>,
        label: Option<Arc<str>>,
    ) -> PendingReduce {
        self.collective_async(bucket, label, move |sub, buf| algo.run(sub, buf))
    }

    /// Blocking counts-based ring reduce-scatter: `counts[r]` contiguous
    /// elements of `buf`, in rank order, form the chunk owned by rank `r`;
    /// on return this rank's chunk holds the elementwise sum over all ranks
    /// and the other chunks hold partial sums. The accumulation order of an
    /// element depends only on its owning rank, so for a fixed owner map the
    /// owned bits are independent of how a payload is bucketed. Adds to the
    /// `scatter_*` counters in [`CommStats`]. Collective.
    pub fn reduce_scatter(&self, buf: &mut [f32], counts: &[usize]) {
        let start = Instant::now();
        crate::primitives::ring_reduce_scatter(self, buf, counts);
        self.local.scatter_bytes.fetch_add((buf.len() * 4) as u64, Relaxed);
        self.local.scatter_wait_ns.fetch_add(start.elapsed().as_nanos() as u64, Relaxed);
    }

    /// Blocking counts-based ring allgather of `f32` chunks: each rank
    /// contributes its owned chunk (layout as in [`Comm::reduce_scatter`]);
    /// on return every rank holds the full buffer. Pure forwarding, no
    /// arithmetic. Adds to the `gather_*` counters in [`CommStats`].
    /// Collective.
    pub fn allgather_f32(&self, buf: &mut [f32], counts: &[usize]) {
        let start = Instant::now();
        crate::primitives::ring_allgather(self, buf, counts);
        self.local.gather_bytes.fetch_add((buf.len() * 4) as u64, Relaxed);
        self.local.gather_wait_ns.fetch_add(start.elapsed().as_nanos() as u64, Relaxed);
    }

    /// Launch `algo`'s reduce-scatter seam ([`Allreduce::reduce_scatter`])
    /// nonblocking on this rank's comm worker. On [`PendingReduce::wait`]
    /// the chunk of the buffer owned by this rank (per `counts`) holds the
    /// elementwise sum; other chunks are unspecified. Collective, with the
    /// same launch-ordering contract as [`Comm::allreduce_async`].
    pub fn reduce_scatter_async(
        &self,
        algo: Arc<dyn Allreduce + Send + Sync>,
        bucket: Vec<f32>,
        counts: Vec<usize>,
    ) -> PendingReduce {
        self.reduce_scatter_async_labeled(algo, bucket, counts, None)
    }

    /// [`Comm::reduce_scatter_async`] with a bucket attribution label, the
    /// analog of [`Comm::allreduce_async_labeled`].
    pub fn reduce_scatter_async_labeled(
        &self,
        algo: Arc<dyn Allreduce + Send + Sync>,
        bucket: Vec<f32>,
        counts: Vec<usize>,
        label: Option<Arc<str>>,
    ) -> PendingReduce {
        self.collective_async(bucket, label, move |sub, buf| {
            algo.reduce_scatter(sub, buf, &counts)
        })
    }

    /// Launch a counts-based `f32` allgather nonblocking on this rank's comm
    /// worker; the handle resolves to the fully gathered buffer. Collective,
    /// same launch-ordering contract as [`Comm::allreduce_async`].
    pub fn allgather_async(
        &self,
        bucket: Vec<f32>,
        counts: Vec<usize>,
        label: Option<Arc<str>>,
    ) -> PendingReduce {
        self.collective_async(bucket, label, move |sub, buf| sub.allgather_f32(buf, &counts))
    }

    /// Shared launch machinery for the nonblocking collectives: derives the
    /// per-launch bucket communicator, books the overlap counters and trace
    /// events, and runs `job` on the comm worker.
    fn collective_async(
        &self,
        bucket: Vec<f32>,
        label: Option<Arc<str>>,
        job: impl FnOnce(&Comm, &mut [f32]) + Send + 'static,
    ) -> PendingReduce {
        let seq = self.async_seq.get();
        self.async_seq.set(seq + 1);
        // Deterministic bucket communicator id, identical across members;
        // same FNV-style mixing as `split` but over the launch sequence.
        let mut h = self.comm_id ^ 0xA5B3_55E1_D00D_FEED;
        h = h.wrapping_mul(0x100000001b3).wrapping_add(seq);
        h = h.wrapping_mul(0x100000001b3).wrapping_add(0x9E37);
        let sub = Comm {
            global_rank: self.global_rank,
            group: Arc::clone(&self.group),
            my_index: self.my_index,
            comm_id: h,
            split_count: Cell::new(0),
            async_seq: Cell::new(0),
            transport: Arc::clone(&self.transport),
            router: Arc::clone(&self.router),
            local: Arc::clone(&self.local),
            worker: Arc::clone(&self.worker),
            consumer: ConsumerId::Bucket(seq),
            label: label.clone(),
        };
        let local = Arc::clone(&self.local);
        local.async_launched.fetch_add(1, Relaxed);
        let inflight = local.async_inflight.fetch_add(1, Relaxed) + 1;
        local.async_inflight_hwm.fetch_max(inflight, Relaxed);
        local.trace(TraceEventKind::AsyncLaunch, h, seq as u32, None, bucket.len() * 4);
        let launch_ns = local.shared.now_ns();
        let (done_tx, done_rx) = channel();
        let job_local = Arc::clone(&local);
        self.worker.submit(Box::new(move || {
            let mut bucket = bucket;
            let start = Instant::now();
            job(&sub, &mut bucket);
            job_local.async_comm_ns.fetch_add(start.elapsed().as_nanos() as u64, Relaxed);
            job_local.async_inflight.fetch_sub(1, Relaxed);
            job_local.trace(TraceEventKind::AsyncDone, sub.comm_id, seq as u32, None, bucket.len() * 4);
            job_local.bucket_spans.lock().expect("bucket spans").push(BucketSpan {
                seq,
                bytes: (bucket.len() * 4) as u64,
                launch_ns,
                done_ns: job_local.shared.now_ns(),
                label: label.as_deref().unwrap_or("").to_string(),
            });
            let _ = done_tx.send(bucket);
        }));
        PendingReduce {
            rx: done_rx,
            done: None,
            seq,
            local,
            worker: Arc::clone(&self.worker),
        }
    }

    /// Split into sub-communicators, like `MPI_Comm_split`: ranks passing the
    /// same `color` form a group, ordered by `(key, rank)`. Must be called by
    /// every member of this communicator.
    pub fn split(&self, color: u64, key: i64) -> Comm {
        let n = self.size();
        let me = self.my_index;
        let gen = self.split_count.get();
        self.split_count.set(gen + 1);
        let tag_up = TAG_INTERNAL + 100;
        let tag_down = TAG_INTERNAL + 101;

        // Gather (color, key) at group rank 0, broadcast the table back.
        let table: Vec<(u64, i64)>;
        if me == 0 {
            let mut t = vec![(0, 0); n];
            t[0] = (color, key);
            for (src, slot) in t.iter_mut().enumerate().skip(1) {
                let p = self.recv_raw(src, tag_up);
                let b = p.as_bytes();
                let c = u64::from_le_bytes(b[0..8].try_into().expect("8 bytes"));
                let k = i64::from_le_bytes(b[8..16].try_into().expect("8 bytes"));
                *slot = (c, k);
            }
            table = t;
            let mut flat = Vec::with_capacity(n * 16);
            for &(c, k) in &table {
                flat.extend_from_slice(&c.to_le_bytes());
                flat.extend_from_slice(&k.to_le_bytes());
            }
            // One shared buffer fans out to every destination: each send
            // clones an `Arc`, not the table bytes.
            let flat = Payload::bytes(flat);
            for dst in 1..n {
                self.send_raw(dst, tag_down, flat.clone());
            }
        } else {
            let mut b = Vec::with_capacity(16);
            b.extend_from_slice(&color.to_le_bytes());
            b.extend_from_slice(&key.to_le_bytes());
            self.send_raw(0, tag_up, Payload::bytes(b));
            let p = self.recv_raw(0, tag_down);
            table = p
                .as_bytes()
                .chunks_exact(16)
                .map(|c| {
                    (
                        u64::from_le_bytes(c[0..8].try_into().expect("8")),
                        i64::from_le_bytes(c[8..16].try_into().expect("8")),
                    )
                })
                .collect();
        }

        // Members with my color, sorted by (key, group rank), mapped to
        // global ranks.
        let mut members: Vec<(i64, usize)> = table
            .iter()
            .enumerate()
            .filter(|(_, &(c, _))| c == color)
            .map(|(r, &(_, k))| (k, r))
            .collect();
        members.sort_unstable();
        let group: Vec<usize> = members.iter().map(|&(_, r)| self.group[r]).collect();
        let my_index = group
            .iter()
            .position(|&g| g == self.global_rank)
            .expect("caller is a member of its own color group");

        // Deterministic child communicator id, identical across members.
        let mut h = self.comm_id ^ 0x51_7c_c1_b7_27_22_0a_95;
        for &(c, k) in &table {
            h = h.wrapping_mul(0x100000001b3).wrapping_add(c ^ k as u64);
        }
        h = h.wrapping_mul(0x100000001b3).wrapping_add(color);
        h = h.wrapping_mul(0x100000001b3).wrapping_add(gen);

        Comm {
            global_rank: self.global_rank,
            group: Arc::new(group),
            my_index,
            comm_id: h,
            split_count: Cell::new(0),
            async_seq: Cell::new(0),
            transport: Arc::clone(&self.transport),
            router: Arc::clone(&self.router),
            local: Arc::clone(&self.local),
            worker: Arc::clone(&self.worker),
            consumer: self.consumer,
            label: self.label.clone(),
        }
    }
}

/// Everything one cluster run produced: per-rank results (rank order),
/// per-rank counters, and — when tracing was on — the merged event stream.
pub struct ClusterRun<R> {
    /// The value each rank's closure returned, in rank order.
    pub results: Vec<R>,
    /// Final per-rank communication counters, in rank order.
    pub stats: Vec<CommStats>,
    /// Merged trace events sorted by timestamp; empty unless tracing was
    /// enabled via [`ClusterBuilder::trace`] or `DCNN_TRACE`.
    pub events: Vec<TraceEvent>,
}

/// Configures and launches a rank cluster; [`run_cluster`] is the shorthand
/// for the all-defaults case.
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    n: usize,
    trace: Option<bool>,
    recv_timeout: Option<Duration>,
    transport: Option<TransportKind>,
    config: Option<RuntimeConfig>,
}

/// Build a rank's world communicator on `transport`, run `f`, flush the
/// rank's counters and trace events into `shared`'s sinks, and tear the
/// transport down. The single code path under both the threaded cluster
/// and the per-process TCP runtime. Comm workers (async bucket reduces)
/// are joined — re-raising any worker panic — before the counters flush,
/// so stats include every bucket and the transport outlives its users.
fn rank_main<R>(
    transport: Arc<dyn Transport>,
    shared: Arc<ClusterShared>,
    f: impl FnOnce(&Comm) -> R,
) -> R {
    let rank = transport.rank();
    let n = transport.world_size();
    let comm_workers = shared.comm_workers;
    let local = Arc::new(RankLocal::new(rank, shared));
    let router = Arc::new(Router::new(Arc::clone(&transport), Arc::clone(&local)));
    let worker = Arc::new(CommWorker::new(rank, comm_workers));
    let comm = Comm {
        global_rank: rank,
        group: Arc::new((0..n).collect()),
        my_index: rank,
        comm_id: 0,
        split_count: Cell::new(0),
        async_seq: Cell::new(0),
        transport: Arc::clone(&transport),
        router,
        local: Arc::clone(&local),
        worker: Arc::clone(&worker),
        consumer: ConsumerId::Main,
        label: None,
    };
    let r = f(&comm);
    worker.shutdown_and_propagate();
    local.flush();
    drop(comm);
    transport.shutdown();
    r
}

/// Parse the `DCNN_*` environment, panicking with the parser's readable
/// error (naming the variable and value) on a malformed entry — the
/// entry-point behavior when no explicit [`RuntimeConfig`] was supplied.
fn runtime_config_from_env() -> RuntimeConfig {
    RuntimeConfig::from_env().unwrap_or_else(|e| panic!("{e}"))
}

fn new_cluster_shared(
    n: usize,
    trace_on: bool,
    recv_timeout: Duration,
    cross_process: bool,
    comm_workers: usize,
) -> Arc<ClusterShared> {
    Arc::new(ClusterShared {
        epoch: Instant::now(),
        recv_timeout,
        trace_on,
        cross_process,
        comm_workers,
        diags: (0..n).map(|_| Mutex::new(RankDiag::default())).collect(),
        report: Mutex::new(None),
        trace_sink: Mutex::new(Vec::new()),
        stats_sink: Mutex::new(vec![CommStats::default(); n]),
    })
}

impl ClusterBuilder {
    /// A cluster of `n` ranks with default tracing (off unless `DCNN_TRACE`
    /// or `DCNN_TRACE_JSON` is set), the default receive timeout (60 s
    /// unless `DCNN_RECV_TIMEOUT_MS` is set) and the default transport
    /// (in-process threads unless `DCNN_TRANSPORT=tcp`).
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "cluster needs at least one rank");
        ClusterBuilder { n, trace: None, recv_timeout: None, transport: None, config: None }
    }

    /// Use `config` instead of parsing the process environment. Explicit
    /// builder overrides ([`trace`](Self::trace),
    /// [`recv_timeout`](Self::recv_timeout),
    /// [`transport`](Self::transport)) still win over the config's fields.
    pub fn configure(mut self, config: RuntimeConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Force event tracing on or off, overriding `DCNN_TRACE`.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = Some(on);
        self
    }

    /// How long a receive may block before the deadlock watchdog fires,
    /// overriding `DCNN_RECV_TIMEOUT_MS`. Tests provoke deadlocks with a
    /// short timeout here.
    pub fn recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = Some(timeout);
        self
    }

    /// Select the message fabric, overriding `DCNN_TRANSPORT`. With
    /// [`TransportKind::Tcp`] the ranks are still threads of this process
    /// but every message crosses a real localhost socket — framing, CRC,
    /// connection setup and all (the rendezvous address comes from
    /// `DCNN_RENDEZVOUS`, defaulting to an ephemeral localhost port).
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.transport = Some(kind);
        self
    }

    /// Spawn the rank threads, run `f` on each with its world [`Comm`], and
    /// collect results, counters and trace events. If `DCNN_TRACE_JSON`
    /// names a file, the merged event stream is also written there as JSON
    /// lines.
    ///
    /// # Panics
    /// Propagates the first rank panic with its original payload (so a
    /// watchdog deadlock report survives to the caller), after all rank
    /// threads have been joined.
    pub fn run<R, F>(self, f: F) -> ClusterRun<R>
    where
        R: Send,
        F: Fn(&Comm) -> R + Sync,
    {
        let n = self.n;
        let cfg = self.config.unwrap_or_else(runtime_config_from_env);
        crate::reduce::set_par_threshold(cfg.reduce_par_threshold_or_default());
        let json_path = cfg.trace_json.clone();
        let trace_on = self.trace.unwrap_or_else(|| cfg.trace_or_default());
        let recv_timeout = self.recv_timeout.unwrap_or_else(|| cfg.recv_timeout_or_default());
        let kind = self.transport.unwrap_or_else(|| cfg.transport_or_default());
        let shared =
            new_cluster_shared(n, trace_on, recv_timeout, false, cfg.comm_workers_or_default());

        // Per-rank transport seeds, built up front so rank threads only
        // finish local establishment. TCP mode pre-binds the rendezvous
        // listener (DCNN_RENDEZVOUS, else an ephemeral localhost port) and
        // hands it to rank 0's thread.
        let connect_timeout = cfg.connect_timeout_or_default();
        let fault = cfg.fault;
        let mut local_seeds: Vec<Option<crate::transport::local::LocalTransport>> = Vec::new();
        let mut tcp_host: Mutex<Option<std::net::TcpListener>> = Mutex::new(None);
        let mut tcp_addr = String::new();
        match kind {
            TransportKind::Threads => {
                local_seeds = local_fabric(n).into_iter().map(Some).collect();
            }
            TransportKind::Tcp => {
                let bind =
                    cfg.rendezvous.clone().unwrap_or_else(|| "127.0.0.1:0".to_string());
                let listener = std::net::TcpListener::bind(&bind)
                    .unwrap_or_else(|e| panic!("bind rendezvous {bind}: {e}"));
                tcp_addr = listener.local_addr().expect("rendezvous addr").to_string();
                tcp_host = Mutex::new(Some(listener));
            }
        }

        let results = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for rank in 0..n {
                let seed = match kind {
                    TransportKind::Threads => {
                        Some(local_seeds[rank].take().expect("seed unclaimed"))
                    }
                    TransportKind::Tcp => None,
                };
                let shared = Arc::clone(&shared);
                let f = &f;
                let tcp_host = &tcp_host;
                let tcp_addr = &tcp_addr;
                handles.push(scope.spawn(move || {
                    let transport: Arc<dyn Transport> = match seed {
                        Some(local) => Arc::new(local),
                        None => {
                            let opts = TcpOptions { connect_timeout, nodelay: true };
                            let t = if rank == 0 {
                                let listener = tcp_host
                                    .lock()
                                    .expect("host listener")
                                    .take()
                                    .expect("host listener unclaimed");
                                TcpTransport::host(listener, n, opts)
                            } else {
                                TcpTransport::connect(tcp_addr, rank, n, opts)
                            };
                            let t = t.unwrap_or_else(|e| {
                                panic!("rank {rank}: tcp fabric setup failed: {e}")
                            });
                            apply_link_fault(&t, rank, fault);
                            Arc::new(t)
                        }
                    };
                    rank_main(transport, shared, |c| f(c))
                }));
            }
            // Join everything before propagating any panic (so a deadlock
            // report from rank k isn't lost to rank 0's join).
            let joined: Vec<std::thread::Result<R>> =
                handles.into_iter().map(|h| h.join()).collect();
            let mut results = Vec::with_capacity(n);
            let mut first_panic = None;
            for j in joined {
                match j {
                    Ok(r) => results.push(r),
                    Err(payload) => {
                        if first_panic.is_none() {
                            first_panic = Some(payload);
                        }
                    }
                }
            }
            if let Some(payload) = first_panic {
                std::panic::resume_unwind(payload);
            }
            results
        });

        let stats = std::mem::take(&mut *shared.stats_sink.lock().expect("stats sink"));
        let mut events = std::mem::take(&mut *shared.trace_sink.lock().expect("trace sink"));
        events.sort_by_key(|e| e.t_ns);
        if let Some(path) = &json_path {
            if let Err(e) = write_trace_json(std::path::Path::new(path), &events) {
                eprintln!("DCNN_TRACE_JSON: failed to write {path}: {e}");
            }
        }
        ClusterRun { results, stats, events }
    }
}

/// Everything one rank of a multi-process TCP run produced.
pub struct ProcessRun<R> {
    /// What the rank closure returned.
    pub result: R,
    /// This rank's final communication counters.
    pub stats: CommStats,
    /// This rank's trace events (empty unless tracing was enabled).
    pub events: Vec<TraceEvent>,
}

/// Per-process entry point for the multi-process TCP runtime: join the
/// fabric described by the `DCNN_RANK`, `DCNN_WORLD` and `DCNN_RENDEZVOUS`
/// environment variables, run `f` with this rank's world [`Comm`], and
/// return the result with this rank's counters and trace events.
///
/// Rank 0 binds and hosts the rendezvous address; every other rank dials it
/// (retrying with backoff, since sibling processes start at different
/// times). The deadlock watchdog stays armed, but its report only has
/// visibility into this process's rank. If `DCNN_TRACE_JSON=path` is set,
/// this rank's events are written to `path.rank<N>` as JSON lines — one
/// file per process, mergeable offline by sorting on `t_ns`.
///
/// The `dcnn-launch` binary spawns N local processes wired this way; see
/// the README's transport section.
pub fn run_tcp_rank<R>(f: impl FnOnce(&Comm) -> R) -> ProcessRun<R> {
    run_tcp_rank_with(&runtime_config_from_env(), f)
}

/// [`run_tcp_rank`] with an explicit [`RuntimeConfig`] instead of the
/// process environment. The config must carry `rank`, `world` and
/// `rendezvous` (the `DCNN_RANK` / `DCNN_WORLD` / `DCNN_RENDEZVOUS`
/// triple); everything else falls back to the runtime's defaults.
pub fn run_tcp_rank_with<R>(cfg: &RuntimeConfig, f: impl FnOnce(&Comm) -> R) -> ProcessRun<R> {
    let need = |field: Option<usize>, var: &str| {
        field.unwrap_or_else(|| panic!("{var} must be set for the TCP process runtime"))
    };
    let rank = need(cfg.rank, "DCNN_RANK");
    let world = need(cfg.world, "DCNN_WORLD");
    let rendezvous = cfg
        .rendezvous
        .clone()
        .unwrap_or_else(|| panic!("DCNN_RENDEZVOUS must be set for the TCP process runtime"));
    assert!(world > 0 && rank < world, "rank {rank} out of range for world {world}");

    crate::reduce::set_par_threshold(cfg.reduce_par_threshold_or_default());
    let json_path = cfg.trace_json.clone();
    let trace_on = cfg.trace_or_default();
    let recv_timeout = cfg.recv_timeout_or_default();
    let shared = new_cluster_shared(
        world,
        trace_on,
        recv_timeout,
        true,
        cfg.comm_workers_or_default(),
    );

    let opts = TcpOptions { connect_timeout: cfg.connect_timeout_or_default(), nodelay: true };
    let transport = TcpTransport::establish(rank, world, &rendezvous, opts)
        .unwrap_or_else(|e| panic!("rank {rank}: tcp fabric setup failed: {e}"));
    apply_link_fault(&transport, rank, cfg.fault);
    let result = rank_main(Arc::new(transport), Arc::clone(&shared), f);

    let stats =
        std::mem::take(&mut shared.stats_sink.lock().expect("stats sink")[rank]);
    let mut events = std::mem::take(&mut *shared.trace_sink.lock().expect("trace sink"));
    events.sort_by_key(|e| e.t_ns);
    if let Some(path) = &json_path {
        let per_rank = format!("{path}.rank{rank}");
        if let Err(e) = write_trace_json(std::path::Path::new(&per_rank), &events) {
            eprintln!("DCNN_TRACE_JSON: failed to write {per_rank}: {e}");
        }
    }
    ProcessRun { result, stats, events }
}

/// Apply the link-severing half of a [`crate::config::FaultSpec`] right
/// after the fabric comes up: `drop-link=from:to` makes rank `from` shut
/// down its socket to rank `to`, so both ends observe a bare EOF (the same
/// signature a killed process leaves). Kill faults are the trainer's job —
/// they need step counting — so they are ignored here.
fn apply_link_fault(t: &TcpTransport, rank: usize, fault: Option<crate::config::FaultSpec>) {
    if let Some(crate::config::FaultSpec::DropLink { from, to }) = fault {
        if rank == from {
            t.sever_link(to);
        }
    }
}

/// [`run_tcp_rank_with`], but a dead peer comes back as `Err(CommError)`
/// instead of an unwinding panic. The structured report has already been
/// printed to stderr by the panic hook at the point of failure; callers
/// (the `dcnn-launch` child, bin entry points) just map the error to a
/// nonzero exit. Panics that are *not* [`CommError`]s — setup failures,
/// genuine bugs — keep unwinding unchanged.
pub fn try_run_tcp_rank_with<R>(
    cfg: &RuntimeConfig,
    f: impl FnOnce(&Comm) -> R,
) -> Result<ProcessRun<R>, CommError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_tcp_rank_with(cfg, f))) {
        Ok(run) => Ok(run),
        Err(payload) => match payload.downcast::<CommError>() {
            Ok(e) => Err(*e),
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}

/// Spawn `n` rank threads, run `f` on each with its world [`Comm`], and
/// return the per-rank results in rank order. See [`ClusterBuilder`] for
/// tracing, counters and watchdog configuration.
///
/// # Panics
/// Propagates any rank panic with its original payload (after all threads
/// have been joined).
pub fn run_cluster<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    ClusterBuilder::new(n).run(f).results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_and_sizes() {
        let out = run_cluster(4, |c| (c.rank(), c.size()));
        assert_eq!(out, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn point_to_point_roundtrip() {
        let out = run_cluster(2, |c| {
            if c.rank() == 0 {
                c.send_f32(1, 7, &[1.0, 2.0, 3.0]);
                c.recv_f32(1, 8)
            } else {
                let v = c.recv_f32(0, 7);
                c.send_f32(0, 8, &v.iter().map(|x| x * 2.0).collect::<Vec<_>>());
                v
            }
        });
        assert_eq!(out[0], vec![2.0, 4.0, 6.0]);
        assert_eq!(out[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn tag_matching_reorders() {
        let out = run_cluster(2, |c| {
            if c.rank() == 0 {
                c.send_bytes(1, 1, vec![1]);
                c.send_bytes(1, 2, vec![2]);
                Vec::new()
            } else {
                // Receive in the opposite order of sending.
                let b2 = c.recv_bytes(0, 2);
                let b1 = c.recv_bytes(0, 1);
                vec![b1[0], b2[0]]
            }
        });
        assert_eq!(out[1], vec![1, 2]);
    }

    #[test]
    fn same_tag_preserves_fifo() {
        let out = run_cluster(2, |c| {
            if c.rank() == 0 {
                for i in 0..10u8 {
                    c.send_bytes(1, 3, vec![i]);
                }
                Vec::new()
            } else {
                (0..10).map(|_| c.recv_bytes(0, 3)[0]).collect()
            }
        });
        assert_eq!(out[1], (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn barrier_completes() {
        for n in [1, 2, 3, 5, 8] {
            run_cluster(n, |c| {
                for _ in 0..3 {
                    c.barrier();
                }
            });
        }
    }

    #[test]
    fn split_by_parity() {
        let out = run_cluster(6, |c| {
            let sub = c.split((c.rank() % 2) as u64, c.rank() as i64);
            (sub.rank(), sub.size(), sub.group().to_vec())
        });
        assert_eq!(out[0], (0, 3, vec![0, 2, 4]));
        assert_eq!(out[3], (1, 3, vec![1, 3, 5]));
        assert_eq!(out[5], (2, 3, vec![1, 3, 5]));
    }

    #[test]
    fn split_key_reorders() {
        let out = run_cluster(4, |c| {
            // Reverse order via key.
            let sub = c.split(0, -(c.rank() as i64));
            sub.rank()
        });
        assert_eq!(out, vec![3, 2, 1, 0]);
    }

    #[test]
    fn subcomm_messaging_is_isolated() {
        let out = run_cluster(4, |c| {
            let sub = c.split((c.rank() % 2) as u64, 0);
            // Exchange within the subgroup while the parent also talks.
            if sub.rank() == 0 {
                sub.send_bytes(1, 5, vec![c.rank() as u8]);
                c.barrier();
                0
            } else {
                let v = sub.recv_bytes(0, 5);
                c.barrier();
                v[0] as usize
            }
        });
        assert_eq!(out[2], 0); // rank 2 got byte from rank 0
        assert_eq!(out[3], 1); // rank 3 got byte from rank 1
    }

    #[test]
    fn nested_split() {
        let out = run_cluster(8, |c| {
            let half = c.split((c.rank() / 4) as u64, 0);
            let quarter = half.split((half.rank() / 2) as u64, 0);
            quarter.barrier();
            (half.size(), quarter.size(), quarter.group().to_vec())
        });
        assert_eq!(out[0].0, 4);
        assert_eq!(out[0].1, 2);
        assert_eq!(out[6].2, vec![6, 7]);
    }

    #[test]
    fn bytes_sent_accounting() {
        let out = run_cluster(2, |c| {
            if c.rank() == 0 {
                c.send_f32(1, 0, &[0.0; 100]);
            } else {
                let _ = c.recv_f32(0, 0);
            }
            c.bytes_sent()
        });
        assert_eq!(out[0], 400);
        assert_eq!(out[1], 0);
    }

    #[test]
    fn per_link_counters_attribute_every_sent_byte() {
        let out = run_cluster(3, |c| {
            let before = c.stats();
            if c.rank() == 0 {
                c.send_f32(1, 0, &[0.0; 100]); // 400 bytes to rank 1
                c.send_f32(2, 0, &[0.0; 300]); // 1200 bytes to rank 2
            } else {
                let _ = c.recv_f32(0, 0);
            }
            (before, c.stats())
        });
        let (before, after) = &out[0];
        let links = after.link_bytes_delta(before);
        assert_eq!(links, vec![0, 400, 1200]);
        // Every byte in the aggregate counter is attributed to some link.
        assert_eq!(links.iter().sum::<u64>(), after.bytes_sent - before.bytes_sent);
        assert_eq!(CommStats::link_bytes_max(0, &links), 1200);
        let imb = CommStats::link_imbalance(0, &links);
        assert!((imb - 1.5).abs() < 1e-9, "1200 / mean(800) = 1.5, got {imb}");
        // Idle ranks: no peer traffic at all.
        let (b2, a2) = &out[2];
        let idle = a2.link_bytes_delta(b2);
        assert_eq!(CommStats::link_bytes_max(2, &idle), 0);
        assert_eq!(CommStats::link_imbalance(2, &idle), 0.0);
    }

    #[test]
    fn recv_any_serves_first_arrival() {
        let out = run_cluster(4, |c| {
            if c.rank() == 0 {
                let mut seen = Vec::new();
                for _ in 0..3 {
                    let (src, p) = c.recv_any(9);
                    seen.push((src, p.into_bytes()[0]));
                }
                seen.sort_unstable();
                seen
            } else {
                c.send_bytes(0, 9, vec![c.rank() as u8 * 2]);
                Vec::new()
            }
        });
        assert_eq!(out[0], vec![(1, 2), (2, 4), (3, 6)]);
    }

    #[test]
    fn recv_any_stashes_unrelated_tags() {
        let out = run_cluster(2, |c| {
            if c.rank() == 0 {
                // First a message with a different tag arrives; recv_any for
                // tag 5 must skip over it without losing it.
                let (src, p) = c.recv_any(5);
                let other = c.recv_bytes(1, 6);
                (src, p.into_bytes()[0], other[0])
            } else {
                c.send_bytes(0, 6, vec![66]);
                c.send_bytes(0, 5, vec![55]);
                (0, 0, 0)
            }
        });
        assert_eq!(out[0], (1, 55, 66));
    }

    #[test]
    fn recv_any_in_subcommunicator() {
        let out = run_cluster(4, |c| {
            let sub = c.split((c.rank() % 2) as u64, c.rank() as i64);
            if sub.rank() == 0 {
                let (src, p) = sub.recv_any(3);
                (src, p.into_bytes()[0])
            } else {
                sub.send_bytes(0, 3, vec![c.rank() as u8]);
                (99, 99)
            }
        });
        assert_eq!(out[0], (1, 2)); // rank 2 is sub-rank 1 of the even group
        assert_eq!(out[1], (1, 3));
    }

    #[test]
    #[should_panic]
    fn reserved_tag_rejected() {
        run_cluster(2, |c| {
            if c.rank() == 0 {
                c.send_bytes(1, TAG_INTERNAL + 5, vec![]);
            }
        });
    }

    #[test]
    fn stats_count_both_directions() {
        let run = ClusterBuilder::new(2).run(|c| {
            if c.rank() == 0 {
                c.send_f32(1, 0, &[0.0; 64]);
            } else {
                let _ = c.recv_f32(0, 0);
            }
        });
        assert_eq!(run.stats[0].bytes_sent, 256);
        assert_eq!(run.stats[1].bytes_recvd, 256);
        assert_eq!(run.stats[1].msgs_recvd, 1);
        assert_eq!(run.stats[0].msgs_sent, 1);
    }

    #[test]
    fn stash_high_water_mark_tracks_reordering() {
        let run = ClusterBuilder::new(2).run(|c| {
            if c.rank() == 0 {
                for t in 0..4u32 {
                    c.send_bytes(1, t, vec![t as u8]);
                }
            } else {
                // Receive in reverse tag order: three arrivals stash first.
                for t in (0..4u32).rev() {
                    let _ = c.recv_bytes(0, t);
                }
            }
        });
        assert_eq!(run.stats[1].stash_hwm, 3);
        assert_eq!(run.stats[0].stash_hwm, 0);
    }

    #[test]
    fn phase_timings_accumulate() {
        let run = ClusterBuilder::new(1).run(|c| {
            {
                let _p = c.phase("spin");
                std::thread::sleep(Duration::from_millis(2));
            }
            {
                let _p = c.phase("spin");
                std::thread::sleep(Duration::from_millis(2));
            }
            c.stats().phase("spin")
        });
        let in_run = run.results[0];
        assert!(in_run >= 3_000_000, "phase time too small: {in_run}ns");
        assert_eq!(run.stats[0].phase("spin"), in_run);
        let entry = run.stats[0].phase_ns.iter().find(|p| p.0 == "spin").expect("spin phase");
        assert_eq!(entry.2, 2); // entered twice
    }

    #[test]
    fn trace_records_send_recv_pairs() {
        let run = ClusterBuilder::new(2).trace(true).run(|c| {
            if c.rank() == 0 {
                c.send_bytes(1, 4, vec![1, 2, 3]);
            } else {
                let _ = c.recv_bytes(0, 4);
            }
        });
        use crate::trace::TraceEventKind as K;
        let send = run
            .events
            .iter()
            .find(|e| e.kind == K::Send)
            .expect("send event");
        assert_eq!((send.rank, send.peer, send.tag, send.bytes), (0, Some(1), 4, 3));
        let recv = run
            .events
            .iter()
            .find(|e| e.kind == K::Recv)
            .expect("recv event");
        assert_eq!((recv.rank, recv.peer, recv.tag, recv.bytes), (1, Some(0), 4, 3));
        // Sorted by time: the send happens before its delivery.
        let si = run.events.iter().position(|e| e.kind == K::Send).expect("send");
        let ri = run.events.iter().position(|e| e.kind == K::Recv).expect("recv");
        assert!(si < ri);
    }

    #[test]
    fn trace_off_records_nothing() {
        let run = ClusterBuilder::new(2).trace(false).run(|c| {
            if c.rank() == 0 {
                c.send_bytes(1, 4, vec![9]);
            } else {
                let _ = c.recv_bytes(0, 4);
            }
        });
        assert!(run.events.is_empty());
    }

    #[test]
    fn async_allreduce_matches_blocking_bitwise() {
        use crate::algorithms::RecursiveDoubling;
        let seed = |r: usize| -> Vec<f32> {
            (0..97).map(|i| ((r * 97 + i) as f32).sin() * 3.0).collect()
        };
        let blocking = run_cluster(4, |c| {
            let mut buf = seed(c.rank());
            RecursiveDoubling.run(c, &mut buf);
            buf
        });
        let nonblocking = run_cluster(4, |c| RecursiveDoubling.start(c, seed(c.rank())).wait());
        for (b, nb) in blocking.iter().zip(&nonblocking) {
            let b_bits: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
            let nb_bits: Vec<u32> = nb.iter().map(|x| x.to_bits()).collect();
            assert_eq!(b_bits, nb_bits);
        }
    }

    #[test]
    fn concurrent_buckets_stay_isolated() {
        use crate::algorithms::MultiColor;
        // Buckets big enough that all three launches land before the first
        // reduce can finish — the in-flight high-water mark must show
        // genuine overlap.
        let run = ClusterBuilder::new(4).run(|c| {
            let algo: Arc<dyn Allreduce + Send + Sync> = Arc::new(MultiColor::new(2));
            let pending: Vec<PendingReduce> = (0..3u64)
                .map(|b| {
                    let len = 16_384 + 512 * b as usize;
                    let buf = vec![(c.rank() as f32 + 1.0) * (b as f32 + 1.0); len];
                    c.allreduce_async(Arc::clone(&algo), buf)
                })
                .collect();
            pending.into_iter().map(PendingReduce::wait).collect::<Vec<_>>()
        });
        for out in &run.results {
            for (b, buf) in out.iter().enumerate() {
                let expect = (1.0 + 2.0 + 3.0 + 4.0) * (b as f32 + 1.0);
                assert_eq!(buf.len(), 16_384 + 512 * b);
                assert!(
                    buf.iter().all(|&x| x == expect),
                    "bucket {b}: got {:?}, want {expect}",
                    &buf[..4]
                );
            }
        }
        for s in &run.stats {
            assert_eq!(s.async_launched, 3);
            assert!(s.async_inflight_hwm >= 2, "no overlap: hwm {}", s.async_inflight_hwm);
            assert!(s.async_comm_ns > 0);
        }
    }

    #[test]
    fn try_complete_polls_to_completion() {
        use crate::algorithms::PipelinedRing;
        let out = run_cluster(2, |c| {
            let mut p = PipelinedRing::default().start(c, vec![c.rank() as f32 + 1.0; 8]);
            while !p.try_complete() {
                std::thread::yield_now();
            }
            p.wait()
        });
        assert!(out.iter().all(|b| b.iter().all(|&x| x == 3.0)));
    }

    #[test]
    fn async_reduce_on_subcommunicator() {
        use crate::algorithms::RecursiveDoubling;
        let out = run_cluster(4, |c| {
            let sub = c.split((c.rank() % 2) as u64, c.rank() as i64);
            RecursiveDoubling.start(&sub, vec![c.rank() as f32; 4]).wait()
        });
        assert_eq!(out[0][0], 2.0); // ranks 0 + 2
        assert_eq!(out[1][0], 4.0); // ranks 1 + 3
    }

    #[test]
    fn async_overlaps_with_main_thread_traffic() {
        use crate::algorithms::RecursiveDoubling;
        // The main thread keeps exchanging point-to-point messages while a
        // bucket reduces on the comm worker — both share the inbox through
        // the router and neither may steal the other's messages.
        let out = run_cluster(2, |c| {
            let pending = RecursiveDoubling.start(c, vec![c.rank() as f32 + 1.0; 4096]);
            let peer = 1 - c.rank();
            let mut acc = 0u64;
            for i in 0..50u8 {
                c.send_bytes(peer, 11, vec![i]);
                acc += u64::from(c.recv_bytes(peer, 11)[0]);
            }
            (acc, pending.wait())
        });
        for (acc, buf) in &out {
            assert_eq!(*acc, (0..50u64).sum::<u64>());
            assert!(buf.iter().all(|&x| x == 3.0));
        }
    }
}



