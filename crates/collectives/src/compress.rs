//! Gradient compression — an extension beyond the paper.
//!
//! Half-precision (IEEE 754 binary16) gradient exchange halves the allreduce
//! payload; it became standard practice in the large-batch training line of
//! work the paper competes in. We implement the conversion from scratch
//! (round-to-nearest-even) and wrap any [`Allreduce`] so that local
//! gradients are quantized before the exchange — modelling both the
//! precision loss (in real execution) and the bandwidth saving (in the
//! schedule).

use dcnn_simnet::CommSchedule;

use crate::algorithms::{Allreduce, CostModel};
use crate::runtime::Comm;

/// Convert an `f32` to IEEE 754 binary16 bits, round-to-nearest-even.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x7F_FFFF;

    if exp == 0xFF {
        // Inf / NaN.
        let m = if mant != 0 { 0x200 } else { 0 };
        return sign | 0x7C00 | m;
    }
    // Unbiased exponent.
    let e = exp - 127;
    if e > 15 {
        return sign | 0x7C00; // overflow → ±inf
    }
    if e >= -14 {
        // Normal f16. Keep 10 mantissa bits, round-to-nearest-even on the
        // 13 dropped bits.
        let mut m = mant >> 13;
        let rest = mant & 0x1FFF;
        if rest > 0x1000 || (rest == 0x1000 && (m & 1) == 1) {
            m += 1;
        }
        let mut e16 = (e + 15) as u32;
        if m == 0x400 {
            // Mantissa rounded up past 10 bits.
            m = 0;
            e16 += 1;
            if e16 >= 31 {
                return sign | 0x7C00;
            }
        }
        return sign | ((e16 as u16) << 10) | (m as u16);
    }
    if e >= -24 {
        // Subnormal f16.
        let full = mant | 0x80_0000; // implicit leading 1
        let shift = (-14 - e) + 13;
        let m = full >> shift;
        let rest = full & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let mut m = m;
        if rest > half || (rest == half && (m & 1) == 1) {
            m += 1;
        }
        return sign | (m as u16);
    }
    sign // underflow → ±0
}

/// Convert IEEE 754 binary16 bits to `f32`.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let mant = (h & 0x3FF) as u32;
    let bits = if exp == 0x1F {
        // Inf / NaN.
        sign | 0x7F80_0000 | (mant << 13)
    } else if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // Subnormal: normalize. `lead` counts the zeros above the most
            // significant set bit within the 10-bit field.
            let lead = mant.leading_zeros() - 22;
            let m = (mant << (lead + 1)) & 0x3FF;
            let e = 127 - 15 - lead;
            sign | (e << 23) | (m << 13)
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(bits)
}

/// Quantize a slice in place through f16 (the value each peer would receive).
pub fn quantize_f16(buf: &mut [f32]) {
    for v in buf {
        *v = f16_bits_to_f32(f32_to_f16_bits(*v));
    }
}

/// Wrap an allreduce with f16 gradient quantization: inputs are quantized
/// before the exchange (precision effect), and the compiled schedule carries
/// half the bytes (bandwidth effect).
pub struct Fp16Allreduce<A: Allreduce> {
    inner: A,
}

impl<A: Allreduce> Fp16Allreduce<A> {
    /// Wrap `inner`.
    pub fn new(inner: A) -> Self {
        Fp16Allreduce { inner }
    }
}

impl<A: Allreduce> Allreduce for Fp16Allreduce<A> {
    fn name(&self) -> &'static str {
        "fp16"
    }

    fn run(&self, comm: &Comm, buf: &mut [f32]) {
        let _phase = comm.phase(self.name());
        quantize_f16(buf);
        self.inner.run(comm, buf);
    }

    fn schedule(&self, n: usize, bytes: f64, cost: &CostModel) -> CommSchedule {
        self.inner.schedule(n, bytes / 2.0, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::MultiColor;
    use crate::runtime::run_cluster;

    #[test]
    fn exact_values_roundtrip() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 1024.0, 0.0009765625] {
            let q = f16_bits_to_f32(f32_to_f16_bits(v));
            assert_eq!(q, v, "{v}");
        }
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(f32_to_f16_bits(1.0), 0x3C00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xC000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7BFF); // f16::MAX
        assert_eq!(f32_to_f16_bits(1e6), 0x7C00); // overflow → inf
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7C00);
        assert_eq!(f16_bits_to_f32(0x3C00), 1.0);
        assert_eq!(f16_bits_to_f32(0x7C00), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(0xFC00), f32::NEG_INFINITY);
        assert!(f16_bits_to_f32(0x7E00).is_nan());
    }

    #[test]
    fn subnormals_roundtrip() {
        // Smallest positive f16 subnormal: 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(f32_to_f16_bits(tiny), 0x0001);
        assert_eq!(f16_bits_to_f32(0x0001), tiny);
        // Largest subnormal.
        let big_sub = f16_bits_to_f32(0x03FF);
        assert_eq!(f32_to_f16_bits(big_sub), 0x03FF);
        // Underflow to zero.
        assert_eq!(f32_to_f16_bits(1e-10), 0x0000);
    }

    #[test]
    fn relative_error_bounded_for_normals() {
        // ULP of f16 normals: 2^-11 relative.
        let mut s = 0x12345u64;
        for _ in 0..2000 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let v = ((s % 2_000_000) as f32 - 1_000_000.0) / 37_000.0;
            if v.abs() < 1e-3 {
                continue;
            }
            let q = f16_bits_to_f32(f32_to_f16_bits(v));
            let rel = ((q - v) / v).abs();
            assert!(rel < 1.0 / 2048.0 + 1e-7, "{v} → {q}: rel {rel}");
        }
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16
        // (1 + 2^-10); nearest-even rounds down to 1.0.
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(halfway)), 1.0);
        // Slightly above halfway rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-16);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(above)), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn fp16_allreduce_sums_quantized_inputs() {
        let algo = Fp16Allreduce::new(MultiColor::new(2));
        let out = run_cluster(4, |c| {
            let mut buf = vec![0.1f32 + c.rank() as f32; 16];
            algo.run(c, &mut buf);
            buf[0]
        });
        // Sum of the f16-quantized per-rank values.
        let expect: f32 = (0..4)
            .map(|r| f16_bits_to_f32(f32_to_f16_bits(0.1 + r as f32)))
            .sum();
        for v in out {
            assert!((v - expect).abs() < 1e-3, "{v} vs {expect}");
        }
    }

    #[test]
    fn schedule_halves_bytes() {
        let cost = CostModel::default();
        let full = MultiColor::new(4).schedule(8, 8e6, &cost).total_bytes();
        let half = Fp16Allreduce::new(MultiColor::new(4)).schedule(8, 8e6, &cost).total_bytes();
        assert!((half * 2.0 - full).abs() < 1e-6 * full);
    }
}
