#![warn(missing_docs)]
// Index loops over parallel arrays (ranks, channels, coefficient tables) are
// clearer than zipped iterators in this domain.
#![allow(clippy::needless_range_loop)]

//! # dcnn-collectives — MPI-like runtime and collective algorithms
//!
//! This crate implements the communication layer of *Kumar et al. (CLUSTER
//! 2018)* from scratch:
//!
//! * [`runtime`] — a threaded, in-process message-passing runtime standing in
//!   for MPI over InfiniBand verbs: one OS thread per rank, eager typed
//!   sends over lock-free channels, tag matching, communicator `split`
//!   (used by DIMD's group-based shuffle), and message-based barriers.
//! * [`tree`] — construction of the paper's **multi-color k-ary BFS spanning
//!   trees** (Figure 2): the payload is split into `k` chunks and each chunk
//!   is reduced along its own tree whose *interior (non-leaf) nodes are
//!   disjoint from every other color's*, so the summing work and the
//!   root-adjacent links are spread across the machine.
//! * [`algorithms`] — Allreduce implementations, each able to (a) execute on
//!   real `f32` buffers across the threaded runtime and (b) compile itself to
//!   a [`dcnn_simnet::CommSchedule`] for virtual-time evaluation on the
//!   simulated fat-tree:
//!     * [`algorithms::MultiColor`] — the paper's contribution (§4.2),
//!     * [`algorithms::PipelinedRing`] — the paper's ring comparator (reduce
//!       to a single root along the ring, broadcast in the opposite
//!       direction, §5.1),
//!     * [`algorithms::RecursiveDoubling`] — the "default OpenMPI" comparator,
//!     * [`algorithms::RingReduceScatter`] — classic reduce-scatter +
//!       allgather ring (NCCL/Horovod-style), included as an ablation,
//!     * [`algorithms::HalvingDoubling`] — Rabenseifner's algorithm, ablation.
//! * [`primitives`] — broadcast, reduce, gather, allgather, barrier and the
//!   **pairwise `alltoallv`** used by DIMD's distributed in-memory shuffle
//!   (Algorithm 2 of the paper).
//! * [`reduce`] — the summation kernel (the paper uses POWER altivec; we use
//!   an unrolled, auto-vectorizable loop).

pub mod algorithms;
pub mod cell;
pub mod compress;
pub mod config;
pub mod primitives;
pub mod reduce;
pub mod runtime;
pub mod trace;
pub mod transport;
pub mod tree;
pub mod tune;

pub use algorithms::{
    even_ranges, Allreduce, AllreduceAlgo, CostModel, HalvingDoubling, Hierarchical, MultiColor,
    Pipeline, PipelinedRing, RecursiveDoubling, RingReduceScatter,
};
pub use cell::{cell_fill, f32_crc, CellMeasurement, CellSpec, SimEstimate};
pub use compress::{quantize_f16, Fp16Allreduce};
pub use config::{ConfigError, FaultSpec, OverlapMode, RuntimeConfig};
pub use runtime::{
    run_cluster, run_tcp_rank, run_tcp_rank_with, try_run_tcp_rank_with, BucketSpan,
    ClusterBuilder, ClusterRun, Comm, CommError, CommStats, PendingReduce, ProcessRun,
};
pub use trace::{render_trace, write_trace_json, TraceEvent, TraceEventKind};
pub use transport::{crc32, Payload, Transport, TransportKind};
pub use tree::ColorTree;
pub use tune::{agree_scores, AlgoPolicy, ScoreEntry, Selection, Tuner, TunerConfig};
