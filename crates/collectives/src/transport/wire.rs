//! The `DCTP` wire format, factored out of the socket plumbing.
//!
//! Every message is one length-prefixed frame with a CRC-32 trailer
//! (checksum over everything after the magic):
//!
//! ```text
//! magic "DCTP" | kind u8 | src u32 | comm_id u64 | tag u32 | len u64 | payload | crc u32
//! ```
//!
//! `kind` is 0 for byte payloads, 1 for `f32` payloads (framed as little-
//! endian words, so results are bit-identical to the threaded backend), and
//! 2 for the BYE frame that closes a connection cleanly.
//!
//! ## Copy-free encode/decode
//!
//! [`encode_frame`] is the original staging encoder: it assembles header,
//! payload and CRC into one fresh `Vec` per message, converting `f32`
//! payloads four bytes at a time. It is kept as the byte-exact *reference* —
//! the equivalence tests and the `dcnn-perf` baseline compare against it —
//! but the hot path no longer uses it. Writers instead compute
//! [`FrameParts`] (the 29-byte head and 4-byte CRC trailer around the
//! payload) and hand head/payload/trailer to [`write_frames_vectored`],
//! which pushes them through one `writev`-style call: the payload bytes go
//! from the `Arc` buffer straight into the socket, never re-staged. On
//! little-endian targets (everything we run on) an `f32` payload's wire
//! bytes *are* its in-memory bytes, so the conversion is free too;
//! big-endian targets pay one bounce buffer.
//!
//! Decoding is symmetric: an `f32` body is read directly into the final
//! `Vec<f32>` allocation (no intermediate byte `Vec`, no per-element
//! `from_le_bytes`), with the CRC checked over the same bytes.

use std::borrow::Cow;
use std::io::{self, IoSlice, Read, Write};

use super::{Payload, WireMsg};

/// Leading magic of every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"DCTP";
/// `kind` for raw byte payloads.
pub const KIND_BYTES: u8 = 0;
/// `kind` for little-endian `f32` payloads.
pub const KIND_F32: u8 = 1;
/// `kind` for the graceful-close frame.
pub const KIND_BYE: u8 = 2;
/// `kind` for a data-plane batch request (client → blob server). The
/// header fields are repurposed: `src` is the client's trainer rank, `tag`
/// the request sequence number, `comm_id` the epoch.
pub const KIND_DATA_REQ: u8 = 3;
/// `kind` for a data-plane batch reply (blob server → client): the payload
/// is the packed record list and `comm_id` carries the augmentation salt.
pub const KIND_DATA_BATCH: u8 = 4;
/// `kind` for the data-plane end-of-epoch barrier, sent by the client when
/// its epoch is drained and echoed by the server once the cross-node
/// shuffle (if any) has completed.
pub const KIND_DATA_EOE: u8 = 5;
/// Refuse frames claiming more than this many payload bytes: a corrupted
/// length must not become a giant allocation.
pub const MAX_FRAME_PAYLOAD: u64 = 1 << 31;

/// Fixed-size portion after the magic: kind(1) src(4) comm_id(8) tag(4) len(8).
pub const HEADER_LEN: usize = 25;
/// Magic + header: everything before the payload.
pub const FRAME_HEAD_LEN: usize = 4 + HEADER_LEN;

/// Streaming CRC-32 over multiple slices, same polynomial/table as
/// [`super::crc32`] — lets the vectored write path checksum header and
/// payload without concatenating them first.
struct Crc32(u32);

impl Crc32 {
    fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    fn update(&mut self, data: &[u8]) {
        self.0 = super::crc32_update(self.0, data);
    }

    fn finish(self) -> u32 {
        !self.0
    }
}

/// The wire `kind` byte of a payload.
pub fn payload_kind(p: &Payload) -> u8 {
    match p {
        Payload::Bytes(_) => KIND_BYTES,
        Payload::F32(_) => KIND_F32,
    }
}

/// A payload's wire bytes, borrowed without copying whenever the in-memory
/// representation already matches the wire encoding: always for byte
/// payloads, and for `f32` payloads on little-endian targets (the wire
/// format is little-endian words). Big-endian targets pay one conversion
/// copy.
pub fn payload_wire_bytes(p: &Payload) -> Cow<'_, [u8]> {
    match p {
        Payload::Bytes(b) => Cow::Borrowed(b.as_slice()),
        Payload::F32(v) => f32s_as_le_bytes(v),
    }
}

#[cfg(target_endian = "little")]
fn f32s_as_le_bytes(v: &[f32]) -> Cow<'_, [u8]> {
    // SAFETY: `f32` is 4 bytes with no padding, any byte pattern is a valid
    // `u8`, and `u8` has alignment 1, so reinterpreting the allocation as
    // bytes is always in-bounds and well-formed. On a little-endian target
    // those bytes are exactly the wire encoding.
    Cow::Borrowed(unsafe { std::slice::from_raw_parts(v.as_ptr().cast::<u8>(), v.len() * 4) })
}

#[cfg(not(target_endian = "little"))]
fn f32s_as_le_bytes(v: &[f32]) -> Cow<'_, [u8]> {
    let mut out = Vec::with_capacity(v.len() * 4);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    Cow::Owned(out)
}

/// The constant-size pieces of one frame: everything around the payload.
/// A vectored write sends `head`, the payload bytes, and `crc` back to back
/// — byte-identical to what [`encode_frame`] stages, without the staging.
pub struct FrameParts {
    /// Magic + header (kind, src, comm_id, tag, len).
    pub head: [u8; FRAME_HEAD_LEN],
    /// CRC-32 trailer over header-after-magic + payload.
    pub crc: [u8; 4],
}

/// Compute the head and CRC trailer for one frame whose payload wire bytes
/// are `body`.
pub fn frame_parts(src: usize, comm_id: u64, tag: u32, kind: u8, body: &[u8]) -> FrameParts {
    let mut head = [0u8; FRAME_HEAD_LEN];
    head[0..4].copy_from_slice(&FRAME_MAGIC);
    head[4] = kind;
    head[5..9].copy_from_slice(&(src as u32).to_le_bytes());
    head[9..17].copy_from_slice(&comm_id.to_le_bytes());
    head[17..21].copy_from_slice(&tag.to_le_bytes());
    head[21..29].copy_from_slice(&(body.len() as u64).to_le_bytes());
    let mut crc = Crc32::new();
    crc.update(&head[4..]);
    crc.update(body);
    FrameParts { head, crc: crc.finish().to_le_bytes() }
}

/// Serialize one message as a complete staged frame. This is the reference
/// encoder the vectored path must match byte for byte; the hot path uses
/// [`write_frames_vectored`] instead.
pub fn encode_frame(src: usize, comm_id: u64, tag: u32, payload: &Payload) -> Vec<u8> {
    let (kind, len) = match payload {
        Payload::Bytes(b) => (KIND_BYTES, b.len()),
        Payload::F32(v) => (KIND_F32, v.len() * 4),
    };
    let mut out = Vec::with_capacity(FRAME_HEAD_LEN + len + 4);
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(kind);
    out.extend_from_slice(&(src as u32).to_le_bytes());
    out.extend_from_slice(&comm_id.to_le_bytes());
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&(len as u64).to_le_bytes());
    match payload {
        Payload::Bytes(b) => out.extend_from_slice(b),
        Payload::F32(v) => {
            for x in v.iter() {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
    }
    let crc = super::crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// The graceful-close frame (empty BYE payload).
pub fn encode_bye(src: usize) -> Vec<u8> {
    let parts = frame_parts(src, 0, 0, KIND_BYE, &[]);
    let mut out = Vec::with_capacity(FRAME_HEAD_LEN + 4);
    out.extend_from_slice(&parts.head);
    out.extend_from_slice(&parts.crc);
    out
}

/// Write every buffer in `bufs`, in order, completely — `write_all` over a
/// `writev`-style scatter list. Retries short writes and `Interrupted`;
/// empty buffers are skipped.
pub fn write_all_vectored(w: &mut impl Write, bufs: &[&[u8]]) -> io::Result<()> {
    let mut idx = 0; // current buffer
    let mut off = 0; // bytes of bufs[idx] already written
    while idx < bufs.len() {
        if off == bufs[idx].len() {
            idx += 1;
            off = 0;
            continue;
        }
        let slices: Vec<IoSlice<'_>> = std::iter::once(IoSlice::new(&bufs[idx][off..]))
            .chain(bufs[idx + 1..].iter().filter(|b| !b.is_empty()).map(|b| IoSlice::new(b)))
            .collect();
        let mut n = match w.write_vectored(&slices) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "vectored frame write made no progress",
                ))
            }
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        while n > 0 && idx < bufs.len() {
            let rem = bufs[idx].len() - off;
            if n >= rem {
                n -= rem;
                idx += 1;
                off = 0;
            } else {
                off += n;
                n = 0;
            }
        }
    }
    Ok(())
}

/// Send a batch of frames through one vectored write: head, payload bytes
/// and CRC trailer of every frame go straight from their owning buffers to
/// `w`, with no staging copy of any payload. Byte-identical on the wire to
/// writing each frame's [`encode_frame`] output back to back.
pub fn write_frames_vectored(w: &mut impl Write, msgs: &[WireMsg]) -> io::Result<()> {
    let bodies: Vec<Cow<'_, [u8]>> =
        msgs.iter().map(|m| payload_wire_bytes(&m.payload)).collect();
    let parts: Vec<FrameParts> = msgs
        .iter()
        .zip(&bodies)
        .map(|(m, b)| frame_parts(m.src, m.comm_id, m.tag, payload_kind(&m.payload), b))
        .collect();
    let mut bufs: Vec<&[u8]> = Vec::with_capacity(3 * msgs.len());
    for (p, b) in parts.iter().zip(&bodies) {
        bufs.push(&p.head);
        bufs.push(b);
        bufs.push(&p.crc);
    }
    write_all_vectored(w, &bufs)
}

/// One parsed read off a connection.
#[derive(Debug)]
pub enum FrameRead {
    /// A data frame.
    Msg(WireMsg),
    /// A data-plane service frame ([`KIND_DATA_REQ`], [`KIND_DATA_BATCH`]
    /// or [`KIND_DATA_EOE`]): same CRC'd envelope, byte payload, but it
    /// belongs to the blob-server protocol rather than the rank fabric.
    Service {
        /// Which data-plane kind arrived.
        kind: u8,
        /// The envelope (src / comm_id / tag repurposed per kind) and
        /// payload bytes.
        msg: WireMsg,
    },
    /// The peer closed the connection gracefully (explicit BYE frame).
    Bye,
    /// The stream ended with no BYE: the peer died without shutting down.
    Eof,
}

/// Send a batch of explicit-kind service frames through one vectored write
/// — the data-plane analogue of [`write_frames_vectored`] (which derives
/// the kind from the payload type). Payloads must be bytes; the packed
/// record lists the blob server ships are never typed `f32` on the wire.
pub fn write_service_frames_vectored(
    w: &mut impl Write,
    frames: &[(u8, WireMsg)],
) -> io::Result<()> {
    let parts: Vec<FrameParts> = frames
        .iter()
        .map(|(kind, m)| frame_parts(m.src, m.comm_id, m.tag, *kind, m.payload.as_bytes()))
        .collect();
    let mut bufs: Vec<&[u8]> = Vec::with_capacity(3 * frames.len());
    for (p, (_, m)) in parts.iter().zip(frames) {
        bufs.push(&p.head);
        bufs.push(m.payload.as_bytes());
        bufs.push(&p.crc);
    }
    write_all_vectored(w, &bufs)
}

#[cfg(target_endian = "little")]
fn read_f32_body(r: &mut impl Read, v: &mut [f32], crc: &mut Crc32) -> io::Result<()> {
    // SAFETY: same layout argument as `f32s_as_le_bytes`, mutably — the
    // socket bytes land directly in the final `Vec<f32>` allocation.
    let bytes =
        unsafe { std::slice::from_raw_parts_mut(v.as_mut_ptr().cast::<u8>(), v.len() * 4) };
    r.read_exact(bytes)?;
    crc.update(bytes);
    Ok(())
}

#[cfg(not(target_endian = "little"))]
fn read_f32_body(r: &mut impl Read, v: &mut [f32], crc: &mut Crc32) -> io::Result<()> {
    let mut bytes = vec![0u8; v.len() * 4];
    r.read_exact(&mut bytes)?;
    crc.update(&bytes);
    for (x, c) in v.iter_mut().zip(bytes.chunks_exact(4)) {
        *x = f32::from_le_bytes(c.try_into().expect("4"));
    }
    Ok(())
}

/// Read one frame. A graceful close ([`FrameRead::Bye`]) and a bare EOF
/// ([`FrameRead::Eof`]) are distinct outcomes: every clean shutdown path
/// sends BYE first, so an EOF at a frame boundary means the peer process
/// died (SIGKILL, crash) and its kernel closed the socket.
///
/// `f32` bodies are read straight into the delivered `Vec<f32>` allocation
/// (no staging byte buffer). A `KIND_F32` frame whose claimed length is not
/// a multiple of 4 is rejected with a structured error *before* any body
/// byte is read — trailing bytes are never silently dropped.
pub fn read_frame(r: &mut impl Read) -> io::Result<FrameRead> {
    let mut magic = [0u8; 4];
    if let Err(e) = r.read_exact(&mut magic) {
        return if e.kind() == io::ErrorKind::UnexpectedEof { Ok(FrameRead::Eof) } else { Err(e) };
    }
    if magic != FRAME_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad frame magic"));
    }
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let kind = header[0];
    let src = u32::from_le_bytes(header[1..5].try_into().expect("4")) as usize;
    let comm_id = u64::from_le_bytes(header[5..13].try_into().expect("8"));
    let tag = u32::from_le_bytes(header[13..17].try_into().expect("4"));
    let len = u64::from_le_bytes(header[17..25].try_into().expect("8"));
    if len > MAX_FRAME_PAYLOAD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame claims {len} payload bytes (corrupt length?)"),
        ));
    }
    let mut crc = Crc32::new();
    crc.update(&header);
    let payload = match kind {
        KIND_F32 => {
            if len % 4 != 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "f32 frame from rank {src} claims {len} payload bytes, \
                         not a multiple of 4 — refusing to drop trailing bytes"
                    ),
                ));
            }
            let mut v = vec![0f32; (len / 4) as usize];
            read_f32_body(r, &mut v, &mut crc)?;
            Some(Payload::f32(v))
        }
        KIND_BYTES | KIND_BYE | KIND_DATA_REQ | KIND_DATA_BATCH | KIND_DATA_EOE => {
            let mut body = vec![0u8; len as usize];
            r.read_exact(&mut body)?;
            crc.update(&body);
            (kind != KIND_BYE).then(|| Payload::bytes(body))
        }
        k => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown frame kind {k}"),
            ))
        }
    };
    let mut trailer = [0u8; 4];
    r.read_exact(&mut trailer)?;
    let want = u32::from_le_bytes(trailer);
    let got = crc.finish();
    if got != want {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame CRC mismatch from rank {src}: got {got:#010x}, want {want:#010x}"),
        ));
    }
    match payload {
        Some(payload) if kind >= KIND_DATA_REQ => {
            Ok(FrameRead::Service { kind, msg: WireMsg { src, comm_id, tag, payload } })
        }
        Some(payload) => Ok(FrameRead::Msg(WireMsg { src, comm_id, tag, payload })),
        None => Ok(FrameRead::Bye),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: usize, tag: u32, payload: Payload) -> WireMsg {
        WireMsg { src, comm_id: 7, tag, payload }
    }

    /// Concatenate the vectored pieces of one message — what the socket
    /// would see from the copy-free path.
    fn vectored_bytes(m: &WireMsg) -> Vec<u8> {
        let mut out = Vec::new();
        write_frames_vectored(&mut out, std::slice::from_ref(m)).expect("vec sink");
        out
    }

    #[test]
    fn frame_roundtrip_bytes_and_f32() {
        for payload in [Payload::bytes(vec![1, 2, 3]), Payload::f32(vec![1.5, -2.25, 0.0])] {
            let frame = encode_frame(3, 7, 9, &payload);
            let FrameRead::Msg(back) = read_frame(&mut frame.as_slice()).expect("decode") else {
                panic!("expected a data frame");
            };
            assert_eq!((back.src, back.comm_id, back.tag), (3, 7, 9));
            match (&payload, &back.payload) {
                (Payload::Bytes(a), Payload::Bytes(b)) => assert_eq!(a, b),
                (Payload::F32(a), Payload::F32(b)) => {
                    let ab: Vec<u32> = a.iter().map(|x| x.to_bits()).collect();
                    let bb: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
                    assert_eq!(ab, bb, "f32 payload must survive bit-exactly");
                }
                _ => panic!("payload kind changed in flight"),
            }
        }
    }

    #[test]
    fn vectored_write_matches_staged_encoder_byte_for_byte() {
        // Odd lengths, empty payloads, NaN/inf bit patterns: the copy-free
        // path must put exactly the staged encoder's bytes on the wire.
        let payloads = [
            Payload::bytes(vec![]),
            Payload::bytes(vec![0xAB]),
            Payload::bytes((0..=255).collect()),
            Payload::f32(vec![]),
            Payload::f32(vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0, 1.0e-38]),
            Payload::f32((0..1025).map(|i| (i as f32).sin()).collect()),
        ];
        for (i, payload) in payloads.into_iter().enumerate() {
            let m = msg(3 + i, i as u32, payload);
            let staged = encode_frame(m.src, m.comm_id, m.tag, &m.payload);
            assert_eq!(vectored_bytes(&m), staged, "payload #{i}");
        }
    }

    #[test]
    fn batched_vectored_write_is_frame_concatenation() {
        let msgs = vec![
            msg(0, 1, Payload::bytes(vec![9; 7])),
            msg(1, 2, Payload::f32(vec![0.5; 33])),
            msg(2, 3, Payload::bytes(vec![])),
        ];
        let mut batched = Vec::new();
        write_frames_vectored(&mut batched, &msgs).expect("vec sink");
        let mut seq = Vec::new();
        for m in &msgs {
            seq.extend_from_slice(&encode_frame(m.src, m.comm_id, m.tag, &m.payload));
        }
        assert_eq!(batched, seq);
    }

    #[test]
    fn write_all_vectored_survives_short_writes() {
        /// Sink that accepts at most 3 bytes per call.
        struct Dribble(Vec<u8>);
        impl io::Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                let n = buf.len().min(3);
                self.0.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
                // Only ever consume from the first slice, partially.
                self.write(&bufs[0])
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let parts: [&[u8]; 5] = [b"hello", b"", b" ", b"vectored", b" world"];
        let mut sink = Dribble(Vec::new());
        write_all_vectored(&mut sink, &parts).expect("all written");
        assert_eq!(sink.0, b"hello vectored world");
    }

    #[test]
    fn crc_trailer_catches_corruption() {
        let frame = encode_frame(1, 0, 2, &Payload::bytes(vec![0xAA; 64]));
        // Flip one payload bit.
        for pos in [FRAME_HEAD_LEN, frame.len() - 5] {
            let mut bad = frame.clone();
            bad[pos] ^= 0x10;
            let err = read_frame(&mut bad.as_slice()).expect_err("must reject");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        }
    }

    #[test]
    fn insane_length_rejected_before_allocation() {
        let mut frame = encode_frame(0, 0, 0, &Payload::bytes(vec![1]));
        // Overwrite the length field with 2^62.
        let len_off = 4 + 17;
        frame[len_off..len_off + 8].copy_from_slice(&(1u64 << 62).to_le_bytes());
        let err = read_frame(&mut frame.as_slice()).expect_err("must reject");
        assert!(err.to_string().contains("corrupt length"), "{err}");
    }

    #[test]
    fn misaligned_f32_length_rejected_with_structured_error() {
        // Hand-build an f32 frame whose length is NOT a multiple of 4 but
        // whose CRC is valid, so only the alignment check can reject it:
        // the decoder must refuse (naming the bad length) rather than
        // panic or silently drop the trailing bytes.
        let body = [0x11u8, 0x22, 0x33, 0x44, 0x55, 0x66]; // 6 bytes
        let parts = frame_parts(2, 7, 9, KIND_F32, &body);
        let mut frame = Vec::new();
        frame.extend_from_slice(&parts.head);
        frame.extend_from_slice(&body);
        frame.extend_from_slice(&parts.crc);
        let err = read_frame(&mut frame.as_slice()).expect_err("must reject");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let text = err.to_string();
        assert!(
            text.contains("6 payload bytes") && text.contains("multiple of 4"),
            "error must name the bad length: {text}"
        );
        assert!(text.contains("rank 2"), "error must name the source: {text}");
    }

    #[test]
    fn service_frames_roundtrip_with_kind_intact() {
        let frames = vec![
            (KIND_DATA_REQ, msg(2, 5, Payload::bytes(vec![]))),
            (KIND_DATA_BATCH, msg(0, 6, Payload::bytes((0..=200).collect()))),
            (KIND_DATA_EOE, msg(1, 0xFFFF_FFFF, Payload::bytes(vec![1]))),
        ];
        let mut stream = Vec::new();
        write_service_frames_vectored(&mut stream, &frames).expect("vec sink");
        let mut r = stream.as_slice();
        for (kind, m) in &frames {
            let FrameRead::Service { kind: k, msg: back } = read_frame(&mut r).expect("decode")
            else {
                panic!("expected a service frame");
            };
            assert_eq!(k, *kind);
            assert_eq!((back.src, back.comm_id, back.tag), (m.src, m.comm_id, m.tag));
            assert_eq!(back.payload.as_bytes(), m.payload.as_bytes());
        }
        assert!(matches!(read_frame(&mut r).expect("eof"), FrameRead::Eof));
        // Truly unknown kinds are still rejected.
        let parts = frame_parts(0, 0, 0, 9, b"x");
        let mut bad = Vec::new();
        bad.extend_from_slice(&parts.head);
        bad.extend_from_slice(b"x");
        bad.extend_from_slice(&parts.crc);
        let err = read_frame(&mut bad.as_slice()).expect_err("must reject");
        assert!(err.to_string().contains("unknown frame kind 9"), "{err}");
    }

    #[test]
    fn bye_and_bare_eof_are_distinct_closes() {
        // BYE is a graceful close; bare EOF means the peer died without
        // shutting down — the reader turns only the latter into LinkDown.
        let bye = encode_bye(5);
        assert!(matches!(read_frame(&mut bye.as_slice()).expect("decode"), FrameRead::Bye));
        assert!(matches!(read_frame(&mut [].as_slice()).expect("eof"), FrameRead::Eof));
    }

    #[test]
    fn f32_decode_is_bitwise_through_the_direct_read() {
        let vals = vec![f32::NAN, -f32::NAN, f32::INFINITY, -0.0, f32::MIN_POSITIVE, 7.25];
        let frame = encode_frame(0, 0, 0, &Payload::f32(vals.clone()));
        let FrameRead::Msg(m) = read_frame(&mut frame.as_slice()).expect("decode") else {
            panic!("expected data frame");
        };
        let got: Vec<u32> = m.payload.as_f32().iter().map(|x| x.to_bits()).collect();
        let want: Vec<u32> = vals.iter().map(|x| x.to_bits()).collect();
        assert_eq!(got, want);
    }
}
