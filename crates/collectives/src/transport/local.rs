//! The in-process backend: one `mpsc` inbox per rank thread.
//!
//! This is the refactored form of what the runtime originally hard-wired.
//! Payload buffers are `Arc`-shared ([`Payload`]), so a send moves a pointer
//! across the channel and the receiver that ends up sole owner takes the
//! buffer without copying — the same-process stand-in for zero-copy RDMA.

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Mutex;
use std::time::Duration;

use super::{RecvPoll, Transport, WireMsg};

/// One rank's endpoint on the in-process fabric.
pub struct LocalTransport {
    rank: usize,
    /// Senders to every rank's inbox, indexed by global rank. Each rank owns
    /// a full row (including its own inbox, which also keeps `rx` connected
    /// while the rank lives).
    txs: Vec<Sender<WireMsg>>,
    /// The inbox. `mpsc::Receiver` is single-consumer; the runtime's router
    /// guarantees one polling thread at a time, and the mutex makes the
    /// endpoint shareable between a rank's main thread and its comm worker.
    rx: Mutex<Receiver<WireMsg>>,
}

/// Build the full in-process fabric for `n` ranks: one endpoint per rank,
/// in rank order. Move each endpoint onto its rank's thread.
pub fn local_fabric(n: usize) -> Vec<LocalTransport> {
    let mut txs: Vec<Sender<WireMsg>> = Vec::with_capacity(n);
    let mut rxs: Vec<Receiver<WireMsg>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel();
        txs.push(tx);
        rxs.push(rx);
    }
    rxs.into_iter()
        .enumerate()
        .map(|(rank, rx)| LocalTransport { rank, txs: txs.clone(), rx: Mutex::new(rx) })
        .collect()
}

impl Transport for LocalTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.txs.len()
    }

    fn backend(&self) -> &'static str {
        "threads"
    }

    fn send(&self, dst: usize, msg: WireMsg) {
        // A hung-up peer (its thread panicked and dropped the inbox) must
        // not take the sender down with it — same contract as the TCP
        // backend, where writes to a dead peer are dropped and the failure
        // surfaces on the receive path instead.
        let _ = self.txs[dst].send(msg);
    }

    fn recv_timeout(&self, timeout: Duration) -> RecvPoll {
        match self.rx.lock().expect("inbox receiver").recv_timeout(timeout) {
            Ok(msg) => RecvPoll::Msg(msg),
            Err(RecvTimeoutError::Timeout) => RecvPoll::TimedOut,
            Err(RecvTimeoutError::Disconnected) => RecvPoll::Closed,
        }
    }

    fn shutdown(&self) {
        // Nothing buffered outside the channels themselves; queued messages
        // stay deliverable because receivers own their `rx` ends.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Payload;

    #[test]
    fn fabric_delivers_across_threads() {
        let mut fabric = local_fabric(2);
        let b = fabric.pop().expect("endpoint 1");
        let a = fabric.pop().expect("endpoint 0");
        let t = std::thread::spawn(move || {
            a.send(1, WireMsg { src: 0, comm_id: 0, tag: 5, payload: Payload::bytes(vec![9]) });
        });
        match b.recv_timeout(Duration::from_secs(5)) {
            RecvPoll::Msg(m) => {
                assert_eq!((m.src, m.tag), (0, 5));
                assert_eq!(m.payload.into_bytes(), vec![9]);
            }
            other => panic!("expected message, got {other:?}"),
        }
        t.join().expect("sender thread");
    }

    #[test]
    fn recv_times_out_when_idle() {
        let fabric = local_fabric(1);
        assert!(matches!(
            fabric[0].recv_timeout(Duration::from_millis(10)),
            RecvPoll::TimedOut
        ));
    }
}
