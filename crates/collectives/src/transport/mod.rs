//! Pluggable point-to-point transports behind the rank runtime.
//!
//! The runtime in [`crate::runtime`] is written against one small trait,
//! [`Transport`]: an eager, tagged, rank-addressed message fabric. Two
//! backends implement it:
//!
//! * [`local::LocalTransport`] — the in-process backend: one `mpsc` inbox
//!   per rank thread. Payloads travel as [`Payload`] values whose buffers
//!   are `Arc`-shared, so a same-process send moves a pointer, never the
//!   data (the zero-copy path RDMA would give between nodes).
//! * [`tcp::TcpTransport`] — real sockets: every rank is its own OS process
//!   (or thread) and messages cross a TCP wire as length-prefixed frames
//!   with a CRC-32 trailer. A rank-0 rendezvous bootstraps the full mesh
//!   (`DCNN_RENDEZVOUS`), connects retry with backoff, and per-peer
//!   send/recv threads feed the same single-inbox receive path the local
//!   backend uses.
//!
//! Collectives, the trainer and the examples are all written against
//! [`crate::runtime::Comm`] and run unchanged on either backend; select one
//! with [`crate::runtime::ClusterBuilder::transport`] or `DCNN_TRANSPORT`.

pub mod local;
pub mod tcp;
pub mod wire;

use std::sync::Arc;
use std::time::Duration;

/// Payload of a message. Buffers are `Arc`-shared so cloning a payload (a
/// broadcast fan-out, a same-process send) copies a pointer, not the data;
/// `f32` payloads stay typed end-to-end so the hot allreduce path never
/// serializes inside one process (the TCP backend frames them only at the
/// socket boundary).
#[derive(Debug, Clone)]
pub enum Payload {
    /// Raw bytes (index exchanges, control messages, image records).
    Bytes(Arc<Vec<u8>>),
    /// Gradient / parameter data.
    F32(Arc<Vec<f32>>),
}

impl Payload {
    /// Wrap a byte buffer.
    pub fn bytes(v: Vec<u8>) -> Self {
        Payload::Bytes(Arc::new(v))
    }

    /// Wrap an `f32` buffer.
    pub fn f32(v: Vec<f32>) -> Self {
        Payload::F32(Arc::new(v))
    }

    /// Wrap an already-shared byte buffer without copying it.
    pub fn shared_bytes(v: Arc<Vec<u8>>) -> Self {
        Payload::Bytes(v)
    }

    /// Wrap an already-shared `f32` buffer without copying it. The threaded
    /// backend delivers the very same allocation to the receiver.
    pub fn shared_f32(v: Arc<Vec<f32>>) -> Self {
        Payload::F32(v)
    }

    /// Borrow as bytes; panics if the payload is typed `f32`.
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            Payload::Bytes(b) => b,
            Payload::F32(_) => panic!("expected byte payload, got f32"),
        }
    }

    /// Borrow as `f32`s; panics if the payload is raw bytes.
    pub fn as_f32(&self) -> &[f32] {
        match self {
            Payload::F32(v) => v,
            Payload::Bytes(_) => panic!("expected f32 payload, got bytes"),
        }
    }

    /// Interpret as bytes; panics if the payload is typed `f32`. Takes the
    /// buffer without copying when this is the last reference (the common
    /// single-consumer case); clones only if other holders remain.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            Payload::Bytes(b) => Arc::try_unwrap(b).unwrap_or_else(|a| (*a).clone()),
            Payload::F32(_) => panic!("expected byte payload, got f32"),
        }
    }

    /// Interpret as `f32`s; panics if the payload is raw bytes. Zero-copy
    /// when this is the last reference to the buffer.
    pub fn into_f32(self) -> Vec<f32> {
        match self {
            Payload::F32(v) => Arc::try_unwrap(v).unwrap_or_else(|a| (*a).clone()),
            Payload::Bytes(_) => panic!("expected f32 payload, got bytes"),
        }
    }

    /// The shared `f32` buffer itself; panics if the payload is raw bytes.
    /// Never copies — use this to observe that a same-process send delivered
    /// the sender's allocation.
    pub fn into_shared_f32(self) -> Arc<Vec<f32>> {
        match self {
            Payload::F32(v) => v,
            Payload::Bytes(_) => panic!("expected f32 payload, got bytes"),
        }
    }

    /// Size in bytes, for accounting.
    pub fn len_bytes(&self) -> usize {
        match self {
            Payload::Bytes(b) => b.len(),
            Payload::F32(v) => v.len() * 4,
        }
    }
}

/// One message on the fabric: source rank, communicator, tag, data.
#[derive(Debug, Clone)]
pub struct WireMsg {
    /// Global rank of the sender.
    pub src: usize,
    /// Communicator the message belongs to (0 = world).
    pub comm_id: u64,
    /// MPI-style tag.
    pub tag: u32,
    /// The data.
    pub payload: Payload,
}

/// Outcome of a bounded wait for the next inbound message.
#[derive(Debug)]
pub enum RecvPoll {
    /// A message arrived.
    Msg(WireMsg),
    /// Nothing arrived within the timeout.
    TimedOut,
    /// The link to `peer` died abnormally (torn socket, CRC corruption, a
    /// killed process — anything but a clean BYE). Messages from `peer`
    /// received before the failure remain deliverable; nothing further will
    /// arrive from it. Delivered in-band so a blocked receive fails fast
    /// instead of waiting for a watchdog timeout.
    LinkDown {
        /// Global rank whose link failed.
        peer: usize,
        /// Human-readable failure cause (the underlying I/O error).
        cause: String,
    },
    /// The fabric is gone (every peer hung up); no message can ever arrive.
    Closed,
}

/// An eager, tagged, rank-addressed message fabric — what the rank runtime
/// needs from MPI. Sends never block (buffering happens behind the trait);
/// receives deliver in per-sender FIFO order. One `Transport` instance
/// belongs to one rank, shared between the rank's main thread and its comm
/// worker (hence `Send + Sync`); the runtime's receive router guarantees at
/// most one thread polls `recv_timeout` at a time.
pub trait Transport: Send + Sync {
    /// This endpoint's global rank.
    fn rank(&self) -> usize;

    /// Number of ranks on the fabric.
    fn world_size(&self) -> usize;

    /// Backend name for diagnostics ("threads", "tcp").
    fn backend(&self) -> &'static str;

    /// Send `msg` to global rank `dst`. Must not block on the receiver.
    fn send(&self, dst: usize, msg: WireMsg);

    /// Wait up to `timeout` for the next inbound message (any source).
    fn recv_timeout(&self, timeout: Duration) -> RecvPoll;

    /// Flush queued sends and tear the fabric down. Called once, after the
    /// rank's work has returned; must leave already-sent data deliverable
    /// to peers still receiving.
    fn shutdown(&self);
}

/// Which [`Transport`] backend a cluster run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process rank threads over `mpsc` channels (the default).
    Threads,
    /// Real TCP sockets between ranks (threads or separate processes).
    Tcp,
}

impl TransportKind {
    /// Resolve the backend from the `DCNN_TRANSPORT` environment variable
    /// (`tcp` selects TCP; anything else, including unset, selects threads).
    #[deprecated(note = "use crate::config::RuntimeConfig::from_env, which parses every DCNN_* \
                         variable in one place and rejects malformed values")]
    pub fn from_env() -> Self {
        match std::env::var("DCNN_TRANSPORT") {
            Ok(v) if v.eq_ignore_ascii_case("tcp") => TransportKind::Tcp,
            _ => TransportKind::Threads,
        }
    }
}

/// Reflected polynomial of CRC-32/IEEE.
const CRC_POLY: u32 = 0xEDB8_8320;

/// Slicing-by-8 lookup tables: `CRC_TABLES[0]` is the classic byte-at-a-time
/// table; `CRC_TABLES[k]` advances a byte that sits `k` positions further
/// ahead in the stream, so eight table reads retire eight input bytes with
/// one XOR tree instead of an eight-deep dependent chain.
const fn crc_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { CRC_POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            t[k][i] = t[0][(t[k - 1][i] & 0xFF) as usize] ^ (t[k - 1][i] >> 8);
            i += 1;
        }
        k += 1;
    }
    t
}

/// Lookup tables computed at compile time (8 × 256 × 4 B = 8 KiB).
static CRC_TABLES: [[u32; 256]; 8] = crc_tables();

/// Advance a *raw* (pre-/post-inversion handled by the caller) CRC-32 state
/// over `data` with slicing-by-8. Streaming callers seed with
/// `0xFFFF_FFFF`, fold in chunks as they arrive, and invert once at the
/// end — exactly what the frame writer does around its scattered
/// header/payload/trailer pieces.
pub fn crc32_update(mut c: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// CRC-32 (IEEE 802.3) of `data`, from scratch (slicing-by-8). Guards every
/// TCP frame (trailer) and every DIMD blob record — `dcnn_dimd::crc`
/// re-exports this single implementation (the dependency points dimd →
/// collectives, so the shared code lives here).
pub fn crc32(data: &[u8]) -> u32 {
    !crc32_update(0xFFFF_FFFF, data)
}

/// The pre-slicing byte-at-a-time table walk, kept as the reference the
/// equivalence tests (and the perf baseline) compare the sliced kernel
/// against.
pub fn crc32_bytewise(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32_bytewise(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_bytewise(b""), 0);
    }

    #[test]
    fn sliced_crc_matches_bytewise_on_random_inputs() {
        // Deterministic xorshift stream; lengths sweep every alignment
        // class around the 8-byte slicing width plus larger buffers.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut byte = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        };
        for len in (0..64).chain([255, 256, 257, 1 << 12, (1 << 16) + 3]) {
            let data: Vec<u8> = (0..len).map(|_| byte()).collect();
            assert_eq!(crc32(&data), crc32_bytewise(&data), "len {len}");
        }
    }

    #[test]
    fn sliced_crc_matches_bytewise_on_adversarial_inputs() {
        // Patterns that break table-mixing bugs: all-zero, all-ones, each
        // single-bit flip near slice boundaries, and runs of the polynomial
        // bytes themselves.
        for data in [vec![0u8; 1024], vec![0xFF; 1024], vec![0xA5; 7], vec![0x5A; 9]] {
            assert_eq!(crc32(&data), crc32_bytewise(&data));
        }
        let base = vec![0u8; 40];
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut d = base.clone();
                d[byte] ^= 1 << bit;
                assert_eq!(crc32(&d), crc32_bytewise(&d), "flip {byte}:{bit}");
            }
        }
        let poly: Vec<u8> = CRC_POLY.to_le_bytes().iter().copied().cycle().take(123).collect();
        assert_eq!(crc32(&poly), crc32_bytewise(&poly));
    }

    #[test]
    fn streaming_update_is_split_invariant() {
        let data: Vec<u8> = (0u32..300).map(|i| (i * 31 % 251) as u8).collect();
        let whole = !crc32_update(0xFFFF_FFFF, &data);
        for split in [0, 1, 7, 8, 9, 128, 299, 300] {
            let (a, b) = data.split_at(split);
            let st = crc32_update(0xFFFF_FFFF, a);
            assert_eq!(!crc32_update(st, b), whole, "split {split}");
        }
    }

    #[test]
    fn payload_into_bytes_is_zero_copy_when_unique() {
        let v = vec![1u8, 2, 3];
        let ptr = v.as_ptr() as usize;
        let p = Payload::bytes(v);
        let back = p.into_bytes();
        assert_eq!(back.as_ptr() as usize, ptr, "unique payload should not copy");
    }

    #[test]
    fn payload_clone_shares_the_buffer() {
        let p = Payload::f32(vec![1.0, 2.0]);
        let q = p.clone();
        let (a, b) = match (&p, &q) {
            (Payload::F32(a), Payload::F32(b)) => (Arc::as_ptr(a), Arc::as_ptr(b)),
            _ => unreachable!(),
        };
        assert_eq!(a, b);
        // Unwrapping while a clone lives must fall back to a copy.
        let v = p.into_f32();
        assert_eq!(v, vec![1.0, 2.0]);
        assert_eq!(q.as_f32(), &[1.0, 2.0]);
    }

    #[test]
    fn payload_len_bytes() {
        assert_eq!(Payload::bytes(vec![0; 7]).len_bytes(), 7);
        assert_eq!(Payload::f32(vec![0.0; 7]).len_bytes(), 28);
    }
}
