//! The TCP backend: ranks as separate OS processes (or threads) talking
//! over real sockets.
//!
//! ## Wire format
//!
//! Every message is one length-prefixed frame with a CRC-32 trailer
//! (checksum over everything after the magic, [`crate::transport::crc32`],
//! the same implementation `dcnn_dimd::crc` re-exports):
//!
//! ```text
//! magic "DCTP" | kind u8 | src u32 | comm_id u64 | tag u32 | len u64 | payload | crc u32
//! ```
//!
//! `kind` is 0 for byte payloads, 1 for `f32` payloads (framed as little-
//! endian words, so results are bit-identical to the threaded backend), and
//! 2 for the BYE frame that closes a connection cleanly.
//!
//! ## Bootstrap
//!
//! Rank 0 listens on the rendezvous address (the `DCNN_RENDEZVOUS`
//! environment variable, e.g. `127.0.0.1:47555`). Every rank binds an
//! ephemeral data listener, registers `(rank, data_addr)` with rank 0
//! (connect retries with exponential backoff — processes start at different
//! times), and receives the full address table back. The mesh is then built
//! deterministically: rank *r* dials every rank below it and accepts from
//! every rank above it, each connection starting with a HELLO frame naming
//! the dialer's rank.
//!
//! ## Data plane
//!
//! Each established connection gets a reader thread (parses frames, checks
//! the CRC, pushes [`WireMsg`]s into the rank's single inbox — the same
//! receive path the threaded backend uses) and a writer thread (drains a
//! queue of outbound messages so [`Transport::send`] never blocks on a slow
//! peer, preserving the eager-protocol guarantee the collectives rely on).
//!
//! ## Failure semantics
//!
//! A connection that ends **without** a BYE frame is an abnormal death: a
//! SIGKILLed peer's kernel closes the socket, a torn link resets it, a
//! corrupted frame fails its CRC. In every such case the reader/writer
//! thread delivers a [`RecvPoll::LinkDown`] event into the same inbox the
//! data frames use, so a receive blocked on that peer fails fast — no
//! timeout required. Messages that arrived before the failure stay
//! deliverable (per-sender FIFO holds right up to the cut). A clean
//! shutdown always sends BYE first, which is what lets bare EOF be treated
//! as a peer death rather than a graceful close.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use super::{crc32, Payload, RecvPoll, Transport, WireMsg};

const FRAME_MAGIC: [u8; 4] = *b"DCTP";
const KIND_BYTES: u8 = 0;
const KIND_F32: u8 = 1;
const KIND_BYE: u8 = 2;
/// Refuse frames claiming more than this many payload bytes: a corrupted
/// length must not become a giant allocation.
const MAX_FRAME_PAYLOAD: u64 = 1 << 31;

/// Fixed-size portion after the magic: kind(1) src(4) comm_id(8) tag(4) len(8).
const HEADER_LEN: usize = 25;

/// Connection-establishment tuning.
#[derive(Debug, Clone)]
pub struct TcpOptions {
    /// Give up dialing (rendezvous or peer) after this long.
    pub connect_timeout: Duration,
    /// Set `TCP_NODELAY` on every connection (latency over throughput; the
    /// collectives exchange many small control frames).
    pub nodelay: bool,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions { connect_timeout: Duration::from_secs(20), nodelay: true }
    }
}

/// Commands for a per-peer writer thread.
enum WriterCmd {
    Frame(WireMsg),
    Bye,
}

/// What the reader/writer threads push into the rank's single inbox: data
/// frames, or the structured death notice of a link.
enum Inbound {
    Msg(WireMsg),
    LinkDown { peer: usize, cause: String },
}

/// One rank's endpoint on the TCP fabric. See the module docs for the
/// protocol; from the runtime's point of view this behaves exactly like
/// [`crate::transport::local::LocalTransport`].
pub struct TcpTransport {
    rank: usize,
    world: usize,
    /// The single inbox all reader threads feed. Mutex-wrapped so the
    /// endpoint is shareable between a rank's main thread and its comm
    /// worker (the runtime's router serializes actual polling).
    inbox_rx: Mutex<Receiver<Inbound>>,
    /// Loopback for self-sends (no socket, no serialization).
    inbox_tx: Sender<Inbound>,
    /// Outbound queues, indexed by peer global rank (`None` at `rank`).
    peers: Vec<Option<Sender<WriterCmd>>>,
    /// Raw socket per peer (clone of the reader/writer streams), kept so
    /// [`TcpTransport::sever_link`] can cut a live connection for fault
    /// injection without going through the writer queue.
    links: Mutex<Vec<Option<TcpStream>>>,
    /// Reader + writer threads, joined on shutdown.
    threads: Mutex<Vec<JoinHandle<()>>>,
}

/// Serialize one message as a frame.
fn encode_frame(src: usize, comm_id: u64, tag: u32, payload: &Payload) -> Vec<u8> {
    let (kind, len) = match payload {
        Payload::Bytes(b) => (KIND_BYTES, b.len()),
        Payload::F32(v) => (KIND_F32, v.len() * 4),
    };
    let mut out = Vec::with_capacity(4 + HEADER_LEN + len + 4);
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(kind);
    out.extend_from_slice(&(src as u32).to_le_bytes());
    out.extend_from_slice(&comm_id.to_le_bytes());
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&(len as u64).to_le_bytes());
    match payload {
        Payload::Bytes(b) => out.extend_from_slice(b),
        Payload::F32(v) => {
            for x in v.iter() {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
    }
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn encode_bye(src: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + HEADER_LEN + 4);
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(KIND_BYE);
    out.extend_from_slice(&(src as u32).to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes());
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// One parsed read off a connection.
#[derive(Debug)]
enum FrameRead {
    /// A data frame.
    Msg(WireMsg),
    /// The peer closed the connection gracefully (explicit BYE frame).
    Bye,
    /// The stream ended with no BYE: the peer died without shutting down.
    Eof,
}

/// Read one frame. A graceful close ([`FrameRead::Bye`]) and a bare EOF
/// ([`FrameRead::Eof`]) are distinct outcomes: every clean shutdown path
/// sends BYE first, so an EOF at a frame boundary means the peer process
/// died (SIGKILL, crash) and its kernel closed the socket.
fn read_frame(r: &mut impl Read) -> io::Result<FrameRead> {
    let mut magic = [0u8; 4];
    if let Err(e) = r.read_exact(&mut magic) {
        return if e.kind() == io::ErrorKind::UnexpectedEof { Ok(FrameRead::Eof) } else { Err(e) };
    }
    if magic != FRAME_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad frame magic"));
    }
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let kind = header[0];
    let src = u32::from_le_bytes(header[1..5].try_into().expect("4")) as usize;
    let comm_id = u64::from_le_bytes(header[5..13].try_into().expect("8"));
    let tag = u32::from_le_bytes(header[13..17].try_into().expect("4"));
    let len = u64::from_le_bytes(header[17..25].try_into().expect("8"));
    if len > MAX_FRAME_PAYLOAD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame claims {len} payload bytes (corrupt length?)"),
        ));
    }
    if kind == KIND_F32 && len % 4 != 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "f32 frame length not word-aligned"));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let mut trailer = [0u8; 4];
    r.read_exact(&mut trailer)?;
    let want = u32::from_le_bytes(trailer);
    // CRC over header + payload, exactly what the writer summed.
    let mut c = 0xFFFF_FFFFu32;
    for &b in header.iter().chain(body.iter()) {
        c = super::CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    let got = !c;
    if got != want {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame CRC mismatch from rank {src}: got {got:#010x}, want {want:#010x}"),
        ));
    }
    if kind == KIND_BYE {
        return Ok(FrameRead::Bye);
    }
    let payload = match kind {
        KIND_BYTES => Payload::bytes(body),
        KIND_F32 => {
            let v: Vec<f32> = body
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("4")))
                .collect();
            Payload::f32(v)
        }
        k => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown frame kind {k}"),
            ))
        }
    };
    Ok(FrameRead::Msg(WireMsg { src, comm_id, tag, payload }))
}

/// Dial `addr`, retrying with exponential backoff until `timeout` elapses.
/// Needed because peer processes (and rank 0's rendezvous listener) come up
/// at different times.
fn connect_with_backoff(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    let mut delay = Duration::from_millis(5);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() + delay >= deadline {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("connect to {addr} failed after {timeout:?} of retries: {e}"),
                    ));
                }
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(200));
            }
        }
    }
}

fn write_len_prefixed(w: &mut impl Write, data: &[u8]) -> io::Result<()> {
    w.write_all(&(data.len() as u16).to_le_bytes())?;
    w.write_all(data)
}

fn read_len_prefixed(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 2];
    r.read_exact(&mut len)?;
    let mut buf = vec![0u8; u16::from_le_bytes(len) as usize];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Rank 0's side of the rendezvous: accept `n-1` registrations of
/// `(rank, data_addr)` within `timeout`, then send everyone the full table.
///
/// The accept loop is bounded: if some rank never starts (a crashed
/// launcher child, a typoed world size), the host fails after `timeout`
/// with an error **listing the ranks that never registered** instead of
/// blocking every process in the job forever. A rank that re-registers
/// (its first registration connection tore mid-handshake and it retried
/// with backoff) replaces its earlier entry — last registration wins.
fn rendezvous_host(
    listener: &TcpListener,
    n: usize,
    my_data_addr: &str,
    timeout: Duration,
) -> io::Result<Vec<String>> {
    let deadline = Instant::now() + timeout;
    listener.set_nonblocking(true)?;
    let mut table: Vec<Option<String>> = vec![None; n];
    table[0] = Some(my_data_addr.to_string());
    let mut regs: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
    while table.iter().any(|t| t.is_none()) {
        let mut s = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    let missing: Vec<String> = table
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| t.is_none())
                        .map(|(r, _)| r.to_string())
                        .collect();
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!(
                            "rendezvous timed out after {timeout:?}: rank(s) {} never \
                             registered (world {n})",
                            missing.join(", ")
                        ),
                    ));
                }
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(e) => return Err(e),
        };
        s.set_nonblocking(false)?;
        let mut rank_buf = [0u8; 4];
        s.read_exact(&mut rank_buf)?;
        let r = u32::from_le_bytes(rank_buf) as usize;
        if r == 0 || r >= n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("rendezvous registration from out-of-range rank {r} (world {n})"),
            ));
        }
        let addr = String::from_utf8(read_len_prefixed(&mut s)?)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        table[r] = Some(addr);
        regs[r] = Some(s);
    }
    listener.set_nonblocking(false)?;
    let full: Vec<String> = table.into_iter().map(|t| t.expect("filled")).collect();
    for s in regs.iter_mut().flatten() {
        s.write_all(&(n as u32).to_le_bytes())?;
        for a in &full {
            write_len_prefixed(s, a.as_bytes())?;
        }
        s.flush()?;
    }
    Ok(full)
}

/// A non-zero rank's side of the rendezvous: register and read the table
/// back. One attempt; [`rendezvous_register`] wraps this in a bounded
/// retry loop so a registration connection that tears mid-handshake (rank
/// 0 restarting, a flaky first SYN) is re-dialed instead of fatal.
fn rendezvous_register_once(
    addr: &str,
    rank: usize,
    n: usize,
    my_data_addr: &str,
    timeout: Duration,
) -> io::Result<Vec<String>> {
    let mut s = connect_with_backoff(addr, timeout)?;
    s.write_all(&(rank as u32).to_le_bytes())?;
    write_len_prefixed(&mut s, my_data_addr.as_bytes())?;
    s.flush()?;
    let mut n_buf = [0u8; 4];
    s.read_exact(&mut n_buf)?;
    let got_n = u32::from_le_bytes(n_buf) as usize;
    if got_n != n {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("rendezvous world size mismatch: host says {got_n}, we say {n}"),
        ));
    }
    let mut table = Vec::with_capacity(n);
    for _ in 0..n {
        table.push(
            String::from_utf8(read_len_prefixed(&mut s)?)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
        );
    }
    Ok(table)
}

/// Whether a bootstrap-time I/O failure is a torn connection worth
/// re-dialing (as opposed to a protocol violation, which never heals).
fn is_torn(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionRefused
    )
}

/// Register with the rendezvous, retrying torn connections with backoff
/// until `opts.connect_timeout` elapses.
fn rendezvous_register(
    addr: &str,
    rank: usize,
    n: usize,
    my_data_addr: &str,
    opts: &TcpOptions,
) -> io::Result<Vec<String>> {
    let deadline = Instant::now() + opts.connect_timeout;
    let mut delay = Duration::from_millis(5);
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        match rendezvous_register_once(addr, rank, n, my_data_addr, left.max(delay)) {
            Ok(table) => return Ok(table),
            Err(e) if is_torn(&e) && Instant::now() + delay < deadline => {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(200));
            }
            Err(e) => {
                return Err(io::Error::new(
                    e.kind(),
                    format!("rank {rank}: rendezvous registration with {addr} failed: {e}"),
                ))
            }
        }
    }
}

/// Dial a mesh peer and complete the HELLO handshake, retrying torn
/// connections with backoff until `timeout` elapses.
fn mesh_dial(addr: &str, my_rank: usize, timeout: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    let mut delay = Duration::from_millis(5);
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        let attempt = connect_with_backoff(addr, left.max(delay)).and_then(|mut s| {
            s.write_all(&FRAME_MAGIC)?;
            s.write_all(&(my_rank as u32).to_le_bytes())?;
            s.flush()?;
            Ok(s)
        });
        match attempt {
            Ok(s) => return Ok(s),
            Err(e) if is_torn(&e) && Instant::now() + delay < deadline => {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(200));
            }
            Err(e) => {
                return Err(io::Error::new(
                    e.kind(),
                    format!("rank {my_rank}: mesh dial of {addr} failed: {e}"),
                ))
            }
        }
    }
}

impl TcpTransport {
    /// Establish the fabric as rank 0, hosting the rendezvous on an
    /// already-bound `listener` (bind it yourself to pick the port, or use
    /// [`TcpTransport::establish`] to bind from an address string).
    pub fn host(listener: TcpListener, world: usize, opts: TcpOptions) -> io::Result<Self> {
        Self::build(0, world, RendezvousRole::Host(listener), opts)
    }

    /// Establish the fabric as a non-zero rank, registering with the
    /// rendezvous at `addr`.
    pub fn connect(addr: &str, rank: usize, world: usize, opts: TcpOptions) -> io::Result<Self> {
        assert!(rank > 0 && rank < world, "rank {rank} out of range for world {world}");
        Self::build(rank, world, RendezvousRole::Peer(addr.to_string()), opts)
    }

    /// Establish the fabric from `(rank, world, rendezvous)`: rank 0 binds
    /// and hosts `rendezvous`, everyone else dials it. This is the entry the
    /// multi-process runtime uses with `DCNN_RANK` / `DCNN_WORLD` /
    /// `DCNN_RENDEZVOUS`.
    pub fn establish(rank: usize, world: usize, rendezvous: &str, opts: TcpOptions) -> io::Result<Self> {
        if rank == 0 {
            let listener = TcpListener::bind(rendezvous)?;
            Self::host(listener, world, opts)
        } else {
            Self::connect(rendezvous, rank, world, opts)
        }
    }

    fn build(rank: usize, world: usize, role: RendezvousRole, opts: TcpOptions) -> io::Result<Self> {
        assert!(world >= 1, "world needs at least one rank");
        let (inbox_tx, inbox_rx) = channel::<Inbound>();
        let mut peers: Vec<Option<Sender<WriterCmd>>> = (0..world).map(|_| None).collect();
        let mut links: Vec<Option<TcpStream>> = (0..world).map(|_| None).collect();
        let mut threads = Vec::new();

        if world > 1 {
            // Every rank accepts mesh connections on its own ephemeral
            // data listener; the rendezvous only trades addresses.
            let data_listener = TcpListener::bind("127.0.0.1:0")?;
            let my_data_addr = data_listener.local_addr()?.to_string();
            let table = match &role {
                RendezvousRole::Host(listener) => {
                    rendezvous_host(listener, world, &my_data_addr, opts.connect_timeout)?
                }
                RendezvousRole::Peer(addr) => {
                    rendezvous_register(addr, rank, world, &my_data_addr, &opts)?
                }
            };

            // Deterministic mesh: dial below, accept from above.
            let mut streams: Vec<Option<TcpStream>> = (0..world).map(|_| None).collect();
            for peer in 0..rank {
                streams[peer] = Some(mesh_dial(&table[peer], rank, opts.connect_timeout)?);
            }
            let mut missing = world - rank - 1;
            while missing > 0 {
                let (mut s, _) = data_listener.accept()?;
                let mut hello = [0u8; 8];
                // A dialer that died between connect and HELLO delivers a
                // short read here; skip the husk and keep accepting (the
                // retrying dialer will come back on a fresh connection).
                match s.read_exact(&mut hello) {
                    Ok(()) => {}
                    Err(e) if is_torn(&e) => continue,
                    Err(e) => return Err(e),
                }
                if hello[0..4] != FRAME_MAGIC {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "bad mesh hello"));
                }
                let peer = u32::from_le_bytes(hello[4..8].try_into().expect("4")) as usize;
                if peer <= rank || peer >= world {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected mesh hello from rank {peer}"),
                    ));
                }
                // Last HELLO wins: a duplicate means the dialer's first
                // attempt tore after the handshake bytes left its socket.
                if streams[peer].replace(s).is_none() {
                    missing -= 1;
                }
            }

            for (peer, slot) in streams.into_iter().enumerate() {
                let Some(stream) = slot else { continue };
                if opts.nodelay {
                    stream.set_nodelay(true)?;
                }
                let reader = stream.try_clone()?;
                links[peer] = Some(stream.try_clone()?);
                let (wtx, wrx) = channel::<WriterCmd>();
                peers[peer] = Some(wtx);
                threads.push(spawn_reader(reader, peer, inbox_tx.clone()));
                threads.push(spawn_writer(stream, rank, peer, wrx, inbox_tx.clone()));
            }
        }

        Ok(TcpTransport {
            rank,
            world,
            inbox_rx: Mutex::new(inbox_rx),
            inbox_tx,
            peers,
            links: Mutex::new(links),
            threads: Mutex::new(threads),
        })
    }

    /// Fault injection: cut the live connection to `peer` at the socket
    /// level (both directions). Every side of the link observes the same
    /// thing a peer death produces — an EOF/reset with no BYE — so the
    /// full LinkDown → `PeerDead` path runs exactly as it would for a
    /// SIGKILLed process. No-op if the link is already gone.
    pub fn sever_link(&self, peer: usize) {
        if let Some(s) = self.links.lock().expect("link registry")[peer].as_ref() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }
}

enum RendezvousRole {
    Host(TcpListener),
    Peer(String),
}

fn spawn_reader(mut stream: TcpStream, peer: usize, inbox: Sender<Inbound>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("dcnn-tcp-read-{peer}"))
        .spawn(move || loop {
            match read_frame(&mut stream) {
                Ok(FrameRead::Msg(msg)) => {
                    if inbox.send(Inbound::Msg(msg)).is_err() {
                        return; // local rank already tore its inbox down
                    }
                }
                Ok(FrameRead::Bye) => return, // graceful close
                Ok(FrameRead::Eof) => {
                    // EOF with no BYE: the peer's process died and its
                    // kernel closed the socket. Surface it in-band so a
                    // blocked receive fails fast instead of hanging.
                    let _ = inbox.send(Inbound::LinkDown {
                        peer,
                        cause: "connection closed without BYE (peer process died?)".into(),
                    });
                    return;
                }
                Err(e) => {
                    // Corruption or a torn connection: deliver the death
                    // notice rather than bad data (or silence).
                    let _ = inbox
                        .send(Inbound::LinkDown { peer, cause: format!("read failed: {e}") });
                    return;
                }
            }
        })
        .expect("spawn reader thread")
}

fn spawn_writer(
    mut stream: TcpStream,
    my_rank: usize,
    peer: usize,
    queue: Receiver<WriterCmd>,
    inbox: Sender<Inbound>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("dcnn-tcp-write-{peer}"))
        .spawn(move || {
            loop {
                match queue.recv() {
                    Ok(WriterCmd::Frame(msg)) => {
                        let frame = encode_frame(msg.src, msg.comm_id, msg.tag, &msg.payload);
                        if let Err(e) = stream.write_all(&frame) {
                            // The send side sees a dead peer first when we
                            // talk more than we listen; report it on the
                            // same in-band path the reader uses.
                            let _ = inbox.send(Inbound::LinkDown {
                                peer,
                                cause: format!("write failed: {e}"),
                            });
                            return;
                        }
                    }
                    Ok(WriterCmd::Bye) => break,
                    // Queue disconnected: the transport was dropped without
                    // shutdown(), i.e. this rank is unwinding from a
                    // failure. Close abruptly — no BYE — so the peer's
                    // reader reports LinkDown and the failure cascades,
                    // instead of masquerading as a graceful leave. Only an
                    // explicit Bye command may produce the graceful close.
                    Err(_) => return,
                }
            }
            let _ = stream.write_all(&encode_bye(my_rank));
            let _ = stream.flush();
            let _ = stream.shutdown(std::net::Shutdown::Write);
        })
        .expect("spawn writer thread")
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world
    }

    fn backend(&self) -> &'static str {
        "tcp"
    }

    fn send(&self, dst: usize, msg: WireMsg) {
        if dst == self.rank {
            let _ = self.inbox_tx.send(Inbound::Msg(msg));
            return;
        }
        // A send to a dead peer is dropped, not a panic: the writer thread
        // already delivered a LinkDown event into the inbox, and the next
        // receive touching that peer turns it into a structured failure.
        if let Some(q) = self.peers[dst].as_ref() {
            let _ = q.send(WriterCmd::Frame(msg));
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> RecvPoll {
        match self.inbox_rx.lock().expect("inbox receiver").recv_timeout(timeout) {
            Ok(Inbound::Msg(msg)) => RecvPoll::Msg(msg),
            Ok(Inbound::LinkDown { peer, cause }) => RecvPoll::LinkDown { peer, cause },
            Err(RecvTimeoutError::Timeout) => RecvPoll::TimedOut,
            Err(RecvTimeoutError::Disconnected) => RecvPoll::Closed,
        }
    }

    fn shutdown(&self) {
        for p in self.peers.iter().flatten() {
            // The writer drains every queued frame before the BYE, so data
            // already "sent" stays deliverable to peers still receiving.
            let _ = p.send(WriterCmd::Bye);
        }
        let handles = std::mem::take(&mut *self.threads.lock().expect("thread registry"));
        for h in handles {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn msg(src: usize, tag: u32, payload: Payload) -> WireMsg {
        WireMsg { src, comm_id: 7, tag, payload }
    }

    #[test]
    fn frame_roundtrip_bytes_and_f32() {
        for payload in [Payload::bytes(vec![1, 2, 3]), Payload::f32(vec![1.5, -2.25, 0.0])] {
            let frame = encode_frame(3, 7, 9, &payload);
            let FrameRead::Msg(back) = read_frame(&mut frame.as_slice()).expect("decode") else {
                panic!("expected a data frame");
            };
            assert_eq!((back.src, back.comm_id, back.tag), (3, 7, 9));
            match (&payload, &back.payload) {
                (Payload::Bytes(a), Payload::Bytes(b)) => assert_eq!(a, b),
                (Payload::F32(a), Payload::F32(b)) => {
                    let ab: Vec<u32> = a.iter().map(|x| x.to_bits()).collect();
                    let bb: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
                    assert_eq!(ab, bb, "f32 payload must survive bit-exactly");
                }
                _ => panic!("payload kind changed in flight"),
            }
        }
    }

    #[test]
    fn crc_trailer_catches_corruption() {
        let frame = encode_frame(1, 0, 2, &Payload::bytes(vec![0xAA; 64]));
        // Flip one payload bit.
        for pos in [4 + HEADER_LEN, frame.len() - 5] {
            let mut bad = frame.clone();
            bad[pos] ^= 0x10;
            let err = read_frame(&mut bad.as_slice()).expect_err("must reject");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        }
    }

    #[test]
    fn insane_length_rejected_before_allocation() {
        let mut frame = encode_frame(0, 0, 0, &Payload::bytes(vec![1]));
        // Overwrite the length field with 2^62.
        let len_off = 4 + 17;
        frame[len_off..len_off + 8].copy_from_slice(&(1u64 << 62).to_le_bytes());
        let err = read_frame(&mut frame.as_slice()).expect_err("must reject");
        assert!(err.to_string().contains("corrupt length"), "{err}");
    }

    #[test]
    fn bye_and_bare_eof_are_distinct_closes() {
        // BYE is a graceful close; bare EOF means the peer died without
        // shutting down — the reader turns only the latter into LinkDown.
        let bye = encode_bye(5);
        assert!(matches!(read_frame(&mut bye.as_slice()).expect("decode"), FrameRead::Bye));
        assert!(matches!(read_frame(&mut [].as_slice()).expect("eof"), FrameRead::Eof));
    }

    #[test]
    fn severed_link_surfaces_as_linkdown_on_both_ends() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let t = std::thread::spawn(move || {
            let t1 = TcpTransport::connect(&addr, 1, 2, TcpOptions::default()).expect("rank 1");
            // The remote end of a cut link sees an EOF/reset with no BYE.
            match t1.recv_timeout(Duration::from_secs(10)) {
                RecvPoll::LinkDown { peer, cause } => {
                    assert_eq!(peer, 0);
                    assert!(!cause.is_empty());
                }
                other => panic!("rank 1 expected LinkDown, got {other:?}"),
            }
            // Sends to the dead peer are dropped, not panics.
            t1.send(0, msg(1, 9, Payload::bytes(vec![1])));
            t1.shutdown();
        });
        let t0 = TcpTransport::host(listener, 2, TcpOptions::default()).expect("rank 0");
        t0.sever_link(1);
        match t0.recv_timeout(Duration::from_secs(10)) {
            RecvPoll::LinkDown { peer, .. } => assert_eq!(peer, 1),
            other => panic!("rank 0 expected LinkDown, got {other:?}"),
        }
        t0.shutdown();
        t.join().expect("rank 1 thread");
    }

    #[test]
    fn rendezvous_names_missing_ranks_instead_of_hanging() {
        // World of 3, but only rank 1 ever registers: the host must fail
        // within the bound and name rank 2 as the absentee.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let reg = std::thread::spawn(move || {
            // Register as rank 1, then just hold the socket open.
            let mut s = connect_with_backoff(&addr, Duration::from_secs(5)).expect("dial");
            s.write_all(&1u32.to_le_bytes()).expect("rank");
            write_len_prefixed(&mut s, b"127.0.0.1:1").expect("addr");
            s.flush().expect("flush");
            s
        });
        let err = rendezvous_host(&listener, 3, "127.0.0.1:0", Duration::from_millis(300))
            .expect_err("must time out");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        let text = err.to_string();
        assert!(text.contains('2') && text.contains("never registered"), "{text}");
        drop(reg.join());
    }

    #[test]
    fn two_rank_fabric_over_sockets() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let t = std::thread::spawn(move || {
            let t1 = TcpTransport::connect(&addr, 1, 2, TcpOptions::default()).expect("rank 1");
            t1.send(0, msg(1, 4, Payload::f32(vec![2.5; 8])));
            match t1.recv_timeout(Duration::from_secs(10)) {
                RecvPoll::Msg(m) => assert_eq!(m.payload.into_bytes(), vec![7, 8]),
                other => panic!("rank 1 expected reply, got {other:?}"),
            }
            t1.shutdown();
        });
        let t0 = TcpTransport::host(listener, 2, TcpOptions::default()).expect("rank 0");
        match t0.recv_timeout(Duration::from_secs(10)) {
            RecvPoll::Msg(m) => {
                assert_eq!((m.src, m.tag), (1, 4));
                assert_eq!(m.payload.as_f32(), &[2.5; 8]);
            }
            other => panic!("rank 0 expected message, got {other:?}"),
        }
        t0.send(1, msg(0, 5, Payload::bytes(vec![7, 8])));
        t0.shutdown();
        t.join().expect("rank 1 thread");
    }

    #[test]
    fn self_send_skips_the_wire() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let t0 = TcpTransport::host(listener, 1, TcpOptions::default()).expect("solo");
        let data = Arc::new(vec![1.0f32; 4]);
        let ptr = Arc::as_ptr(&data) as usize;
        t0.send(0, msg(0, 1, Payload::shared_f32(data)));
        match t0.recv_timeout(Duration::from_secs(1)) {
            RecvPoll::Msg(m) => {
                assert_eq!(Arc::as_ptr(&m.payload.into_shared_f32()) as usize, ptr);
            }
            other => panic!("expected loopback message, got {other:?}"),
        }
        t0.shutdown();
    }
}
