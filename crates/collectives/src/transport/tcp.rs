//! The TCP backend: ranks as separate OS processes (or threads) talking
//! over real sockets.
//!
//! ## Wire format
//!
//! Every message is one length-prefixed frame with a CRC-32 trailer; the
//! format itself (and its copy-free encode/decode) lives in
//! [`crate::transport::wire`]. The checksum is
//! [`crate::transport::crc32`], the same implementation `dcnn_dimd::crc`
//! re-exports.
//!
//! ## Bootstrap
//!
//! Rank 0 listens on the rendezvous address (the `DCNN_RENDEZVOUS`
//! environment variable, e.g. `127.0.0.1:47555`). Every rank binds an
//! ephemeral data listener, registers `(rank, data_addr)` with rank 0
//! (connect retries with exponential backoff — processes start at different
//! times), and receives the full address table back. The mesh is then built
//! deterministically: rank *r* dials every rank below it and accepts from
//! every rank above it, each connection starting with a HELLO frame naming
//! the dialer's rank.
//!
//! ## Data plane
//!
//! Each established connection gets a reader thread (parses frames, checks
//! the CRC, pushes [`WireMsg`]s into the rank's single inbox — the same
//! receive path the threaded backend uses) and a writer thread (drains a
//! queue of outbound messages so [`Transport::send`] never blocks on a slow
//! peer, preserving the eager-protocol guarantee the collectives rely on).
//! The writer never stages a frame: it computes the head and CRC trailer,
//! then hands head/payload/trailer to one vectored write
//! ([`wire::write_frames_vectored`]) — and it drains whatever else is
//! already queued first, so bursts of small frames (the collectives' control
//! traffic) leave in a single syscall instead of one per frame.
//!
//! ## Failure semantics
//!
//! A connection that ends **without** a BYE frame is an abnormal death: a
//! SIGKILLed peer's kernel closes the socket, a torn link resets it, a
//! corrupted frame fails its CRC. In every such case the reader/writer
//! thread delivers a [`RecvPoll::LinkDown`] event into the same inbox the
//! data frames use, so a receive blocked on that peer fails fast — no
//! timeout required. Messages that arrived before the failure stay
//! deliverable (per-sender FIFO holds right up to the cut). A clean
//! shutdown always sends BYE first, which is what lets bare EOF be treated
//! as a peer death rather than a graceful close.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use super::wire::{self, encode_bye, read_frame, FrameRead, FRAME_MAGIC};
use super::{RecvPoll, Transport, WireMsg};

/// Writer-side batching caps: drain at most this many already-queued frames
/// (or this many payload bytes) into one vectored write. Bounds both the
/// per-batch allocation and how much a huge backlog can delay the BYE.
const BATCH_MAX_FRAMES: usize = 64;
const BATCH_MAX_BYTES: usize = 256 * 1024;

/// Connection-establishment tuning.
#[derive(Debug, Clone)]
pub struct TcpOptions {
    /// Give up dialing (rendezvous or peer) after this long.
    pub connect_timeout: Duration,
    /// Set `TCP_NODELAY` on every connection (latency over throughput; the
    /// collectives exchange many small control frames).
    pub nodelay: bool,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions { connect_timeout: Duration::from_secs(20), nodelay: true }
    }
}

/// Commands for a per-peer writer thread.
enum WriterCmd {
    Frame(WireMsg),
    Bye,
}

/// What the reader/writer threads push into the rank's single inbox: data
/// frames, or the structured death notice of a link.
enum Inbound {
    Msg(WireMsg),
    LinkDown { peer: usize, cause: String },
}

/// One rank's endpoint on the TCP fabric. See the module docs for the
/// protocol; from the runtime's point of view this behaves exactly like
/// [`crate::transport::local::LocalTransport`].
pub struct TcpTransport {
    rank: usize,
    world: usize,
    /// The single inbox all reader threads feed. Mutex-wrapped so the
    /// endpoint is shareable between a rank's main thread and its comm
    /// worker (the runtime's router serializes actual polling).
    inbox_rx: Mutex<Receiver<Inbound>>,
    /// Loopback for self-sends (no socket, no serialization).
    inbox_tx: Sender<Inbound>,
    /// Outbound queues, indexed by peer global rank (`None` at `rank`).
    peers: Vec<Option<Sender<WriterCmd>>>,
    /// Raw socket per peer (clone of the reader/writer streams), kept so
    /// [`TcpTransport::sever_link`] can cut a live connection for fault
    /// injection without going through the writer queue.
    links: Mutex<Vec<Option<TcpStream>>>,
    /// Reader + writer threads, joined on shutdown.
    threads: Mutex<Vec<JoinHandle<()>>>,
}

/// Dial `addr`, retrying with exponential backoff until `timeout` elapses.
/// Needed because peer processes (and rank 0's rendezvous listener) come up
/// at different times.
fn connect_with_backoff(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    let mut delay = Duration::from_millis(5);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("connect to {addr} failed after {timeout:?} of retries: {e}"),
                    ));
                }
                // Clamp the sleep to the remaining budget: the last allowed
                // attempt must actually happen, not be forfeited because a
                // full backoff step would overshoot the deadline.
                std::thread::sleep(delay.min(remaining));
                delay = (delay * 2).min(Duration::from_millis(200));
            }
        }
    }
}

fn write_len_prefixed(w: &mut impl Write, data: &[u8]) -> io::Result<()> {
    let len: u16 = data.len().try_into().map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "length-prefixed blob is {} bytes; the u16 length prefix caps it at {} — \
                 refusing to truncate",
                data.len(),
                u16::MAX
            ),
        )
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(data)
}

fn read_len_prefixed(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 2];
    r.read_exact(&mut len)?;
    let mut buf = vec![0u8; u16::from_le_bytes(len) as usize];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Rank 0's side of the rendezvous: accept `n-1` registrations of
/// `(rank, data_addr)` within `timeout`, then send everyone the full table.
///
/// The accept loop is bounded: if some rank never starts (a crashed
/// launcher child, a typoed world size), the host fails after `timeout`
/// with an error **listing the ranks that never registered** instead of
/// blocking every process in the job forever. A rank that re-registers
/// (its first registration connection tore mid-handshake and it retried
/// with backoff) replaces its earlier entry — last registration wins.
fn rendezvous_host(
    listener: &TcpListener,
    n: usize,
    my_data_addr: &str,
    timeout: Duration,
) -> io::Result<Vec<String>> {
    let deadline = Instant::now() + timeout;
    listener.set_nonblocking(true)?;
    let mut table: Vec<Option<String>> = vec![None; n];
    table[0] = Some(my_data_addr.to_string());
    let mut regs: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
    while table.iter().any(|t| t.is_none()) {
        let mut s = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    let missing: Vec<String> = table
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| t.is_none())
                        .map(|(r, _)| r.to_string())
                        .collect();
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!(
                            "rendezvous timed out after {timeout:?}: rank(s) {} never \
                             registered (world {n})",
                            missing.join(", ")
                        ),
                    ));
                }
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(e) => return Err(e),
        };
        s.set_nonblocking(false)?;
        let from = peer_addr_of(&s);
        let mut rank_buf = [0u8; 4];
        s.read_exact(&mut rank_buf)?;
        let r = u32::from_le_bytes(rank_buf) as usize;
        if r == 0 || r >= n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("rendezvous registration from {from} announced out-of-range rank {r} (world {n})"),
            ));
        }
        let addr = String::from_utf8(read_len_prefixed(&mut s)?)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        // A re-registration is legitimate only when the first attempt's
        // connection tore (the peer's bounded-retry loop re-dials); a
        // second *live* claimant for the same rank is a conflict that must
        // fail bootstrap loudly, not silently replace the table entry.
        if let Some(old) = &regs[r] {
            if peer_alive(old) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "duplicate rendezvous registration for rank {r} from {from}: \
                         rank {r} is already registered by a live peer at {}",
                        peer_addr_of(old)
                    ),
                ));
            }
        }
        table[r] = Some(addr);
        regs[r] = Some(s);
    }
    listener.set_nonblocking(false)?;
    let full: Vec<String> = table.into_iter().map(|t| t.expect("filled")).collect();
    for s in regs.iter_mut().flatten() {
        s.write_all(&(n as u32).to_le_bytes())?;
        for a in &full {
            write_len_prefixed(s, a.as_bytes())?;
        }
        s.flush()?;
    }
    Ok(full)
}

/// A non-zero rank's side of the rendezvous: register and read the table
/// back. One attempt; [`rendezvous_register`] wraps this in a bounded
/// retry loop so a registration connection that tears mid-handshake (rank
/// 0 restarting, a flaky first SYN) is re-dialed instead of fatal.
fn rendezvous_register_once(
    addr: &str,
    rank: usize,
    n: usize,
    my_data_addr: &str,
    timeout: Duration,
) -> io::Result<Vec<String>> {
    let mut s = connect_with_backoff(addr, timeout)?;
    s.write_all(&(rank as u32).to_le_bytes())?;
    write_len_prefixed(&mut s, my_data_addr.as_bytes())?;
    s.flush()?;
    let mut n_buf = [0u8; 4];
    s.read_exact(&mut n_buf)?;
    let got_n = u32::from_le_bytes(n_buf) as usize;
    if got_n != n {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("rendezvous world size mismatch: host says {got_n}, we say {n}"),
        ));
    }
    let mut table = Vec::with_capacity(n);
    for _ in 0..n {
        table.push(
            String::from_utf8(read_len_prefixed(&mut s)?)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
        );
    }
    Ok(table)
}

/// Whether a bootstrap-time I/O failure is a torn connection worth
/// re-dialing (as opposed to a protocol violation, which never heals).
fn is_torn(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionRefused
    )
}

/// Whether the remote end of an established bootstrap socket is still
/// alive, probed with a nonblocking peek: `WouldBlock` (link open, nothing
/// queued) or buffered data mean alive; an orderly EOF or a reset-class
/// error means the peer is gone. Used to tell a *legitimate* duplicate
/// HELLO (the first attempt tore after its bytes left the socket, the
/// retry supersedes the husk) from a *conflicting* one (two live peers
/// both claiming the same rank — misconfiguration or spoofing, which must
/// be a structured bootstrap error, never silent misrouting). The socket
/// is restored to blocking mode before returning.
fn peer_alive(s: &TcpStream) -> bool {
    if s.set_nonblocking(true).is_err() {
        return false;
    }
    let mut probe = [0u8; 1];
    let alive = match s.peek(&mut probe) {
        Ok(0) => false,
        Ok(_) => true,
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => true,
        Err(e) => !is_torn(&e),
    };
    let _ = s.set_nonblocking(false);
    alive
}

/// Best-effort peer address for bootstrap error messages.
fn peer_addr_of(s: &TcpStream) -> String {
    s.peer_addr().map_or_else(|_| "<unknown peer>".to_string(), |a| a.to_string())
}

/// Register with the rendezvous, retrying torn connections with backoff
/// until `opts.connect_timeout` elapses.
fn rendezvous_register(
    addr: &str,
    rank: usize,
    n: usize,
    my_data_addr: &str,
    opts: &TcpOptions,
) -> io::Result<Vec<String>> {
    let deadline = Instant::now() + opts.connect_timeout;
    let mut delay = Duration::from_millis(5);
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        match rendezvous_register_once(addr, rank, n, my_data_addr, left.max(delay)) {
            Ok(table) => return Ok(table),
            Err(e) if is_torn(&e) && Instant::now() + delay < deadline => {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(200));
            }
            Err(e) => {
                return Err(io::Error::new(
                    e.kind(),
                    format!("rank {rank}: rendezvous registration with {addr} failed: {e}"),
                ))
            }
        }
    }
}

/// Dial a mesh peer and complete the HELLO handshake, retrying torn
/// connections with backoff until `timeout` elapses.
fn mesh_dial(addr: &str, my_rank: usize, timeout: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    let mut delay = Duration::from_millis(5);
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        let attempt = connect_with_backoff(addr, left.max(delay)).and_then(|mut s| {
            s.write_all(&FRAME_MAGIC)?;
            s.write_all(&(my_rank as u32).to_le_bytes())?;
            s.flush()?;
            Ok(s)
        });
        match attempt {
            Ok(s) => return Ok(s),
            Err(e) if is_torn(&e) && Instant::now() + delay < deadline => {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(200));
            }
            Err(e) => {
                return Err(io::Error::new(
                    e.kind(),
                    format!("rank {my_rank}: mesh dial of {addr} failed: {e}"),
                ))
            }
        }
    }
}

impl TcpTransport {
    /// Establish the fabric as rank 0, hosting the rendezvous on an
    /// already-bound `listener` (bind it yourself to pick the port, or use
    /// [`TcpTransport::establish`] to bind from an address string).
    pub fn host(listener: TcpListener, world: usize, opts: TcpOptions) -> io::Result<Self> {
        Self::build(0, world, RendezvousRole::Host(listener), opts)
    }

    /// Establish the fabric as a non-zero rank, registering with the
    /// rendezvous at `addr`.
    pub fn connect(addr: &str, rank: usize, world: usize, opts: TcpOptions) -> io::Result<Self> {
        assert!(rank > 0 && rank < world, "rank {rank} out of range for world {world}");
        Self::build(rank, world, RendezvousRole::Peer(addr.to_string()), opts)
    }

    /// Establish the fabric from `(rank, world, rendezvous)`: rank 0 binds
    /// and hosts `rendezvous`, everyone else dials it. This is the entry the
    /// multi-process runtime uses with `DCNN_RANK` / `DCNN_WORLD` /
    /// `DCNN_RENDEZVOUS`.
    pub fn establish(rank: usize, world: usize, rendezvous: &str, opts: TcpOptions) -> io::Result<Self> {
        if rank == 0 {
            let listener = TcpListener::bind(rendezvous)?;
            Self::host(listener, world, opts)
        } else {
            Self::connect(rendezvous, rank, world, opts)
        }
    }

    fn build(rank: usize, world: usize, role: RendezvousRole, opts: TcpOptions) -> io::Result<Self> {
        assert!(world >= 1, "world needs at least one rank");
        let (inbox_tx, inbox_rx) = channel::<Inbound>();
        let mut peers: Vec<Option<Sender<WriterCmd>>> = (0..world).map(|_| None).collect();
        let mut links: Vec<Option<TcpStream>> = (0..world).map(|_| None).collect();
        let mut threads = Vec::new();

        if world > 1 {
            // Every rank accepts mesh connections on its own ephemeral
            // data listener; the rendezvous only trades addresses.
            let data_listener = TcpListener::bind("127.0.0.1:0")?;
            let my_data_addr = data_listener.local_addr()?.to_string();
            let table = match &role {
                RendezvousRole::Host(listener) => {
                    rendezvous_host(listener, world, &my_data_addr, opts.connect_timeout)?
                }
                RendezvousRole::Peer(addr) => {
                    rendezvous_register(addr, rank, world, &my_data_addr, &opts)?
                }
            };

            // Deterministic mesh: dial below, accept from above.
            let mut streams: Vec<Option<TcpStream>> = (0..world).map(|_| None).collect();
            for peer in 0..rank {
                streams[peer] = Some(mesh_dial(&table[peer], rank, opts.connect_timeout)?);
            }
            let mut missing = world - rank - 1;
            while missing > 0 {
                let (mut s, _) = data_listener.accept()?;
                let mut hello = [0u8; 8];
                // A dialer that died between connect and HELLO delivers a
                // short read here; skip the husk and keep accepting (the
                // retrying dialer will come back on a fresh connection).
                match s.read_exact(&mut hello) {
                    Ok(()) => {}
                    Err(e) if is_torn(&e) => continue,
                    Err(e) => return Err(e),
                }
                let from = peer_addr_of(&s);
                if hello[0..4] != FRAME_MAGIC {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad mesh hello from {from}: magic mismatch"),
                    ));
                }
                let peer = u32::from_le_bytes(hello[4..8].try_into().expect("4")) as usize;
                // The announced rank is untrusted until validated: rank
                // `rank` accepts only dialers strictly above it (the
                // dial-below/accept-above mesh), and never one at or past
                // the world size.
                if peer <= rank || peer >= world {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "mesh hello from {from} announced out-of-range rank {peer} \
                             (rank {rank} accepts dialers {}..{world})",
                            rank + 1
                        ),
                    ));
                }
                match &streams[peer] {
                    // A duplicate HELLO from a *live* link means two peers
                    // both claim this rank — reject it, naming the address,
                    // instead of silently rerouting the mesh slot.
                    Some(old) if peer_alive(old) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "duplicate mesh hello for rank {peer} from {from}: \
                                 that rank's link is already established and alive"
                            ),
                        ));
                    }
                    // The dialer's first attempt tore after the handshake
                    // bytes left its socket; the retry supersedes the husk.
                    Some(_) => streams[peer] = Some(s),
                    None => {
                        streams[peer] = Some(s);
                        missing -= 1;
                    }
                }
            }

            for (peer, slot) in streams.into_iter().enumerate() {
                let Some(stream) = slot else { continue };
                if opts.nodelay {
                    stream.set_nodelay(true)?;
                }
                let reader = stream.try_clone()?;
                links[peer] = Some(stream.try_clone()?);
                let (wtx, wrx) = channel::<WriterCmd>();
                peers[peer] = Some(wtx);
                threads.push(spawn_reader(reader, peer, inbox_tx.clone()));
                threads.push(spawn_writer(stream, rank, peer, wrx, inbox_tx.clone()));
            }
        }

        Ok(TcpTransport {
            rank,
            world,
            inbox_rx: Mutex::new(inbox_rx),
            inbox_tx,
            peers,
            links: Mutex::new(links),
            threads: Mutex::new(threads),
        })
    }

    /// Fault injection: cut the live connection to `peer` at the socket
    /// level (both directions). Every side of the link observes the same
    /// thing a peer death produces — an EOF/reset with no BYE — so the
    /// full LinkDown → `PeerDead` path runs exactly as it would for a
    /// SIGKILLed process. No-op if the link is already gone.
    pub fn sever_link(&self, peer: usize) {
        if let Some(s) = self.links.lock().expect("link registry")[peer].as_ref() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }
}

enum RendezvousRole {
    Host(TcpListener),
    Peer(String),
}

fn spawn_reader(mut stream: TcpStream, peer: usize, inbox: Sender<Inbound>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("dcnn-tcp-read-{peer}"))
        .spawn(move || loop {
            match read_frame(&mut stream) {
                Ok(FrameRead::Msg(msg)) => {
                    if inbox.send(Inbound::Msg(msg)).is_err() {
                        return; // local rank already tore its inbox down
                    }
                }
                Ok(FrameRead::Bye) => return, // graceful close
                Ok(FrameRead::Service { kind, .. }) => {
                    // Data-plane frames belong on blob-server connections,
                    // never on the rank fabric: treat one as corruption.
                    let _ = inbox.send(Inbound::LinkDown {
                        peer,
                        cause: format!("unexpected data-plane frame (kind {kind}) on the rank fabric"),
                    });
                    return;
                }
                Ok(FrameRead::Eof) => {
                    // EOF with no BYE: the peer's process died and its
                    // kernel closed the socket. Surface it in-band so a
                    // blocked receive fails fast instead of hanging.
                    let _ = inbox.send(Inbound::LinkDown {
                        peer,
                        cause: "connection closed without BYE (peer process died?)".into(),
                    });
                    return;
                }
                Err(e) => {
                    // Corruption or a torn connection: deliver the death
                    // notice rather than bad data (or silence).
                    let _ = inbox
                        .send(Inbound::LinkDown { peer, cause: format!("read failed: {e}") });
                    return;
                }
            }
        })
        .expect("spawn reader thread")
}

fn spawn_writer(
    mut stream: TcpStream,
    my_rank: usize,
    peer: usize,
    queue: Receiver<WriterCmd>,
    inbox: Sender<Inbound>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("dcnn-tcp-write-{peer}"))
        .spawn(move || {
            let mut batch: Vec<WireMsg> = Vec::new();
            loop {
                batch.clear();
                let mut graceful = false;
                let mut torn_down = false;
                match queue.recv() {
                    Ok(WriterCmd::Frame(msg)) => batch.push(msg),
                    Ok(WriterCmd::Bye) => graceful = true,
                    // Queue disconnected: the transport was dropped without
                    // shutdown(), i.e. this rank is unwinding from a
                    // failure. Close abruptly — no BYE — so the peer's
                    // reader reports LinkDown and the failure cascades,
                    // instead of masquerading as a graceful leave. Only an
                    // explicit Bye command may produce the graceful close.
                    Err(_) => return,
                }
                // Send-side batching: drain whatever else is already queued
                // (bounded) so bursts of small frames leave in one vectored
                // write instead of one syscall each. Never waits — a lone
                // frame goes out immediately.
                if !graceful {
                    let mut bytes = batch[0].payload.len_bytes();
                    while batch.len() < BATCH_MAX_FRAMES && bytes < BATCH_MAX_BYTES {
                        match queue.try_recv() {
                            Ok(WriterCmd::Frame(msg)) => {
                                bytes += msg.payload.len_bytes();
                                batch.push(msg);
                            }
                            Ok(WriterCmd::Bye) => {
                                graceful = true;
                                break;
                            }
                            Err(TryRecvError::Empty) => break,
                            // Flush what was queued before the teardown,
                            // then close abruptly (no BYE) as above.
                            Err(TryRecvError::Disconnected) => {
                                torn_down = true;
                                break;
                            }
                        }
                    }
                }
                if !batch.is_empty() {
                    // Head, payload bytes and CRC trailer of every frame go
                    // to the socket straight from their owning buffers — no
                    // staging Vec per message.
                    if let Err(e) = wire::write_frames_vectored(&mut stream, &batch) {
                        // The send side sees a dead peer first when we talk
                        // more than we listen; report it on the same
                        // in-band path the reader uses.
                        let _ = inbox.send(Inbound::LinkDown {
                            peer,
                            cause: format!("write failed: {e}"),
                        });
                        return;
                    }
                }
                if graceful {
                    let _ = stream.write_all(&encode_bye(my_rank));
                    let _ = stream.flush();
                    let _ = stream.shutdown(std::net::Shutdown::Write);
                    return;
                }
                if torn_down {
                    return;
                }
            }
        })
        .expect("spawn writer thread")
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world
    }

    fn backend(&self) -> &'static str {
        "tcp"
    }

    fn send(&self, dst: usize, msg: WireMsg) {
        if dst == self.rank {
            let _ = self.inbox_tx.send(Inbound::Msg(msg));
            return;
        }
        // A send to a dead peer is dropped, not a panic: the writer thread
        // already delivered a LinkDown event into the inbox, and the next
        // receive touching that peer turns it into a structured failure.
        if let Some(q) = self.peers[dst].as_ref() {
            let _ = q.send(WriterCmd::Frame(msg));
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> RecvPoll {
        match self.inbox_rx.lock().expect("inbox receiver").recv_timeout(timeout) {
            Ok(Inbound::Msg(msg)) => RecvPoll::Msg(msg),
            Ok(Inbound::LinkDown { peer, cause }) => RecvPoll::LinkDown { peer, cause },
            Err(RecvTimeoutError::Timeout) => RecvPoll::TimedOut,
            Err(RecvTimeoutError::Disconnected) => RecvPoll::Closed,
        }
    }

    fn shutdown(&self) {
        for p in self.peers.iter().flatten() {
            // The writer drains every queued frame before the BYE, so data
            // already "sent" stays deliverable to peers still receiving.
            let _ = p.send(WriterCmd::Bye);
        }
        let handles = std::mem::take(&mut *self.threads.lock().expect("thread registry"));
        for h in handles {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Payload;
    use std::sync::Arc;

    fn msg(src: usize, tag: u32, payload: Payload) -> WireMsg {
        WireMsg { src, comm_id: 7, tag, payload }
    }

    #[test]
    fn len_prefix_errors_instead_of_truncating() {
        // Exactly u16::MAX bytes round-trips; one more must be a structured
        // error naming the length, never a silent `as u16` truncation that
        // would corrupt the rendezvous table.
        let max = vec![7u8; u16::MAX as usize];
        let mut buf = Vec::new();
        write_len_prefixed(&mut buf, &max).expect("at the boundary");
        assert_eq!(read_len_prefixed(&mut buf.as_slice()).expect("read back"), max);

        let over = vec![7u8; u16::MAX as usize + 1];
        let mut sink = Vec::new();
        let err = write_len_prefixed(&mut sink, &over).expect_err("must refuse");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let text = err.to_string();
        assert!(text.contains("65536"), "error must name the actual length: {text}");
        assert!(sink.is_empty(), "nothing may be written on refusal");
    }

    #[test]
    fn backoff_uses_the_whole_deadline_against_a_late_listener() {
        // The listener binds ~350 ms in; the backoff schedule's failures
        // land at ~5/15/35/75/155/315 ms with the next full delay being
        // 200 ms. The old code gave up at ~315 ms (now + delay >= deadline)
        // with ~135 ms still on the clock; the fix clamps the final sleep
        // to the remaining budget so the last attempt happens and connects.
        let port = {
            // Reserve a port, then free it for the late bind.
            let probe = TcpListener::bind("127.0.0.1:0").expect("probe bind");
            probe.local_addr().expect("addr").port()
        };
        let addr = format!("127.0.0.1:{port}");
        let late = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(350));
                let l = TcpListener::bind(&addr).expect("late bind");
                // Hold the listener long enough for the dialer to land.
                let _ = l.accept();
            })
        };
        let s = connect_with_backoff(&addr, Duration::from_millis(450))
            .expect("final clamped attempt must connect");
        drop(s);
        late.join().expect("listener thread");
    }

    #[test]
    fn small_frame_burst_survives_batched_writer_in_order() {
        // Many tiny frames queued at once: the writer drains them into
        // vectored batches; the receiver must see every frame, in order,
        // bit-identical.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let n = 500usize;
        let t = std::thread::spawn(move || {
            let t1 = TcpTransport::connect(&addr, 1, 2, TcpOptions::default()).expect("rank 1");
            for i in 0..n {
                t1.send(0, msg(1, i as u32, Payload::f32(vec![i as f32, -(i as f32)])));
            }
            t1.shutdown();
        });
        let t0 = TcpTransport::host(listener, 2, TcpOptions::default()).expect("rank 0");
        for i in 0..n {
            match t0.recv_timeout(Duration::from_secs(10)) {
                RecvPoll::Msg(m) => {
                    assert_eq!(m.tag, i as u32, "frames must arrive in FIFO order");
                    assert_eq!(m.payload.as_f32(), &[i as f32, -(i as f32)]);
                }
                other => panic!("expected frame {i}, got {other:?}"),
            }
        }
        t0.shutdown();
        t.join().expect("rank 1 thread");
    }

    #[test]
    fn severed_link_surfaces_as_linkdown_on_both_ends() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let t = std::thread::spawn(move || {
            let t1 = TcpTransport::connect(&addr, 1, 2, TcpOptions::default()).expect("rank 1");
            // The remote end of a cut link sees an EOF/reset with no BYE.
            match t1.recv_timeout(Duration::from_secs(10)) {
                RecvPoll::LinkDown { peer, cause } => {
                    assert_eq!(peer, 0);
                    assert!(!cause.is_empty());
                }
                other => panic!("rank 1 expected LinkDown, got {other:?}"),
            }
            // Sends to the dead peer are dropped, not panics.
            t1.send(0, msg(1, 9, Payload::bytes(vec![1])));
            t1.shutdown();
        });
        let t0 = TcpTransport::host(listener, 2, TcpOptions::default()).expect("rank 0");
        t0.sever_link(1);
        match t0.recv_timeout(Duration::from_secs(10)) {
            RecvPoll::LinkDown { peer, .. } => assert_eq!(peer, 1),
            other => panic!("rank 0 expected LinkDown, got {other:?}"),
        }
        t0.shutdown();
        t.join().expect("rank 1 thread");
    }

    #[test]
    fn rendezvous_names_missing_ranks_instead_of_hanging() {
        // World of 3, but only rank 1 ever registers: the host must fail
        // within the bound and name rank 2 as the absentee.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let reg = std::thread::spawn(move || {
            // Register as rank 1, then just hold the socket open.
            let mut s = connect_with_backoff(&addr, Duration::from_secs(5)).expect("dial");
            s.write_all(&1u32.to_le_bytes()).expect("rank");
            write_len_prefixed(&mut s, b"127.0.0.1:1").expect("addr");
            s.flush().expect("flush");
            s
        });
        let err = rendezvous_host(&listener, 3, "127.0.0.1:0", Duration::from_millis(300))
            .expect_err("must time out");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        let text = err.to_string();
        assert!(text.contains('2') && text.contains("never registered"), "{text}");
        drop(reg.join());
    }

    /// Register `rank` with the rendezvous at `addr` without reading the
    /// table reply (the host only replies once every rank registered, so a
    /// fake peer must not block on it while other fakes still register).
    /// The socket must stay open so the host's eventual table write lands.
    fn register_silent(addr: &str, rank: u32) -> TcpStream {
        let mut s = connect_with_backoff(addr, Duration::from_secs(5)).expect("dial rendezvous");
        s.write_all(&rank.to_le_bytes()).expect("rank");
        write_len_prefixed(&mut s, b"127.0.0.1:1").expect("addr");
        s.flush().expect("flush");
        s
    }

    /// Register `rank` with the rendezvous at `addr` and read the address
    /// table back, impersonating a real peer's bootstrap. Call this for the
    /// *last* fake rank only; earlier fakes use [`register_silent`].
    fn register_fake(addr: &str, rank: u32, world: usize) -> (TcpStream, Vec<String>) {
        let mut s = register_silent(addr, rank);
        let mut n_buf = [0u8; 4];
        s.read_exact(&mut n_buf).expect("world echo");
        assert_eq!(u32::from_le_bytes(n_buf) as usize, world);
        let table = (0..world)
            .map(|_| String::from_utf8(read_len_prefixed(&mut s).expect("entry")).expect("utf8"))
            .collect();
        (s, table)
    }

    #[test]
    fn garbled_mesh_hello_fails_with_the_offending_address() {
        // A peer that registers cleanly but then opens the data link with
        // garbage magic must fail bootstrap with a structured error naming
        // its address, not corrupt the mesh.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let attacker = std::thread::spawn(move || {
            let (_reg, table) = register_fake(&addr, 1, 2);
            let mut s =
                connect_with_backoff(&table[0], Duration::from_secs(5)).expect("dial data");
            s.write_all(b"NOPE").expect("garbled magic");
            s.write_all(&1u32.to_le_bytes()).expect("rank");
            s.flush().expect("flush");
            s // keep the socket open so the read side sees the bytes, not a reset
        });
        let err = match TcpTransport::host(listener, 2, TcpOptions::default()) {
            Err(e) => e,
            Ok(_) => panic!("garbled hello must fail bootstrap"),
        };
        let text = err.to_string();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(text.contains("magic mismatch"), "{text}");
        assert!(text.contains("127.0.0.1"), "error must name the offending address: {text}");
        drop(attacker.join());
    }

    #[test]
    fn out_of_range_mesh_hello_names_rank_and_address() {
        // Valid magic, but the announced rank is outside the world: the
        // peer-supplied rank must be validated before it indexes anything.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let attacker = std::thread::spawn(move || {
            let (_reg, table) = register_fake(&addr, 1, 2);
            let mut s =
                connect_with_backoff(&table[0], Duration::from_secs(5)).expect("dial data");
            s.write_all(&FRAME_MAGIC).expect("magic");
            s.write_all(&5u32.to_le_bytes()).expect("bogus rank");
            s.flush().expect("flush");
            s
        });
        let err = match TcpTransport::host(listener, 2, TcpOptions::default()) {
            Err(e) => e,
            Ok(_) => panic!("out-of-range hello must fail bootstrap"),
        };
        let text = err.to_string();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(text.contains("out-of-range rank 5"), "{text}");
        assert!(text.contains("127.0.0.1"), "error must name the offending address: {text}");
        drop(attacker.join());
    }

    #[test]
    fn duplicate_live_mesh_hello_is_rejected() {
        // Two live connections both claiming rank 2 is a conflict the host
        // must reject with the second claimant's address.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let attacker = std::thread::spawn(move || {
            let _reg1 = register_silent(&addr, 1);
            let (_reg2, table) = register_fake(&addr, 2, 3);
            let hello = |rank: u32| {
                let mut s =
                    connect_with_backoff(&table[0], Duration::from_secs(5)).expect("dial data");
                s.write_all(&FRAME_MAGIC).expect("magic");
                s.write_all(&rank.to_le_bytes()).expect("rank");
                s.flush().expect("flush");
                s
            };
            let first = hello(2);
            // Give the host time to accept the first claim before the
            // conflicting one arrives on a separate live socket.
            std::thread::sleep(Duration::from_millis(100));
            let second = hello(2);
            (_reg1, _reg2, first, second)
        });
        let err = match TcpTransport::host(listener, 3, TcpOptions::default()) {
            Err(e) => e,
            Ok(_) => panic!("second live claimant for rank 2 must fail bootstrap"),
        };
        let text = err.to_string();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(text.contains("duplicate mesh hello for rank 2"), "{text}");
        assert!(text.contains("127.0.0.1"), "error must name the offending address: {text}");
        drop(attacker.join());
    }

    #[test]
    fn torn_mesh_hello_retry_still_supersedes_the_husk() {
        // The legitimate duplicate: a HELLO whose connection tears is
        // superseded by the dialer's retry — bootstrap must complete, not
        // report a conflict against a dead socket.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let peers = std::thread::spawn(move || {
            let reg1 = register_silent(&addr, 1);
            let (reg2, table) = register_fake(&addr, 2, 3);
            let hello = |rank: u32| {
                let mut s =
                    connect_with_backoff(&table[0], Duration::from_secs(5)).expect("dial data");
                s.write_all(&FRAME_MAGIC).expect("magic");
                s.write_all(&rank.to_le_bytes()).expect("rank");
                s.flush().expect("flush");
                s
            };
            let first = hello(2);
            std::thread::sleep(Duration::from_millis(100));
            drop(first); // the torn attempt
            std::thread::sleep(Duration::from_millis(50));
            let retry = hello(2);
            let other = hello(1);
            (reg1, reg2, retry, other)
        });
        let t0 = TcpTransport::host(listener, 3, TcpOptions::default())
            .expect("torn-then-retried hello must not wedge bootstrap");
        let socks = peers.join().expect("peer thread");
        drop(socks); // EOF the fake links so reader threads exit
        t0.shutdown();
    }

    #[test]
    fn duplicate_rendezvous_registration_from_live_peer_is_rejected() {
        // Same conflict at the rendezvous layer: rank 1 registers twice
        // over two sockets that both stay open. The re-registration must
        // be a structured error naming the address, not a silent table
        // overwrite that misroutes the mesh.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let attacker = std::thread::spawn(move || {
            let reg = || {
                let mut s =
                    connect_with_backoff(&addr, Duration::from_secs(5)).expect("dial");
                s.write_all(&1u32.to_le_bytes()).expect("rank");
                write_len_prefixed(&mut s, b"127.0.0.1:1").expect("addr");
                s.flush().expect("flush");
                s
            };
            let first = reg();
            std::thread::sleep(Duration::from_millis(100));
            let second = reg();
            (first, second)
        });
        // World 3 keeps the host accepting (rank 2 never shows), so it
        // meets the duplicate instead of completing early.
        let err = rendezvous_host(&listener, 3, "127.0.0.1:0", Duration::from_secs(5))
            .expect_err("live duplicate registration must fail");
        let text = err.to_string();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(text.contains("duplicate rendezvous registration for rank 1"), "{text}");
        assert!(text.contains("127.0.0.1"), "error must name the offending address: {text}");
        drop(attacker.join());
    }

    #[test]
    fn two_rank_fabric_over_sockets() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let t = std::thread::spawn(move || {
            let t1 = TcpTransport::connect(&addr, 1, 2, TcpOptions::default()).expect("rank 1");
            t1.send(0, msg(1, 4, Payload::f32(vec![2.5; 8])));
            match t1.recv_timeout(Duration::from_secs(10)) {
                RecvPoll::Msg(m) => assert_eq!(m.payload.into_bytes(), vec![7, 8]),
                other => panic!("rank 1 expected reply, got {other:?}"),
            }
            t1.shutdown();
        });
        let t0 = TcpTransport::host(listener, 2, TcpOptions::default()).expect("rank 0");
        match t0.recv_timeout(Duration::from_secs(10)) {
            RecvPoll::Msg(m) => {
                assert_eq!((m.src, m.tag), (1, 4));
                assert_eq!(m.payload.as_f32(), &[2.5; 8]);
            }
            other => panic!("rank 0 expected message, got {other:?}"),
        }
        t0.send(1, msg(0, 5, Payload::bytes(vec![7, 8])));
        t0.shutdown();
        t.join().expect("rank 1 thread");
    }

    #[test]
    fn self_send_skips_the_wire() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let t0 = TcpTransport::host(listener, 1, TcpOptions::default()).expect("solo");
        let data = Arc::new(vec![1.0f32; 4]);
        let ptr = Arc::as_ptr(&data) as usize;
        t0.send(0, msg(0, 1, Payload::shared_f32(data)));
        match t0.recv_timeout(Duration::from_secs(1)) {
            RecvPoll::Msg(m) => {
                assert_eq!(Arc::as_ptr(&m.payload.into_shared_f32()) as usize, ptr);
            }
            other => panic!("expected loopback message, got {other:?}"),
        }
        t0.shutdown();
    }
}
