//! The TCP backend: ranks as separate OS processes (or threads) talking
//! over real sockets.
//!
//! ## Wire format
//!
//! Every message is one length-prefixed frame with a CRC-32 trailer
//! (checksum over everything after the magic, [`crate::transport::crc32`],
//! the same implementation `dcnn_dimd::crc` re-exports):
//!
//! ```text
//! magic "DCTP" | kind u8 | src u32 | comm_id u64 | tag u32 | len u64 | payload | crc u32
//! ```
//!
//! `kind` is 0 for byte payloads, 1 for `f32` payloads (framed as little-
//! endian words, so results are bit-identical to the threaded backend), and
//! 2 for the BYE frame that closes a connection cleanly.
//!
//! ## Bootstrap
//!
//! Rank 0 listens on the rendezvous address (the `DCNN_RENDEZVOUS`
//! environment variable, e.g. `127.0.0.1:47555`). Every rank binds an
//! ephemeral data listener, registers `(rank, data_addr)` with rank 0
//! (connect retries with exponential backoff — processes start at different
//! times), and receives the full address table back. The mesh is then built
//! deterministically: rank *r* dials every rank below it and accepts from
//! every rank above it, each connection starting with a HELLO frame naming
//! the dialer's rank.
//!
//! ## Data plane
//!
//! Each established connection gets a reader thread (parses frames, checks
//! the CRC, pushes [`WireMsg`]s into the rank's single inbox — the same
//! receive path the threaded backend uses) and a writer thread (drains a
//! queue of outbound messages so [`Transport::send`] never blocks on a slow
//! peer, preserving the eager-protocol guarantee the collectives rely on).

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use super::{crc32, Payload, RecvPoll, Transport, WireMsg};

const FRAME_MAGIC: [u8; 4] = *b"DCTP";
const KIND_BYTES: u8 = 0;
const KIND_F32: u8 = 1;
const KIND_BYE: u8 = 2;
/// Refuse frames claiming more than this many payload bytes: a corrupted
/// length must not become a giant allocation.
const MAX_FRAME_PAYLOAD: u64 = 1 << 31;

/// Fixed-size portion after the magic: kind(1) src(4) comm_id(8) tag(4) len(8).
const HEADER_LEN: usize = 25;

/// Connection-establishment tuning.
#[derive(Debug, Clone)]
pub struct TcpOptions {
    /// Give up dialing (rendezvous or peer) after this long.
    pub connect_timeout: Duration,
    /// Set `TCP_NODELAY` on every connection (latency over throughput; the
    /// collectives exchange many small control frames).
    pub nodelay: bool,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions { connect_timeout: Duration::from_secs(20), nodelay: true }
    }
}

/// Commands for a per-peer writer thread.
enum WriterCmd {
    Frame(WireMsg),
    Bye,
}

/// One rank's endpoint on the TCP fabric. See the module docs for the
/// protocol; from the runtime's point of view this behaves exactly like
/// [`crate::transport::local::LocalTransport`].
pub struct TcpTransport {
    rank: usize,
    world: usize,
    /// The single inbox all reader threads feed. Mutex-wrapped so the
    /// endpoint is shareable between a rank's main thread and its comm
    /// worker (the runtime's router serializes actual polling).
    inbox_rx: Mutex<Receiver<WireMsg>>,
    /// Loopback for self-sends (no socket, no serialization).
    inbox_tx: Sender<WireMsg>,
    /// Outbound queues, indexed by peer global rank (`None` at `rank`).
    peers: Vec<Option<Sender<WriterCmd>>>,
    /// Reader + writer threads, joined on shutdown.
    threads: Mutex<Vec<JoinHandle<()>>>,
}

/// Serialize one message as a frame.
fn encode_frame(src: usize, comm_id: u64, tag: u32, payload: &Payload) -> Vec<u8> {
    let (kind, len) = match payload {
        Payload::Bytes(b) => (KIND_BYTES, b.len()),
        Payload::F32(v) => (KIND_F32, v.len() * 4),
    };
    let mut out = Vec::with_capacity(4 + HEADER_LEN + len + 4);
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(kind);
    out.extend_from_slice(&(src as u32).to_le_bytes());
    out.extend_from_slice(&comm_id.to_le_bytes());
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&(len as u64).to_le_bytes());
    match payload {
        Payload::Bytes(b) => out.extend_from_slice(b),
        Payload::F32(v) => {
            for x in v.iter() {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
    }
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn encode_bye(src: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + HEADER_LEN + 4);
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(KIND_BYE);
    out.extend_from_slice(&(src as u32).to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes());
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Read one frame. `Ok(None)` means a clean close (BYE or immediate EOF).
fn read_frame(r: &mut impl Read) -> io::Result<Option<WireMsg>> {
    let mut magic = [0u8; 4];
    if let Err(e) = r.read_exact(&mut magic) {
        return if e.kind() == io::ErrorKind::UnexpectedEof { Ok(None) } else { Err(e) };
    }
    if magic != FRAME_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad frame magic"));
    }
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let kind = header[0];
    let src = u32::from_le_bytes(header[1..5].try_into().expect("4")) as usize;
    let comm_id = u64::from_le_bytes(header[5..13].try_into().expect("8"));
    let tag = u32::from_le_bytes(header[13..17].try_into().expect("4"));
    let len = u64::from_le_bytes(header[17..25].try_into().expect("8"));
    if len > MAX_FRAME_PAYLOAD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame claims {len} payload bytes (corrupt length?)"),
        ));
    }
    if kind == KIND_F32 && len % 4 != 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "f32 frame length not word-aligned"));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let mut trailer = [0u8; 4];
    r.read_exact(&mut trailer)?;
    let want = u32::from_le_bytes(trailer);
    // CRC over header + payload, exactly what the writer summed.
    let mut c = 0xFFFF_FFFFu32;
    for &b in header.iter().chain(body.iter()) {
        c = super::CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    let got = !c;
    if got != want {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame CRC mismatch from rank {src}: got {got:#010x}, want {want:#010x}"),
        ));
    }
    if kind == KIND_BYE {
        return Ok(None);
    }
    let payload = match kind {
        KIND_BYTES => Payload::bytes(body),
        KIND_F32 => {
            let v: Vec<f32> = body
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("4")))
                .collect();
            Payload::f32(v)
        }
        k => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown frame kind {k}"),
            ))
        }
    };
    Ok(Some(WireMsg { src, comm_id, tag, payload }))
}

/// Dial `addr`, retrying with exponential backoff until `timeout` elapses.
/// Needed because peer processes (and rank 0's rendezvous listener) come up
/// at different times.
fn connect_with_backoff(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    let mut delay = Duration::from_millis(5);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() + delay >= deadline {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("connect to {addr} failed after {timeout:?} of retries: {e}"),
                    ));
                }
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(200));
            }
        }
    }
}

fn write_len_prefixed(w: &mut impl Write, data: &[u8]) -> io::Result<()> {
    w.write_all(&(data.len() as u16).to_le_bytes())?;
    w.write_all(data)
}

fn read_len_prefixed(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 2];
    r.read_exact(&mut len)?;
    let mut buf = vec![0u8; u16::from_le_bytes(len) as usize];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Rank 0's side of the rendezvous: accept `n-1` registrations of
/// `(rank, data_addr)`, then send everyone the full table.
fn rendezvous_host(listener: &TcpListener, n: usize, my_data_addr: &str) -> io::Result<Vec<String>> {
    let mut table: Vec<Option<String>> = vec![None; n];
    table[0] = Some(my_data_addr.to_string());
    let mut regs: Vec<TcpStream> = Vec::with_capacity(n - 1);
    while table.iter().any(|t| t.is_none()) {
        let (mut s, _) = listener.accept()?;
        let mut rank_buf = [0u8; 4];
        s.read_exact(&mut rank_buf)?;
        let r = u32::from_le_bytes(rank_buf) as usize;
        if r >= n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("rendezvous registration from out-of-range rank {r} (world {n})"),
            ));
        }
        let addr = String::from_utf8(read_len_prefixed(&mut s)?)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if table[r].replace(addr).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("rank {r} registered twice (stale process from a previous run?)"),
            ));
        }
        regs.push(s);
    }
    let full: Vec<String> = table.into_iter().map(|t| t.expect("filled")).collect();
    for s in &mut regs {
        s.write_all(&(n as u32).to_le_bytes())?;
        for a in &full {
            write_len_prefixed(s, a.as_bytes())?;
        }
        s.flush()?;
    }
    Ok(full)
}

/// A non-zero rank's side of the rendezvous: register and read the table.
fn rendezvous_register(
    addr: &str,
    rank: usize,
    n: usize,
    my_data_addr: &str,
    opts: &TcpOptions,
) -> io::Result<Vec<String>> {
    let mut s = connect_with_backoff(addr, opts.connect_timeout)?;
    s.write_all(&(rank as u32).to_le_bytes())?;
    write_len_prefixed(&mut s, my_data_addr.as_bytes())?;
    s.flush()?;
    let mut n_buf = [0u8; 4];
    s.read_exact(&mut n_buf)?;
    let got_n = u32::from_le_bytes(n_buf) as usize;
    if got_n != n {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("rendezvous world size mismatch: host says {got_n}, we say {n}"),
        ));
    }
    let mut table = Vec::with_capacity(n);
    for _ in 0..n {
        table.push(
            String::from_utf8(read_len_prefixed(&mut s)?)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
        );
    }
    Ok(table)
}

impl TcpTransport {
    /// Establish the fabric as rank 0, hosting the rendezvous on an
    /// already-bound `listener` (bind it yourself to pick the port, or use
    /// [`TcpTransport::establish`] to bind from an address string).
    pub fn host(listener: TcpListener, world: usize, opts: TcpOptions) -> io::Result<Self> {
        Self::build(0, world, RendezvousRole::Host(listener), opts)
    }

    /// Establish the fabric as a non-zero rank, registering with the
    /// rendezvous at `addr`.
    pub fn connect(addr: &str, rank: usize, world: usize, opts: TcpOptions) -> io::Result<Self> {
        assert!(rank > 0 && rank < world, "rank {rank} out of range for world {world}");
        Self::build(rank, world, RendezvousRole::Peer(addr.to_string()), opts)
    }

    /// Establish the fabric from `(rank, world, rendezvous)`: rank 0 binds
    /// and hosts `rendezvous`, everyone else dials it. This is the entry the
    /// multi-process runtime uses with `DCNN_RANK` / `DCNN_WORLD` /
    /// `DCNN_RENDEZVOUS`.
    pub fn establish(rank: usize, world: usize, rendezvous: &str, opts: TcpOptions) -> io::Result<Self> {
        if rank == 0 {
            let listener = TcpListener::bind(rendezvous)?;
            Self::host(listener, world, opts)
        } else {
            Self::connect(rendezvous, rank, world, opts)
        }
    }

    fn build(rank: usize, world: usize, role: RendezvousRole, opts: TcpOptions) -> io::Result<Self> {
        assert!(world >= 1, "world needs at least one rank");
        let (inbox_tx, inbox_rx) = channel::<WireMsg>();
        let mut peers: Vec<Option<Sender<WriterCmd>>> = (0..world).map(|_| None).collect();
        let mut threads = Vec::new();

        if world > 1 {
            // Every rank accepts mesh connections on its own ephemeral
            // data listener; the rendezvous only trades addresses.
            let data_listener = TcpListener::bind("127.0.0.1:0")?;
            let my_data_addr = data_listener.local_addr()?.to_string();
            let table = match &role {
                RendezvousRole::Host(listener) => rendezvous_host(listener, world, &my_data_addr)?,
                RendezvousRole::Peer(addr) => {
                    rendezvous_register(addr, rank, world, &my_data_addr, &opts)?
                }
            };

            // Deterministic mesh: dial below, accept from above.
            let mut streams: Vec<Option<TcpStream>> = (0..world).map(|_| None).collect();
            for peer in 0..rank {
                let mut s = connect_with_backoff(&table[peer], opts.connect_timeout)?;
                s.write_all(&FRAME_MAGIC)?;
                s.write_all(&(rank as u32).to_le_bytes())?;
                s.flush()?;
                streams[peer] = Some(s);
            }
            for _ in rank + 1..world {
                let (mut s, _) = data_listener.accept()?;
                let mut hello = [0u8; 8];
                s.read_exact(&mut hello)?;
                if hello[0..4] != FRAME_MAGIC {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "bad mesh hello"));
                }
                let peer = u32::from_le_bytes(hello[4..8].try_into().expect("4")) as usize;
                if peer <= rank || peer >= world || streams[peer].is_some() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected mesh hello from rank {peer}"),
                    ));
                }
                streams[peer] = Some(s);
            }

            for (peer, slot) in streams.into_iter().enumerate() {
                let Some(stream) = slot else { continue };
                if opts.nodelay {
                    stream.set_nodelay(true)?;
                }
                let reader = stream.try_clone()?;
                let (wtx, wrx) = channel::<WriterCmd>();
                peers[peer] = Some(wtx);
                threads.push(spawn_reader(reader, peer, inbox_tx.clone()));
                threads.push(spawn_writer(stream, rank, peer, wrx));
            }
        }

        Ok(TcpTransport {
            rank,
            world,
            inbox_rx: Mutex::new(inbox_rx),
            inbox_tx,
            peers,
            threads: Mutex::new(threads),
        })
    }
}

enum RendezvousRole {
    Host(TcpListener),
    Peer(String),
}

fn spawn_reader(mut stream: TcpStream, peer: usize, inbox: Sender<WireMsg>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("dcnn-tcp-read-{peer}"))
        .spawn(move || loop {
            match read_frame(&mut stream) {
                Ok(Some(msg)) => {
                    if inbox.send(msg).is_err() {
                        return; // local rank already tore its inbox down
                    }
                }
                Ok(None) => return, // BYE or clean EOF
                Err(e) => {
                    // Corruption or a torn connection: drop the link loudly
                    // (the blocked receive will hit the watchdog with this
                    // context in the log) rather than deliver bad data.
                    eprintln!("dcnn tcp: link to rank {peer} failed: {e}");
                    return;
                }
            }
        })
        .expect("spawn reader thread")
}

fn spawn_writer(
    mut stream: TcpStream,
    my_rank: usize,
    peer: usize,
    queue: Receiver<WriterCmd>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("dcnn-tcp-write-{peer}"))
        .spawn(move || {
            while let Ok(cmd) = queue.recv() {
                match cmd {
                    WriterCmd::Frame(msg) => {
                        let frame = encode_frame(msg.src, msg.comm_id, msg.tag, &msg.payload);
                        if let Err(e) = stream.write_all(&frame) {
                            eprintln!("dcnn tcp: write to rank {peer} failed: {e}");
                            return;
                        }
                    }
                    WriterCmd::Bye => break,
                }
            }
            let _ = stream.write_all(&encode_bye(my_rank));
            let _ = stream.flush();
            let _ = stream.shutdown(std::net::Shutdown::Write);
        })
        .expect("spawn writer thread")
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.world
    }

    fn backend(&self) -> &'static str {
        "tcp"
    }

    fn send(&self, dst: usize, msg: WireMsg) {
        if dst == self.rank {
            self.inbox_tx.send(msg).expect("own inbox open");
            return;
        }
        self.peers[dst]
            .as_ref()
            .expect("peer connection established")
            .send(WriterCmd::Frame(msg))
            .expect("peer writer alive");
    }

    fn recv_timeout(&self, timeout: Duration) -> RecvPoll {
        match self.inbox_rx.lock().expect("inbox receiver").recv_timeout(timeout) {
            Ok(msg) => RecvPoll::Msg(msg),
            Err(RecvTimeoutError::Timeout) => RecvPoll::TimedOut,
            Err(RecvTimeoutError::Disconnected) => RecvPoll::Closed,
        }
    }

    fn shutdown(&self) {
        for p in self.peers.iter().flatten() {
            // The writer drains every queued frame before the BYE, so data
            // already "sent" stays deliverable to peers still receiving.
            let _ = p.send(WriterCmd::Bye);
        }
        let handles = std::mem::take(&mut *self.threads.lock().expect("thread registry"));
        for h in handles {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn msg(src: usize, tag: u32, payload: Payload) -> WireMsg {
        WireMsg { src, comm_id: 7, tag, payload }
    }

    #[test]
    fn frame_roundtrip_bytes_and_f32() {
        for payload in [Payload::bytes(vec![1, 2, 3]), Payload::f32(vec![1.5, -2.25, 0.0])] {
            let frame = encode_frame(3, 7, 9, &payload);
            let back = read_frame(&mut frame.as_slice()).expect("decode").expect("msg");
            assert_eq!((back.src, back.comm_id, back.tag), (3, 7, 9));
            match (&payload, &back.payload) {
                (Payload::Bytes(a), Payload::Bytes(b)) => assert_eq!(a, b),
                (Payload::F32(a), Payload::F32(b)) => {
                    let ab: Vec<u32> = a.iter().map(|x| x.to_bits()).collect();
                    let bb: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
                    assert_eq!(ab, bb, "f32 payload must survive bit-exactly");
                }
                _ => panic!("payload kind changed in flight"),
            }
        }
    }

    #[test]
    fn crc_trailer_catches_corruption() {
        let frame = encode_frame(1, 0, 2, &Payload::bytes(vec![0xAA; 64]));
        // Flip one payload bit.
        for pos in [4 + HEADER_LEN, frame.len() - 5] {
            let mut bad = frame.clone();
            bad[pos] ^= 0x10;
            let err = read_frame(&mut bad.as_slice()).expect_err("must reject");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        }
    }

    #[test]
    fn insane_length_rejected_before_allocation() {
        let mut frame = encode_frame(0, 0, 0, &Payload::bytes(vec![1]));
        // Overwrite the length field with 2^62.
        let len_off = 4 + 17;
        frame[len_off..len_off + 8].copy_from_slice(&(1u64 << 62).to_le_bytes());
        let err = read_frame(&mut frame.as_slice()).expect_err("must reject");
        assert!(err.to_string().contains("corrupt length"), "{err}");
    }

    #[test]
    fn bye_reads_as_clean_close() {
        let bye = encode_bye(5);
        assert!(read_frame(&mut bye.as_slice()).expect("decode").is_none());
        // Immediate EOF is also a clean close.
        assert!(read_frame(&mut [].as_slice()).expect("eof").is_none());
    }

    #[test]
    fn two_rank_fabric_over_sockets() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let t = std::thread::spawn(move || {
            let t1 = TcpTransport::connect(&addr, 1, 2, TcpOptions::default()).expect("rank 1");
            t1.send(0, msg(1, 4, Payload::f32(vec![2.5; 8])));
            match t1.recv_timeout(Duration::from_secs(10)) {
                RecvPoll::Msg(m) => assert_eq!(m.payload.into_bytes(), vec![7, 8]),
                other => panic!("rank 1 expected reply, got {other:?}"),
            }
            t1.shutdown();
        });
        let t0 = TcpTransport::host(listener, 2, TcpOptions::default()).expect("rank 0");
        match t0.recv_timeout(Duration::from_secs(10)) {
            RecvPoll::Msg(m) => {
                assert_eq!((m.src, m.tag), (1, 4));
                assert_eq!(m.payload.as_f32(), &[2.5; 8]);
            }
            other => panic!("rank 0 expected message, got {other:?}"),
        }
        t0.send(1, msg(0, 5, Payload::bytes(vec![7, 8])));
        t0.shutdown();
        t.join().expect("rank 1 thread");
    }

    #[test]
    fn self_send_skips_the_wire() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let t0 = TcpTransport::host(listener, 1, TcpOptions::default()).expect("solo");
        let data = Arc::new(vec![1.0f32; 4]);
        let ptr = Arc::as_ptr(&data) as usize;
        t0.send(0, msg(0, 1, Payload::shared_f32(data)));
        match t0.recv_timeout(Duration::from_secs(1)) {
            RecvPoll::Msg(m) => {
                assert_eq!(Arc::as_ptr(&m.payload.into_shared_f32()) as usize, ptr);
            }
            other => panic!("expected loopback message, got {other:?}"),
        }
        t0.shutdown();
    }
}
