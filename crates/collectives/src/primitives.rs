//! Rooted collectives and the pairwise `alltoallv`.
//!
//! These are the building blocks the paper's framework relies on besides the
//! allreduce itself: broadcast (model distribution to GPUs' host buffers),
//! gather/allgather (control-plane exchanges such as shuffle counts), and
//! `MPI_Alltoallv`, which implements the DIMD shuffle (Algorithm 2).

use dcnn_simnet::CommSchedule;

use crate::reduce::sum_into;
use crate::runtime::Comm;

const TAG_BCAST: u32 = 0x0100_0000;
const TAG_REDUCE: u32 = 0x0200_0000;
const TAG_GATHER: u32 = 0x0300_0000;
const TAG_A2A: u32 = 0x0400_0000;

/// Binomial-tree broadcast of a byte buffer from `root`.
pub fn bcast_bytes(comm: &Comm, root: usize, buf: &mut Vec<u8>) {
    let _phase = comm.phase("bcast");
    let n = comm.size();
    if n <= 1 {
        return;
    }
    let vrank = (comm.rank() + n - root) % n;
    // Receive from the parent (strip my lowest set bit), then forward to the
    // subtree below each remaining bit.
    let mut mask = 1usize;
    while mask < n {
        if vrank & mask != 0 {
            let parent = (vrank - mask + root) % n;
            *buf = comm.recv_bytes(parent, TAG_BCAST);
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while mask > 0 {
        if vrank + mask < n && vrank & (mask - 1) == 0 && vrank & mask == 0 {
            let child = (vrank + mask + root) % n;
            comm.send_bytes(child, TAG_BCAST, buf.clone());
        }
        mask >>= 1;
    }
}

/// Binomial-tree broadcast of an `f32` buffer from `root`.
pub fn bcast_f32(comm: &Comm, root: usize, buf: &mut [f32]) {
    let _phase = comm.phase("bcast");
    let n = comm.size();
    if n <= 1 {
        return;
    }
    let vrank = (comm.rank() + n - root) % n;
    let mut mask = 1usize;
    while mask < n {
        if vrank & mask != 0 {
            let parent = (vrank - mask + root) % n;
            let v = comm.recv_f32(parent, TAG_BCAST);
            buf.copy_from_slice(&v);
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while mask > 0 {
        if vrank + mask < n && vrank & (mask - 1) == 0 && vrank & mask == 0 {
            let child = (vrank + mask + root) % n;
            comm.send_f32(child, TAG_BCAST, buf);
        }
        mask >>= 1;
    }
}

/// Binomial-tree sum-reduction of `buf` to `root`. On return, `root`'s `buf`
/// holds the elementwise sum over all ranks; other ranks' buffers are
/// unspecified (they hold partial sums).
pub fn reduce_f32(comm: &Comm, root: usize, buf: &mut [f32]) {
    let _phase = comm.phase("reduce");
    let n = comm.size();
    if n <= 1 {
        return;
    }
    let vrank = (comm.rank() + n - root) % n;
    let mut mask = 1usize;
    while mask < n {
        if vrank & mask == 0 {
            let peer = vrank | mask;
            if peer < n {
                let v = comm.recv_f32((peer + root) % n, TAG_REDUCE);
                sum_into(buf, &v);
            }
        } else {
            let peer = (vrank & !mask) % n;
            comm.send_f32((peer + root) % n, TAG_REDUCE, buf);
            break;
        }
        mask <<= 1;
    }
}

/// Gather per-rank byte buffers at `root`. Returns `Some(all)` on the root
/// (indexed by rank), `None` elsewhere.
pub fn gather_bytes(comm: &Comm, root: usize, mine: Vec<u8>) -> Option<Vec<Vec<u8>>> {
    let _phase = comm.phase("gather");
    let n = comm.size();
    if comm.rank() == root {
        let mut all: Vec<Vec<u8>> = vec![Vec::new(); n];
        for r in 0..n {
            if r == root {
                all[r] = mine.clone();
            } else {
                all[r] = comm.recv_bytes(r, TAG_GATHER);
            }
        }
        Some(all)
    } else {
        comm.send_bytes(root, TAG_GATHER, mine);
        None
    }
}

/// Allgather byte buffers: every rank receives all ranks' buffers, indexed
/// by rank. Implemented as gather-to-0 + broadcast.
pub fn allgather_bytes(comm: &Comm, mine: Vec<u8>) -> Vec<Vec<u8>> {
    let _phase = comm.phase("allgather");
    let n = comm.size();
    let gathered = gather_bytes(comm, 0, mine);
    // Flatten with a length prefix table so one broadcast moves everything.
    let mut flat = Vec::new();
    if comm.rank() == 0 {
        let all = gathered.expect("root gathered");
        flat.extend_from_slice(&(n as u64).to_le_bytes());
        for b in &all {
            flat.extend_from_slice(&(b.len() as u64).to_le_bytes());
        }
        for b in &all {
            flat.extend_from_slice(b);
        }
    }
    bcast_bytes(comm, 0, &mut flat);
    let cnt = u64::from_le_bytes(flat[0..8].try_into().expect("8")) as usize;
    assert_eq!(cnt, n);
    let mut lens = Vec::with_capacity(n);
    for r in 0..n {
        let off = 8 + 8 * r;
        lens.push(u64::from_le_bytes(flat[off..off + 8].try_into().expect("8")) as usize);
    }
    let mut out = Vec::with_capacity(n);
    let mut pos = 8 + 8 * n;
    for &l in &lens {
        out.push(flat[pos..pos + l].to_vec());
        pos += l;
    }
    out
}

/// Pairwise-exchange `MPI_Alltoallv` on byte buffers.
///
/// `send[d]` is the buffer destined for rank `d` (may be empty). Returns
/// `recv` where `recv[s]` came from rank `s`. This is the collective DIMD's
/// shuffle is built on (paper Algorithm 2); the pairwise schedule matches
/// what MPI libraries use for large messages.
pub fn alltoallv_bytes(comm: &Comm, mut send: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    let _phase = comm.phase("alltoallv");
    let n = comm.size();
    assert_eq!(send.len(), n, "alltoallv needs one buffer per rank");
    let r = comm.rank();
    let mut recv: Vec<Vec<u8>> = vec![Vec::new(); n];
    recv[r] = std::mem::take(&mut send[r]);
    for step in 1..n {
        let dst = (r + step) % n;
        let src = (r + n - step) % n;
        comm.send_bytes(dst, TAG_A2A, std::mem::take(&mut send[dst]));
        recv[src] = comm.recv_bytes(src, TAG_A2A);
    }
    recv
}

/// Build the network schedule of an `alltoallv` with byte-count matrix
/// `counts[src][dst]`, for virtual-time evaluation. All pairwise flows are
/// issued concurrently, as the pairwise algorithm does under an eager
/// rendezvous protocol.
pub fn alltoallv_schedule(counts: &[Vec<f64>]) -> CommSchedule {
    let n = counts.len();
    let mut s = CommSchedule::new(n.max(1));
    for (src, row) in counts.iter().enumerate() {
        assert_eq!(row.len(), n, "count matrix must be square");
        for (dst, &bytes) in row.iter().enumerate() {
            if src != dst && bytes > 0.0 {
                s.transfer(src, dst, bytes, vec![]);
            }
        }
    }
    s
}

/// Step-synchronized variant of [`alltoallv_schedule`]: each rank sends to
/// one partner per step (`dst = (src + step) mod n`, the classic pairwise
/// exchange schedule), with every rank's step-`t` send gated on its step-
/// `t−1` send. This models an MPI library that serializes the exchange to
/// bound buffer usage; compare against the fully concurrent version to see
/// what eager-protocol overlap buys.
pub fn alltoallv_schedule_pairwise(counts: &[Vec<f64>]) -> CommSchedule {
    let n = counts.len();
    let mut s = CommSchedule::new(n.max(1));
    let mut last: Vec<Option<dcnn_simnet::OpId>> = vec![None; n];
    for step in 1..n {
        for src in 0..n {
            let dst = (src + step) % n;
            assert_eq!(counts[src].len(), n, "count matrix must be square");
            let bytes = counts[src][dst];
            if bytes > 0.0 {
                let t = s.transfer(src, dst, bytes, last[src].into_iter().collect());
                last[src] = Some(t);
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_cluster;

    #[test]
    fn bcast_bytes_all_roots() {
        for n in [1, 2, 3, 4, 7, 8] {
            for root in 0..n {
                let out = run_cluster(n, |c| {
                    let mut buf = if c.rank() == root { vec![9, 9, 9] } else { Vec::new() };
                    bcast_bytes(c, root, &mut buf);
                    buf
                });
                for b in out {
                    assert_eq!(b, vec![9, 9, 9], "n={n} root={root}");
                }
            }
        }
    }

    #[test]
    fn bcast_f32_matches() {
        let out = run_cluster(5, |c| {
            let mut buf = vec![0.0f32; 16];
            if c.rank() == 2 {
                for (i, v) in buf.iter_mut().enumerate() {
                    *v = i as f32;
                }
            }
            bcast_f32(c, 2, &mut buf);
            buf
        });
        for b in out {
            assert_eq!(b[15], 15.0);
        }
    }

    #[test]
    fn reduce_sums_to_root() {
        for n in [1, 2, 3, 4, 6, 8] {
            for root in [0, n - 1] {
                let out = run_cluster(n, |c| {
                    let mut buf = vec![c.rank() as f32 + 1.0; 8];
                    reduce_f32(c, root, &mut buf);
                    buf
                });
                let expect = (n * (n + 1) / 2) as f32;
                assert_eq!(out[root][0], expect, "n={n} root={root}");
            }
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = run_cluster(4, |c| gather_bytes(c, 1, vec![c.rank() as u8; c.rank() + 1]));
        let all = out[1].as_ref().expect("root has data");
        for (r, b) in all.iter().enumerate() {
            assert_eq!(b, &vec![r as u8; r + 1]);
        }
        assert!(out[0].is_none());
    }

    #[test]
    fn allgather_everyone_sees_everything() {
        let out = run_cluster(5, |c| allgather_bytes(c, vec![c.rank() as u8 * 3]));
        for all in out {
            for (r, b) in all.iter().enumerate() {
                assert_eq!(b, &vec![r as u8 * 3]);
            }
        }
    }

    #[test]
    fn allgather_with_empty_contributions() {
        let out = run_cluster(3, |c| {
            let mine = if c.rank() == 1 { vec![7u8] } else { Vec::new() };
            allgather_bytes(c, mine)
        });
        for all in out {
            assert!(all[0].is_empty());
            assert_eq!(all[1], vec![7]);
            assert!(all[2].is_empty());
        }
    }

    #[test]
    fn alltoallv_exchanges_correctly() {
        let n = 4;
        let out = run_cluster(n, |c| {
            let send: Vec<Vec<u8>> = (0..n)
                .map(|d| vec![(c.rank() * 10 + d) as u8; d + 1])
                .collect();
            alltoallv_bytes(c, send)
        });
        for (r, recv) in out.iter().enumerate() {
            for (s, b) in recv.iter().enumerate() {
                assert_eq!(b, &vec![(s * 10 + r) as u8; r + 1], "rank {r} from {s}");
            }
        }
    }

    #[test]
    fn alltoallv_with_empty_rows() {
        let out = run_cluster(3, |c| {
            let send = vec![Vec::new(), vec![c.rank() as u8], Vec::new()];
            alltoallv_bytes(c, send)
        });
        assert_eq!(out[1], vec![vec![0], vec![1], vec![2]]);
        assert!(out[0][1].is_empty());
    }

    #[test]
    fn alltoallv_schedule_counts() {
        let counts = vec![
            vec![0.0, 10.0, 20.0],
            vec![1.0, 0.0, 2.0],
            vec![0.0, 0.0, 0.0],
        ];
        let s = alltoallv_schedule(&counts);
        assert_eq!(s.len(), 4); // four non-zero off-diagonal entries
        assert!((s.total_bytes() - 33.0).abs() < 1e-9);
    }

    #[test]
    fn pairwise_schedule_serializes_per_rank() {
        use dcnn_simnet::{FatTree, SimOptions};
        let n = 8;
        let counts: Vec<Vec<f64>> = (0..n)
            .map(|s| (0..n).map(|d| if s == d { 0.0 } else { 1e7 }).collect())
            .collect();
        let conc = alltoallv_schedule(&counts);
        let pair = alltoallv_schedule_pairwise(&counts);
        assert!((conc.total_bytes() - pair.total_bytes()).abs() < 1e-6);
        pair.validate();
        let topo = FatTree::minsky(n);
        let tc = conc.simulate(&topo, &SimOptions::default()).makespan;
        let tp = pair.simulate(&topo, &SimOptions::default()).makespan;
        // Serialization can't be faster; on a non-blocking fabric with equal
        // shares it lands close (both NIC-bound) but ≥.
        assert!(tp >= tc * 0.99, "pairwise {tp} vs concurrent {tc}");
    }
}
