//! Rooted collectives, the pairwise `alltoallv`, and the ring
//! reduce-scatter/allgather pair.
//!
//! These are the building blocks the paper's framework relies on besides the
//! allreduce itself: broadcast (model distribution to GPUs' host buffers),
//! gather/allgather (control-plane exchanges such as shuffle counts), and
//! `MPI_Alltoallv`, which implements the DIMD shuffle (Algorithm 2). The
//! counts-based ring reduce-scatter and `f32` allgather back the sharded
//! optimizer (and compose into the ring allreduce); their public entry
//! points are [`Comm::reduce_scatter`] / [`Comm::allgather_f32`], which add
//! the scatter/gather [`crate::CommStats`] accounting.

use dcnn_simnet::CommSchedule;

use crate::reduce::sum_into;
use crate::runtime::Comm;

const TAG_BCAST: u32 = 0x0100_0000;
const TAG_REDUCE: u32 = 0x0200_0000;
const TAG_GATHER: u32 = 0x0300_0000;
const TAG_A2A: u32 = 0x0400_0000;
const TAG_RSC: u32 = 0x0C00_0000;
const TAG_AGC: u32 = 0x0D00_0000;

/// Prefix-sum `counts` into `n + 1` chunk boundaries.
fn chunk_offsets(counts: &[usize]) -> Vec<usize> {
    let mut off = Vec::with_capacity(counts.len() + 1);
    off.push(0);
    let mut pos = 0;
    for &c in counts {
        pos += c;
        off.push(pos);
    }
    off
}

/// Ring reduce-scatter over per-rank `counts`: chunk `r` of `buf` (contiguous,
/// in rank order, `counts[r]` elements) belongs to rank `r`; on return this
/// rank's chunk holds the elementwise sum over all ranks, and the other
/// chunks hold partial sums.
///
/// The ring anchors each element's accumulation order at its owning rank
/// (owner `o` computes `g_o + (g_{o-1} + (… + g_{o+1})…)`), never at the
/// chunk boundaries — so for a fixed global owner map the owned bits are
/// identical no matter how the payload is split into buckets. The sharded
/// optimizer's bitwise-equivalence guarantee rests on this.
pub(crate) fn ring_reduce_scatter(comm: &Comm, buf: &mut [f32], counts: &[usize]) {
    let _phase = comm.phase("reduce-scatter");
    let n = comm.size();
    assert_eq!(counts.len(), n, "reduce_scatter needs one count per rank");
    let off = chunk_offsets(counts);
    assert_eq!(off[n], buf.len(), "reduce_scatter counts must cover the buffer");
    if n <= 1 {
        return;
    }
    let r = comm.rank();
    let next = (r + 1) % n;
    let prev = (r + n - 1) % n;
    // Step s moves the running partial sum of chunk c one hop closer to its
    // owner: send the chunk that is s+1 hops "behind" us, fold the received
    // one into ours. After n-1 steps chunk r is complete at rank r.
    for step in 0..n - 1 {
        let send_idx = (r + n - step - 1) % n;
        let recv_idx = (r + 2 * n - step - 2) % n;
        comm.send_f32(next, TAG_RSC + step as u32, &buf[off[send_idx]..off[send_idx + 1]]);
        let v = comm.recv_f32(prev, TAG_RSC + step as u32);
        sum_into(&mut buf[off[recv_idx]..off[recv_idx + 1]], &v);
    }
}

/// Ring allgather over per-rank `counts`: each rank contributes its own chunk
/// (see [`ring_reduce_scatter`] for the layout) and on return every rank's
/// `buf` holds all chunks. Pure forwarding — no arithmetic, so it cannot
/// perturb bits.
pub(crate) fn ring_allgather(comm: &Comm, buf: &mut [f32], counts: &[usize]) {
    let _phase = comm.phase("allgather");
    let n = comm.size();
    assert_eq!(counts.len(), n, "allgather needs one count per rank");
    let off = chunk_offsets(counts);
    assert_eq!(off[n], buf.len(), "allgather counts must cover the buffer");
    if n <= 1 {
        return;
    }
    let r = comm.rank();
    let next = (r + 1) % n;
    let prev = (r + n - 1) % n;
    for step in 0..n - 1 {
        let send_idx = (r + n - step) % n;
        let recv_idx = (r + n - step - 1) % n;
        comm.send_f32(next, TAG_AGC + step as u32, &buf[off[send_idx]..off[send_idx + 1]]);
        let v = comm.recv_f32(prev, TAG_AGC + step as u32);
        buf[off[recv_idx]..off[recv_idx + 1]].copy_from_slice(&v);
    }
}

/// Binomial-tree broadcast of a byte buffer from `root`.
pub fn bcast_bytes(comm: &Comm, root: usize, buf: &mut Vec<u8>) {
    let _phase = comm.phase("bcast");
    let n = comm.size();
    if n <= 1 {
        return;
    }
    let vrank = (comm.rank() + n - root) % n;
    // Receive from the parent (strip my lowest set bit), then forward to the
    // subtree below each remaining bit.
    let mut mask = 1usize;
    while mask < n {
        if vrank & mask != 0 {
            let parent = (vrank - mask + root) % n;
            *buf = comm.recv_bytes(parent, TAG_BCAST);
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while mask > 0 {
        if vrank + mask < n && vrank & (mask - 1) == 0 && vrank & mask == 0 {
            let child = (vrank + mask + root) % n;
            comm.send_bytes(child, TAG_BCAST, buf.clone());
        }
        mask >>= 1;
    }
}

/// Binomial-tree broadcast of an `f32` buffer from `root`.
pub fn bcast_f32(comm: &Comm, root: usize, buf: &mut [f32]) {
    let _phase = comm.phase("bcast");
    let n = comm.size();
    if n <= 1 {
        return;
    }
    let vrank = (comm.rank() + n - root) % n;
    let mut mask = 1usize;
    while mask < n {
        if vrank & mask != 0 {
            let parent = (vrank - mask + root) % n;
            let v = comm.recv_f32(parent, TAG_BCAST);
            buf.copy_from_slice(&v);
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while mask > 0 {
        if vrank + mask < n && vrank & (mask - 1) == 0 && vrank & mask == 0 {
            let child = (vrank + mask + root) % n;
            comm.send_f32(child, TAG_BCAST, buf);
        }
        mask >>= 1;
    }
}

/// Binomial-tree sum-reduction of `buf` to `root`. On return, `root`'s `buf`
/// holds the elementwise sum over all ranks; other ranks' buffers are
/// unspecified (they hold partial sums).
pub fn reduce_f32(comm: &Comm, root: usize, buf: &mut [f32]) {
    let _phase = comm.phase("reduce");
    let n = comm.size();
    if n <= 1 {
        return;
    }
    let vrank = (comm.rank() + n - root) % n;
    let mut mask = 1usize;
    while mask < n {
        if vrank & mask == 0 {
            let peer = vrank | mask;
            if peer < n {
                let v = comm.recv_f32((peer + root) % n, TAG_REDUCE);
                sum_into(buf, &v);
            }
        } else {
            let peer = (vrank & !mask) % n;
            comm.send_f32((peer + root) % n, TAG_REDUCE, buf);
            break;
        }
        mask <<= 1;
    }
}

/// Gather per-rank byte buffers at `root`. Returns `Some(all)` on the root
/// (indexed by rank), `None` elsewhere.
pub fn gather_bytes(comm: &Comm, root: usize, mine: Vec<u8>) -> Option<Vec<Vec<u8>>> {
    let _phase = comm.phase("gather");
    let n = comm.size();
    if comm.rank() == root {
        let mut all: Vec<Vec<u8>> = vec![Vec::new(); n];
        for r in 0..n {
            if r == root {
                all[r] = mine.clone();
            } else {
                all[r] = comm.recv_bytes(r, TAG_GATHER);
            }
        }
        Some(all)
    } else {
        comm.send_bytes(root, TAG_GATHER, mine);
        None
    }
}

/// Allgather byte buffers: every rank receives all ranks' buffers, indexed
/// by rank. Implemented as gather-to-0 + broadcast.
pub fn allgather_bytes(comm: &Comm, mine: Vec<u8>) -> Vec<Vec<u8>> {
    let _phase = comm.phase("allgather");
    let n = comm.size();
    let gathered = gather_bytes(comm, 0, mine);
    // Flatten with a length prefix table so one broadcast moves everything.
    let mut flat = Vec::new();
    if comm.rank() == 0 {
        let all = gathered.expect("root gathered");
        flat.extend_from_slice(&(n as u64).to_le_bytes());
        for b in &all {
            flat.extend_from_slice(&(b.len() as u64).to_le_bytes());
        }
        for b in &all {
            flat.extend_from_slice(b);
        }
    }
    bcast_bytes(comm, 0, &mut flat);
    let cnt = u64::from_le_bytes(flat[0..8].try_into().expect("8")) as usize;
    assert_eq!(cnt, n);
    let mut lens = Vec::with_capacity(n);
    for r in 0..n {
        let off = 8 + 8 * r;
        lens.push(u64::from_le_bytes(flat[off..off + 8].try_into().expect("8")) as usize);
    }
    let mut out = Vec::with_capacity(n);
    let mut pos = 8 + 8 * n;
    for &l in &lens {
        out.push(flat[pos..pos + l].to_vec());
        pos += l;
    }
    out
}

/// Pairwise-exchange `MPI_Alltoallv` on byte buffers.
///
/// `send[d]` is the buffer destined for rank `d` (may be empty). Returns
/// `recv` where `recv[s]` came from rank `s`. This is the collective DIMD's
/// shuffle is built on (paper Algorithm 2); the pairwise schedule matches
/// what MPI libraries use for large messages.
pub fn alltoallv_bytes(comm: &Comm, mut send: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    let _phase = comm.phase("alltoallv");
    let n = comm.size();
    assert_eq!(send.len(), n, "alltoallv needs one buffer per rank");
    let r = comm.rank();
    let mut recv: Vec<Vec<u8>> = vec![Vec::new(); n];
    recv[r] = std::mem::take(&mut send[r]);
    for step in 1..n {
        let dst = (r + step) % n;
        let src = (r + n - step) % n;
        comm.send_bytes(dst, TAG_A2A, std::mem::take(&mut send[dst]));
        recv[src] = comm.recv_bytes(src, TAG_A2A);
    }
    recv
}

/// Build the network schedule of an `alltoallv` with byte-count matrix
/// `counts[src][dst]`, for virtual-time evaluation. All pairwise flows are
/// issued concurrently, as the pairwise algorithm does under an eager
/// rendezvous protocol.
pub fn alltoallv_schedule(counts: &[Vec<f64>]) -> CommSchedule {
    let n = counts.len();
    let mut s = CommSchedule::new(n.max(1));
    for (src, row) in counts.iter().enumerate() {
        assert_eq!(row.len(), n, "count matrix must be square");
        for (dst, &bytes) in row.iter().enumerate() {
            if src != dst && bytes > 0.0 {
                s.transfer(src, dst, bytes, vec![]);
            }
        }
    }
    s
}

/// Step-synchronized variant of [`alltoallv_schedule`]: each rank sends to
/// one partner per step (`dst = (src + step) mod n`, the classic pairwise
/// exchange schedule), with every rank's step-`t` send gated on its step-
/// `t−1` send. This models an MPI library that serializes the exchange to
/// bound buffer usage; compare against the fully concurrent version to see
/// what eager-protocol overlap buys.
pub fn alltoallv_schedule_pairwise(counts: &[Vec<f64>]) -> CommSchedule {
    let n = counts.len();
    let mut s = CommSchedule::new(n.max(1));
    let mut last: Vec<Option<dcnn_simnet::OpId>> = vec![None; n];
    for step in 1..n {
        for src in 0..n {
            let dst = (src + step) % n;
            assert_eq!(counts[src].len(), n, "count matrix must be square");
            let bytes = counts[src][dst];
            if bytes > 0.0 {
                let t = s.transfer(src, dst, bytes, last[src].into_iter().collect());
                last[src] = Some(t);
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_cluster;

    #[test]
    fn bcast_bytes_all_roots() {
        for n in [1, 2, 3, 4, 7, 8] {
            for root in 0..n {
                let out = run_cluster(n, |c| {
                    let mut buf = if c.rank() == root { vec![9, 9, 9] } else { Vec::new() };
                    bcast_bytes(c, root, &mut buf);
                    buf
                });
                for b in out {
                    assert_eq!(b, vec![9, 9, 9], "n={n} root={root}");
                }
            }
        }
    }

    #[test]
    fn bcast_f32_matches() {
        let out = run_cluster(5, |c| {
            let mut buf = vec![0.0f32; 16];
            if c.rank() == 2 {
                for (i, v) in buf.iter_mut().enumerate() {
                    *v = i as f32;
                }
            }
            bcast_f32(c, 2, &mut buf);
            buf
        });
        for b in out {
            assert_eq!(b[15], 15.0);
        }
    }

    #[test]
    fn reduce_sums_to_root() {
        for n in [1, 2, 3, 4, 6, 8] {
            for root in [0, n - 1] {
                let out = run_cluster(n, |c| {
                    let mut buf = vec![c.rank() as f32 + 1.0; 8];
                    reduce_f32(c, root, &mut buf);
                    buf
                });
                let expect = (n * (n + 1) / 2) as f32;
                assert_eq!(out[root][0], expect, "n={n} root={root}");
            }
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = run_cluster(4, |c| gather_bytes(c, 1, vec![c.rank() as u8; c.rank() + 1]));
        let all = out[1].as_ref().expect("root has data");
        for (r, b) in all.iter().enumerate() {
            assert_eq!(b, &vec![r as u8; r + 1]);
        }
        assert!(out[0].is_none());
    }

    #[test]
    fn allgather_everyone_sees_everything() {
        let out = run_cluster(5, |c| allgather_bytes(c, vec![c.rank() as u8 * 3]));
        for all in out {
            for (r, b) in all.iter().enumerate() {
                assert_eq!(b, &vec![r as u8 * 3]);
            }
        }
    }

    #[test]
    fn allgather_with_empty_contributions() {
        let out = run_cluster(3, |c| {
            let mine = if c.rank() == 1 { vec![7u8] } else { Vec::new() };
            allgather_bytes(c, mine)
        });
        for all in out {
            assert!(all[0].is_empty());
            assert_eq!(all[1], vec![7]);
            assert!(all[2].is_empty());
        }
    }

    #[test]
    fn alltoallv_exchanges_correctly() {
        let n = 4;
        let out = run_cluster(n, |c| {
            let send: Vec<Vec<u8>> = (0..n)
                .map(|d| vec![(c.rank() * 10 + d) as u8; d + 1])
                .collect();
            alltoallv_bytes(c, send)
        });
        for (r, recv) in out.iter().enumerate() {
            for (s, b) in recv.iter().enumerate() {
                assert_eq!(b, &vec![(s * 10 + r) as u8; r + 1], "rank {r} from {s}");
            }
        }
    }

    #[test]
    fn alltoallv_with_empty_rows() {
        let out = run_cluster(3, |c| {
            let send = vec![Vec::new(), vec![c.rank() as u8], Vec::new()];
            alltoallv_bytes(c, send)
        });
        assert_eq!(out[1], vec![vec![0], vec![1], vec![2]]);
        assert!(out[0][1].is_empty());
    }

    fn even_counts(len: usize, n: usize) -> Vec<usize> {
        crate::algorithms::even_ranges(len, n).iter().map(|c| c.len()).collect()
    }

    /// Deterministic, rank- and index-dependent contribution with a messy
    /// mantissa so accumulation-order differences would show up in the bits.
    fn contrib(rank: usize, i: usize) -> f32 {
        let h = (rank as u32).wrapping_mul(0x9E37_79B9).wrapping_add(i as u32).wrapping_mul(0x85EB_CA6B);
        (h as f32 / u32::MAX as f32) * 2.0 - 1.0
    }

    #[test]
    fn reduce_scatter_owned_chunk_sums() {
        for n in [1, 2, 3, 4, 5] {
            for len in [0, 1, n, 4 * n + 3, 97] {
                let counts = even_counts(len, n);
                let out = run_cluster(n, |c| {
                    let mut buf: Vec<f32> =
                        (0..len).map(|i| ((c.rank() + 1) * (i + 1)) as f32).collect();
                    c.reduce_scatter(&mut buf, &counts);
                    buf
                });
                let off = chunk_offsets(&counts);
                for (rk, b) in out.iter().enumerate() {
                    for i in off[rk]..off[rk + 1] {
                        let want: f32 = (0..n).map(|r| ((r + 1) * (i + 1)) as f32).sum();
                        assert_eq!(b[i], want, "n={n} len={len} rank={rk} i={i}");
                    }
                }
            }
        }
    }

    #[test]
    fn reduce_scatter_uneven_counts_with_empty_chunks() {
        let counts = vec![5, 0, 2, 9];
        let len: usize = counts.iter().sum();
        let counts2 = counts.clone();
        let out = run_cluster(4, |c| {
            let mut buf: Vec<f32> = (0..len).map(|i| contrib(c.rank(), i)).collect();
            c.reduce_scatter(&mut buf, &counts2);
            buf
        });
        let off = chunk_offsets(&counts);
        for rk in 0..4 {
            for i in off[rk]..off[rk + 1] {
                // Exact accumulation order for owner rk: fold starting at
                // rank rk+1, ending with rk's own contribution added last.
                let mut acc = contrib((rk + 1) % 4, i);
                acc += contrib((rk + 2) % 4, i);
                acc += contrib((rk + 3) % 4, i);
                acc += contrib(rk, i);
                assert_eq!(out[rk][i].to_bits(), acc.to_bits(), "rank={rk} i={i}");
            }
        }
    }

    #[test]
    fn allgather_f32_distributes_every_chunk() {
        for n in [1, 2, 3, 4, 6] {
            for len in [0, 1, n, 53] {
                let counts = even_counts(len, n);
                let off = chunk_offsets(&counts);
                let off2 = off.clone();
                let counts2 = counts.clone();
                let out = run_cluster(n, |c| {
                    // Own chunk holds real data; everything else is garbage
                    // the allgather must overwrite.
                    let mut buf = vec![f32::NAN; len];
                    for i in off2[c.rank()]..off2[c.rank() + 1] {
                        buf[i] = contrib(c.rank(), i);
                    }
                    c.allgather_f32(&mut buf, &counts2);
                    buf
                });
                for (rk, b) in out.iter().enumerate() {
                    for owner in 0..n {
                        for i in off[owner]..off[owner + 1] {
                            assert_eq!(
                                b[i].to_bits(),
                                contrib(owner, i).to_bits(),
                                "n={n} len={len} rank={rk} owner={owner} i={i}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn reduce_scatter_bits_invariant_under_bucketing() {
        // The load-bearing property of the sharded optimizer: splitting a
        // payload into buckets (each reduce-scattered with the owner map
        // restricted to it) yields bit-identical owned chunks to one fused
        // reduce-scatter, because the ring anchors accumulation order at the
        // owner, not at chunk boundaries.
        let n = 3;
        let len = 23;
        let global = even_counts(len, n); // [8, 8, 7]
        let fused = {
            let g = global.clone();
            run_cluster(n, move |c| {
                let mut buf: Vec<f32> = (0..len).map(|i| contrib(c.rank(), i)).collect();
                c.reduce_scatter(&mut buf, &g);
                buf
            })
        };
        for split in [1, 5, 10, 16, 22] {
            let g = global.clone();
            let bucketed = run_cluster(n, move |c| {
                let mut buf: Vec<f32> = (0..len).map(|i| contrib(c.rank(), i)).collect();
                let off = chunk_offsets(&g);
                // Owner map restricted to [0, split) and [split, len).
                let lo: Vec<usize> =
                    (0..n).map(|r| off[r + 1].min(split).saturating_sub(off[r].min(split))).collect();
                let hi: Vec<usize> =
                    (0..n).map(|r| off[r + 1].max(split) - off[r].max(split)).collect();
                let (a, b) = buf.split_at_mut(split);
                c.reduce_scatter(a, &lo);
                c.reduce_scatter(b, &hi);
                buf
            });
            let off = chunk_offsets(&global);
            for rk in 0..n {
                for i in off[rk]..off[rk + 1] {
                    assert_eq!(
                        bucketed[rk][i].to_bits(),
                        fused[rk][i].to_bits(),
                        "split={split} rank={rk} i={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn alltoallv_schedule_counts() {
        let counts = vec![
            vec![0.0, 10.0, 20.0],
            vec![1.0, 0.0, 2.0],
            vec![0.0, 0.0, 0.0],
        ];
        let s = alltoallv_schedule(&counts);
        assert_eq!(s.len(), 4); // four non-zero off-diagonal entries
        assert!((s.total_bytes() - 33.0).abs() < 1e-9);
    }

    #[test]
    fn pairwise_schedule_serializes_per_rank() {
        use dcnn_simnet::{FatTree, SimOptions};
        let n = 8;
        let counts: Vec<Vec<f64>> = (0..n)
            .map(|s| (0..n).map(|d| if s == d { 0.0 } else { 1e7 }).collect())
            .collect();
        let conc = alltoallv_schedule(&counts);
        let pair = alltoallv_schedule_pairwise(&counts);
        assert!((conc.total_bytes() - pair.total_bytes()).abs() < 1e-6);
        pair.validate();
        let topo = FatTree::minsky(n);
        let tc = conc.simulate(&topo, &SimOptions::default()).makespan;
        let tp = pair.simulate(&topo, &SimOptions::default()).makespan;
        // Serialization can't be faster; on a non-blocking fabric with equal
        // shares it lands close (both NIC-bound) but ≥.
        assert!(tp >= tc * 0.99, "pairwise {tp} vs concurrent {tc}");
    }
}
