//! Self-tuning collective selection.
//!
//! The paper's Figure 5/6 point is that no single allreduce wins at every
//! message size — the multicolor/ring/recursive-doubling curves cross. This
//! module turns that observation into a runtime policy: an [`AlgoPolicy`]
//! either pins one [`AllreduceAlgo`] (`Fixed`) or hands bucket-by-bucket
//! selection to a [`Tuner`] (`Auto`).
//!
//! The tuner works in per-size-class terms (power-of-two byte classes).
//! During the first [`TunerConfig::probe_epochs`] epochs it rotates every
//! registered candidate across the live gradient buckets round-robin —
//! deterministically from `(bucket index + epoch) % candidates`, so every
//! rank launches the same algorithm for the same bucket seq without any
//! coordination — and attributes each completed bucket span's wall time to
//! the `(size class, candidate)` cell that launched it. When probing is
//! off (`probe_epochs == 0`) it instead replays the [`CostModel`] through
//! the fat-tree simulator and selects from modeled makespans.
//!
//! After the probe window the scores are **cluster-agreed**: every rank
//! contributes its local `(class, candidate) → ns/byte` table, the tables
//! are merged entry-wise with max (the same pessimistic-agreement protocol
//! the adaptive bucket-sizing replan uses), and every rank then picks the
//! argmin candidate per class from the *identical* merged table. Agreement
//! matters because nonblocking collectives derive their sub-communicator
//! from the launch seq — ranks that disagree on an algorithm for one seq
//! deadlock or corrupt the sum.

use std::collections::BTreeMap;
use std::str::FromStr;
use std::sync::Arc;

use dcnn_simnet::{FatTree, SimOptions};

use crate::algorithms::{Allreduce, AllreduceAlgo, CostModel};
use crate::primitives::allgather_bytes;
use crate::runtime::{BucketSpan, Comm};

/// How the trainer chooses an allreduce algorithm for each gradient bucket.
///
/// This is the typed replacement for threading a bare
/// `Arc<dyn Allreduce>` from call site to call site: a policy is
/// configuration (clonable, comparable, parseable from `DCNN_ALGO`), and
/// the executable handles are built where the policy is consumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgoPolicy {
    /// Every bucket uses this one algorithm.
    Fixed(AllreduceAlgo),
    /// Per-bucket selection by a measurement-driven [`Tuner`].
    Auto(TunerConfig),
}

impl From<AllreduceAlgo> for AlgoPolicy {
    fn from(algo: AllreduceAlgo) -> Self {
        AlgoPolicy::Fixed(algo)
    }
}

impl AlgoPolicy {
    /// The fixed algorithm, if this policy is `Fixed`.
    pub fn fixed(&self) -> Option<AllreduceAlgo> {
        match self {
            AlgoPolicy::Fixed(a) => Some(*a),
            AlgoPolicy::Auto(_) => None,
        }
    }
}

/// `Fixed` renders as the algorithm ([`AllreduceAlgo::Display`]); `Auto`
/// renders as `auto` (default candidates) or `auto:<c1>,<c2>,...`.
impl std::fmt::Display for AlgoPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlgoPolicy::Fixed(a) => write!(f, "{a}"),
            AlgoPolicy::Auto(cfg) if *cfg == TunerConfig::default() => f.write_str("auto"),
            AlgoPolicy::Auto(cfg) => {
                f.write_str("auto:")?;
                for (i, c) in cfg.candidates.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
        }
    }
}

/// Accepts any [`AllreduceAlgo`] string (→ `Fixed`), `auto` (→ `Auto` with
/// the default candidate set), or `auto:<c1>,<c2>,...` (→ `Auto` over the
/// listed candidates, probing each once).
impl FromStr for AlgoPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "auto" {
            return Ok(AlgoPolicy::Auto(TunerConfig::default()));
        }
        if let Some(list) = s.strip_prefix("auto:") {
            let mut candidates = Vec::new();
            for part in list.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    return Err(format!("empty candidate in algo policy {s:?}"));
                }
                candidates.push(AllreduceAlgo::from_str(part)?);
            }
            return Ok(AlgoPolicy::Auto(TunerConfig::with_candidates(candidates)));
        }
        AllreduceAlgo::from_str(s).map(AlgoPolicy::Fixed)
    }
}

/// Configuration for the self-tuning selector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TunerConfig {
    /// Algorithms the tuner may choose between. Must be non-empty; with a
    /// single candidate `Auto` degenerates to `Fixed` of that algorithm
    /// (and stays bitwise-identical to it).
    pub candidates: Vec<AllreduceAlgo>,
    /// Warm-up epochs that rotate candidates over the live buckets before
    /// the measured table is agreed and frozen. `0` disables probing: the
    /// tuner replays the [`CostModel`] through the fat-tree simulator
    /// instead, which is deterministic and needs no agreement round.
    pub probe_epochs: usize,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig::with_candidates(AllreduceAlgo::all())
    }
}

impl TunerConfig {
    /// A config probing each of `candidates` once per bucket (one probe
    /// epoch per candidate).
    pub fn with_candidates(candidates: Vec<AllreduceAlgo>) -> Self {
        let probe_epochs = candidates.len();
        TunerConfig { candidates, probe_epochs }
    }
}

/// One selection decision handed out for a single bucket launch.
pub struct Selection {
    /// Power-of-two size class of the bucket (`bytes ≤ 1 << class`).
    pub class: u32,
    /// Index into [`TunerConfig::candidates`].
    pub candidate: usize,
    /// The executable algorithm to launch.
    pub handle: Arc<dyn Allreduce + Send + Sync>,
}

/// A score-table row: `(size class, candidate index, ns per byte)`.
pub type ScoreEntry = (u32, u32, f64);

/// Measurement-driven per-bucket algorithm selector. See the module docs
/// for the probe → agree → converge lifecycle.
pub struct Tuner {
    cfg: TunerConfig,
    /// Cold-start cost model for replay scoring (static so that replay
    /// selection is identical on every rank without communication).
    prior: CostModel,
    handles: Vec<Arc<dyn Allreduce + Send + Sync>>,
    /// Completed training epochs observed via [`Tuner::end_epoch`].
    epoch: usize,
    /// World size, captured from the first selection.
    world: usize,
    /// Accumulated probe measurements: `(class, candidate) → (bytes, ns)`.
    measured: BTreeMap<(u32, usize), (u64, u64)>,
    /// Launch-ordered `(class, candidate)` assignments awaiting this
    /// epoch's bucket spans.
    pending: Vec<(u32, usize)>,
    /// Cached replay scores under the static prior model.
    replay_cache: BTreeMap<(u32, usize), f64>,
    /// The frozen per-class decision table.
    choices: BTreeMap<u32, usize>,
    /// Whether [`Tuner::apply_agreed`] has frozen the table.
    agreed: bool,
    /// Summation bandwidth re-seeded from measured bytes/ns (reporting +
    /// fallback scoring; never used for un-agreed selection).
    model: CostModel,
}

impl Tuner {
    /// A tuner over `cfg` with the default cold-start [`CostModel`].
    ///
    /// # Panics
    /// If the candidate list is empty.
    pub fn new(cfg: TunerConfig) -> Self {
        Tuner::with_cost(cfg, CostModel::default())
    }

    /// A tuner whose replay scoring uses `prior` instead of the default
    /// cost model.
    pub fn with_cost(cfg: TunerConfig, prior: CostModel) -> Self {
        assert!(!cfg.candidates.is_empty(), "tuner needs at least one candidate algorithm");
        let handles = cfg.candidates.iter().map(|a| a.build_shared()).collect();
        Tuner {
            cfg,
            prior: prior.clone(),
            handles,
            epoch: 0,
            world: 2,
            measured: BTreeMap::new(),
            pending: Vec::new(),
            replay_cache: BTreeMap::new(),
            choices: BTreeMap::new(),
            agreed: false,
            model: prior,
        }
    }

    /// The power-of-two size class of a `bytes`-byte bucket: the smallest
    /// `c` with `bytes ≤ 1 << c`.
    pub fn size_class(bytes: u64) -> u32 {
        bytes.max(1).next_power_of_two().trailing_zeros()
    }

    /// The registered candidates.
    pub fn candidates(&self) -> &[AllreduceAlgo] {
        &self.cfg.candidates
    }

    /// Completed epochs observed so far.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Whether the decision table has been frozen by cluster agreement.
    pub fn agreed(&self) -> bool {
        self.agreed
    }

    /// Whether the tuner is still inside its probe window.
    pub fn probing(&self) -> bool {
        self.epoch < self.cfg.probe_epochs
    }

    /// The measurement-seeded cost model (the cold-start prior until real
    /// bytes/ns have been observed).
    pub fn measured_model(&self) -> &CostModel {
        &self.model
    }

    /// Choose the algorithm for the bucket at plan `slot` holding `bytes`
    /// bytes, in a `world`-rank cluster. `track` must be true for
    /// nonblocking launches (the assignment is matched against the epoch's
    /// bucket spans in launch order by [`Tuner::end_epoch`]) and false for
    /// blocking calls, which report their own time via [`Tuner::record`].
    ///
    /// Deterministic from `(slot, completed epochs, frozen table)`, all of
    /// which are identical on every rank — so every rank launches the same
    /// algorithm for the same bucket seq without coordinating.
    pub fn select(&mut self, slot: usize, bytes: u64, world: usize, track: bool) -> Selection {
        self.world = world.max(2);
        let class = Tuner::size_class(bytes);
        let candidate = if self.probing() {
            (slot + self.epoch) % self.handles.len()
        } else {
            self.choice_for(class)
        };
        if track {
            self.pending.push((class, candidate));
        }
        Selection { class, candidate, handle: Arc::clone(&self.handles[candidate]) }
    }

    /// Report a blocking launch's measured wall time.
    pub fn record(&mut self, sel: &Selection, bytes: u64, ns: u64) {
        let e = self.measured.entry((sel.class, sel.candidate)).or_insert((0, 0));
        e.0 += bytes;
        e.1 += ns;
    }

    /// The frozen (or lazily replayed) choice for `class`.
    fn choice_for(&mut self, class: u32) -> usize {
        if let Some(&c) = self.choices.get(&class) {
            return c;
        }
        let c = if self.agreed {
            // A class never seen during probing (e.g. a bucket replan
            // changed the tiling). Borrow the nearest agreed class —
            // deterministic from the agreed table, hence cluster-safe.
            nearest_agreed_class(&self.choices, class).unwrap_or(0)
        } else {
            // Replay mode: score every candidate under the static prior
            // model (identical on every rank) and take the cheapest.
            let scores: Vec<f64> = (0..self.handles.len())
                .map(|cand| self.replay_score(class, cand))
                .collect();
            argmin(&scores)
        };
        self.choices.insert(class, c);
        c
    }

    /// Modeled ns/byte for `candidate` on a `1 << class`-byte bucket under
    /// the static prior cost model, via the fat-tree simulator.
    fn replay_score(&mut self, class: u32, candidate: usize) -> f64 {
        if let Some(&v) = self.replay_cache.get(&(class, candidate)) {
            return v;
        }
        let v = simulated_ns_per_byte(self.cfg.candidates[candidate], class, self.world, &self.prior);
        self.replay_cache.insert((class, candidate), v);
        v
    }

    /// Fold one finished epoch's bucket spans into the measured table and
    /// advance the epoch counter. `spans` are the spans the parent
    /// communicator completed *during* the epoch (any order; they are
    /// matched to this epoch's launch-ordered assignments by seq).
    ///
    /// Returns true when the probe window just closed and the caller must
    /// run the agreement round ([`agree_scores`] + [`Tuner::apply_agreed`])
    /// before the next selection.
    pub fn end_epoch(&mut self, spans: &[BucketSpan]) -> bool {
        let mut by_seq: Vec<&BucketSpan> = spans.iter().collect();
        by_seq.sort_by_key(|s| s.seq);
        for (i, &(class, candidate)) in self.pending.iter().enumerate() {
            if let Some(s) = by_seq.get(i) {
                let e = self.measured.entry((class, candidate)).or_insert((0, 0));
                e.0 += s.bytes;
                e.1 += s.duration_ns();
            }
        }
        self.pending.clear();
        self.epoch += 1;
        let (bytes, ns) = self
            .measured
            .values()
            .fold((0u64, 0u64), |acc, &(b, n)| (acc.0 + b, acc.1 + n));
        if bytes > 0 && ns > 0 {
            self.model = CostModel::measured(bytes, ns);
        }
        self.cfg.probe_epochs > 0 && self.epoch >= self.cfg.probe_epochs && !self.agreed
    }

    /// This rank's local score table: measured ns/byte where probe data
    /// exists, simulated ns/byte under the measurement-seeded cost model
    /// where it does not (a candidate can miss a class when the probe
    /// window was shorter than the candidate list). Every entry flows
    /// through [`agree_scores`] before it is trusted, so locally seeded
    /// fallbacks cannot desynchronize ranks.
    pub fn score_table(&self) -> Vec<ScoreEntry> {
        let classes: std::collections::BTreeSet<u32> =
            self.measured.keys().map(|&(c, _)| c).collect();
        let mut out = Vec::new();
        for &class in &classes {
            for cand in 0..self.handles.len() {
                let score = match self.measured.get(&(class, cand)) {
                    Some(&(b, ns)) if b > 0 => ns as f64 / b as f64,
                    _ => simulated_ns_per_byte(
                        self.cfg.candidates[cand],
                        class,
                        self.world,
                        &self.model,
                    ),
                };
                out.push((class, cand as u32, score));
            }
        }
        out
    }

    /// Freeze the decision table from a cluster-agreed score table: per
    /// class, the candidate with the lowest agreed ns/byte (ties break to
    /// the lower candidate index).
    pub fn apply_agreed(&mut self, table: &[ScoreEntry]) {
        let mut per_class: BTreeMap<u32, Vec<(u32, f64)>> = BTreeMap::new();
        for &(class, cand, score) in table {
            per_class.entry(class).or_default().push((cand, score));
        }
        self.choices.clear();
        for (class, mut cands) in per_class {
            cands.sort_by_key(|a| a.0);
            let scores: Vec<f64> = cands.iter().map(|&(_, s)| s).collect();
            let best = cands[argmin(&scores)].0 as usize;
            self.choices.insert(class, best.min(self.handles.len() - 1));
        }
        self.agreed = true;
    }

    /// Render the current decision table: `<=BYTES:algo` entries joined by
    /// `;` (comma-free, so it embeds in the metrics CSV), or `probe` while
    /// the warm-up window is still rotating candidates.
    pub fn decision_table(&self) -> String {
        if self.choices.is_empty() {
            return "probe".to_string();
        }
        let mut parts = Vec::with_capacity(self.choices.len());
        for (&class, &cand) in &self.choices {
            parts.push(format!("<={}:{}", 1u64 << class, self.cfg.candidates[cand]));
        }
        parts.join(";")
    }
}

/// Borrow the choice of the agreed size class nearest to `class`.
///
/// Tie-break contract: when two agreed classes are **equidistant** from
/// `class` (e.g. classes 10 and 14 around an unseen 12, which a bucket
/// replan can produce), the *smaller* class wins. The comparison key is
/// `(distance, class)` over a `BTreeMap`, so the result is a pure function
/// of the agreed table — every rank holds the identical cluster-agreed
/// table, so every rank borrows the same choice. Anything
/// traversal-order- or tie-dependent here would desynchronize the
/// seq-derived bucket sub-communicators and deadlock the fabric.
fn nearest_agreed_class(choices: &BTreeMap<u32, usize>, class: u32) -> Option<usize> {
    choices.iter().min_by_key(|(k, _)| (k.abs_diff(class), **k)).map(|(_, &c)| c)
}

/// Index of the smallest score (ties break low — first occurrence wins).
fn argmin(scores: &[f64]) -> usize {
    let mut best = 0;
    for (i, &s) in scores.iter().enumerate().skip(1) {
        if s < scores[best] {
            best = i;
        }
    }
    best
}

/// Modeled ns/byte for `algo` reducing a `1 << class`-byte payload across
/// `world` ranks of the modeled fat-tree under `cost`.
fn simulated_ns_per_byte(algo: AllreduceAlgo, class: u32, world: usize, cost: &CostModel) -> f64 {
    let bytes = (1u64 << class) as f64;
    let n = world.max(2);
    let secs = algo
        .build()
        .schedule(n, bytes, cost)
        .simulate(&FatTree::minsky(n), &SimOptions::default())
        .makespan;
    secs * 1e9 / bytes
}

/// Cluster-agree a score table: allgather every rank's entries and merge
/// them entry-wise with **max** (the pessimistic union — an algorithm is
/// only as fast as its slowest rank says). Every rank returns the same
/// merged table, so per-class argmin decisions match everywhere. Entries
/// present on one rank but not another survive with the values they have.
///
/// Collective: every rank must call this at the same point.
pub fn agree_scores(comm: &Comm, local: &[ScoreEntry]) -> Vec<ScoreEntry> {
    let mut mine = Vec::with_capacity(local.len() * 16);
    for &(class, cand, score) in local {
        mine.extend_from_slice(&class.to_le_bytes());
        mine.extend_from_slice(&cand.to_le_bytes());
        mine.extend_from_slice(&score.to_le_bytes());
    }
    let mut merged: BTreeMap<(u32, u32), f64> = BTreeMap::new();
    for theirs in allgather_bytes(comm, mine) {
        assert_eq!(theirs.len() % 16, 0, "malformed score table");
        for chunk in theirs.chunks_exact(16) {
            let class = u32::from_le_bytes(chunk[0..4].try_into().expect("4"));
            let cand = u32::from_le_bytes(chunk[4..8].try_into().expect("4"));
            let score = f64::from_le_bytes(chunk[8..16].try_into().expect("8"));
            let e = merged.entry((class, cand)).or_insert(score);
            if score > *e {
                *e = score;
            }
        }
    }
    merged.into_iter().map(|((class, cand), score)| (class, cand, score)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_cluster;

    fn span(seq: u64, bytes: u64, ns: u64) -> BucketSpan {
        BucketSpan { seq, bytes, launch_ns: 0, done_ns: ns, label: String::new() }
    }

    #[test]
    fn size_classes_are_ceil_pow2() {
        assert_eq!(Tuner::size_class(0), 0);
        assert_eq!(Tuner::size_class(1), 0);
        assert_eq!(Tuner::size_class(2), 1);
        assert_eq!(Tuner::size_class(4096), 12);
        assert_eq!(Tuner::size_class(4097), 13);
    }

    #[test]
    fn policy_string_round_trips() {
        for s in ["ring", "multicolor", "multicolor:2", "auto", "auto:ring,halving-doubling"] {
            let p: AlgoPolicy = s.parse().unwrap();
            assert_eq!(p.to_string(), s, "{p:?}");
            let back: AlgoPolicy = p.to_string().parse().unwrap();
            assert_eq!(back, p);
        }
        assert!("auto:".parse::<AlgoPolicy>().is_err());
        assert!("auto:warp-speed".parse::<AlgoPolicy>().is_err());
        assert!("warp-speed".parse::<AlgoPolicy>().is_err());
    }

    #[test]
    fn probe_rotation_is_deterministic_and_covers_candidates() {
        let cfg = TunerConfig::with_candidates(vec![
            AllreduceAlgo::PipelinedRing,
            AllreduceAlgo::HalvingDoubling,
        ]);
        let mut a = Tuner::new(cfg.clone());
        let mut b = Tuner::new(cfg);
        let mut seen = std::collections::BTreeSet::new();
        for epoch in 0..2 {
            for slot in 0..3 {
                let sa = a.select(slot, 4096, 2, true);
                let sb = b.select(slot, 4096, 2, true);
                assert_eq!(sa.candidate, sb.candidate, "epoch {epoch} slot {slot}");
                seen.insert(sa.candidate);
            }
            let spans: Vec<BucketSpan> = (0..3).map(|i| span(i, 4096, 1000)).collect();
            assert_eq!(a.end_epoch(&spans), epoch == 1);
            b.end_epoch(&spans);
        }
        assert_eq!(seen.len(), 2, "both candidates probed");
    }

    #[test]
    fn synthetic_crossover_picks_different_algorithms_per_size() {
        // Candidate 0 (ring) is faster on small buckets, candidate 1
        // (halving-doubling) on large ones — the tuner must split its
        // choices at the crossover.
        let cfg = TunerConfig::with_candidates(vec![
            AllreduceAlgo::PipelinedRing,
            AllreduceAlgo::HalvingDoubling,
        ]);
        let mut t = Tuner::new(cfg);
        let small = Tuner::size_class(1 << 10);
        let large = Tuner::size_class(1 << 20);
        t.apply_agreed(&[
            (small, 0, 1.0),
            (small, 1, 3.0),
            (large, 0, 4.0),
            (large, 1, 2.0),
        ]);
        let s = t.select(0, 1 << 10, 4, false);
        let l = t.select(1, 1 << 20, 4, false);
        assert_eq!(s.candidate, 0);
        assert_eq!(l.candidate, 1);
        assert_eq!(s.handle.name(), "ring");
        assert_eq!(l.handle.name(), "halving-doubling");
        assert_eq!(
            t.decision_table(),
            format!("<={}:ring;<={}:halving-doubling", 1u64 << small, 1u64 << large)
        );
    }

    #[test]
    fn end_epoch_attributes_spans_to_probed_candidates() {
        let cfg = TunerConfig::with_candidates(vec![
            AllreduceAlgo::PipelinedRing,
            AllreduceAlgo::HalvingDoubling,
        ]);
        let mut t = Tuner::new(cfg);
        // Epoch 0: slots 0/1 probe candidates 0/1 on distinct classes.
        t.select(0, 1 << 10, 2, true);
        t.select(1, 1 << 20, 2, true);
        // Spans arrive out of seq order; attribution must sort by seq.
        let needs_agree = t.end_epoch(&[span(1, 1 << 20, 500), span(0, 1 << 10, 100)]);
        assert!(!needs_agree, "probe window (2 epochs) still open");
        let table = t.score_table();
        let c10 = Tuner::size_class(1 << 10);
        let c20 = Tuner::size_class(1 << 20);
        let get = |class, cand| {
            table
                .iter()
                .find(|&&(c, k, _)| c == class && k == cand)
                .map(|&(_, _, s)| s)
                .unwrap()
        };
        assert!((get(c10, 0) - 100.0 / 1024.0).abs() < 1e-12);
        assert!((get(c20, 1) - 500.0 / (1 << 20) as f64).abs() < 1e-12);
        // The unprobed cells fall back to simulated scores — present and
        // finite so the agreed argmin is always well-defined.
        assert!(get(c10, 1).is_finite() && get(c10, 1) > 0.0);
        assert!(get(c20, 0).is_finite() && get(c20, 0) > 0.0);
    }

    #[test]
    fn replay_mode_selects_without_probing_and_matches_across_instances() {
        let cfg = TunerConfig {
            candidates: vec![AllreduceAlgo::MultiColor(4), AllreduceAlgo::RecursiveDoubling],
            probe_epochs: 0,
        };
        let mut a = Tuner::new(cfg.clone());
        let mut b = Tuner::new(cfg);
        for slot in 0..4 {
            let bytes = 1u64 << (10 + slot);
            let sa = a.select(slot as usize, bytes, 4, false);
            let sb = b.select(slot as usize, bytes, 4, false);
            assert_eq!(sa.candidate, sb.candidate, "replay selection must be deterministic");
        }
        assert_ne!(a.decision_table(), "probe");
    }

    #[test]
    fn measured_model_reseeds_from_spans() {
        let mut t = Tuner::new(TunerConfig::with_candidates(vec![AllreduceAlgo::PipelinedRing]));
        assert_eq!(t.measured_model().reduce_bw, CostModel::PRIOR_REDUCE_BW);
        t.select(0, 1 << 20, 2, true);
        // 1 MiB in 1 ms → 2^20 bytes / 1e-3 s ≈ 1.05 GB/s.
        t.end_epoch(&[span(0, 1 << 20, 1_000_000)]);
        let bw = t.measured_model().reduce_bw;
        assert!((bw - (1u64 << 20) as f64 * 1e3).abs() / bw < 1e-9, "{bw}");
    }

    #[test]
    fn equidistant_class_borrowing_prefers_the_smaller_class() {
        // Agreed classes 10 and 14 pick different candidates; class 12 is
        // exactly 2 away from both. The tie must break to class 10's
        // choice, deterministically.
        let mut choices = BTreeMap::new();
        choices.insert(10u32, 0usize);
        choices.insert(14u32, 1usize);
        assert_eq!(nearest_agreed_class(&choices, 12), Some(0), "smaller class wins ties");
        // Strictly nearer classes still win regardless of the tie-break.
        assert_eq!(nearest_agreed_class(&choices, 13), Some(1));
        assert_eq!(nearest_agreed_class(&choices, 11), Some(0));
        // Outside the agreed range the nearest edge class is borrowed.
        assert_eq!(nearest_agreed_class(&choices, 3), Some(0));
        assert_eq!(nearest_agreed_class(&choices, 30), Some(1));
        assert_eq!(nearest_agreed_class(&BTreeMap::new(), 12), None);
    }

    #[test]
    fn equidistant_borrow_after_replan_agrees_across_ranks() {
        // Four ranks probe with rank-skewed wall times, agree, and then a
        // bucket replan surfaces an unseen class exactly equidistant from
        // the two agreed classes. Every rank must select the same
        // candidate (the fabric deadlocks on the first bucket otherwise)
        // and render the same frozen decision table.
        let runs = run_cluster(4, |comm| {
            let cfg = TunerConfig::with_candidates(vec![
                AllreduceAlgo::PipelinedRing,
                AllreduceAlgo::HalvingDoubling,
            ]);
            let mut t = Tuner::new(cfg);
            // Probe epochs over two size classes (2^10 and 2^14), with
            // per-rank timings skewed so pessimistic agreement matters:
            // ring wins the small class, halving-doubling the large one.
            for epoch in 0..2u64 {
                t.select(0, 1 << 10, 4, true);
                t.select(1, 1 << 14, 4, true);
                let skew = 1 + comm.rank() as u64;
                let (small_ns, large_ns) = if epoch.is_multiple_of(2) {
                    (100 * skew, 90_000 * skew) // ring's epoch
                } else {
                    (900 * skew, 9_000 * skew) // halving-doubling's epoch
                };
                let done = t.end_epoch(&[span(0, 1 << 10, small_ns), span(1, 1 << 14, large_ns)]);
                if done {
                    let agreed = agree_scores(comm, &t.score_table());
                    t.apply_agreed(&agreed);
                }
            }
            assert!(t.agreed());
            // The replanned tiling produces 2^12-byte buckets: class 12 is
            // equidistant from agreed classes 10 and 14.
            let sel = t.select(0, 1 << 12, 4, false);
            (sel.candidate, t.decision_table())
        });
        for r in &runs {
            assert_eq!(*r, runs[0], "ranks diverged on the borrowed choice");
        }
        // The tie broke to the smaller class (10 → ring, candidate 0).
        assert_eq!(runs[0].0, 0, "equidistant borrow must take the smaller class's choice");
    }

    #[test]
    fn agree_scores_merges_to_identical_pessimistic_tables() {
        let runs = run_cluster(3, |comm| {
            // Each rank reports a different score for (10, 0); rank 2 also
            // has an entry nobody else measured.
            let mut local = vec![(10u32, 0u32, 1.0 + comm.rank() as f64)];
            if comm.rank() == 2 {
                local.push((11, 1, 0.5));
            }
            agree_scores(comm, &local)
        });
        for r in &runs {
            assert_eq!(*r, vec![(10, 0, 3.0), (11, 1, 0.5)]);
        }
    }
}
