//! Summation kernels for gradient reduction.
//!
//! The paper sums network buffers into the local contribution with POWER
//! altivec vector instructions (§4.2). Here every kernel is written as an
//! 8-lane unrolled loop that LLVM auto-vectorizes on any target, and above
//! a configurable element threshold the work is split across rayon in
//! fixed-size chunks ([`PAR_CHUNK`] elements). Every kernel is
//! element-independent — `dst[i]` depends only on index `i` of its inputs —
//! so the split (and any rayon scheduling of it) is bitwise identical to
//! the sequential loop; `tests/kernel_equivalence.rs` holds that against
//! the scalar reference kernels in [`reference`].
//!
//! The threshold comes from `DCNN_REDUCE_PAR_THRESHOLD` (elements, `0` =
//! never split) via [`crate::RuntimeConfig`]; cluster entry points apply it
//! through [`set_par_threshold`].

use std::sync::atomic::{AtomicUsize, Ordering};

use rayon::{ParallelSliceExt, ParallelSliceMutExt};

/// Default element count at which kernels start splitting across rayon:
/// 256 Ki `f32`s = 1 MiB, past the paper's Figure-5 crossover into the
/// bandwidth-bound regime where extra cores pay for themselves.
pub const DEFAULT_PAR_THRESHOLD: usize = 1 << 18;

/// Elements per rayon task. A multiple of the unroll factor, so every
/// chunk decomposes into the same lane/tail pattern the sequential kernel
/// uses (not that it matters for bits — the ops are element-independent).
pub const PAR_CHUNK: usize = 1 << 15;

/// Current split threshold in elements (`0` = splitting disabled).
static PAR_THRESHOLD: AtomicUsize = AtomicUsize::new(DEFAULT_PAR_THRESHOLD);

/// Set the rayon-split threshold in elements; `0` disables splitting
/// entirely. Applied by the cluster entry points from
/// [`crate::RuntimeConfig::reduce_par_threshold_or_default`]
/// (`DCNN_REDUCE_PAR_THRESHOLD`). Takes effect for subsequent kernel
/// calls process-wide; any value is safe at any time because every split
/// is bitwise identical to the sequential kernel.
pub fn set_par_threshold(elements: usize) {
    PAR_THRESHOLD.store(elements, Ordering::Relaxed);
}

/// The currently configured split threshold in elements (`0` = disabled).
pub fn par_threshold() -> usize {
    PAR_THRESHOLD.load(Ordering::Relaxed)
}

#[inline]
fn split_enabled(n: usize) -> bool {
    let thr = PAR_THRESHOLD.load(Ordering::Relaxed);
    thr != 0 && n >= thr
}

const LANES: usize = 8;

#[inline]
fn sum_into_seq(dst: &mut [f32], src: &[f32]) {
    let n = dst.len();
    let main = n - n % LANES;
    let (dh, dt) = dst.split_at_mut(main);
    let (sh, st) = src.split_at(main);
    for (d, s) in dh.chunks_exact_mut(LANES).zip(sh.chunks_exact(LANES)) {
        // 8 independent adds per iteration; vectorizes to 2×(4-wide) or 1×(8-wide).
        for l in 0..LANES {
            d[l] += s[l];
        }
    }
    for (d, s) in dt.iter_mut().zip(st) {
        *d += s;
    }
}

#[inline]
fn sum_to_seq(dst: &mut [f32], a: &[f32], b: &[f32]) {
    let n = dst.len();
    let main = n - n % LANES;
    for ((d, x), y) in dst[..main]
        .chunks_exact_mut(LANES)
        .zip(a[..main].chunks_exact(LANES))
        .zip(b[..main].chunks_exact(LANES))
    {
        for l in 0..LANES {
            d[l] = x[l] + y[l];
        }
    }
    for i in main..n {
        dst[i] = a[i] + b[i];
    }
}

#[inline]
fn scale_seq(dst: &mut [f32], k: f32) {
    let mut it = dst.chunks_exact_mut(LANES);
    for d in &mut it {
        for l in 0..LANES {
            d[l] *= k;
        }
    }
    for d in it.into_remainder() {
        *d *= k;
    }
}

/// `dst[i] += src[i]` for all `i`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn sum_into(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "reduction length mismatch");
    if split_enabled(dst.len()) {
        dst.par_chunks_mut(PAR_CHUNK)
            .zip(src.par_chunks(PAR_CHUNK))
            .for_each(|(d, s)| sum_into_seq(d, s));
    } else {
        sum_into_seq(dst, src);
    }
}

/// `dst[i] = a[i] + b[i]` for all `i` (non-destructive variant).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn sum_to(dst: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(dst.len(), a.len(), "reduction length mismatch");
    assert_eq!(dst.len(), b.len(), "reduction length mismatch");
    if split_enabled(dst.len()) {
        dst.par_chunks_mut(PAR_CHUNK)
            .zip(a.par_chunks(PAR_CHUNK))
            .zip(b.par_chunks(PAR_CHUNK))
            .for_each(|((d, x), y)| sum_to_seq(d, x, y));
    } else {
        sum_to_seq(dst, a, b);
    }
}

/// `dst[i] *= k` — used to average gradients after summation.
pub fn scale(dst: &mut [f32], k: f32) {
    if split_enabled(dst.len()) {
        dst.par_chunks_mut(PAR_CHUNK).for_each(|d| scale_seq(d, k));
    } else {
        scale_seq(dst, k);
    }
}

/// Plain one-element-at-a-time reference kernels: the semantics every
/// optimized path above must match bit for bit. The equivalence tests and
/// the `dcnn-perf` baseline compare against these; production code calls
/// the vectorized kernels.
pub mod reference {
    /// Scalar `dst[i] += src[i]`.
    pub fn sum_into(dst: &mut [f32], src: &[f32]) {
        assert_eq!(dst.len(), src.len(), "reduction length mismatch");
        for (d, s) in dst.iter_mut().zip(src) {
            *d += s;
        }
    }

    /// Scalar `dst[i] = a[i] + b[i]`.
    pub fn sum_to(dst: &mut [f32], a: &[f32], b: &[f32]) {
        assert_eq!(dst.len(), a.len(), "reduction length mismatch");
        assert_eq!(dst.len(), b.len(), "reduction length mismatch");
        for ((d, x), y) in dst.iter_mut().zip(a).zip(b) {
            *d = x + y;
        }
    }

    /// Scalar `dst[i] *= k`.
    pub fn scale(dst: &mut [f32], k: f32) {
        for d in dst {
            *d *= k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_into_basic() {
        let mut a = vec![1.0, 2.0, 3.0];
        sum_into(&mut a, &[10.0, 20.0, 30.0]);
        assert_eq!(a, vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn sum_into_covers_tail() {
        // Length not divisible by the unroll factor.
        for n in [0, 1, 7, 8, 9, 17, 63, 64, 65] {
            let mut a: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let b: Vec<f32> = (0..n).map(|i| 2.0 * i as f32).collect();
            sum_into(&mut a, &b);
            for (i, v) in a.iter().enumerate() {
                assert_eq!(*v, 3.0 * i as f32, "index {i}, n {n}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let mut a = vec![0.0; 3];
        sum_into(&mut a, &[0.0; 4]);
    }

    #[test]
    fn sum_to_and_scale() {
        let mut d = vec![0.0; 4];
        sum_to(&mut d, &[1.0, 2.0, 3.0, 4.0], &[4.0, 3.0, 2.0, 1.0]);
        assert_eq!(d, vec![5.0; 4]);
        scale(&mut d, 0.2);
        assert_eq!(d, vec![1.0; 4]);
    }

    #[test]
    fn sum_to_covers_tail() {
        for n in [0, 1, 7, 8, 9, 17, 63, 64, 65] {
            let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let b: Vec<f32> = (0..n).map(|i| 3.0 * i as f32).collect();
            let mut d = vec![0.0f32; n];
            sum_to(&mut d, &a, &b);
            for (i, v) in d.iter().enumerate() {
                assert_eq!(*v, 4.0 * i as f32, "index {i}, n {n}");
            }
        }
    }

    #[test]
    fn scale_covers_tail() {
        for n in [0, 1, 7, 8, 9, 17, 63, 64, 65] {
            let mut d: Vec<f32> = (0..n).map(|i| i as f32).collect();
            scale(&mut d, 0.5);
            for (i, v) in d.iter().enumerate() {
                assert_eq!(*v, 0.5 * i as f32, "index {i}, n {n}");
            }
        }
    }

    #[test]
    fn threshold_roundtrips_through_setter() {
        let before = par_threshold();
        set_par_threshold(12345);
        assert_eq!(par_threshold(), 12345);
        set_par_threshold(0);
        assert_eq!(par_threshold(), 0);
        set_par_threshold(before);
    }
}
