//! Summation kernels for gradient reduction.
//!
//! The paper sums network buffers into the local contribution with POWER
//! altivec vector instructions (§4.2). Here the kernel is written as an
//! 8-lane unrolled loop that LLVM auto-vectorizes on any target.

/// `dst[i] += src[i]` for all `i`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn sum_into(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "reduction length mismatch");
    let n = dst.len();
    let lanes = 8;
    let main = n - n % lanes;
    let (dh, dt) = dst.split_at_mut(main);
    let (sh, st) = src.split_at(main);
    for (d, s) in dh.chunks_exact_mut(lanes).zip(sh.chunks_exact(lanes)) {
        // 8 independent adds per iteration; vectorizes to 2×(4-wide) or 1×(8-wide).
        for l in 0..lanes {
            d[l] += s[l];
        }
    }
    for (d, s) in dt.iter_mut().zip(st) {
        *d += s;
    }
}

/// `dst[i] = a[i] + b[i]` for all `i` (non-destructive variant).
pub fn sum_to(dst: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(dst.len(), a.len());
    assert_eq!(dst.len(), b.len());
    for ((d, x), y) in dst.iter_mut().zip(a).zip(b) {
        *d = x + y;
    }
}

/// `dst[i] *= k` — used to average gradients after summation.
pub fn scale(dst: &mut [f32], k: f32) {
    for d in dst {
        *d *= k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_into_basic() {
        let mut a = vec![1.0, 2.0, 3.0];
        sum_into(&mut a, &[10.0, 20.0, 30.0]);
        assert_eq!(a, vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn sum_into_covers_tail() {
        // Length not divisible by the unroll factor.
        for n in [0, 1, 7, 8, 9, 17, 63, 64, 65] {
            let mut a: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let b: Vec<f32> = (0..n).map(|i| 2.0 * i as f32).collect();
            sum_into(&mut a, &b);
            for (i, v) in a.iter().enumerate() {
                assert_eq!(*v, 3.0 * i as f32, "index {i}, n {n}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let mut a = vec![0.0; 3];
        sum_into(&mut a, &[0.0; 4]);
    }

    #[test]
    fn sum_to_and_scale() {
        let mut d = vec![0.0; 4];
        sum_to(&mut d, &[1.0, 2.0, 3.0, 4.0], &[4.0, 3.0, 2.0, 1.0]);
        assert_eq!(d, vec![5.0; 4]);
        scale(&mut d, 0.2);
        assert_eq!(d, vec![1.0; 4]);
    }
}
