//! Unified typed runtime configuration: every `DCNN_*` environment variable
//! parsed in one place.
//!
//! Runtime knobs used to be read ad hoc wherever they were consumed —
//! transport selection in `transport`, tracing in `trace`, worker counts and
//! timeouts in `runtime`, bucket sizes in the trainer — each with its own
//! silent fallback on a malformed value. [`RuntimeConfig`] replaces that:
//! [`RuntimeConfig::from_env`] parses the whole `DCNN_*` namespace once and
//! returns a [`ConfigError`] that names the offending variable, its value and
//! what was expected, instead of quietly training with a default. Builders
//! ([`crate::runtime::ClusterBuilder::configure`]) and the trainer derive
//! from the parsed struct; the `with_*` methods are the programmatic
//! override layer (explicit code wins over environment).
//!
//! Every field is an `Option`: `None` means "the variable was unset or
//! empty", so call sites can distinguish "operator said 0" from "operator
//! said nothing" and apply their own default (`*_or_default` accessors give
//! the runtime's). The README's environment table documents exactly
//! [`RuntimeConfig::ENV_VARS`]; a doc-consistency test keeps the two in sync.

use std::fmt;
use std::time::Duration;

use crate::transport::TransportKind;

/// How the trainer schedules gradient-bucket allreduces relative to
/// backprop (`DCNN_OVERLAP_MODE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverlapMode {
    /// PR 3 behavior: finish the whole backward pass, then launch every
    /// bucket nonblocking and drain — buckets overlap each other only.
    Drain,
    /// Launch each bucket the moment backprop finishes its last segment
    /// (per-layer backward hooks), so reductions overlap the *remaining*
    /// backward compute. The default.
    #[default]
    Hooked,
}

/// An injected fault for exercising the failure paths on real processes
/// (`DCNN_FAULT`). Production runs leave it unset; the kill-one-rank tests
/// and the ci.sh fault smoke drive the peer-death machinery through it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// `kill-after-step=N@R` (or `kill-after-step=N`, which defaults to
    /// rank 1): rank `R` calls `std::process::abort()` right after finishing
    /// optimizer step `N` — the kernel closes its sockets, so every peer
    /// observes the same bare EOF a SIGKILLed process leaves.
    KillAfterStep {
        /// Zero-based optimizer step after which the rank dies.
        step: usize,
        /// The rank that dies. Defaults to 1 so rank 0 survives to report.
        rank: usize,
    },
    /// `drop-link=FROM:TO`: rank `FROM` shuts down its established socket
    /// to rank `TO` immediately after the fabric comes up, so both ends see
    /// an abnormal link tear without any process dying.
    DropLink {
        /// Rank that severs the connection.
        from: usize,
        /// Rank on the other end of the severed link.
        to: usize,
    },
}

const FAULT_SYNTAX: &str = "\"kill-after-step=N\", \"kill-after-step=N@RANK\" or \"drop-link=FROM:TO\"";

impl FaultSpec {
    /// Parse the `DCNN_FAULT` syntax. Returns `None` on malformed input so
    /// the caller can wrap it in a [`ConfigError`] naming the variable.
    fn parse(v: &str) -> Option<FaultSpec> {
        let v = v.trim();
        if let Some(rest) = v.strip_prefix("kill-after-step=") {
            let (step, rank) = match rest.split_once('@') {
                Some((s, r)) => (s.trim().parse().ok()?, r.trim().parse().ok()?),
                None => (rest.trim().parse().ok()?, 1),
            };
            Some(FaultSpec::KillAfterStep { step, rank })
        } else if let Some(rest) = v.strip_prefix("drop-link=") {
            let (from, to) = rest.split_once(':')?;
            let (from, to) = (from.trim().parse().ok()?, to.trim().parse().ok()?);
            if from == to {
                return None;
            }
            Some(FaultSpec::DropLink { from, to })
        } else {
            None
        }
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpec::KillAfterStep { step, rank } => {
                write!(f, "kill-after-step={step}@{rank}")
            }
            FaultSpec::DropLink { from, to } => write!(f, "drop-link={from}:{to}"),
        }
    }
}

/// A malformed `DCNN_*` environment variable: which one, what it held, and
/// what the parser expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The environment variable that failed to parse.
    pub var: &'static str,
    /// The value it held.
    pub value: String,
    /// Human-readable description of the accepted syntax.
    pub expected: &'static str,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {}={:?}: expected {}",
            self.var, self.value, self.expected
        )
    }
}

impl std::error::Error for ConfigError {}

/// Typed snapshot of the whole `DCNN_*` configuration namespace.
///
/// `None` fields were unset (or empty) in the source; consumers apply their
/// defaults through the `*_or_default` accessors. Construct with
/// [`RuntimeConfig::from_env`] (strict parsing) or [`RuntimeConfig::default`]
/// plus `with_*` overrides (programmatic, environment-free).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Message fabric (`DCNN_TRANSPORT`: `threads` or `tcp`).
    pub transport: Option<TransportKind>,
    /// Rendezvous address for the TCP fabric (`DCNN_RENDEZVOUS`,
    /// `host:port`; rank 0 binds it, everyone else dials it).
    pub rendezvous: Option<String>,
    /// This process's rank in a multi-process run (`DCNN_RANK`).
    pub rank: Option<usize>,
    /// World size of a multi-process run (`DCNN_WORLD`).
    pub world: Option<usize>,
    /// Event tracing on/off (`DCNN_TRACE`: `1`/`true`/`on` or
    /// `0`/`false`/`off`).
    pub trace: Option<bool>,
    /// JSON-lines trace export path (`DCNN_TRACE_JSON`; implies tracing).
    pub trace_json: Option<String>,
    /// Deadlock-watchdog receive timeout (`DCNN_RECV_TIMEOUT_MS`).
    pub recv_timeout: Option<Duration>,
    /// Comm-worker threads per rank for async reduces
    /// (`DCNN_COMM_WORKERS`, ≥ 1).
    pub comm_workers: Option<usize>,
    /// Gradient bucket size target in bytes (`DCNN_BUCKET_BYTES`;
    /// `0` = one fused blocking allreduce).
    pub bucket_bytes: Option<usize>,
    /// Bucket scheduling relative to backprop (`DCNN_OVERLAP_MODE`:
    /// `hooked` or `drain`).
    pub overlap_mode: Option<OverlapMode>,
    /// Adaptive bucket sizing target: desired in-flight reduce bytes
    /// (`DCNN_INFLIGHT_BUDGET`, bytes; `0`/unset disables resizing).
    pub inflight_budget_bytes: Option<usize>,
    /// Element count at which the reduce kernels split across rayon
    /// (`DCNN_REDUCE_PAR_THRESHOLD`, elements; `0` = never split). The
    /// split is bitwise identical to the sequential kernel, so this is a
    /// pure speed knob.
    pub reduce_par_threshold: Option<usize>,
    /// TCP dial/rendezvous bound (`DCNN_CONNECT_TIMEOUT_MS`): how long
    /// bootstrap connects retry and rank 0's registration accept loop
    /// waits before naming the ranks that never showed up.
    pub connect_timeout: Option<Duration>,
    /// Injected fault for failure-path testing (`DCNN_FAULT`).
    pub fault: Option<FaultSpec>,
    /// Directory the trainer flushes an abort checkpoint into when a peer
    /// dies mid-epoch (`DCNN_CHECKPOINT_DIR`; unset = no abort checkpoint).
    pub checkpoint_dir: Option<String>,
    /// Data-pipeline prefetch depth (`DCNN_DATA_PREFETCH_DEPTH`): how many
    /// decoded batches the donkey pipeline / service client may run ahead
    /// of training; `0` = decode inline on the training thread.
    pub data_prefetch_depth: Option<usize>,
    /// Parallel decode workers in the data pipeline
    /// (`DCNN_DATA_DECODE_WORKERS`, ≥ 1).
    pub data_decode_workers: Option<usize>,
    /// Blob-server address list for the remote data plane
    /// (`DCNN_DATA_SERVICE`, comma-separated `host:port`; unset = sample
    /// from the in-process `Dimd` partition).
    pub data_service: Option<String>,
    /// Shard optimizer state across ranks (`DCNN_SHARD_OPTIM`:
    /// `1`/`true`/`on` or `0`/`false`/`off`): reduce-scatter gradient
    /// buckets, step only the locally owned parameter shard, allgather
    /// updated parameters — ZeRO-style, bitwise-identical in loss to the
    /// replicated path.
    pub shard_optim: Option<bool>,
    /// Allreduce selection policy (`DCNN_ALGO`): a fixed algorithm name
    /// (`ring`, `multicolor:2`, ...), `auto` (self-tuning over every
    /// algorithm), or `auto:<c1>,<c2>,...` (self-tuning over the listed
    /// candidates).
    pub algo: Option<crate::tune::AlgoPolicy>,
    /// Payload size in bytes for one `dcnn-eval` matrix cell
    /// (`DCNN_EVAL_PAYLOAD`, ≥ 4 — at least one f32). The eval harness sets
    /// this when it re-launches a cell as real TCP processes.
    pub eval_payload: Option<usize>,
    /// Timed iterations per `dcnn-eval` matrix cell (`DCNN_EVAL_ITERS`,
    /// ≥ 1; the cell reports the fastest).
    pub eval_iters: Option<usize>,
}

fn parse_usize(
    var: &'static str,
    v: &str,
    expected: &'static str,
) -> Result<usize, ConfigError> {
    v.trim().parse().map_err(|_| ConfigError { var, value: v.to_string(), expected })
}

impl RuntimeConfig {
    /// Every environment variable this struct parses — the full public
    /// `DCNN_*` surface. (The `dcnn-launch` binary additionally uses the
    /// internal `DCNN_LAUNCH_CHILD` / `DCNN_LAUNCH_WORKLOAD` handshake
    /// variables, which are not configuration.) The README env table is
    /// tested against this list.
    pub const ENV_VARS: [&'static str; 22] = [
        "DCNN_TRANSPORT",
        "DCNN_RENDEZVOUS",
        "DCNN_RANK",
        "DCNN_WORLD",
        "DCNN_TRACE",
        "DCNN_TRACE_JSON",
        "DCNN_RECV_TIMEOUT_MS",
        "DCNN_COMM_WORKERS",
        "DCNN_BUCKET_BYTES",
        "DCNN_OVERLAP_MODE",
        "DCNN_INFLIGHT_BUDGET",
        "DCNN_REDUCE_PAR_THRESHOLD",
        "DCNN_CONNECT_TIMEOUT_MS",
        "DCNN_FAULT",
        "DCNN_CHECKPOINT_DIR",
        "DCNN_DATA_PREFETCH_DEPTH",
        "DCNN_DATA_DECODE_WORKERS",
        "DCNN_DATA_SERVICE",
        "DCNN_SHARD_OPTIM",
        "DCNN_ALGO",
        "DCNN_EVAL_PAYLOAD",
        "DCNN_EVAL_ITERS",
    ];

    /// Parse the process environment. Unset (or empty) variables become
    /// `None`; a present-but-malformed value is an error naming the
    /// variable, never a silent default.
    pub fn from_env() -> Result<Self, ConfigError> {
        Self::from_lookup(|var| std::env::var(var).ok())
    }

    /// Parse from an arbitrary variable source (`from_env` with the real
    /// environment; tests pass closures so they never mutate process-global
    /// state). Empty values count as unset.
    pub fn from_lookup(
        lookup: impl Fn(&'static str) -> Option<String>,
    ) -> Result<Self, ConfigError> {
        let get = |var: &'static str| lookup(var).filter(|v| !v.trim().is_empty());
        let mut cfg = RuntimeConfig::default();

        if let Some(v) = get("DCNN_TRANSPORT") {
            cfg.transport = Some(match v.trim().to_ascii_lowercase().as_str() {
                "threads" => TransportKind::Threads,
                "tcp" => TransportKind::Tcp,
                _ => {
                    return Err(ConfigError {
                        var: "DCNN_TRANSPORT",
                        value: v,
                        expected: "\"threads\" or \"tcp\"",
                    })
                }
            });
        }
        cfg.rendezvous = get("DCNN_RENDEZVOUS");
        if let Some(v) = get("DCNN_RANK") {
            cfg.rank = Some(parse_usize("DCNN_RANK", &v, "a rank index (unsigned integer)")?);
        }
        if let Some(v) = get("DCNN_WORLD") {
            let w = parse_usize("DCNN_WORLD", &v, "a rank count (integer ≥ 1)")?;
            if w == 0 {
                return Err(ConfigError {
                    var: "DCNN_WORLD",
                    value: v,
                    expected: "a rank count (integer ≥ 1)",
                });
            }
            cfg.world = Some(w);
        }
        if let Some(v) = get("DCNN_TRACE") {
            cfg.trace = Some(match v.trim().to_ascii_lowercase().as_str() {
                "1" | "true" | "on" => true,
                "0" | "false" | "off" => false,
                _ => {
                    return Err(ConfigError {
                        var: "DCNN_TRACE",
                        value: v,
                        expected: "1/true/on or 0/false/off",
                    })
                }
            });
        }
        cfg.trace_json = get("DCNN_TRACE_JSON");
        if let Some(v) = get("DCNN_RECV_TIMEOUT_MS") {
            let ms = v.trim().parse::<u64>().map_err(|_| ConfigError {
                var: "DCNN_RECV_TIMEOUT_MS",
                value: v,
                expected: "a timeout in milliseconds (unsigned integer)",
            })?;
            cfg.recv_timeout = Some(Duration::from_millis(ms));
        }
        if let Some(v) = get("DCNN_COMM_WORKERS") {
            let n = parse_usize("DCNN_COMM_WORKERS", &v, "a thread count (integer ≥ 1)")?;
            if n == 0 {
                return Err(ConfigError {
                    var: "DCNN_COMM_WORKERS",
                    value: v,
                    expected: "a thread count (integer ≥ 1)",
                });
            }
            cfg.comm_workers = Some(n);
        }
        if let Some(v) = get("DCNN_BUCKET_BYTES") {
            cfg.bucket_bytes =
                Some(parse_usize("DCNN_BUCKET_BYTES", &v, "a size in bytes (0 = fused blocking)")?);
        }
        if let Some(v) = get("DCNN_OVERLAP_MODE") {
            cfg.overlap_mode = Some(match v.trim().to_ascii_lowercase().as_str() {
                "hooked" => OverlapMode::Hooked,
                "drain" => OverlapMode::Drain,
                _ => {
                    return Err(ConfigError {
                        var: "DCNN_OVERLAP_MODE",
                        value: v,
                        expected: "\"hooked\" or \"drain\"",
                    })
                }
            });
        }
        if let Some(v) = get("DCNN_INFLIGHT_BUDGET") {
            cfg.inflight_budget_bytes = Some(parse_usize(
                "DCNN_INFLIGHT_BUDGET",
                &v,
                "an in-flight byte budget (0 = fixed bucket size)",
            )?);
        }
        if let Some(v) = get("DCNN_REDUCE_PAR_THRESHOLD") {
            cfg.reduce_par_threshold = Some(parse_usize(
                "DCNN_REDUCE_PAR_THRESHOLD",
                &v,
                "a reduce-kernel split threshold in elements (0 = never split)",
            )?);
        }
        if let Some(v) = get("DCNN_CONNECT_TIMEOUT_MS") {
            let ms = v.trim().parse::<u64>().ok().filter(|&ms| ms > 0).ok_or_else(|| {
                ConfigError {
                    var: "DCNN_CONNECT_TIMEOUT_MS",
                    value: v.clone(),
                    expected: "a timeout in milliseconds (integer ≥ 1)",
                }
            })?;
            cfg.connect_timeout = Some(Duration::from_millis(ms));
        }
        if let Some(v) = get("DCNN_FAULT") {
            cfg.fault = Some(FaultSpec::parse(&v).ok_or(ConfigError {
                var: "DCNN_FAULT",
                value: v,
                expected: FAULT_SYNTAX,
            })?);
        }
        cfg.checkpoint_dir = get("DCNN_CHECKPOINT_DIR");
        if let Some(v) = get("DCNN_DATA_PREFETCH_DEPTH") {
            cfg.data_prefetch_depth = Some(parse_usize(
                "DCNN_DATA_PREFETCH_DEPTH",
                &v,
                "a prefetch depth in batches (0 = decode inline)",
            )?);
        }
        if let Some(v) = get("DCNN_DATA_DECODE_WORKERS") {
            let n =
                parse_usize("DCNN_DATA_DECODE_WORKERS", &v, "a worker count (integer ≥ 1)")?;
            if n == 0 {
                return Err(ConfigError {
                    var: "DCNN_DATA_DECODE_WORKERS",
                    value: v,
                    expected: "a worker count (integer ≥ 1)",
                });
            }
            cfg.data_decode_workers = Some(n);
        }
        cfg.data_service = get("DCNN_DATA_SERVICE");
        if let Some(v) = get("DCNN_SHARD_OPTIM") {
            cfg.shard_optim = Some(match v.trim().to_ascii_lowercase().as_str() {
                "1" | "true" | "on" => true,
                "0" | "false" | "off" => false,
                _ => {
                    return Err(ConfigError {
                        var: "DCNN_SHARD_OPTIM",
                        value: v,
                        expected: "1/true/on or 0/false/off",
                    })
                }
            });
        }
        if let Some(v) = get("DCNN_ALGO") {
            cfg.algo = Some(v.trim().parse().map_err(|_| ConfigError {
                var: "DCNN_ALGO",
                value: v,
                expected: "an allreduce algorithm name (multicolor[:colors], ring, \
                           openmpi-default, ring-reduce-scatter, halving-doubling, \
                           hierarchical[:group]), \"auto\", or \"auto:<c1>,<c2>,...\"",
            })?);
        }
        if let Some(v) = get("DCNN_EVAL_PAYLOAD") {
            let bytes =
                parse_usize("DCNN_EVAL_PAYLOAD", &v, "a payload size in bytes (integer ≥ 4)")?;
            if bytes < 4 {
                return Err(ConfigError {
                    var: "DCNN_EVAL_PAYLOAD",
                    value: v,
                    expected: "a payload size in bytes (integer ≥ 4)",
                });
            }
            cfg.eval_payload = Some(bytes);
        }
        if let Some(v) = get("DCNN_EVAL_ITERS") {
            let n = parse_usize("DCNN_EVAL_ITERS", &v, "an iteration count (integer ≥ 1)")?;
            if n == 0 {
                return Err(ConfigError {
                    var: "DCNN_EVAL_ITERS",
                    value: v,
                    expected: "an iteration count (integer ≥ 1)",
                });
            }
            cfg.eval_iters = Some(n);
        }
        Ok(cfg)
    }

    // ---- resolved accessors (the runtime's defaults) ----

    /// The transport backend to use (default: in-process threads).
    pub fn transport_or_default(&self) -> TransportKind {
        self.transport.unwrap_or(TransportKind::Threads)
    }

    /// Whether event tracing is on (explicitly, or implied by a JSON export
    /// path).
    pub fn trace_or_default(&self) -> bool {
        self.trace.unwrap_or(false) || self.trace_json.is_some()
    }

    /// The deadlock-watchdog receive timeout (default 60 s).
    pub fn recv_timeout_or_default(&self) -> Duration {
        self.recv_timeout.unwrap_or(Duration::from_secs(60))
    }

    /// Comm-worker threads per rank (default 2, minimum 1).
    pub fn comm_workers_or_default(&self) -> usize {
        self.comm_workers.unwrap_or(2).max(1)
    }

    /// Gradient bucket size target in bytes (default 0 = fused blocking).
    pub fn bucket_bytes_or_default(&self) -> usize {
        self.bucket_bytes.unwrap_or(0)
    }

    /// Bucket scheduling mode (default [`OverlapMode::Hooked`]).
    pub fn overlap_mode_or_default(&self) -> OverlapMode {
        self.overlap_mode.unwrap_or_default()
    }

    /// Adaptive in-flight byte budget (default 0 = fixed bucket size).
    pub fn inflight_budget_or_default(&self) -> usize {
        self.inflight_budget_bytes.unwrap_or(0)
    }

    /// Reduce-kernel rayon-split threshold in elements (default
    /// [`crate::reduce::DEFAULT_PAR_THRESHOLD`]; 0 = never split).
    pub fn reduce_par_threshold_or_default(&self) -> usize {
        self.reduce_par_threshold.unwrap_or(crate::reduce::DEFAULT_PAR_THRESHOLD)
    }

    /// TCP connect/rendezvous timeout (default 20 s).
    pub fn connect_timeout_or_default(&self) -> Duration {
        self.connect_timeout.unwrap_or(Duration::from_secs(20))
    }

    /// Data-pipeline prefetch depth in batches (default 0 = inline decode).
    pub fn data_prefetch_depth_or_default(&self) -> usize {
        self.data_prefetch_depth.unwrap_or(0)
    }

    /// Parallel decode workers in the data pipeline (default 1, minimum 1).
    pub fn data_decode_workers_or_default(&self) -> usize {
        self.data_decode_workers.unwrap_or(1).max(1)
    }

    /// Whether optimizer state is sharded across ranks (default: replicated).
    pub fn shard_optim_or_default(&self) -> bool {
        self.shard_optim.unwrap_or(false)
    }

    /// The allreduce selection policy (default: the paper's multicolor
    /// algorithm with 4 colors, fixed).
    pub fn algo_or_default(&self) -> crate::tune::AlgoPolicy {
        self.algo
            .clone()
            .unwrap_or(crate::tune::AlgoPolicy::Fixed(crate::algorithms::AllreduceAlgo::MultiColor(4)))
    }

    /// Eval-cell payload size in bytes (default 1 MiB, minimum 4).
    pub fn eval_payload_or_default(&self) -> usize {
        self.eval_payload.unwrap_or(1 << 20).max(4)
    }

    /// Timed iterations per eval cell (default 3, minimum 1).
    pub fn eval_iters_or_default(&self) -> usize {
        self.eval_iters.unwrap_or(3).max(1)
    }

    // ---- builder-style programmatic overrides ----

    /// Override the transport backend.
    pub fn with_transport(mut self, kind: TransportKind) -> Self {
        self.transport = Some(kind);
        self
    }

    /// Override the rendezvous address.
    pub fn with_rendezvous(mut self, addr: impl Into<String>) -> Self {
        self.rendezvous = Some(addr.into());
        self
    }

    /// Override rank and world size for a multi-process run.
    pub fn with_rank_world(mut self, rank: usize, world: usize) -> Self {
        self.rank = Some(rank);
        self.world = Some(world);
        self
    }

    /// Override event tracing.
    pub fn with_trace(mut self, on: bool) -> Self {
        self.trace = Some(on);
        self
    }

    /// Override the watchdog receive timeout.
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = Some(timeout);
        self
    }

    /// Override the comm-worker thread count.
    pub fn with_comm_workers(mut self, n: usize) -> Self {
        self.comm_workers = Some(n);
        self
    }

    /// Override the gradient bucket size target.
    pub fn with_bucket_bytes(mut self, bytes: usize) -> Self {
        self.bucket_bytes = Some(bytes);
        self
    }

    /// Override the bucket scheduling mode.
    pub fn with_overlap_mode(mut self, mode: OverlapMode) -> Self {
        self.overlap_mode = Some(mode);
        self
    }

    /// Override the adaptive in-flight byte budget.
    pub fn with_inflight_budget(mut self, bytes: usize) -> Self {
        self.inflight_budget_bytes = Some(bytes);
        self
    }

    /// Override the reduce-kernel rayon-split threshold (elements; 0 =
    /// never split).
    pub fn with_reduce_par_threshold(mut self, elements: usize) -> Self {
        self.reduce_par_threshold = Some(elements);
        self
    }

    /// Override the TCP connect/rendezvous timeout.
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = Some(timeout);
        self
    }

    /// Inject a fault (see [`FaultSpec`]).
    pub fn with_fault(mut self, fault: FaultSpec) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Override the abort-checkpoint directory.
    pub fn with_checkpoint_dir(mut self, dir: impl Into<String>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Override the data-pipeline prefetch depth (batches; 0 = inline).
    pub fn with_data_prefetch_depth(mut self, depth: usize) -> Self {
        self.data_prefetch_depth = Some(depth);
        self
    }

    /// Override the data-pipeline decode worker count.
    pub fn with_data_decode_workers(mut self, n: usize) -> Self {
        self.data_decode_workers = Some(n);
        self
    }

    /// Override the blob-server address list.
    pub fn with_data_service(mut self, addrs: impl Into<String>) -> Self {
        self.data_service = Some(addrs.into());
        self
    }

    /// Override optimizer-state sharding.
    pub fn with_shard_optim(mut self, on: bool) -> Self {
        self.shard_optim = Some(on);
        self
    }

    /// Override the allreduce selection policy.
    pub fn with_algo(mut self, policy: crate::tune::AlgoPolicy) -> Self {
        self.algo = Some(policy);
        self
    }

    /// Override the eval-cell payload size (bytes).
    pub fn with_eval_payload(mut self, bytes: usize) -> Self {
        self.eval_payload = Some(bytes);
        self
    }

    /// Override the eval-cell iteration count.
    pub fn with_eval_iters(mut self, n: usize) -> Self {
        self.eval_iters = Some(n);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn from_map(pairs: &[(&'static str, &str)]) -> Result<RuntimeConfig, ConfigError> {
        let map: HashMap<&str, String> =
            pairs.iter().map(|&(k, v)| (k, v.to_string())).collect();
        RuntimeConfig::from_lookup(|var| map.get(var).cloned())
    }

    #[test]
    fn empty_environment_is_all_defaults() {
        let cfg = from_map(&[]).expect("empty env parses");
        assert_eq!(cfg, RuntimeConfig::default());
        assert_eq!(cfg.transport_or_default(), TransportKind::Threads);
        assert!(!cfg.trace_or_default());
        assert_eq!(cfg.recv_timeout_or_default(), Duration::from_secs(60));
        assert_eq!(cfg.comm_workers_or_default(), 2);
        assert_eq!(cfg.bucket_bytes_or_default(), 0);
        assert_eq!(cfg.overlap_mode_or_default(), OverlapMode::Hooked);
        assert_eq!(cfg.inflight_budget_or_default(), 0);
        assert_eq!(cfg.reduce_par_threshold_or_default(), crate::reduce::DEFAULT_PAR_THRESHOLD);
        assert_eq!(cfg.data_prefetch_depth_or_default(), 0);
        assert_eq!(cfg.data_decode_workers_or_default(), 1);
        assert_eq!(cfg.data_service, None);
        assert!(!cfg.shard_optim_or_default());
        assert_eq!(
            cfg.algo_or_default(),
            crate::tune::AlgoPolicy::Fixed(crate::AllreduceAlgo::MultiColor(4))
        );
        assert_eq!(cfg.eval_payload_or_default(), 1 << 20);
        assert_eq!(cfg.eval_iters_or_default(), 3);
    }

    #[test]
    fn empty_values_count_as_unset() {
        let cfg = from_map(&[("DCNN_TRACE", ""), ("DCNN_BUCKET_BYTES", "  ")])
            .expect("empty values are unset");
        assert_eq!(cfg.trace, None);
        assert_eq!(cfg.bucket_bytes, None);
    }

    #[test]
    fn full_environment_parses() {
        let cfg = from_map(&[
            ("DCNN_TRANSPORT", "TCP"),
            ("DCNN_RENDEZVOUS", "127.0.0.1:4400"),
            ("DCNN_RANK", "1"),
            ("DCNN_WORLD", "4"),
            ("DCNN_TRACE", "on"),
            ("DCNN_TRACE_JSON", "/tmp/trace.jsonl"),
            ("DCNN_RECV_TIMEOUT_MS", "2500"),
            ("DCNN_COMM_WORKERS", "3"),
            ("DCNN_BUCKET_BYTES", "4096"),
            ("DCNN_OVERLAP_MODE", "drain"),
            ("DCNN_INFLIGHT_BUDGET", "65536"),
            ("DCNN_REDUCE_PAR_THRESHOLD", "131072"),
            ("DCNN_CONNECT_TIMEOUT_MS", "750"),
            ("DCNN_FAULT", "kill-after-step=3@2"),
            ("DCNN_CHECKPOINT_DIR", "/tmp/ckpt"),
            ("DCNN_DATA_PREFETCH_DEPTH", "6"),
            ("DCNN_DATA_DECODE_WORKERS", "2"),
            ("DCNN_DATA_SERVICE", "127.0.0.1:7500,127.0.0.1:7501"),
            ("DCNN_SHARD_OPTIM", "1"),
            ("DCNN_ALGO", "auto:multicolor:2,ring"),
            ("DCNN_EVAL_PAYLOAD", "262144"),
            ("DCNN_EVAL_ITERS", "5"),
        ])
        .expect("full env parses");
        assert_eq!(cfg.transport, Some(TransportKind::Tcp));
        assert_eq!(cfg.rendezvous.as_deref(), Some("127.0.0.1:4400"));
        assert_eq!(cfg.rank, Some(1));
        assert_eq!(cfg.world, Some(4));
        assert_eq!(cfg.trace, Some(true));
        assert_eq!(cfg.trace_json.as_deref(), Some("/tmp/trace.jsonl"));
        assert_eq!(cfg.recv_timeout, Some(Duration::from_millis(2500)));
        assert_eq!(cfg.comm_workers, Some(3));
        assert_eq!(cfg.bucket_bytes, Some(4096));
        assert_eq!(cfg.overlap_mode, Some(OverlapMode::Drain));
        assert_eq!(cfg.inflight_budget_bytes, Some(65536));
        assert_eq!(cfg.reduce_par_threshold, Some(131072));
        assert_eq!(cfg.connect_timeout, Some(Duration::from_millis(750)));
        assert_eq!(cfg.fault, Some(FaultSpec::KillAfterStep { step: 3, rank: 2 }));
        assert_eq!(cfg.checkpoint_dir.as_deref(), Some("/tmp/ckpt"));
        assert_eq!(cfg.data_prefetch_depth, Some(6));
        assert_eq!(cfg.data_decode_workers, Some(2));
        assert_eq!(cfg.data_service.as_deref(), Some("127.0.0.1:7500,127.0.0.1:7501"));
        assert_eq!(cfg.shard_optim, Some(true));
        assert_eq!(
            cfg.algo,
            Some(crate::tune::AlgoPolicy::Auto(crate::tune::TunerConfig::with_candidates(
                vec![crate::AllreduceAlgo::MultiColor(2), crate::AllreduceAlgo::PipelinedRing]
            )))
        );
        assert_eq!(cfg.eval_payload, Some(262144));
        assert_eq!(cfg.eval_iters, Some(5));
    }

    #[test]
    fn algo_policy_syntax() {
        use crate::tune::AlgoPolicy;
        use crate::AllreduceAlgo;
        let fixed = from_map(&[("DCNN_ALGO", "hierarchical:8")]).expect("parses");
        assert_eq!(fixed.algo, Some(AlgoPolicy::Fixed(AllreduceAlgo::Hierarchical(8))));
        let auto = from_map(&[("DCNN_ALGO", "auto")]).expect("parses");
        assert_eq!(auto.algo, Some(AlgoPolicy::Auto(Default::default())));
        for bad in ["warp-speed", "ring:4", "auto:", "auto:ring,", "multicolor:0"] {
            let err = from_map(&[("DCNN_ALGO", bad)])
                .expect_err(&format!("{bad:?} must be rejected"));
            assert_eq!(err.var, "DCNN_ALGO");
        }
    }

    #[test]
    fn fault_spec_syntax() {
        for (text, want) in [
            ("kill-after-step=5", FaultSpec::KillAfterStep { step: 5, rank: 1 }),
            ("kill-after-step=0@3", FaultSpec::KillAfterStep { step: 0, rank: 3 }),
            ("drop-link=0:2", FaultSpec::DropLink { from: 0, to: 2 }),
            (" drop-link=1 : 0 ", FaultSpec::DropLink { from: 1, to: 0 }),
        ] {
            let cfg = from_map(&[("DCNN_FAULT", text)])
                .unwrap_or_else(|e| panic!("{text:?} must parse: {e}"));
            assert_eq!(cfg.fault, Some(want), "{text:?}");
            // Display round-trips through the parser.
            assert_eq!(FaultSpec::parse(&want.to_string()), Some(want));
        }
        for bad in [
            "kill-after-step=", "kill-after-step=two", "kill-after-step=3@",
            "drop-link=1", "drop-link=1:1", "drop-link=a:b", "reboot",
        ] {
            let err = from_map(&[("DCNN_FAULT", bad)])
                .expect_err(&format!("{bad:?} must be rejected"));
            assert_eq!(err.var, "DCNN_FAULT");
        }
    }

    #[test]
    fn malformed_values_name_the_variable() {
        for (var, value) in [
            ("DCNN_TRANSPORT", "carrier-pigeon"),
            ("DCNN_RANK", "zero"),
            ("DCNN_WORLD", "0"),
            ("DCNN_TRACE", "maybe"),
            ("DCNN_RECV_TIMEOUT_MS", "2.5s"),
            ("DCNN_COMM_WORKERS", "0"),
            ("DCNN_BUCKET_BYTES", "-1"),
            ("DCNN_OVERLAP_MODE", "eager"),
            ("DCNN_INFLIGHT_BUDGET", "lots"),
            ("DCNN_REDUCE_PAR_THRESHOLD", "-4"),
            ("DCNN_CONNECT_TIMEOUT_MS", "0"),
            ("DCNN_FAULT", "unplug-the-rack"),
            ("DCNN_DATA_PREFETCH_DEPTH", "deep"),
            ("DCNN_DATA_DECODE_WORKERS", "0"),
            ("DCNN_SHARD_OPTIM", "maybe"),
            ("DCNN_ALGO", "warp-speed"),
            ("DCNN_EVAL_PAYLOAD", "3"),
            ("DCNN_EVAL_ITERS", "0"),
        ] {
            let err = from_map(&[(var, value)])
                .expect_err(&format!("{var}={value} must be rejected"));
            assert_eq!(err.var, var);
            assert_eq!(err.value, value);
            let msg = err.to_string();
            assert!(msg.contains(var), "error must name the variable: {msg}");
            assert!(msg.contains("expected"), "error must say what was expected: {msg}");
        }
    }

    #[test]
    fn trace_json_implies_tracing() {
        let cfg = from_map(&[("DCNN_TRACE_JSON", "/tmp/t.jsonl")]).expect("parses");
        assert_eq!(cfg.trace, None);
        assert!(cfg.trace_or_default());
    }

    #[test]
    fn builder_overrides_win() {
        let cfg = from_map(&[("DCNN_BUCKET_BYTES", "4096")])
            .expect("parses")
            .with_bucket_bytes(8192)
            .with_overlap_mode(OverlapMode::Drain)
            .with_comm_workers(5)
            .with_transport(TransportKind::Tcp)
            .with_rank_world(2, 8)
            .with_rendezvous("10.0.0.1:9000")
            .with_trace(true)
            .with_recv_timeout(Duration::from_secs(5))
            .with_inflight_budget(1 << 20)
            .with_reduce_par_threshold(4096)
            .with_connect_timeout(Duration::from_secs(2))
            .with_fault(FaultSpec::DropLink { from: 0, to: 1 })
            .with_checkpoint_dir("/tmp/abort-ckpt")
            .with_data_prefetch_depth(4)
            .with_data_decode_workers(3)
            .with_data_service("127.0.0.1:7500")
            .with_shard_optim(true)
            .with_algo(crate::tune::AlgoPolicy::Fixed(crate::AllreduceAlgo::PipelinedRing))
            .with_eval_payload(1 << 16)
            .with_eval_iters(7);
        assert_eq!(cfg.bucket_bytes, Some(8192));
        assert_eq!(cfg.overlap_mode, Some(OverlapMode::Drain));
        assert_eq!(cfg.comm_workers, Some(5));
        assert_eq!(cfg.transport, Some(TransportKind::Tcp));
        assert_eq!((cfg.rank, cfg.world), (Some(2), Some(8)));
        assert_eq!(cfg.rendezvous.as_deref(), Some("10.0.0.1:9000"));
        assert_eq!(cfg.trace, Some(true));
        assert_eq!(cfg.recv_timeout, Some(Duration::from_secs(5)));
        assert_eq!(cfg.inflight_budget_bytes, Some(1 << 20));
        assert_eq!(cfg.reduce_par_threshold, Some(4096));
        assert_eq!(cfg.connect_timeout, Some(Duration::from_secs(2)));
        assert_eq!(cfg.fault, Some(FaultSpec::DropLink { from: 0, to: 1 }));
        assert_eq!(cfg.checkpoint_dir.as_deref(), Some("/tmp/abort-ckpt"));
        assert_eq!(cfg.data_prefetch_depth, Some(4));
        assert_eq!(cfg.data_decode_workers, Some(3));
        assert_eq!(cfg.data_service.as_deref(), Some("127.0.0.1:7500"));
        assert_eq!(cfg.shard_optim, Some(true));
        assert_eq!(
            cfg.algo,
            Some(crate::tune::AlgoPolicy::Fixed(crate::AllreduceAlgo::PipelinedRing))
        );
        assert_eq!(cfg.eval_payload, Some(1 << 16));
        assert_eq!(cfg.eval_iters, Some(7));
    }

    #[test]
    fn env_vars_list_is_complete_and_unique() {
        let vars = RuntimeConfig::ENV_VARS;
        let set: std::collections::HashSet<&str> = vars.iter().copied().collect();
        assert_eq!(set.len(), vars.len(), "duplicate entries in ENV_VARS");
        // Every listed var is actually consulted by the parser: setting it
        // alone to a recognizable bad value must either error or change the
        // parse relative to the empty environment.
        let baseline = from_map(&[]).expect("empty env");
        for var in vars {
            let poked = from_map(&[(var, "definitely-not-a-valid-value !")]);
            let consulted = match poked {
                Err(e) => e.var == var,
                Ok(cfg) => cfg != baseline, // free-form vars (paths, addrs)
            };
            assert!(consulted, "{var} is listed but never parsed");
        }
    }
}
